"""Shim for legacy editable installs (``python setup.py develop``).

Fully offline environments may lack the ``wheel`` package that PEP 660
editable installs require; this shim enables the classic develop-mode
fallback. All metadata lives in ``pyproject.toml`` (project table, ``src``
layout, pytest config).
"""

from setuptools import setup

setup()
