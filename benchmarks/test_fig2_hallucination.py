"""Bench: regenerate Figure 2 (hallucinated parameter details vs. RAG)."""

from repro.experiments import fig2


def test_fig2_hallucination(benchmark, cluster):
    # rounds=1 like every other artifact bench: the regeneration is
    # deterministic, so statistical calibration rounds add nothing.
    result = benchmark.pedantic(
        lambda: fig2.run(cluster, seed=0), rounds=1, iterations=1
    )
    print("\n" + result.render())

    # Paper shape: none of the three frontier models is fully correct; all
    # miss the true maximum; STELLAR's RAG extraction is correct.
    assert all(not a.range_correct for a in result.answers)
    assert any(not a.definition_correct for a in result.answers)
    assert result.rag_correct
