"""Bench: regenerate Figure 5 (STELLAR vs default and expert, 5 benchmarks)."""

from conftest import BENCH_REPS

from repro.experiments import fig5


def test_fig5_tuning_performance(benchmark, cluster):
    result = benchmark.pedantic(
        lambda: fig5.run(cluster, reps=BENCH_REPS, seed=0), rounds=1, iterations=1
    )
    print("\n" + result.render())

    for comparison in result.comparisons:
        # STELLAR always beats the default within five attempts ...
        assert comparison.stellar_speedup > 1.2, comparison.workload
        assert max(comparison.attempts_used) <= 5
        # ... and is comparable to (or better than) the human expert.
        assert comparison.stellar.mean < comparison.expert.mean * 1.15

    # Headline factors: random-small IOR gains most (paper: up to 7.8x),
    # sequential-large IOR ~5x (paper Fig 9: 4.91x).
    assert 4.5 < result.get("IOR_64K").stellar_speedup < 9.0
    assert 3.5 < result.get("IOR_16M").stellar_speedup < 7.0

    # Crossover: STELLAR outperforms the expert on multi-phase IO500.
    io500 = result.get("IO500")
    assert io500.stellar.mean < io500.expert.mean
