"""Bench: raw harness throughput (sessions/sec, batched and swept runs/sec,
fleet sessions/sec).

Unlike the figure benches, this measures the *machinery* rather than a paper
artifact: how many simulated application runs, candidate-grid configs, full
tuning sessions and multi-tenant fleet sessions the harness sustains per
second.  The numbers land in
``BENCH_throughput.json`` at the repo root so future PRs have a perf
trajectory to regress against.

The candidate-grid section compares the columnar sweep engine against the
*ungrouped* ``run_batch`` path — every grid config distinct, so batch-level
dedup never fires (exactly the shape the coordinate-descent baseline
produces).  A cached re-run of the same grid under the process-wide
``RUN_CACHE`` is recorded separately.  ``BENCH_throughput.json`` is only
ever written by running this bench, never edited by hand.
"""

import json
import os
from itertools import product
from pathlib import Path
from time import perf_counter

from conftest import BENCH_REPS

from repro.agents.policies import list_policies
from repro.core.engine import Stellar
from repro.experiments.harness import run_sessions, shared_extraction
from repro.faults import FaultPlan
from repro.pfs.config import PfsConfig
from repro.pfs.simulator import Simulator
from repro.service import FleetScheduler, TenantSpec, TuningService, run_tenant
from repro.sim.batch import grid_items, repetition_items
from repro.sim.cache import RUN_CACHE
from repro.sim.random import RngStreams
from repro.sim.sweep import run_items
from repro.workloads import get_workload

OUTPUT = Path(__file__).resolve().parents[1] / "BENCH_throughput.json"

N_BATCHED = 400
N_SEQUENTIAL = 80
N_SESSIONS = BENCH_REPS
#: Candidate-grid shape: >= 64 distinct configs of a many-phase workload.
N_GRID = 128
GRID_WORKLOAD = "IO500"
#: Fleet shape: enough tenants (and sessions) that pool start-up amortizes.
N_FLEET_TENANTS = 16
FLEET_QUEUE = ("IOR_64K", "IOR_16M", "MDWorkbench_8K", "IO500")
#: Per-policy arm: a handful of full tuning sessions per agent policy.
N_POLICY_SESSIONS = 4


def build_fleet(n: int = N_FLEET_TENANTS) -> list[TenantSpec]:
    """``n`` mixed tenants alternating backends, distinct seeds."""
    backends = ("lustre", "beegfs")
    return [
        TenantSpec(
            f"bench-{i:02d}",
            backend=backends[i % len(backends)],
            workloads=FLEET_QUEUE,
            seed=900 + i,
        )
        for i in range(n)
    ]


def build_grid(cluster, n: int) -> list[PfsConfig]:
    """``n`` distinct valid configs from the backend's search candidates."""
    base = PfsConfig(facts=cluster.config_facts(), backend=cluster.backend)
    grids = cluster.backend.search_candidates
    names = list(grids)[:5]
    configs, seen = [], set()
    for combo in product(*(grids[name] for name in names)):
        config = base.with_updates(dict(zip(names, combo))).clipped()
        key = config.cache_key()
        if key in seen:
            continue
        seen.add(key)
        configs.append(config)
        if len(configs) == n:
            break
    assert len(configs) == n, f"search grids yield only {len(configs)} configs"
    return configs


def test_throughput(benchmark, cluster):
    sim = Simulator(cluster)
    workload = get_workload("IOR_64K")
    config = PfsConfig(facts=cluster.config_facts())
    extraction = shared_extraction(cluster)

    start = perf_counter()
    batched = sim.run_batch(repetition_items(workload, config, N_BATCHED, seed=1))
    batched_elapsed = perf_counter() - start

    start = perf_counter()
    sequential = [
        sim.run(workload, config, seed=RngStreams.rep_seed(1, i))
        for i in range(N_SEQUENTIAL)
    ]
    sequential_elapsed = perf_counter() - start

    # -- candidate grid: ungrouped batch vs columnar sweep vs cached rerun --
    grid_workload = get_workload(GRID_WORKLOAD)
    grid_configs = build_grid(cluster, N_GRID)
    items = grid_items(grid_workload, grid_configs, [RngStreams.rep_seed(2, 0)])
    sim.run_batch(items)  # warm phase/expression caches
    run_items(sim, items)  # warm the sweep's vector path

    def best_of(runner, rounds=3):
        """(elapsed, result) of the fastest round — one-shot timings flake
        on loaded CI runners."""
        best = None
        for _ in range(rounds):
            start = perf_counter()
            result = runner()
            elapsed = perf_counter() - start
            if best is None or elapsed < best[0]:
                best = (elapsed, result)
        return best

    grid_batch_elapsed, grid_batched = best_of(lambda: sim.run_batch(items))
    sweep_elapsed, swept = best_of(lambda: run_items(sim, items))

    with RUN_CACHE.enabled():
        run_items(sim, items)  # prime the cache
        cached_elapsed, cached = best_of(lambda: run_items(sim, items))

    start = perf_counter()
    sessions = run_sessions(
        cluster, "IOR_64K", reps=N_SESSIONS, seed=0, extraction=extraction
    )
    sessions_elapsed = perf_counter() - start

    # -- fleet: many tenants over the scheduler pool vs sequential loops ----
    # Both arms run with the cache inactive (the standing bench convention:
    # throughput figures measure real work) so they differ ONLY by the
    # scheduler's pool.
    fleet_tenants = build_fleet()
    scheduler = FleetScheduler(fleet_tenants, seed=0, use_cache=False, batching=False)
    # Warm the per-backend shared artifacts so no arm pays extraction.
    arms = [
        (spec, scheduler.cluster_for(spec), scheduler.extraction_for(spec))
        for spec in fleet_tenants
    ]

    def run_fleet_sequential():
        return [
            run_tenant(spec, cluster_, extraction_, use_cache=False)
            for spec, cluster_, extraction_ in arms
        ]

    sequential_fleet_elapsed, sequential_fleet = best_of(
        run_fleet_sequential, rounds=2
    )
    fleet_elapsed, fleet = None, None
    for _ in range(2):
        result = scheduler.run()
        if fleet_elapsed is None or result.elapsed < fleet_elapsed:
            fleet_elapsed, fleet = result.elapsed, result
    fleet_sequential_sps = fleet.total_sessions / sequential_fleet_elapsed

    # -- batched fleet: the default cross-tenant broker path ----------------
    # Same tenants through `batching=True` (the scheduler default): tenants
    # co-located on a worker park their candidate evaluations at the
    # `FleetEvalBroker` rendezvous and one columnar pass serves each
    # (workload, cluster) group.  Results are bit-identical to the pooled
    # arm; only where the simulator work runs differs.
    batched_scheduler = FleetScheduler(fleet_tenants, seed=0, use_cache=False)
    batched_fleet_elapsed, batched_fleet = None, None
    for _ in range(2):
        result = batched_scheduler.run()
        if batched_fleet_elapsed is None or result.elapsed < batched_fleet_elapsed:
            batched_fleet_elapsed, batched_fleet = result.elapsed, result
    fleet_batched_sps = batched_fleet.total_sessions / batched_fleet_elapsed

    # -- sharded fleet: the same tenants split across two worker groups -----
    # Each shard owns its own warm pool slice and eval broker; the merge is
    # byte-identical to the single-pool arm, so the arm isolates what shard
    # partitioning costs (or buys, on multi-core runners) at equal work.
    sharded_scheduler = FleetScheduler(
        fleet_tenants, seed=0, use_cache=False, shards=2
    )
    sharded_fleet_elapsed, sharded_fleet = None, None
    for _ in range(2):
        result = sharded_scheduler.run()
        if sharded_fleet_elapsed is None or result.elapsed < sharded_fleet_elapsed:
            sharded_fleet_elapsed, sharded_fleet = result.elapsed, result
    fleet_sharded_sps = sharded_fleet.total_sessions / sharded_fleet_elapsed

    # -- tuning service: the same tenants through the daemon front door -----
    # Submit the whole fleet to a TuningService and drain: measures what the
    # long-lived path (admission, per-wave pumping, checkpoint-free here)
    # costs over the batch scheduler.  Drain is once-per-service, so each
    # round gets a fresh daemon.
    def run_service():
        service = TuningService(seed=0, use_cache=False, pump_interval=4)
        for spec in fleet_tenants:
            assert service.submit(spec).accepted
        return service.drain()

    service_elapsed, service_fleet = None, None
    for _ in range(2):
        result = run_service()
        if service_elapsed is None or result.elapsed < service_elapsed:
            service_elapsed, service_fleet = result.elapsed, result
    service_sps = service_fleet.total_sessions / service_elapsed

    # -- streaming service: time-to-first-result, in sessions not seconds ---
    # `iter_results` yields each tenant the moment its canonical prefix is
    # complete.  `first_result_sessions` counts the sessions that had
    # completed anywhere in the fleet when the first result streamed out —
    # a wall-clock-free latency proxy (lower is better; a batch drain would
    # score the whole fleet).
    streaming_service = TuningService(
        seed=0, use_cache=False, pump_interval=None, shards=2
    )
    for spec in fleet_tenants:
        assert streaming_service.submit(spec).accepted
    streamed = list(streaming_service.iter_results())
    first_result_sessions = streaming_service.first_result_sessions

    # -- degraded fleet: the same pool absorbing a 10% fault plan -----------
    # Measures resilience overhead: retries, backoff accounting and (rarely)
    # quarantine handling, with the cache off like the other fleet arms.
    degraded_scheduler = FleetScheduler(
        fleet_tenants, seed=0, use_cache=False, faults=FaultPlan.uniform(0.1, seed=0)
    )
    degraded_elapsed, degraded = None, None
    for _ in range(2):
        result = degraded_scheduler.run()
        if degraded_elapsed is None or result.elapsed < degraded_elapsed:
            degraded_elapsed, degraded = result.elapsed, result
    degraded_sps = degraded.total_sessions / degraded_elapsed

    # -- agent policies: full sessions per turn-taking strategy -------------
    # Alternative policies spend extra model turns (decide/thought for
    # ReACT, a critic pass per proposal); this records what each strategy
    # costs in sessions/sec so policy overhead regressions are visible.
    policy_sps = {}
    for policy_name in list_policies():
        policy_engine = Stellar(
            cluster=cluster,
            model="claude-3.7-sonnet",
            extraction=extraction,
            seed=0,
            policy=policy_name,
        )
        start = perf_counter()
        policy_sessions = [
            policy_engine.tune(get_workload("IOR_64K"), seed=i)
            for i in range(N_POLICY_SESSIONS)
        ]
        policy_sps[policy_name] = N_POLICY_SESSIONS / (perf_counter() - start)
        assert all(s.best_speedup > 0 for s in policy_sessions)

    # The pytest-benchmark row tracks the sweep path (the tentpole).
    benchmark.pedantic(
        lambda: run_items(sim, items),
        rounds=1,
        iterations=1,
    )

    batched_rps = N_BATCHED / batched_elapsed
    sequential_rps = N_SEQUENTIAL / sequential_elapsed
    grid_batch_cps = N_GRID / grid_batch_elapsed
    sweep_cps = N_GRID / sweep_elapsed
    cached_rps = N_GRID / cached_elapsed
    sessions_ps = N_SESSIONS / sessions_elapsed
    fleet_sps = fleet.total_sessions / fleet_elapsed
    payload = {
        "workload": workload.name,
        "cpu_count": os.cpu_count(),
        "batched_runs_per_sec": round(batched_rps, 1),
        "sequential_runs_per_sec": round(sequential_rps, 1),
        "batch_speedup_vs_sequential": round(batched_rps / sequential_rps, 2),
        "grid_workload": GRID_WORKLOAD,
        "grid_batch_configs_per_sec": round(grid_batch_cps, 1),
        "sweep_configs_per_sec": round(sweep_cps, 1),
        "sweep_speedup_vs_batch_grid": round(sweep_cps / grid_batch_cps, 2),
        "cached_rerun_runs_per_sec": round(cached_rps, 1),
        "sessions_per_sec": round(sessions_ps, 2),
        "fleet_sessions_per_sec": round(fleet_sps, 2),
        "fleet_batched_sessions_per_sec": round(fleet_batched_sps, 2),
        "fleet_sharded_sessions_per_sec": round(fleet_sharded_sps, 2),
        "fleet_sequential_sessions_per_sec": round(fleet_sequential_sps, 2),
        "service_sessions_per_sec": round(service_sps, 2),
        "service_first_result_sessions": first_result_sessions,
        "degraded_sessions_per_sec": round(degraded_sps, 2),
        "degraded_quarantined_tenants": len(degraded.failures),
        **{
            f"policy_sessions_per_sec_{name}": round(sps, 2)
            for name, sps in policy_sps.items()
        },
        "n_policy_sessions": N_POLICY_SESSIONS,
        "fleet_workers": fleet.workers,
        "n_batched": N_BATCHED,
        "n_sequential": N_SEQUENTIAL,
        "n_grid_configs": N_GRID,
        "n_sessions": N_SESSIONS,
        "n_fleet_tenants": N_FLEET_TENANTS,
        "n_fleet_sessions": fleet.total_sessions,
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")
    print("\n" + json.dumps(payload, indent=2))

    # Sanity: the batch really ran, matches the sequential prefix bit for
    # bit, and dedup makes the batched path strictly faster per run.
    assert len(batched) == N_BATCHED
    assert [r.seconds for r in batched[:N_SEQUENTIAL]] == [
        r.seconds for r in sequential
    ]
    assert batched_rps > sequential_rps
    # The sweep is bit-identical to the ungrouped batch on the same grid and
    # beats it per config; the cached rerun returns the shared results.
    assert [r.seconds for r in swept] == [r.seconds for r in grid_batched]
    assert [r.seconds for r in cached] == [r.seconds for r in swept]
    assert sweep_cps > grid_batch_cps
    assert cached_rps > sweep_cps
    assert sessions and all(s.best_seconds > 0 for s in sessions)
    # The fleet produces exactly the sequential loop's sessions (scheduling
    # changes when work runs, never what it produces), and on multi-core
    # runners the pool makes it faster than N sequential
    # tune_and_accumulate chains.  Single-core boxes run the pool inline,
    # so there is nothing to beat there.
    assert [
        [s.best_speedup for s in t.sessions] for t in fleet.tenants
    ] == [[s.best_speedup for s in t.sessions] for t in sequential_fleet]
    # The broker is invisible in results: the batched arm reproduces the
    # pooled arm session for session.
    assert [
        [s.best_speedup for s in t.sessions] for t in batched_fleet.tenants
    ] == [[s.best_speedup for s in t.sessions] for t in fleet.tenants]
    # And so is sharding: two worker groups, same bytes.
    assert [
        [s.best_speedup for s in t.sessions] for t in sharded_fleet.tenants
    ] == [[s.best_speedup for s in t.sessions] for t in fleet.tenants]
    # And so is the daemon: a drained service is the batch fleet (seeds are
    # strictly increasing, so canonical drain order is submission order).
    assert [
        [s.best_speedup for s in t.sessions] for t in service_fleet.tenants
    ] == [[s.best_speedup for s in t.sessions] for t in fleet.tenants]
    # The stream yields the canonical (= submission) order, and the first
    # result leaves before the whole fleet has run.
    assert [o.tenant_id for o in streamed] == [
        s.tenant_id for s in fleet_tenants
    ]
    assert first_result_sessions is not None
    assert 0 < first_result_sessions <= fleet.total_sessions
    if fleet.workers > 1:
        assert fleet_sps > fleet_sequential_sps
    else:
        # Single core runs every path inline: adaptive batching must route
        # around the grouped machinery, so the batched arm tracks the
        # ungrouped pooled arm instead of regressing behind it.
        assert fleet_batched_sps >= 0.95 * fleet_sps
    # The degraded fleet never aborts: every tenant either completed or was
    # quarantined with a report, and the plan really injected faults.
    assert len(degraded.outcomes) == N_FLEET_TENANTS
    assert len(degraded.tenants) + len(degraded.failures) == N_FLEET_TENANTS
    absorbed = sum(
        count
        for tenant in degraded.tenants
        for session in tenant.sessions
        for count in session.fault_recovery.values()
    )
    assert absorbed > 0
    # Every policy arm really sustained throughput.
    assert all(sps > 0 for sps in policy_sps.values())
