"""Bench: raw harness throughput (sessions/sec and batched runs/sec).

Unlike the figure benches, this measures the *machinery* rather than a paper
artifact: how many simulated application runs and full tuning sessions the
harness sustains per second.  The numbers land in ``BENCH_throughput.json``
at the repo root so future PRs have a perf trajectory to regress against.
"""

import json
import os
from pathlib import Path
from time import perf_counter

from conftest import BENCH_REPS

from repro.experiments.harness import run_sessions, shared_extraction
from repro.pfs.config import PfsConfig
from repro.pfs.simulator import Simulator
from repro.sim.batch import repetition_items
from repro.sim.random import RngStreams
from repro.workloads import get_workload

OUTPUT = Path(__file__).resolve().parents[1] / "BENCH_throughput.json"

N_BATCHED = 400
N_SEQUENTIAL = 80
N_SESSIONS = BENCH_REPS


def test_throughput(benchmark, cluster):
    sim = Simulator(cluster)
    workload = get_workload("IOR_64K")
    config = PfsConfig(facts=cluster.config_facts())
    extraction = shared_extraction(cluster)

    start = perf_counter()
    batched = sim.run_batch(repetition_items(workload, config, N_BATCHED, seed=1))
    batched_elapsed = perf_counter() - start

    start = perf_counter()
    sequential = [
        sim.run(workload, config, seed=RngStreams.rep_seed(1, i))
        for i in range(N_SEQUENTIAL)
    ]
    sequential_elapsed = perf_counter() - start

    start = perf_counter()
    sessions = run_sessions(
        cluster, "IOR_64K", reps=N_SESSIONS, seed=0, extraction=extraction
    )
    sessions_elapsed = perf_counter() - start

    # The pytest-benchmark row tracks the batch path (the tentpole).
    benchmark.pedantic(
        lambda: sim.run_batch(repetition_items(workload, config, 100, seed=2)),
        rounds=1,
        iterations=1,
    )

    batched_rps = N_BATCHED / batched_elapsed
    sequential_rps = N_SEQUENTIAL / sequential_elapsed
    sessions_ps = N_SESSIONS / sessions_elapsed
    payload = {
        "workload": workload.name,
        "cpu_count": os.cpu_count(),
        "batched_runs_per_sec": round(batched_rps, 1),
        "sequential_runs_per_sec": round(sequential_rps, 1),
        "batch_speedup_vs_sequential": round(batched_rps / sequential_rps, 2),
        "sessions_per_sec": round(sessions_ps, 2),
        "n_batched": N_BATCHED,
        "n_sequential": N_SEQUENTIAL,
        "n_sessions": N_SESSIONS,
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")
    print("\n" + json.dumps(payload, indent=2))

    # Sanity: the batch really ran, matches the sequential prefix bit for
    # bit, and dedup makes the batched path strictly faster per run.
    assert len(batched) == N_BATCHED
    assert [r.seconds for r in batched[:N_SEQUENTIAL]] == [
        r.seconds for r in sequential
    ]
    assert batched_rps > sequential_rps
    assert sessions and all(s.best_seconds > 0 for s in sessions)
