"""Bench: regenerate Figure 8 (component ablations on MDWorkbench_8K)."""

from conftest import BENCH_REPS

from repro.experiments import fig8


def test_fig8_ablations(benchmark, cluster):
    result = benchmark.pedantic(
        lambda: fig8.run(cluster, reps=BENCH_REPS, seed=0), rounds=1, iterations=1
    )
    print("\n" + result.render())

    # Paper shape: the full system clearly improves the workload, while
    # removing either the RAG descriptions or the Analysis Agent is
    # catastrophic — neither ablation meaningfully beats the default.
    assert result.full.mean_speedup > 1.3
    assert result.no_descriptions.mean_speedup < 1.1
    assert result.no_analysis.mean_speedup < 1.1
    assert result.full.mean_speedup > result.no_descriptions.mean_speedup + 0.2
    assert result.full.mean_speedup > result.no_analysis.mean_speedup + 0.2
