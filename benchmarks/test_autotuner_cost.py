"""Bench: quantify the exploration-cost gap vs. search-based tuning (§3)."""

from repro.experiments import autotuner_cost


def test_autotuner_cost(benchmark, cluster):
    result = benchmark.pedantic(
        lambda: autotuner_cost.run(cluster, seed=0), rounds=1, iterations=1
    )
    print("\n" + result.render())

    for row in result.rows:
        # STELLAR needs at most 6 application executions (initial + <=5
        # attempts); the search needs an order of magnitude more to land in
        # the same neighbourhood.
        assert row.stellar_executions <= 6
        assert row.execution_ratio >= 8, row.workload
        assert row.stellar_speedup >= row.search_speedup * 0.8, row.workload
