"""Bench: regenerate Figure 9 (different LLMs as the Tuning Agent)."""

from conftest import BENCH_REPS

from repro.experiments import fig9


def test_fig9_model_comparison(benchmark, cluster):
    result = benchmark.pedantic(
        lambda: fig9.run(cluster, reps=BENCH_REPS, seed=0), rounds=1, iterations=1
    )
    print("\n" + result.render())

    # Paper shape: all evaluated models generate similarly performing
    # configurations with significant speedups (paper: up to 4.91x) within
    # five iterations.
    speedups = [o.mean_speedup for o in result.outcomes]
    assert all(s > 4.0 for s in speedups)
    assert max(speedups) / min(speedups) < 1.2
    for outcome in result.outcomes:
        assert max(outcome.attempts) <= 5
