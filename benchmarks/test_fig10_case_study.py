"""Bench: regenerate the Figure 10 case study timeline."""

from repro.experiments import casestudy


def test_fig10_case_study(benchmark, cluster):
    # rounds=1 like every other artifact bench: the regeneration is
    # deterministic, so statistical calibration rounds add nothing.
    study = benchmark.pedantic(
        lambda: casestudy.run(cluster, seed=3), rounds=1, iterations=1
    )
    print("\n" + study.render())

    session = study.session
    # Paper shape: the initial report is produced, the Tuning Agent asks
    # useful follow-ups (file sizes, metadata/data ratio), the first
    # prediction is already a solid improvement, and a rule is distilled.
    assert session.transcript.of_kind("io_report")
    assert len(session.transcript.of_kind("followup")) >= 2
    assert session.attempts[0].speedup > 1.15
    assert session.rules_json
