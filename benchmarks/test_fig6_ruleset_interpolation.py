"""Bench: regenerate Figure 6 (rule-set interpolation on the benchmarks)."""

from conftest import BENCH_REPS

from repro.experiments import fig6


def test_fig6_ruleset_interpolation(benchmark, cluster):
    result = benchmark.pedantic(
        lambda: fig6.run(cluster, reps=BENCH_REPS, seed=0), rounds=1, iterations=1
    )
    print("\n" + result.render())

    # Paper shape: the global rule set yields a significantly better first
    # guess on most benchmarks (4 of 5) ...
    better_first = sum(
        1
        for c in result.comparisons
        if c.with_rules[1] >= c.without_rules[1] - 0.05
    )
    assert better_first >= 4

    # ... and never worse final configurations, with no longer exploration.
    for c in result.comparisons:
        assert c.with_rules[-1] >= c.without_rules[-1] * 0.9, c.workload
    faster_stop = sum(
        1 for c in result.comparisons if c.attempts_with <= c.attempts_without + 0.21
    )
    assert faster_stop >= 3

    # Everything concludes within five attempts.
    for c in result.comparisons:
        assert c.attempts_with <= 5 and c.attempts_without <= 5
