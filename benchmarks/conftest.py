"""Shared fixtures for the figure-reproduction benchmarks.

Each benchmark regenerates one paper artifact (figure or analysis), asserts
its shape expectations, and reports the wall time of regenerating it via
pytest-benchmark.  Artifacts are also printed so ``--benchmark-only -s``
shows the reproduced rows/series.
"""

import pytest

from repro.cluster import make_cluster
from repro.experiments.harness import shared_extraction

#: Repetitions per configuration (the paper uses 8; benches use 5 to keep
#: each artifact's regeneration under a minute end to end).
BENCH_REPS = 5


@pytest.fixture(scope="session")
def cluster():
    spec = make_cluster(seed=0)
    # Warm the shared offline extraction so benches measure the experiment,
    # not the (identical, cached) offline phase.
    shared_extraction(spec)
    return spec
