"""Bench: the §5.6 user-accessible tuning direction."""

from conftest import BENCH_REPS

from repro.experiments import userspace


def test_user_space_tuning(benchmark, cluster):
    result = benchmark.pedantic(
        lambda: userspace.run(cluster, reps=BENCH_REPS, seed=0),
        rounds=1,
        iterations=1,
    )
    print("\n" + result.render())

    # Shared-file data workloads keep most of their win through layout
    # (lfs setstripe) alone ...
    assert result.get("IOR_16M").win_retained > 0.6
    assert result.get("IOR_64K").win_retained > 0.5
    # ... but metadata storms have no user-space lever: the client
    # concurrency and statahead knobs all require root.
    assert result.get("MDWorkbench_8K").userspace_mean < 1.1
    assert result.get("MDWorkbench_8K").full_mean > 1.3
