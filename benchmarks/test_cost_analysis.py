"""Bench: regenerate the §5.7 cost and latency analysis."""

from repro.experiments import cost


def test_cost_analysis(benchmark, cluster):
    # rounds=1 like every other artifact bench: the regeneration is
    # deterministic, so statistical calibration rounds add nothing.
    report = benchmark.pedantic(
        lambda: cost.run(cluster, seed=0), rounds=1, iterations=1
    )
    print("\n" + report.render())

    # Paper shape: the tuning loop's iterative prompts are dominated by a
    # cacheable shared prefix; LLM latency is minor next to application
    # executions; smaller models are an order of magnitude cheaper.
    assert report.tuning_cache_rate > 0.5
    assert report.latency_fraction < 0.5
    assert report.tuning_usage.input_tokens > 5_000
    costs = report.cost_usd_by_model
    assert costs["llama-3.1-70b"] * 3 < costs["claude-3.7-sonnet"]
