"""Bench: regenerate the §4.2 offline extraction output (13 parameters)."""

from repro.experiments import extraction_report
from repro.pfs.params import high_impact_parameter_names


def test_extraction_pipeline(benchmark, cluster):
    report = benchmark.pedantic(
        lambda: extraction_report.run(cluster, seed=0), rounds=1, iterations=1
    )
    print("\n" + report.render())

    result = report.result
    assert sorted(result.selected_names) == sorted(high_impact_parameter_names())
    assert "osc.checksums" in result.filtered_binary
    assert "nrs.delay_min" in result.filtered_low_impact
    # Dependent ranges survive in expression syntax.
    per_file = next(
        p for p in result.selected if p.name == "llite.max_read_ahead_per_file_mb"
    )
    assert per_file.max_expr == "llite.max_read_ahead_mb / 2"
