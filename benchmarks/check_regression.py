"""Benchmark smoke gate: fail on >20% regression of harness throughput.

Usage::

    python benchmarks/check_regression.py BASELINE.json CURRENT.json [--threshold 0.20]

Compares the committed ``BENCH_throughput.json`` (baseline) against a
freshly measured run and exits non-zero when any tracked rate fell more
than the threshold below the baseline.  Absolute rates vary with runner
hardware, so CI snapshots the baseline *on the same machine* (checkout
state) before measuring the candidate — the gate checks relative
regression, not historical absolutes.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: The sessions/sec and runs/sec figures the PR-1 perf work established,
#: plus the PR-4 candidate-sweep and cached-rerun figures, the PR-5
#: fleet-scheduler figure, the PR-6 degraded-fleet (fault plan) figure,
#: the PR-7 cross-tenant batched-fleet figure, the PR-8 per-policy
#: session figures, the PR-9 tuning-service drain figure and the PR-10
#: sharded-fleet and streaming-first-result figures.
TRACKED = (
    "batched_runs_per_sec",
    "sequential_runs_per_sec",
    "sessions_per_sec",
    "sweep_configs_per_sec",
    "cached_rerun_runs_per_sec",
    "fleet_sessions_per_sec",
    "fleet_batched_sessions_per_sec",
    "fleet_sharded_sessions_per_sec",
    "service_sessions_per_sec",
    "service_first_result_sessions",
    "degraded_sessions_per_sec",
    "policy_sessions_per_sec_reflection",
    "policy_sessions_per_sec_react",
    "policy_sessions_per_sec_propose_critic",
)

#: Tracked figures where *lower* is better — time-to-first-result style
#: latency proxies rather than throughput rates.  The gate inverts the
#: ratio so "current grew past the threshold" is the regression.
LOWER_IS_BETTER = frozenset({"service_first_result_sessions"})


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", type=Path)
    parser.add_argument("current", type=Path)
    parser.add_argument("--threshold", type=float, default=0.20)
    args = parser.parse_args(argv)

    baseline = json.loads(args.baseline.read_text())
    current = json.loads(args.current.read_text())

    # The *current* run must always carry every tracked rate — a missing key
    # there means the benchmark is broken.  A key absent only from the
    # *baseline* is a figure this change introduces: there is nothing to
    # regress against yet, so it warns and passes (the next baseline
    # refresh picks it up).
    missing_current = [key for key in TRACKED if key not in current]
    if missing_current:
        for key in missing_current:
            print(
                f"ERROR: {args.current} is missing tracked key {key!r}",
                file=sys.stderr,
            )
        print(
            "ERROR: the current run must carry every tracked rate "
            f"({', '.join(TRACKED)}); re-run benchmarks/test_throughput.py",
            file=sys.stderr,
        )
        return 2

    failed = False
    for key in TRACKED:
        if key not in baseline:
            print(
                f"{key}: not in baseline -> current {float(current[key]):.1f} "
                "(newly tracked, nothing to compare; pass)"
            )
            continue
        base = float(baseline[key])
        now = float(current[key])
        if base <= 0.0 or (key in LOWER_IS_BETTER and now <= 0.0):
            # A zero/negative figure on the dividing side would make every
            # candidate "pass" (ratio -> inf); that is a broken
            # measurement, not a pass.
            print(
                f"ERROR: baseline {key} is {base:g} "
                f"(current {now:g}); a non-positive rate on the dividing "
                "side means the benchmark run is broken and the gate "
                "cannot be evaluated",
                file=sys.stderr,
            )
            return 2
        # For lower-is-better figures the ratio is inverted so that, either
        # way, "ratio below 1 - threshold" reads "got worse".
        ratio = base / now if key in LOWER_IS_BETTER else now / base
        status = "ok"
        if ratio < 1.0 - args.threshold:
            status = f"REGRESSION (> {args.threshold:.0%} below baseline)"
            failed = True
        print(f"{key}: baseline {base:.1f} -> current {now:.1f} ({ratio:.2f}x) {status}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
