"""Bench: regenerate Figure 7 (rule extrapolation to unseen applications)."""

from conftest import BENCH_REPS

from repro.experiments import fig7


def test_fig7_ruleset_extrapolation(benchmark, cluster):
    result = benchmark.pedantic(
        lambda: fig7.run(cluster, reps=BENCH_REPS, seed=0), rounds=1, iterations=1
    )
    print("\n" + result.render())

    for c in result.comparisons:
        # Benchmark-derived rules transfer: tuned configurations clearly
        # beat the default on every unseen application ...
        assert max(c.with_rules) > 1.5, c.workload
        # ... with first-guess quality held or improved.
        assert c.with_rules[1] >= c.without_rules[1] * 0.9, c.workload

    # MACSio_16M with rules avoids exploring near-default configurations.
    macsio = result.get("MACSio_16M")
    assert min(macsio.with_rules[1:]) > 2.0
