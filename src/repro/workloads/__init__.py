"""Workload generators for the paper's benchmarks and applications.

Each generator compiles a benchmark's exact operation pattern (block and
transfer sizes, shared-file vs. file-per-process layout, metadata loops,
IO500's phase schedule) into the phase list the PFS simulator costs.  The
catalog mirrors §5.1.2–5.1.3 of the paper:

- ``IOR_64K`` / ``IOR_16M`` — random-small and sequential-large IOR runs.
- ``MDWorkbench_2K`` / ``MDWorkbench_8K`` — metadata benchmark rounds.
- ``IO500`` — the combined IOR-easy/hard + MDTest-easy/hard schedule.
- ``AMReX`` — block-structured AMR plotfile I/O kernel.
- ``MACSio_512K`` / ``MACSio_16M`` — multi-physics proxy I/O with small and
  large dump objects.

Time-varying workloads live in :mod:`repro.workloads.dynamic`: seeded
schedules of segments (drift ramps, regime flips, multi-tenant mixes) that
the simulator runs in order via ``Simulator.run_schedule`` and the online
controller re-tunes against.
"""

from repro.workloads.base import Workload
from repro.workloads.dynamic import (
    SCHEDULE_KINDS,
    Schedule,
    Segment,
    build_schedule,
    list_schedules,
)
from repro.workloads.registry import get_workload, list_workloads, register_workload

__all__ = [
    "Workload",
    "get_workload",
    "list_workloads",
    "register_workload",
    "Schedule",
    "Segment",
    "SCHEDULE_KINDS",
    "build_schedule",
    "list_schedules",
]
