"""MACSio multi-physics I/O proxy.

Models MACSio in SIF (single shared file) mode: every dump, each rank writes
its mesh/variable data objects into one shared file.  Object size is the
paper's configuration axis — 512 KiB objects produce many medium scattered
writes; 16 MiB objects produce large sequential-ish writes.  Object placement
across ranks interleaves in the shared file, giving a strided pattern whose
extent-lock behaviour sits between pure sequential and random (modeled as
random for the 512 KiB case, sequential for 16 MiB where parts are large and
contiguous).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.hardware import ClusterSpec
from repro.backends.base import KiB, MiB
from repro.pfs.phases import DataPhase, FileSet, Phase
from repro.workloads.base import Workload


@dataclass
class Macsio(Workload):
    """Parameterized MACSio run (SIF parallel file mode)."""

    object_size: int = 512 * KiB
    objects_per_rank_per_dump: int = 80
    n_dumps: int = 4

    def __post_init__(self):
        self.traits = {
            "io_intensity": "data",
            "pattern": "strided" if self.object_size < MiB else "seq",
            "shared_file": True,
            "xfer_size": self.object_size,
        }

    def build_phases(self, cluster: ClusterSpec) -> list[Phase]:
        bytes_per_rank = self.object_size * self.objects_per_rank_per_dump
        pattern = "random" if self.object_size < MiB else "seq"
        phases: list[Phase] = []
        for dump in range(self.n_dumps):
            fileset = FileSet(
                name=f"macsio_dump{dump}.data",
                n_files=1,
                file_size=bytes_per_rank * self.n_ranks,
                shared=True,
            )
            phases.append(
                DataPhase(
                    name=f"dump{dump}.write",
                    fileset=fileset,
                    io="write",
                    xfer_size=self.object_size,
                    bytes_per_rank=bytes_per_rank,
                    pattern=pattern,
                )
            )
        return phases


def macsio_512k() -> Macsio:
    return Macsio(
        name="MACSio_512K",
        object_size=512 * KiB,
        objects_per_rank_per_dump=80,
        n_dumps=4,
    )


def macsio_16m() -> Macsio:
    return Macsio(
        name="MACSio_16M",
        object_size=16 * MiB,
        objects_per_rank_per_dump=10,
        n_dumps=4,
    )
