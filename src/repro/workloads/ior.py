"""IOR-style bulk I/O benchmark.

Two paper configurations:

- ``IOR_64K`` — each of 50 ranks writes then reads one 128 MiB block of a
  shared file using 64 KiB transfers at random offsets (random-small pattern).
- ``IOR_16M`` — each rank writes then reads three 128 MiB blocks of a shared
  file using 16 MiB sequential transfers (sequential-large pattern).

Reads use task reordering (IOR ``-C``), so ranks read blocks written by a
different rank — client caches do not help (``reuse=False``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.hardware import ClusterSpec
from repro.backends.base import KiB, MiB
from repro.pfs.phases import DataPhase, FileSet, Phase
from repro.workloads.base import Workload


@dataclass
class IorWorkload(Workload):
    """Parameterized IOR run against a single shared file."""

    xfer_size: int = 16 * MiB
    block_size: int = 128 * MiB
    blocks_per_rank: int = 1
    pattern: str = "seq"  # "seq" | "random"
    read_back: bool = True
    reorder_tasks: bool = True  # IOR -C: defeat client caches on read

    def __post_init__(self):
        self.traits = {
            "io_intensity": "data",
            "pattern": self.pattern,
            "shared_file": True,
            "xfer_size": self.xfer_size,
        }

    def build_phases(self, cluster: ClusterSpec) -> list[Phase]:
        bytes_per_rank = self.block_size * self.blocks_per_rank
        fileset = FileSet(
            name=f"{self.name}.data",
            n_files=1,
            file_size=bytes_per_rank * self.n_ranks,
            shared=True,
        )
        phases: list[Phase] = [
            DataPhase(
                name="write",
                fileset=fileset,
                io="write",
                xfer_size=self.xfer_size,
                bytes_per_rank=bytes_per_rank,
                pattern=self.pattern,
            )
        ]
        if self.read_back:
            phases.append(
                DataPhase(
                    name="read",
                    fileset=fileset,
                    io="read",
                    xfer_size=self.xfer_size,
                    bytes_per_rank=bytes_per_rank,
                    pattern=self.pattern,
                    reuse=not self.reorder_tasks,
                )
            )
        return phases


def ior_64k() -> IorWorkload:
    """The paper's ``IOR_64K``: random 64 KiB transfers, one 128 MiB block."""
    return IorWorkload(
        name="IOR_64K",
        xfer_size=64 * KiB,
        block_size=128 * MiB,
        blocks_per_rank=1,
        pattern="random",
    )


def ior_16m() -> IorWorkload:
    """The paper's ``IOR_16M``: sequential 16 MiB transfers, three blocks."""
    return IorWorkload(
        name="IOR_16M",
        xfer_size=16 * MiB,
        block_size=128 * MiB,
        blocks_per_rank=3,
        pattern="seq",
    )
