"""IO500-style combined benchmark.

Runs the standard phase schedule: IOR-easy (file-per-process, large
sequential), MDTest-easy (empty files in per-rank directories), IOR-hard
(shared file, 47008-byte interleaved/random transfers) and MDTest-hard
(3901-byte files in a single shared directory), with the write phases first
and read/stat/delete phases after — the schedule that challenges a tuner to
find one configuration balancing bandwidth and metadata performance.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.hardware import ClusterSpec
from repro.backends.base import MiB
from repro.pfs.phases import DataPhase, FileSet, MetaPhase, Phase
from repro.workloads.base import Workload

IOR_HARD_XFER = 47008
MDTEST_HARD_FILE_SIZE = 3901


@dataclass
class Io500(Workload):
    """Parameterized IO500 run."""

    easy_bytes_per_rank: int = 1024 * MiB
    easy_xfer: int = 1 * MiB
    hard_ops_per_rank: int = 4000  # 47008-byte writes -> ~180 MiB per rank
    mdtest_easy_files_per_rank: int = 4000
    mdtest_hard_files_per_rank: int = 2500

    def __post_init__(self):
        self.traits = {
            "io_intensity": "mixed",
            "pattern": "multi_phase",
            "shared_file": True,
        }

    def build_phases(self, cluster: ClusterSpec) -> list[Phase]:
        easy_files = FileSet(
            name="ior_easy.data",
            n_files=self.n_ranks,
            file_size=self.easy_bytes_per_rank,
            shared=False,
        )
        hard_file = FileSet(
            name="ior_hard.data",
            n_files=1,
            file_size=self.hard_ops_per_rank * IOR_HARD_XFER * self.n_ranks,
            shared=True,
        )
        md_easy = FileSet(
            name="mdtest_easy.files",
            n_files=self.mdtest_easy_files_per_rank * self.n_ranks,
            file_size=0,
            shared=False,
            n_dirs=self.n_ranks,  # one private dir per rank
        )
        md_hard = FileSet(
            name="mdtest_hard.files",
            n_files=self.mdtest_hard_files_per_rank * self.n_ranks,
            file_size=MDTEST_HARD_FILE_SIZE,
            shared=False,
            n_dirs=1,
            shared_dir=True,
        )
        hard_bytes = self.hard_ops_per_rank * IOR_HARD_XFER
        return [
            DataPhase(
                name="ior_easy.write",
                fileset=easy_files,
                io="write",
                xfer_size=self.easy_xfer,
                bytes_per_rank=self.easy_bytes_per_rank,
                pattern="seq",
            ),
            MetaPhase(
                name="mdtest_easy.write",
                fileset=md_easy,
                cycle=("create", "close"),
                files_per_rank=self.mdtest_easy_files_per_rank,
            ),
            DataPhase(
                name="ior_hard.write",
                fileset=hard_file,
                io="write",
                xfer_size=IOR_HARD_XFER,
                bytes_per_rank=hard_bytes,
                pattern="random",
            ),
            MetaPhase(
                name="mdtest_hard.write",
                fileset=md_hard,
                cycle=("create", "write_small", "close"),
                files_per_rank=self.mdtest_hard_files_per_rank,
                data_bytes=MDTEST_HARD_FILE_SIZE,
            ),
            DataPhase(
                name="ior_easy.read",
                fileset=easy_files,
                io="read",
                xfer_size=self.easy_xfer,
                bytes_per_rank=self.easy_bytes_per_rank,
                pattern="seq",
            ),
            MetaPhase(
                name="mdtest_easy.stat",
                fileset=md_easy,
                cycle=("stat",),
                files_per_rank=self.mdtest_easy_files_per_rank,
                scan_order=True,
            ),
            DataPhase(
                name="ior_hard.read",
                fileset=hard_file,
                io="read",
                xfer_size=IOR_HARD_XFER,
                bytes_per_rank=hard_bytes,
                pattern="random",
            ),
            MetaPhase(
                name="mdtest_hard.stat",
                fileset=md_hard,
                cycle=("stat",),
                files_per_rank=self.mdtest_hard_files_per_rank,
                scan_order=True,
            ),
            MetaPhase(
                name="mdtest_easy.delete",
                fileset=md_easy,
                cycle=("unlink",),
                files_per_rank=self.mdtest_easy_files_per_rank,
            ),
            MetaPhase(
                name="mdtest_hard.read",
                fileset=md_hard,
                cycle=("open", "read_small", "close"),
                files_per_rank=self.mdtest_hard_files_per_rank,
                data_bytes=MDTEST_HARD_FILE_SIZE,
            ),
            MetaPhase(
                name="mdtest_hard.delete",
                fileset=md_hard,
                cycle=("unlink",),
                files_per_rank=self.mdtest_hard_files_per_rank,
            ),
        ]


def io500() -> Io500:
    return Io500(name="IO500")
