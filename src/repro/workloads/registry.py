"""Named workload catalog."""

from __future__ import annotations

from typing import Callable

from repro.workloads.amrex import amrex
from repro.workloads.base import Workload
from repro.workloads.io500 import io500
from repro.workloads.ior import ior_16m, ior_64k
from repro.workloads.macsio import macsio_16m, macsio_512k
from repro.workloads.mdworkbench import mdworkbench_2k, mdworkbench_8k

_FACTORIES: dict[str, Callable[[], Workload]] = {
    "IOR_64K": ior_64k,
    "IOR_16M": ior_16m,
    "MDWorkbench_2K": mdworkbench_2k,
    "MDWorkbench_8K": mdworkbench_8k,
    "IO500": io500,
    "AMReX": amrex,
    "MACSio_512K": macsio_512k,
    "MACSio_16M": macsio_16m,
}

#: The five benchmark workloads used for Figures 5 and 6.
BENCHMARKS = ["IOR_64K", "IOR_16M", "MDWorkbench_2K", "MDWorkbench_8K", "IO500"]

#: The real-application workloads used for Figure 7.
REAL_APPS = ["AMReX", "MACSio_512K", "MACSio_16M"]


def get_workload(name: str) -> Workload:
    """Instantiate a fresh workload by catalog name."""
    try:
        return _FACTORIES[name]()
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; available: {sorted(_FACTORIES)}"
        ) from None


def list_workloads() -> list[str]:
    return sorted(_FACTORIES)


def register_workload(name: str, factory: Callable[[], Workload]) -> None:
    """Register a custom workload (used by the examples)."""
    if name in _FACTORIES:
        raise ValueError(f"workload {name!r} already registered")
    _FACTORIES[name] = factory
