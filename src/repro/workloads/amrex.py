"""AMReX plotfile I/O kernel.

Models the I/O behaviour of AMReX's ``WriteMultiLevelPlotfile``: each dump
creates a plotfile directory tree (one subdirectory per AMR level plus
header files), then ranks write their grid data into a small number of
shared level files using the MIF/baton pattern — within each file group,
ranks take turns writing their contiguous chunk, so aggregate write
concurrency equals the number of output files (``nOutFiles``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.hardware import ClusterSpec
from repro.backends.base import KiB, MiB
from repro.pfs.phases import DataPhase, FileSet, MetaPhase, Phase
from repro.workloads.base import Workload


@dataclass
class AmrexPlotfile(Workload):
    """Parameterized AMReX plotfile dump sequence."""

    n_dumps: int = 3
    n_levels: int = 4
    n_out_files: int = 2  # small-cluster checkpoint grouping
    bytes_per_rank_per_dump: int = 64 * MiB
    chunk_size: int = 1 * MiB
    header_files_per_dump: int = 72  # Header + per-level headers + visit files

    def __post_init__(self):
        self.traits = {
            "io_intensity": "mixed_data",
            "pattern": "seq",
            "shared_file": True,
            "baton": True,
        }

    def build_phases(self, cluster: ClusterSpec) -> list[Phase]:
        phases: list[Phase] = []
        for dump in range(self.n_dumps):
            dirset = FileSet(
                name=f"plt{dump:05d}.dirs",
                n_files=self.n_levels + 1,
                file_size=0,
                shared=False,
                n_dirs=1,
                shared_dir=True,
            )
            headers = FileSet(
                name=f"plt{dump:05d}.headers",
                n_files=self.header_files_per_dump,
                file_size=16 * KiB,
                shared=False,
                n_dirs=self.n_levels + 1,
            )
            levelset = FileSet(
                name=f"plt{dump:05d}.level_data",
                n_files=self.n_out_files,
                file_size=self.bytes_per_rank_per_dump * self.n_ranks // self.n_out_files,
                shared=True,
            )
            phases.append(
                MetaPhase(
                    name=f"dump{dump}.mkdirs",
                    fileset=dirset,
                    cycle=("mkdir",),
                    files_per_rank=1,  # rank 0 creates; modeled as one op/rank avg
                )
            )
            phases.append(
                MetaPhase(
                    name=f"dump{dump}.headers",
                    fileset=headers,
                    cycle=("create", "write_small", "close"),
                    files_per_rank=max(1, self.header_files_per_dump // self.n_ranks + 1),
                    data_bytes=16 * KiB,
                    data_persists=True,
                )
            )
            # FArrayBox chunks land at interleaved per-grid offsets within
            # each level file, so the disk-level pattern is non-sequential.
            phases.append(
                DataPhase(
                    name=f"dump{dump}.level_data",
                    fileset=levelset,
                    io="write",
                    xfer_size=self.chunk_size,
                    bytes_per_rank=self.bytes_per_rank_per_dump,
                    pattern="random",
                    concurrent_writers=self.n_out_files,
                )
            )
        return phases


def amrex() -> AmrexPlotfile:
    return AmrexPlotfile(name="AMReX")
