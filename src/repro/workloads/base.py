"""Workload abstraction."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.hardware import ClusterSpec
from repro.pfs.phases import Phase


@dataclass
class Workload:
    """A benchmark or application run configuration.

    Subclasses implement :meth:`build_phases`.  ``traits`` carries ground
    truth workload characteristics for baselines and tests only — the agents
    never read it; they must infer behaviour from Darshan traces.
    """

    name: str = "workload"
    n_ranks: int = 50
    traits: dict = field(default_factory=dict)

    def compile(self, cluster: ClusterSpec) -> list[Phase]:
        phases = self.build_phases(cluster)
        if not phases:
            raise ValueError(f"workload {self.name} compiled to no phases")
        return phases

    def build_phases(self, cluster: ClusterSpec) -> list[Phase]:
        raise NotImplementedError

    def describe_execution(self) -> str:
        """The run recipe a domain scientist would hand to STELLAR (§4.3.2)."""
        return (
            f"mpiexec -n {self.n_ranks} {self.name} "
            f"# via the cluster batch scheduler; Darshan instrumentation on"
        )
