"""Workload abstraction.

``compile`` memoizes the phase list per (workload, cluster): phases are
frozen dataclasses, ``build_phases`` is a pure function of the workload's
fields and the cluster, and the experiment harness instantiates the same
catalog workloads hundreds of times per figure.  The cache lives on the
cluster instance, so its lifetime (and pickling) follows the cluster and two
different testbeds never share entries.  Invariant: a ``ClusterSpec`` must
not be mutated after phases have been compiled against it — call
:func:`clear_phase_cache` if a test needs to do so.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.hardware import ClusterSpec
from repro.pfs.phases import Phase

#: Name of the per-cluster attribute holding compiled phase lists.
_PHASE_CACHE_ATTR = "_compiled_phase_cache"


def clear_phase_cache(cluster: ClusterSpec) -> None:
    """Drop memoized phase lists (needed only after mutating ``cluster``)."""
    cluster.__dict__.pop(_PHASE_CACHE_ATTR, None)


@dataclass
class Workload:
    """A benchmark or application run configuration.

    Subclasses implement :meth:`build_phases`.  ``traits`` carries ground
    truth workload characteristics for baselines and tests only — the agents
    never read it; they must infer behaviour from Darshan traces.
    """

    name: str = "workload"
    n_ranks: int = 50
    traits: dict = field(default_factory=dict)

    def cache_key(self) -> tuple:
        """Identity of this workload for phase memoization.

        The dataclass repr covers every field deterministically; subclasses
        whose ``build_phases`` reads state outside their fields must override
        this (or compilation would alias distinct workloads).
        """
        return (type(self).__qualname__, repr(self))

    def compile(self, cluster: ClusterSpec) -> list[Phase]:
        cache: dict[tuple, tuple[Phase, ...]] = cluster.__dict__.setdefault(
            _PHASE_CACHE_ATTR, {}
        )
        key = self.cache_key()
        phases = cache.get(key)
        if phases is None:
            built = self.build_phases(cluster)
            if not built:
                raise ValueError(f"workload {self.name} compiled to no phases")
            phases = tuple(built)
            cache[key] = phases
        return list(phases)

    def build_phases(self, cluster: ClusterSpec) -> list[Phase]:
        raise NotImplementedError

    def describe_execution(self) -> str:
        """The run recipe a domain scientist would hand to STELLAR (§4.3.2)."""
        return (
            f"mpiexec -n {self.n_ranks} {self.name} "
            f"# via the cluster batch scheduler; Darshan instrumentation on"
        )
