"""Dynamic (time-varying) workload schedules.

STELLAR tunes a *static* workload once, but production clusters see
time-varying I/O: applications drift through parameter regimes, jobs flip
between bandwidth and metadata behaviour, and tenants interfere.  This module
models that as a **schedule**: a seeded sequence of :class:`Segment`\\ s, each
wrapping an ordinary catalog-style :class:`~repro.workloads.base.Workload`
that the simulator executes in order (:meth:`Simulator.run_schedule`).

Three schedule families cover the online-tuning literature's scenarios
(IOPathTune's drifting I/O path, DIAL's client-observed regime shifts):

- ``xfer_drift`` — a drift *ramp*: a checkpointing application writing a
  fixed byte volume whose file granularity slides from a few large
  sequential dumps to many small files while the client process count grows,
  crossing the tuner's workload-class boundary mid-schedule;
- ``regime_flip`` — a regime *flip*: a bandwidth-bound phase abruptly replaced
  by a metadata storm at a seeded flip point (the worst case for a one-shot
  static tune, whose wide striping actively hurts small-file creation);
- ``tenant_mix`` — multi-tenant *interference*: a data tenant and a metadata
  tenant interleaved in one job, with the mix sliding from data-dominated to
  metadata-dominated across segments.

Every segment workload is a plain frozen-field dataclass, so it compiles
through the memoized per-cluster phase cache exactly like catalog workloads
(PR 1 invariants hold: phases compile once per (workload, cluster), and
``run_schedule`` dedups segments sharing a (workload, config) pair).

Determinism: a schedule is a pure function of ``(kind, seed, n_segments,
n_ranks)``.  The seeded jitter draws from a dedicated
:class:`~repro.sim.random.RngStreams` stream per schedule kind, so adding a
new schedule family never perturbs existing ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.backends.base import KiB, MiB
from repro.cluster.hardware import ClusterSpec
from repro.pfs.phases import DataPhase, FileSet, MetaPhase, Phase
from repro.sim.random import RngStreams
from repro.workloads.base import Workload
from repro.workloads.ior import IorWorkload
from repro.workloads.mdworkbench import MdWorkbench

#: Schedule families this module can build (see module docstring).
SCHEDULE_KINDS = ("xfer_drift", "regime_flip", "tenant_mix")

DEFAULT_SEGMENTS = 8


@dataclass
class InterleavedWorkload(Workload):
    """Several tenants sharing the cluster within one scheduler slot.

    Members' phases are interleaved round-robin, modelling co-running jobs
    whose I/O alternates on the shared servers.  All members run with this
    workload's rank count (one process pool, tenants sized via their own
    byte/file volumes).
    """

    members: tuple = ()

    def __post_init__(self):
        self.traits = {
            "io_intensity": "mixed",
            "pattern": "multi_tenant",
            "shared_file": True,
        }

    def build_phases(self, cluster: ClusterSpec) -> list[Phase]:
        if not self.members:
            raise ValueError("InterleavedWorkload needs at least one member")
        lanes = [member.compile(cluster) for member in self.members]
        phases: list[Phase] = []
        for step in range(max(len(lane) for lane in lanes)):
            for lane in lanes:
                if step < len(lane):
                    phases.append(lane[step])
        return phases


@dataclass
class CheckpointWorkload(Workload):
    """A checkpointing application with drifting dump granularity.

    Every segment writes the same per-rank byte volume, but as the
    simulation refines (AMR-style), the dump granularity shrinks.  At or
    above 1 MiB per rank per dump the application checkpoints N-1 style —
    every rank streams sequentially into a handful of large shared dump
    files (bandwidth-bound, the regime wide striping is tuned for).  Below,
    it switches to N-N: every rank creates, writes and closes thousands of
    tiny private files, so the metadata path dominates and per-file stripe
    objects turn wide striping from an asset into a liability — the classic
    N-1 -> N-N drift, with no phase-mix switch announced to the tuner.
    """

    file_size: int = 64 * MiB  # bytes per rank per dump (N-1) / per file (N-N)
    total_bytes_per_rank: int = 128 * MiB
    max_files_per_rank: int = 2048  # refinement cap: dumps get partial past it
    verify_stat: bool = True  # post-dump integrity scan over the files

    def __post_init__(self):
        small = self.file_size < MiB
        self.traits = {
            "io_intensity": "metadata" if small else "data",
            "pattern": "checkpoint",
            "shared_file": not small,
            "file_size": self.file_size,
        }

    @property
    def files_per_rank(self) -> int:
        return min(
            max(1, self.total_bytes_per_rank // self.file_size),
            self.max_files_per_rank,
        )

    def build_phases(self, cluster: ClusterSpec) -> list[Phase]:
        files_per_rank = self.files_per_rank
        phases: list[Phase]
        if self.file_size >= MiB:
            # N-1: `files_per_rank` shared dumps, every rank contributing
            # `file_size` sequential bytes to each.
            fileset = FileSet(
                name=f"{self.name}.ckpt",
                n_files=files_per_rank,
                file_size=self.file_size * self.n_ranks,
                shared=True,
            )
            phases = [
                DataPhase(
                    name="ckpt.dump",
                    fileset=fileset,
                    io="write",
                    xfer_size=min(4 * MiB, self.file_size),
                    bytes_per_rank=files_per_rank * self.file_size,
                    pattern="seq",
                )
            ]
        else:
            # N-N: a private small file per rank per dump.
            fileset = FileSet(
                name=f"{self.name}.ckpt",
                n_files=files_per_rank * self.n_ranks,
                file_size=self.file_size,
                shared=False,
                n_dirs=self.n_ranks,  # one checkpoint directory per rank
            )
            phases = [
                MetaPhase(
                    name="ckpt.small_dump",
                    fileset=fileset,
                    cycle=("create", "write_small", "close"),
                    files_per_rank=files_per_rank,
                    data_bytes=self.file_size,
                    data_persists=True,
                ),
            ]
        if self.verify_stat:
            phases.append(
                MetaPhase(
                    name="ckpt.verify",
                    fileset=fileset,
                    cycle=("stat",),
                    files_per_rank=files_per_rank,
                    scan_order=True,
                )
            )
        return phases


@dataclass(frozen=True)
class Segment:
    """One schedule slot: a workload active for one execution window."""

    index: int
    label: str
    workload: Workload

    def cache_key(self) -> tuple:
        return (self.index, self.label, self.workload.cache_key())


@dataclass(frozen=True)
class Schedule:
    """A seeded, ordered sequence of segments."""

    name: str
    seed: int
    segments: tuple[Segment, ...] = field(default_factory=tuple)

    def __len__(self) -> int:
        return len(self.segments)

    def __iter__(self):
        return iter(self.segments)

    def __getitem__(self, index: int) -> Segment:
        return self.segments[index]

    def cache_key(self) -> tuple:
        return (self.name, self.seed, tuple(s.cache_key() for s in self.segments))

    def describe(self) -> str:
        lines = [f"schedule {self.name} (seed {self.seed}, {len(self)} segments)"]
        for segment in self.segments:
            lines.append(f"  [{segment.index}] {segment.label}")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Schedule builders
# ---------------------------------------------------------------------------


def _jitter_stream(kind: str, seed: int):
    return RngStreams(seed).stream(f"schedule:{kind}")


def xfer_drift(seed: int = 0, n_segments: int = DEFAULT_SEGMENTS, n_ranks: int = 40) -> Schedule:
    """Drift ramp: checkpoint granularity slides 64 MiB -> 8 KiB per file.

    The dump file size ramps down one power-of-two rung per segment (with
    seeded ±1-rung jitter) while the client process count grows — the I/O
    size distribution drifts from a few large sequential streams into a
    many-small-files storm, crossing from bandwidth-bound to metadata-bound
    under the tuner's feet.  The per-rank byte volume stays fixed until the
    ``max_files_per_rank`` refinement cap bites (below 64 KiB per file the
    tail segments write partial dumps — see :class:`CheckpointWorkload`).
    """
    if n_segments < 2:
        raise ValueError("a drift ramp needs at least 2 segments")
    rng = _jitter_stream("xfer_drift", seed)
    lo_exp, hi_exp = 13, 26  # 8 KiB .. 64 MiB per checkpoint file
    segments = []
    for index in range(n_segments):
        frac = index / (n_segments - 1)
        exp = hi_exp - frac * (hi_exp - lo_exp) + int(rng.integers(-1, 2))
        exp = int(min(max(round(exp), lo_exp), hi_exp))
        file_size = 2**exp
        ranks = int(round(n_ranks * (0.6 + 0.4 * frac)))
        workload = CheckpointWorkload(
            name=f"drift_ckpt_{file_size // KiB}k",
            n_ranks=ranks,
            file_size=file_size,
            total_bytes_per_rank=128 * MiB,
        )
        segments.append(
            Segment(
                index=index,
                label=f"checkpoint file={file_size // KiB}KiB "
                f"({workload.files_per_rank} files/rank) ranks={ranks}",
                workload=workload,
            )
        )
    return Schedule(name="xfer_drift", seed=seed, segments=tuple(segments))


def regime_flip(seed: int = 0, n_segments: int = DEFAULT_SEGMENTS, n_ranks: int = 40) -> Schedule:
    """Regime flip: bandwidth phase abruptly replaced by a metadata storm.

    The flip point is drawn (seeded) from the middle third of the schedule,
    so a static tuner cannot know when its configuration goes stale.
    """
    if n_segments < 3:
        raise ValueError("a regime flip needs at least 3 segments")
    rng = _jitter_stream("regime_flip", seed)
    flip_at = int(rng.integers(n_segments // 3, max(2 * n_segments // 3, n_segments // 3 + 1)))
    data = IorWorkload(
        name="flip_ior_16m",
        n_ranks=n_ranks,
        xfer_size=16 * MiB,
        block_size=128 * MiB,
        blocks_per_rank=2,
        pattern="seq",
    )
    meta = MdWorkbench(
        name="flip_md_2k",
        n_ranks=n_ranks,
        dirs_per_rank=8,
        files_per_dir=250,
        file_size=2 * KiB,
        rounds=2,
    )
    segments = []
    for index in range(n_segments):
        if index < flip_at:
            segments.append(
                Segment(index=index, label="bandwidth regime (ior 16MiB seq)", workload=data)
            )
        else:
            segments.append(
                Segment(index=index, label="metadata regime (small-file storm)", workload=meta)
            )
    return Schedule(name="regime_flip", seed=seed, segments=tuple(segments))


def tenant_mix(seed: int = 0, n_segments: int = DEFAULT_SEGMENTS, n_ranks: int = 40) -> Schedule:
    """Multi-tenant interference: the data/metadata mix slides over time.

    Each segment interleaves a bandwidth tenant with a metadata tenant; the
    metadata tenant's share ramps from ~5% to ~95% (with seeded jitter), so
    the aggregate signature the monitor sees drifts continuously.  At the
    extremes the mix degenerates to a single tenant — job churn: the data
    job has not arrived yet / has finished and left the metadata tenant the
    cluster to itself — which is exactly when the stale tenant-mix
    configuration is most wrong.
    """
    if n_segments < 2:
        raise ValueError("a tenant mix needs at least 2 segments")
    rng = _jitter_stream("tenant_mix", seed)
    segments = []
    for index in range(n_segments):
        frac = index / (n_segments - 1)
        share = min(max(0.05 + 0.9 * frac + float(rng.normal(0.0, 0.04)), 0.02), 0.98)
        data_blocks_mb = max(int(round(192 * (1.0 - share))), 8)
        meta_files = max(int(round(800 * share)), 20)
        data_tenant = IorWorkload(
            name=f"mix_ior_{data_blocks_mb}m",
            n_ranks=n_ranks,
            xfer_size=4 * MiB,
            block_size=data_blocks_mb * MiB,
            blocks_per_rank=1,
            pattern="seq",
        )
        meta_tenant = MdWorkbench(
            name=f"mix_md_{meta_files}f",
            n_ranks=n_ranks,
            dirs_per_rank=4,
            files_per_dir=meta_files,
            file_size=1 * KiB,
            rounds=1,
        )
        # Job churn: near the ramp's extremes only one tenant occupies the
        # cluster (the other job has not arrived yet / has finished).
        if frac <= 0.1:
            members = (data_tenant,)
            label = f"tenants: data {data_blocks_mb}MiB/rank (data tenant only)"
        elif frac >= 0.85:
            members = (meta_tenant,)
            label = f"tenants: {meta_files} files/dir (metadata tenant only)"
        else:
            members = (data_tenant, meta_tenant)
            label = (
                f"tenants: data {data_blocks_mb}MiB/rank + {meta_files} files/dir "
                f"(~{share:.0%} metadata share)"
            )
        workload = InterleavedWorkload(
            name=f"mix_{int(round(share * 100))}pct_meta",
            n_ranks=n_ranks,
            members=members,
        )
        segments.append(Segment(index=index, label=label, workload=workload))
    return Schedule(name="tenant_mix", seed=seed, segments=tuple(segments))


_BUILDERS = {
    "xfer_drift": xfer_drift,
    "regime_flip": regime_flip,
    "tenant_mix": tenant_mix,
}


def build_schedule(
    kind: str,
    seed: int = 0,
    n_segments: int = DEFAULT_SEGMENTS,
    n_ranks: int = 40,
) -> Schedule:
    """Build a named schedule deterministically from its seed."""
    try:
        builder = _BUILDERS[kind]
    except KeyError:
        raise KeyError(
            f"unknown schedule kind {kind!r}; available: {sorted(_BUILDERS)}"
        ) from None
    return builder(seed=seed, n_segments=n_segments, n_ranks=n_ranks)


def list_schedules() -> list[str]:
    return sorted(_BUILDERS)
