"""MDWorkbench-style metadata benchmark.

Per the paper: each process owns 10 directories of 400 files (2 KiB or
8 KiB); three rounds each perform open/create, write, close, stat, open,
read, close and unlink on every file.  Files are unlinked while their tiny
payload is still dirty in the client cache, so write-back is cancelled and
the workload is dominated by metadata RPCs — the behaviour real Lustre shows
for this benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.hardware import ClusterSpec
from repro.backends.base import KiB
from repro.pfs.phases import FileSet, MetaPhase, Phase
from repro.workloads.base import Workload


@dataclass
class MdWorkbench(Workload):
    """Parameterized MDWorkbench run."""

    dirs_per_rank: int = 10
    files_per_dir: int = 400
    file_size: int = 2 * KiB
    rounds: int = 3

    def __post_init__(self):
        self.traits = {
            "io_intensity": "metadata",
            "pattern": "small_files",
            "shared_file": False,
            "file_size": self.file_size,
        }

    @property
    def files_per_rank(self) -> int:
        return self.dirs_per_rank * self.files_per_dir

    def build_phases(self, cluster: ClusterSpec) -> list[Phase]:
        fileset = FileSet(
            name=f"{self.name}.files",
            n_files=self.files_per_rank * self.n_ranks,
            file_size=self.file_size,
            shared=False,
            n_dirs=self.dirs_per_rank * self.n_ranks,
        )
        dirset = FileSet(
            name=f"{self.name}.dirs",
            n_files=self.dirs_per_rank * self.n_ranks,
            file_size=0,
            shared=False,
            n_dirs=self.n_ranks,
        )
        phases: list[Phase] = [
            MetaPhase(
                name="setup.mkdir",
                fileset=dirset,
                cycle=("mkdir",),
                files_per_rank=self.dirs_per_rank,
            )
        ]
        for round_index in range(self.rounds):
            tag = f"round{round_index}"
            phases.extend(
                [
                    MetaPhase(
                        name=f"{tag}.create_write",
                        fileset=fileset,
                        cycle=("create", "write_small", "close"),
                        files_per_rank=self.files_per_rank,
                        data_bytes=self.file_size,
                        data_persists=False,  # unlinked while dirty
                    ),
                    MetaPhase(
                        name=f"{tag}.stat",
                        fileset=fileset,
                        cycle=("stat",),
                        files_per_rank=self.files_per_rank,
                        scan_order=True,
                    ),
                    MetaPhase(
                        name=f"{tag}.open_read",
                        fileset=fileset,
                        cycle=("open", "read_small", "close"),
                        files_per_rank=self.files_per_rank,
                        data_bytes=self.file_size,
                    ),
                    MetaPhase(
                        name=f"{tag}.unlink",
                        fileset=fileset,
                        cycle=("unlink",),
                        files_per_rank=self.files_per_rank,
                    ),
                ]
            )
        return phases


def mdworkbench_2k() -> MdWorkbench:
    return MdWorkbench(name="MDWorkbench_2K", file_size=2 * KiB)


def mdworkbench_8k() -> MdWorkbench:
    return MdWorkbench(name="MDWorkbench_8K", file_size=8 * KiB)
