"""Cluster hardware specification document.

Part of the domain knowledge STELLAR integrates via RAG — hardware facts
(OST count, memory, network) parameterize dependent ranges and inform the
Tuning Agent's value choices.
"""

from __future__ import annotations

from repro.cluster.hardware import ClusterSpec


def render_hardware_doc(cluster: ClusterSpec, fsname: str = "testfs") -> str:
    return (
        f"Hardware specification for the {fsname} evaluation cluster\n\n"
        + cluster.describe()
        + "\n\n"
        + "Facts for dependent parameter ranges:\n"
        + f"system_memory_mb = {cluster.system_memory_mb}\n"
        + f"n_ost = {cluster.n_ost}\n"
        + f"n_clients = {cluster.n_clients}\n"
        + f"mds_service_threads = {cluster.mds_service_threads}\n"
    )
