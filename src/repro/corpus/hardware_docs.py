"""Cluster hardware specification document.

Part of the domain knowledge STELLAR integrates via RAG — hardware facts
(OST count, memory, network) parameterize dependent ranges and inform the
Tuning Agent's value choices.
"""

from __future__ import annotations

from repro.cluster.hardware import ClusterSpec

#: Rendered documents, memoized per (backend, hardware key, fsname) — the
#: doc is a pure function of the cluster spec, and the agent loop renders
#: it once per session, which used to re-derive identical text thousands of
#: times per fleet.  Plain dict: assignment is atomic under the GIL and a
#: racy double render is byte-identical.
_DOC_CACHE: dict[tuple, str] = {}


def render_hardware_doc(cluster: ClusterSpec, fsname: str = "testfs") -> str:
    key = (cluster.backend_name, cluster.cache_key(), fsname)
    doc = _DOC_CACHE.get(key)
    if doc is None:
        doc = _DOC_CACHE[key] = (
            f"Hardware specification for the {fsname} evaluation cluster\n\n"
            + cluster.describe()
            + "\n\n"
            + "Facts for dependent parameter ranges:\n"
            + f"system_memory_mb = {cluster.system_memory_mb}\n"
            + f"n_ost = {cluster.n_ost}\n"
            + f"n_clients = {cluster.n_clients}\n"
            + f"mds_service_threads = {cluster.mds_service_threads}\n"
        )
    return doc
