"""Synthetic "Lustre 2.15 Operations Manual".

Rendered from the parameter registry so documentation is *derivable* ground
truth: parameters with ``doc="full"`` get a definition, a performance note, a
machine-parseable range line (including dependent-range expressions in the
syntax the extraction pipeline understands) and the default; ``doc="partial"``
entries lack the range line and performance discussion; ``doc="none"``
entries are simply absent.  Filler chapters on unrelated subsystems make
retrieval non-trivial, as in the real 600-page manual.
"""

from __future__ import annotations

from repro.pfs import params as P

_SUBSYSTEM_CHAPTER = {
    "lov": "Managing File Layout (Striping)",
    "osc": "Tuning the Object Storage Client",
    "llite": "Tuning the Lustre Client (llite)",
    "mdc": "Tuning the Metadata Client",
    "ldlm": "The Lustre Distributed Lock Manager",
    "nrs": "Network Request Scheduler Policies",
    "mds": "Metadata Server Administration",
}

_FILLER_CHAPTERS = [
    (
        "Introduction to the Lustre Architecture",
        "A Lustre file system consists of a Management Server (MGS), one or "
        "more Metadata Servers (MDS) exporting Metadata Targets (MDTs), and "
        "Object Storage Servers (OSS) exporting Object Storage Targets "
        "(OSTs). Clients mount the file system through the llite layer and "
        "communicate with servers using the PtlRPC protocol over LNet. File "
        "metadata (names, permissions, layout) lives on the MDT while file "
        "data is striped over OST objects. The separation of metadata and "
        "data paths is what allows a Lustre file system to scale bandwidth "
        "by adding OSS nodes.",
    ),
    (
        "Understanding PtlRPC and Bulk Transfers",
        "Data moves between clients and OSTs using bulk RPCs. A bulk "
        "transfer is negotiated with a request/reply handshake after which "
        "the payload pages are moved via remote DMA where the fabric "
        "supports it. Requests are queued per import and scheduled by the "
        "Network Request Scheduler on the server. Each client maintains a "
        "separate import (and therefore separate request queues and "
        "in-flight accounting) for every OST and MDT it communicates with.",
    ),
    (
        "LNet Networking",
        "LNet provides the message passing layer used by PtlRPC. Network "
        "interfaces are grouped into LNet networks such as tcp0 or o2ib0. "
        "Routing between networks is performed by LNet routers. The "
        "configuration is managed with lnetctl and persists in "
        "/etc/lnet.conf. Credits control the number of concurrent messages "
        "per peer and per interface.",
    ),
    (
        "Recovery and High Availability",
        "When a client loses contact with a server it enters recovery: "
        "requests are replayed after reconnection in transaction order. "
        "Servers maintain a recovery window during which clients must "
        "reconnect; requests from clients that miss the window are evicted. "
        "Failover pairs share storage so a standby server can take over a "
        "target. Imperative recovery shortens the window using the MGS to "
        "notify clients of restarts.",
    ),
    (
        "Quotas and Usage Accounting",
        "Lustre enforces block and inode quotas per user, group and "
        "project. Quota masters run on the MDT and acquire/release quota "
        "space from slaves on OSTs. The lfs quota and lfs setquota commands "
        "manage limits; accounting is always enabled on modern versions "
        "even when enforcement is off.",
    ),
    (
        "The Distributed NamespacE (DNE)",
        "DNE allows a file system to use multiple MDTs. Remote directories "
        "place a subtree on another MDT; striped directories hash directory "
        "entries across several MDTs to scale the operation rate of a "
        "single large directory. Striped directories add an extra RPC to "
        "some operations, so they are recommended only for directories with "
        "very high file counts.",
    ),
    (
        "Hierarchical Storage Management (HSM)",
        "HSM connects Lustre to an archive tier. Files can be archived, "
        "released (leaving a stub), and restored on access via copytools. "
        "Release and restore operations are coordinated by the MDT, which "
        "maintains HSM state flags per file.",
    ),
    (
        "Monitoring with the jobstats Framework",
        "Job statistics attribute server-side operation counts to scheduler "
        "job identifiers. Enable them by setting jobid_var appropriately; "
        "statistics appear under obdfilter.*.job_stats and "
        "mdt.*.job_stats and are invaluable when attributing load on a "
        "shared file system to specific batch jobs.",
    ),
]


def _range_sentence(spec: P.ParamSpec) -> str:
    def render(expr) -> str:
        if isinstance(expr, (int, float)):
            return f"{int(expr)}"
        return f"(expression: {expr})"

    return (
        f"Valid range: {render(spec.min_expr)} .. {render(spec.max_expr)}. "
        f"Default: {spec.default}."
    )


def render_parameter_section(spec: P.ParamSpec) -> str:
    """The manual text for a single parameter (empty if undocumented)."""
    if spec.doc == "none" or not spec.writable:
        return ""
    lines = [f"=== The {spec.basename} parameter ==="]
    lines.append(
        f"Parameter name: {spec.name} (exposed under "
        f"/proc/fs/lustre/{spec.subsystem}/). Unit: {spec.unit}."
    )
    lines.append(f"Definition: {spec.description}")
    if spec.doc == "full":
        if spec.perf_note:
            lines.append(f"Performance notes: {spec.perf_note}")
        lines.append(_range_sentence(spec))
    else:
        # Partially documented: the manual mentions the parameter without a
        # usable range or tuning guidance (what the sufficiency filter must
        # reject).
        lines.append(
            "Refer to your distribution's release notes for accepted values."
        )
    return "\n".join(lines)


def render_manual(fsname: str = "testfs") -> str:
    """The full manual text."""
    sections: list[str] = [
        "Lustre Software Release 2.15 Operations Manual (simulated)",
        "This manual describes the administration and tuning of the Lustre "
        "parallel file system.",
    ]
    for title, body in _FILLER_CHAPTERS:
        sections.append(f"== Chapter: {title} ==\n{body}")
    by_subsystem: dict[str, list[P.ParamSpec]] = {}
    for spec in P.REGISTRY.values():
        by_subsystem.setdefault(spec.subsystem, []).append(spec)
    for subsystem, chapter in _SUBSYSTEM_CHAPTER.items():
        specs = by_subsystem.get(subsystem, [])
        rendered = [render_parameter_section(s) for s in specs]
        rendered = [r for r in rendered if r]
        if not rendered:
            continue
        sections.append(f"== Chapter: {chapter} ==")
        sections.extend(rendered)
    return "\n\n".join(sections) + "\n"
