"""Synthetic operations manuals, rendered per backend.

Rendered from a backend's parameter registry so documentation is *derivable*
ground truth: parameters with ``doc="full"`` get a definition, a performance
note, a machine-parseable range line (including dependent-range expressions
in the syntax the extraction pipeline understands) and the default;
``doc="partial"`` entries lack the range line and performance discussion;
``doc="none"`` entries are simply absent.  Filler chapters on unrelated
subsystems make retrieval non-trivial, as in the real 600-page manual.
"""

from __future__ import annotations

from repro.backends import resolve_backend
from repro.backends.base import ParamSpec, PfsBackend


def _range_sentence(spec: ParamSpec) -> str:
    def render(expr) -> str:
        if isinstance(expr, (int, float)):
            return f"{int(expr)}"
        return f"(expression: {expr})"

    return (
        f"Valid range: {render(spec.min_expr)} .. {render(spec.max_expr)}. "
        f"Default: {spec.default}."
    )


def render_parameter_section(
    spec: ParamSpec, backend: PfsBackend | str | None = None
) -> str:
    """The manual text for a single parameter (empty if undocumented)."""
    backend = resolve_backend(backend)
    if spec.doc == "none" or not spec.writable:
        return ""
    lines = [f"=== The {spec.basename} parameter ==="]
    lines.append(
        f"Parameter name: {spec.name} (exposed under "
        f"{backend.proc_root}/{spec.subsystem}/). Unit: {spec.unit}."
    )
    lines.append(f"Definition: {spec.description}")
    if spec.doc == "full":
        if spec.perf_note:
            lines.append(f"Performance notes: {spec.perf_note}")
        lines.append(_range_sentence(spec))
    else:
        # Partially documented: the manual mentions the parameter without a
        # usable range or tuning guidance (what the sufficiency filter must
        # reject).
        lines.append(
            "Refer to your distribution's release notes for accepted values."
        )
    return "\n".join(lines)


def render_manual(
    fsname: str = "testfs", backend: PfsBackend | str | None = None
) -> str:
    """The full manual text for one backend (default: Lustre)."""
    backend = resolve_backend(backend)
    sections: list[str] = [backend.manual_title, backend.manual_intro]
    for title, body in backend.filler_chapters:
        sections.append(f"== Chapter: {title} ==\n{body}")
    by_subsystem: dict[str, list[ParamSpec]] = {}
    for spec in backend.registry.values():
        by_subsystem.setdefault(spec.subsystem, []).append(spec)
    for subsystem, chapter in backend.subsystem_chapters.items():
        specs = by_subsystem.get(subsystem, [])
        rendered = [render_parameter_section(s, backend) for s in specs]
        rendered = [r for r in rendered if r]
        if not rendered:
            continue
        sections.append(f"== Chapter: {chapter} ==")
        sections.extend(rendered)
    return "\n\n".join(sections) + "\n"
