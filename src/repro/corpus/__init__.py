"""Synthetic documentation corpus.

The RAG pipeline needs the artifacts the paper feeds it: the parallel file
system operations manual (rendered from the ground-truth parameter registry,
with deliberate gaps for under-documented parameters) and the cluster
hardware specification document.
"""

from repro.corpus.manual import render_manual, render_parameter_section
from repro.corpus.hardware_docs import render_hardware_doc

__all__ = ["render_manual", "render_parameter_section", "render_hardware_doc"]
