"""Network topology as a graph.

A single non-blocking switch connects every node; the graph form exists so
path capacities can be queried uniformly (and so richer topologies — fat
trees, multi-rail — can slot in without touching the performance model).
"""

from __future__ import annotations

import networkx as nx

from repro.cluster.hardware import ClusterSpec


def build_topology(spec: ClusterSpec) -> nx.Graph:
    """Star topology: every node -- switch, edge capacity = NIC bandwidth."""
    graph = nx.Graph()
    graph.add_node("switch", kind="switch", bandwidth=spec.switch_bandwidth)
    for node in spec.oss_nodes + spec.mds_nodes + spec.client_nodes:
        graph.add_node(node.name, kind=node.role, spec=node)
        graph.add_edge(
            node.name,
            "switch",
            bandwidth=node.nic_bandwidth,
            latency=node.nic_latency + spec.switch_latency,
        )
    return graph


def path_bandwidth(graph: nx.Graph, src: str, dst: str) -> float:
    """Bottleneck bandwidth along the (unique) src→dst path."""
    path = nx.shortest_path(graph, src, dst)
    capacities = [
        graph.edges[a, b]["bandwidth"] for a, b in zip(path[:-1], path[1:])
    ]
    return min(capacities)


def path_latency(graph: nx.Graph, src: str, dst: str) -> float:
    """Total one-way latency along the src→dst path."""
    path = nx.shortest_path(graph, src, dst)
    return sum(graph.edges[a, b]["latency"] for a, b in zip(path[:-1], path[1:]))
