"""Simulated MPI job launch and rank placement.

The benchmarks run as ``mpiexec -n 50`` across five client nodes.  The PFS
model needs to know which client node hosts each rank (client-side limits such
as ``max_rpcs_in_flight`` apply per node per target, and NIC bandwidth is
shared by co-located ranks).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.hardware import ClusterSpec


@dataclass(frozen=True)
class RankPlacement:
    """Mapping of MPI rank -> client node index (block placement)."""

    n_ranks: int
    n_clients: int

    def __post_init__(self):
        if self.n_ranks < 1 or self.n_clients < 1:
            raise ValueError("ranks and clients must be positive")

    def client_of(self, rank: int) -> int:
        """Client node hosting ``rank`` (block distribution, like mpiexec)."""
        if not 0 <= rank < self.n_ranks:
            raise IndexError(f"rank {rank} out of range")
        per_client = -(-self.n_ranks // self.n_clients)  # ceil div
        return min(rank // per_client, self.n_clients - 1)

    def ranks_per_client(self) -> np.ndarray:
        """Vector of rank counts per client node."""
        counts = np.zeros(self.n_clients, dtype=int)
        for rank in range(self.n_ranks):
            counts[self.client_of(rank)] += 1
        return counts


@dataclass
class MpiJob:
    """A launched (simulated) MPI application instance."""

    name: str
    n_ranks: int
    placement: RankPlacement
    cluster: ClusterSpec

    @classmethod
    def launch(cls, name: str, n_ranks: int, cluster: ClusterSpec) -> "MpiJob":
        """Place ``n_ranks`` ranks across the cluster's client nodes."""
        if n_ranks < 1:
            raise ValueError("n_ranks must be >= 1")
        placement = RankPlacement(n_ranks=n_ranks, n_clients=cluster.n_clients)
        return cls(name=name, n_ranks=n_ranks, placement=placement, cluster=cluster)

    def ranks_on_client(self, client: int) -> list[int]:
        return [
            r for r in range(self.n_ranks) if self.placement.client_of(r) == client
        ]
