"""Hardware specification of the simulated testbed.

All capacity constants consumed by the PFS performance model live here, so a
different testbed (more OSS nodes, faster disks, burst buffers) is a single
spec change — mirroring the paper's discussion of scale-dependent behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.random import RngStreams

KiB = 1024
MiB = 1024 * KiB
GiB = 1024 * MiB


@dataclass(frozen=True)
class NodeSpec:
    """One physical machine."""

    name: str
    role: str  # "oss", "mds", "client"
    cores: int = 10
    memory_bytes: int = 196 * GiB
    nic_bandwidth: float = 1.25e9  # 10 Gbps in bytes/s
    nic_latency: float = 25e-6  # one-way, seconds
    disk_bandwidth: float = 550e6  # bytes/s sustained
    disk_seek_overhead: float = 4.0e-4  # seconds per I/O request
    metadata_disk_overhead: float = 5.0e-5  # seconds per metadata txn


@dataclass
class ClusterSpec:
    """The full testbed: servers, clients and the switch fabric."""

    oss_nodes: list[NodeSpec]
    mds_nodes: list[NodeSpec]
    client_nodes: list[NodeSpec]
    switch_bandwidth: float = 12.5e9  # non-blocking 10-port 10 Gbps switch
    switch_latency: float = 5e-6
    mds_service_threads: int = 32
    ost_service_threads: int = 8
    seed: int = 0
    #: which PfsBackend this testbed runs (resolved lazily by name so the
    #: spec stays cheap to pickle across the experiment process pool)
    backend_name: str = "lustre"
    rng: RngStreams = field(default_factory=lambda: RngStreams(0), repr=False)

    @property
    def backend(self):
        """The active :class:`~repro.backends.base.PfsBackend`."""
        from repro.backends import get_backend

        return get_backend(self.backend_name)

    @property
    def n_oss(self) -> int:
        return len(self.oss_nodes)

    @property
    def n_ost(self) -> int:
        # One OST per OSS in this testbed (CloudLab single data disk per node).
        return len(self.oss_nodes)

    @property
    def n_clients(self) -> int:
        return len(self.client_nodes)

    @property
    def client_memory_bytes(self) -> int:
        return self.client_nodes[0].memory_bytes

    @property
    def system_memory_mb(self) -> int:
        """Client RAM in MiB — referenced by dependent parameter ranges."""
        return self.client_memory_bytes // MiB

    def cache_key(self) -> tuple:
        """Hashable identity of this testbed's modeled hardware.

        Leads with the backend name, like :meth:`PfsConfig.cache_key` — the
        run cache composes the two.  Memoized on the instance: like the
        compiled-phase cache, it assumes a ``ClusterSpec`` is not mutated
        after its first simulated run.
        """
        key = self.__dict__.get("_cache_key")
        if key is None:
            key = (
                self.backend_name,
                tuple(self.oss_nodes),
                tuple(self.mds_nodes),
                tuple(self.client_nodes),
                self.switch_bandwidth,
                self.switch_latency,
                self.mds_service_threads,
                self.ost_service_threads,
                self.seed,
            )
            self.__dict__["_cache_key"] = key
        return key

    def config_facts(self) -> dict[str, int]:
        """The hardware facts dependent parameter ranges resolve against.

        The single source for the ``{"system_memory_mb", "n_ost"}`` dict that
        seeds every :class:`~repro.pfs.config.PfsConfig` — the engine, the
        runner, the harness and the baselines all build their configs from
        this.
        """
        return {
            "system_memory_mb": self.system_memory_mb,
            "n_ost": self.n_ost,
        }

    def describe(self) -> str:
        """Human/agent readable hardware summary (part of agent context).

        Node-role nouns come from the backend so a BeeGFS agent is not
        briefed about OSTs and llite caches.
        """
        oss = self.oss_nodes[0]
        client = self.client_nodes[0]
        terms = self.backend.hardware_terms
        return (
            f"Cluster: {self.n_oss} {terms['data_servers']}, "
            f"{len(self.mds_nodes)} {terms['mgmt_server']}, "
            f"{self.n_clients} client nodes.\n"
            f"Each node: {oss.cores} cores, {oss.memory_bytes // GiB} GB RAM, "
            f"{oss.nic_bandwidth * 8 / 1e9:.0f} Gbps NIC.\n"
            f"{terms['target_disks']}: {oss.disk_bandwidth / 1e6:.0f} MB/s sustained, "
            f"{oss.disk_seek_overhead * 1e3:.1f} ms per-request overhead.\n"
            f"{terms['meta_service']}: {self.mds_service_threads} service threads.\n"
            f"Clients: {client.memory_bytes // GiB} GB RAM each "
            f"({self.system_memory_mb} MiB addressable by {terms['client_cache']})."
        )


def make_cluster(
    n_oss: int = 5,
    n_clients: int = 5,
    seed: int = 0,
    backend: str = "lustre",
    **overrides,
) -> ClusterSpec:
    """Build the paper's 10-node CloudLab testbed (5 OSS + MGS/MDS + 5 clients).

    ``backend`` selects the file system the testbed runs; keyword overrides
    are applied to the ClusterSpec (e.g. faster disks).
    """
    oss = [NodeSpec(name=f"oss{i}", role="oss") for i in range(n_oss)]
    mds = [NodeSpec(name="mds0", role="mds")]
    clients = [NodeSpec(name=f"client{i}", role="client") for i in range(n_clients)]
    spec = ClusterSpec(
        oss_nodes=oss,
        mds_nodes=mds,
        client_nodes=clients,
        seed=seed,
        backend_name=backend,
        rng=RngStreams(seed),
    )
    for key, value in overrides.items():
        if not hasattr(spec, key):
            raise TypeError(f"unknown cluster override {key!r}")
        setattr(spec, key, value)
    return spec
