"""Simulated evaluation testbed.

Models the paper's CloudLab allocation: 10 machines (Intel Xeon Silver 4114,
10 physical cores, ~196 GB RAM, 10 Gbps switch), Lustre 2.15.5 with five
object storage servers, a combined MGS/MDS, and five client nodes running the
benchmarks with 50 MPI processes.
"""

from repro.cluster.hardware import ClusterSpec, NodeSpec, make_cluster
from repro.cluster.mpi import MpiJob, RankPlacement
from repro.cluster.topology import build_topology

__all__ = [
    "ClusterSpec",
    "NodeSpec",
    "make_cluster",
    "MpiJob",
    "RankPlacement",
    "build_topology",
]
