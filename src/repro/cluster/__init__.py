"""Simulated evaluation testbed.

Models the paper's CloudLab allocation: 10 machines (Intel Xeon Silver 4114,
10 physical cores, ~196 GB RAM, 10 Gbps switch), Lustre 2.15.5 with five
object storage servers, a combined MGS/MDS, and five client nodes running the
benchmarks with 50 MPI processes.

``build_topology`` is exposed lazily (PEP 562): the topology module pulls in
networkx, which costs ~100 ms of import time no simulator-only consumer
should pay.
"""

from repro.cluster.hardware import ClusterSpec, NodeSpec, make_cluster
from repro.cluster.mpi import MpiJob, RankPlacement

__all__ = [
    "ClusterSpec",
    "NodeSpec",
    "make_cluster",
    "MpiJob",
    "RankPlacement",
    "build_topology",
]


def __getattr__(name: str):
    if name == "build_topology":
        from repro.cluster.topology import build_topology

        return build_topology
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
