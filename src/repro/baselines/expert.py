"""Human expert baseline (§5.2).

The paper's expert received the full benchmark description and Darshan
traces, with practically unbounded time.  The per-workload configurations
live on each backend (``expert_configs``): what an experienced administrator
of *that* file system recommends for each workload.  For the multi-phase
IO500 the expert follows the common practice of optimizing for the headline
bandwidth phases — leaving metadata concurrency untouched, which is
precisely where STELLAR finds its edge (the paper's observation that
STELLAR outperformed the expert on IO500).
"""

from __future__ import annotations

from repro.backends import resolve_backend
from repro.backends.base import PfsBackend

KiB = 1024
MiB = 1024 * KiB


def expert_updates(
    workload: str, backend: PfsBackend | str | None = None
) -> dict[str, int]:
    """The expert's configuration for a catalog workload."""
    backend = resolve_backend(backend)
    try:
        return dict(backend.expert_configs[workload])
    except KeyError:
        raise KeyError(
            f"no expert baseline recorded for {workload!r} on {backend.name}"
        ) from None


def expert_rationale(workload: str, backend: PfsBackend | str | None = None) -> str:
    return resolve_backend(backend).expert_rationale.get(workload, "")
