"""Human expert baseline (§5.2).

The paper's expert received the full benchmark description and Darshan
traces, with practically unbounded time.  These configurations encode what
an experienced Lustre administrator recommends for each workload.  For the
multi-phase IO500 the expert follows the common practice of optimizing for
the headline bandwidth phases — leaving metadata concurrency and short-I/O
untouched, which is precisely where STELLAR finds its edge (the paper's
observation that STELLAR outperformed the expert on IO500).
"""

from __future__ import annotations

KiB = 1024
MiB = 1024 * KiB

_EXPERT: dict[str, dict[str, int]] = {
    "IOR_64K": {
        "lov.stripe_count": -1,
        "osc.max_rpcs_in_flight": 32,
        "osc.short_io_bytes": 64 * KiB,
        "osc.max_pages_per_rpc": 1024,
        "osc.max_dirty_mb": 256,
    },
    "IOR_16M": {
        "lov.stripe_count": -1,
        "lov.stripe_size": 16 * MiB,
        "osc.max_pages_per_rpc": 4096,
        "osc.max_rpcs_in_flight": 32,
        "osc.max_dirty_mb": 512,
        "llite.max_read_ahead_mb": 2048,
        "llite.max_read_ahead_per_file_mb": 1024,
    },
    "MDWorkbench_2K": {
        "mdc.max_rpcs_in_flight": 64,
        "mdc.max_mod_rpcs_in_flight": 32,
        "llite.statahead_max": 1024,
    },
    "MDWorkbench_8K": {
        "mdc.max_rpcs_in_flight": 64,
        "mdc.max_mod_rpcs_in_flight": 32,
        "llite.statahead_max": 1024,
    },
    "IO500": {
        # Bandwidth-focused: tuned for the IOR phases that dominate wall
        # time, per common practice; metadata client limits left default.
        "lov.stripe_count": 5,
        "lov.stripe_size": 16 * MiB,
        "osc.max_pages_per_rpc": 4096,
        "osc.max_rpcs_in_flight": 32,
        "osc.max_dirty_mb": 512,
        "llite.max_read_ahead_mb": 2048,
        "llite.max_read_ahead_per_file_mb": 1024,
    },
    "AMReX": {
        "lov.stripe_count": -1,
        "osc.max_pages_per_rpc": 4096,
        "osc.max_rpcs_in_flight": 32,
        "osc.max_dirty_mb": 256,
    },
    "MACSio_512K": {
        "lov.stripe_count": -1,
        "osc.max_rpcs_in_flight": 32,
        "osc.max_pages_per_rpc": 1024,
        "osc.max_dirty_mb": 256,
    },
    "MACSio_16M": {
        "lov.stripe_count": -1,
        "lov.stripe_size": 16 * MiB,
        "osc.max_pages_per_rpc": 4096,
        "osc.max_rpcs_in_flight": 32,
        "osc.max_dirty_mb": 512,
    },
}

_RATIONALE: dict[str, str] = {
    "IOR_64K": (
        "Random small writes to one shared file: stripe across every OST to "
        "spread per-request overhead and lock traffic, raise RPC "
        "concurrency, and enable inline short I/O for 64 KiB requests."
    ),
    "IOR_16M": (
        "Large sequential shared-file streams: stripe wide with 16 MiB "
        "stripes matching the transfer size, maximize RPC size and "
        "concurrency, and widen readahead for the read phase."
    ),
    "MDWorkbench_2K": (
        "Pure metadata churn over many tiny files: keep the default layout "
        "(striping would add per-file object costs) and raise the client "
        "metadata concurrency limits and statahead window."
    ),
    "MDWorkbench_8K": "Same reasoning as MDWorkbench_2K.",
    "IO500": (
        "The score is usually dominated by the IOR bandwidth phases, so "
        "configure for streaming throughput across all OSTs."
    ),
    "AMReX": (
        "A small number of shared level files written in large chunks: "
        "stripe wide so both output files use every OST."
    ),
    "MACSio_512K": (
        "Scattered medium writes to a single shared dump file: stripe wide "
        "and deepen the RPC pipeline."
    ),
    "MACSio_16M": (
        "Large contiguous dump objects: stripe wide with large stripes and "
        "maximum RPC size."
    ),
}


def expert_updates(workload: str) -> dict[str, int]:
    """The expert's configuration for a catalog workload."""
    try:
        return dict(_EXPERT[workload])
    except KeyError:
        raise KeyError(f"no expert baseline recorded for {workload!r}") from None


def expert_rationale(workload: str) -> str:
    return _RATIONALE.get(workload, "")
