"""Oracle coordinate-descent search over the backend's tunable parameters.

A stand-in for the traditional autotuners the paper declines to compare
against directly (they need hundreds to thousands of evaluations): this
search measures real simulated runs and greedily improves one parameter at
a time.  It serves two purposes: (1) calibrating how close the expert and
STELLAR land to the attainable optimum, and (2) demonstrating the iteration
cost gap — the search's evaluation count is reported alongside its result.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.hardware import ClusterSpec
from repro.pfs.config import PfsConfig
from repro.pfs.simulator import Simulator
from repro.sim.cache import RUN_CACHE
from repro.sim.random import RngStreams
from repro.workloads.base import Workload

KiB = 1024
MiB = 1024 * KiB


@dataclass
class SearchResult:
    """Outcome of an oracle search."""

    best_updates: dict[str, int]
    best_seconds: float
    default_seconds: float
    evaluations: int
    trace: list[tuple[str, int, float]] = field(default_factory=list)

    @property
    def speedup(self) -> float:
        return self.default_seconds / self.best_seconds


class OracleSearch:
    """Greedy coordinate descent with a bounded evaluation budget.

    Each coordinate's whole candidate grid is evaluated as one
    :meth:`~repro.pfs.simulator.Simulator.run_sweep` call (classic
    sweep-then-move coordinate descent) through the columnar engine: all
    candidates are measured against the current best configuration and the
    coordinate moves to the best improving value, if any.  Every candidate
    run still draws its own seeded noise — evaluation ``i`` runs under
    ``RngStreams.rep_seed(seed, i)``, the shared repeated-measurement
    derivation — and the evaluation counter prices each simulated run
    exactly as the sequential search did.  The whole search runs under the
    process-wide :data:`~repro.sim.cache.RUN_CACHE`, so re-running a search
    (or re-measuring cells another strategy already measured) is free.
    """

    def __init__(self, cluster: ClusterSpec, seed: int = 0, max_rounds: int = 2):
        self.cluster = cluster
        self.seed = seed
        self.max_rounds = max_rounds
        self.sim = Simulator(cluster)
        #: the cluster backend's candidate grids (coordinate sweep order)
        self.candidates = cluster.backend.search_candidates

    def _config(self, updates: dict[str, int]) -> PfsConfig:
        facts = self.cluster.config_facts()
        return (
            PfsConfig(facts=facts, backend=self.cluster.backend)
            .with_updates(updates)
            .clipped()
        )

    def _measure(self, workload: Workload, updates: dict[str, int], rep: int) -> float:
        config = self._config(updates)
        return self.sim.run(
            workload, config, seed=RngStreams.rep_seed(self.seed, rep)
        ).seconds

    def run(self, workload: Workload) -> SearchResult:
        with RUN_CACHE.enabled():
            return self._run(workload)

    def _run(self, workload: Workload) -> SearchResult:
        evaluations = 0
        best: dict[str, int] = {}
        default_seconds = self._measure(workload, {}, rep=evaluations)
        evaluations += 1
        best_seconds = default_seconds
        trace: list[tuple[str, int, float]] = []
        for _ in range(self.max_rounds):
            improved = False
            for name, candidates in self.candidates.items():
                trials = [
                    dict(best, **{name: value})
                    for value in candidates
                    if best.get(name) != value
                ]
                if not trials:
                    continue
                seeds = [
                    RngStreams.rep_seed(self.seed, evaluations + i)
                    for i in range(len(trials))
                ]
                runs = self.sim.run_sweep(
                    workload, [self._config(t) for t in trials], seeds
                )
                evaluations += len(runs)
                sweep_best: tuple[float, dict[str, int]] | None = None
                for trial, run in zip(trials, runs):
                    trace.append((name, trial[name], run.seconds))
                    if run.seconds < best_seconds * 0.995 and (
                        sweep_best is None or run.seconds < sweep_best[0]
                    ):
                        sweep_best = (run.seconds, trial)
                if sweep_best is not None:
                    best_seconds, best = sweep_best
                    improved = True
            if not improved:
                break
        return SearchResult(
            best_updates=best,
            best_seconds=best_seconds,
            default_seconds=default_seconds,
            evaluations=evaluations,
            trace=trace,
        )
