"""Comparison baselines for the evaluation.

- :mod:`repro.baselines.default` — stock Lustre settings;
- :mod:`repro.baselines.expert` — the human I/O expert's per-workload
  configurations (given the full benchmark description, Darshan logs and
  unbounded time, §5.2);
- :mod:`repro.baselines.search` — an oracle coordinate-descent search used
  to calibrate how close the expert and STELLAR get to the attainable
  optimum (traditional autotuners need hundreds of such evaluations — the
  cost argument of §3).
"""

from repro.baselines.default import default_updates
from repro.baselines.expert import expert_updates, expert_rationale
from repro.baselines.search import OracleSearch, SearchResult

__all__ = [
    "default_updates",
    "expert_updates",
    "expert_rationale",
    "OracleSearch",
    "SearchResult",
]
