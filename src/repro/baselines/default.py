"""The default (stock Lustre 2.15) configuration baseline."""

from __future__ import annotations


def default_updates(workload: str | None = None) -> dict[str, int]:
    """No changes: every parameter at its shipped default."""
    return {}
