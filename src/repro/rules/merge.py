"""Rule set synthesis (§4.4.2).

Merging a freshly generated rule set into the global one resolves conflicts
the way the paper prescribes:

- a new rule that *directly contradicts* an existing rule (same parameter,
  equal tuning context, opposite guidance) removes **both** — neither can be
  trusted;
- rules with equal context and only *slightly different* guidance are kept
  as **alternatives** so future runs can try both;
- an alternative whose guidance later produces a *negative outcome*
  (observed speedup < 1) is dropped in favour of the positive one.
"""

from __future__ import annotations

from repro.rules.model import Rule, RuleSet


def merge_rule_sets(existing: RuleSet, new: RuleSet) -> RuleSet:
    """Merge ``new`` into ``existing`` with conflict resolution."""
    kept: list[Rule] = list(existing.rules)
    for incoming in new.rules:
        kept = _merge_one(kept, incoming)
    return RuleSet(rules=kept)


def _merge_one(kept: list[Rule], incoming: Rule) -> list[Rule]:
    negative_incoming = (
        incoming.observed_speedup is not None and incoming.observed_speedup < 1.0
    )
    if negative_incoming and incoming.recommended_value is None:
        # "Avoid X" knowledge carries no value to conflict on; keep it
        # verbatim alongside existing guidance (once).
        if any(
            r.recommended_value is None and r.rule_description == incoming.rule_description
            for r in kept
        ):
            return kept
        return kept + [incoming]
    result: list[Rule] = []
    dropped_due_to_contradiction = False
    matched_equivalent = False
    for rule in kept:
        if not rule.same_context(incoming):
            result.append(rule)
            continue
        if rule.contradicts(incoming):
            # Drop both; we cannot tell which is correct.
            dropped_due_to_contradiction = True
            continue
        if _equivalent(rule, incoming):
            # Same guidance: refresh with the better-evidenced copy.
            matched_equivalent = True
            result.append(_better(rule, incoming))
            continue
        # Same context, different but not opposite guidance -> alternatives.
        if negative_incoming:
            # A negative outcome prunes nothing but itself; keep existing.
            result.append(rule)
            matched_equivalent = True
            continue
        if rule.observed_speedup is not None and rule.observed_speedup < 1.0:
            # Existing negative alternative loses to the new positive rule.
            continue
        marked = Rule(**{**rule.__dict__, "alternative": True})
        result.append(marked)
    if dropped_due_to_contradiction:
        return result
    if matched_equivalent:
        return result
    if negative_incoming and incoming.recommended_value is None:
        # "Avoid X" knowledge is kept verbatim.
        result.append(incoming)
        return result
    new_rule = incoming
    if any(r.same_context(incoming) for r in result):
        new_rule = Rule(**{**incoming.__dict__, "alternative": True})
    result.append(new_rule)
    return result


def _equivalent(a: Rule, b: Rule) -> bool:
    if a.recommended_value is None or b.recommended_value is None:
        return a.rule_description == b.rule_description
    lo, hi = sorted((a.recommended_value, b.recommended_value))
    if lo <= 0:
        return a.recommended_value == b.recommended_value
    return hi / lo < 2.0


def _better(a: Rule, b: Rule) -> Rule:
    a_speed = a.observed_speedup or 0.0
    b_speed = b.observed_speedup or 0.0
    return b if b_speed > a_speed else a
