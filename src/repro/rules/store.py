"""Persistence for rule sets, the rule journal, and tuning sessions.

The global rule set is STELLAR's accumulated platform knowledge.  It used
to live as one mutable, last-write-wins ``RuleSet`` on the engine; it is now
derived from a :class:`RuleJournal` — an append-only, versioned store of
every rule contribution, replay-merged deterministically.  Operators keep
either form across engine restarts (``save_rule_set``/``load_rule_set`` for
a flat snapshot, :meth:`RuleJournal.save`/:meth:`RuleJournal.load` for the
full history).  Tuning sessions are exported as JSON for offline inspection
and for the experiment artifacts.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.llm.promptparse import AttemptRecord
from repro.llm.tokens import TokenUsage
from repro.rules.merge import merge_rule_sets
from repro.rules.model import RuleSet

if TYPE_CHECKING:  # pragma: no cover - the engine imports us at runtime
    from repro.core.session import TuningSession


class JournalCorruptError(RuntimeError):
    """A persisted journal/checkpoint could not be decoded.

    Raised with a description of *what* is wrong with the file (truncated
    JSON, wrong structure) instead of surfacing a raw decoding traceback —
    a torn write or a garbage file is an operational condition the service
    layer reports, not a bug.
    """


def atomic_write_text(path: str | Path, text: str) -> None:
    """Write ``text`` to ``path`` atomically (temp file + rename).

    Readers either see the previous complete file or the new complete
    file, never a torn intermediate — the property journal and fleet
    checkpoint persistence rely on.
    """
    path = Path(path)
    tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
    tmp.write_text(text)
    os.replace(tmp, path)


def save_rule_set(rule_set: RuleSet, path: str | Path) -> None:
    atomic_write_text(path, rule_set.dumps())


def load_rule_set(path: str | Path) -> RuleSet:
    return RuleSet.loads(Path(path).read_text())


# ---------------------------------------------------------------------------
# The versioned rule journal.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class JournalEntry:
    """One appended rule contribution.

    ``version`` is the 1-based arrival position in its journal; ``origin``
    is the deterministic replay key ``(engine_seed, sequence)`` — replay
    sorts by it, so contributions from concurrently running tenants land in
    seed order no matter which finished first.  ``rules`` is the
    contribution itself (the session's distilled rules as JSON dicts),
    treated as immutable once appended.
    """

    version: int
    origin: tuple[int, int]
    rules: tuple[dict, ...]

    def to_dict(self) -> dict:
        return {
            "version": self.version,
            "origin": list(self.origin),
            "rules": [dict(rule) for rule in self.rules],
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "JournalEntry":
        return cls(
            version=int(raw["version"]),
            origin=tuple(int(part) for part in raw["origin"]),
            rules=tuple(dict(rule) for rule in raw["rules"]),
        )


#: Sequence number reserved for baseline (adopted) rule sets; appended
#: contributions start at 1, so a baseline always replays first for its seed.
BASELINE_SEQUENCE = 0


class RuleJournal:
    """Append-only, versioned, concurrency-safe store of tuning rules.

    Contract:

    - **Append-only versions.**  Every contribution becomes an immutable
      :class:`JournalEntry`; nothing is ever rewritten in place, so the
      journal is a complete audit trail of where the platform knowledge
      came from.
    - **Deterministic replay-merge.**  The merged view folds entries in
      ``origin`` order (engine seed, then sequence) through
      :func:`repro.rules.merge.merge_rule_sets` — the exact semantics the
      LLM-mediated merge implements — so replaying a journal, or merging
      the journals of tenants that ran concurrently, always lands in seed
      order regardless of completion order.
    - **Concurrency-safe.**  Appends and view computation hold an internal
      lock, so threads sharing one journal never observe a torn view; the
      lock is dropped on pickle (each process re-creates its own).
    - **Persisted/reloadable.**  :meth:`save`/:meth:`load` round-trip the
      full entry history, not just the merged snapshot.

    An engine may install a *snapshot view* alongside an append (the result
    of its LLM-mediated merge); :meth:`replay` always reconstructs the view
    from the entries alone, and the two agree for the deterministic mock
    (asserted in ``tests/test_fleet.py``).
    """

    def __init__(self, entries: Iterable[JournalEntry] = ()):
        self._entries: list[JournalEntry] = list(entries)
        self._lock = threading.RLock()
        self._view: RuleSet | None = None
        self._sequence = max(
            (entry.origin[1] for entry in self._entries), default=0
        )

    # -- pickling (the lock is process-local) ---------------------------
    def __getstate__(self) -> dict:
        with self._lock:
            return {"entries": list(self._entries)}

    def __setstate__(self, state: dict) -> None:
        self.__init__(state["entries"])

    # -- introspection ---------------------------------------------------
    @property
    def entries(self) -> tuple[JournalEntry, ...]:
        with self._lock:
            return tuple(self._entries)

    @property
    def version(self) -> int:
        """The journal's head version (number of appended entries)."""
        with self._lock:
            return len(self._entries)

    def __len__(self) -> int:
        return self.version

    # -- writing ---------------------------------------------------------
    def append(
        self,
        rules: Sequence[dict],
        seed: int = 0,
        snapshot: Sequence[dict] | None = None,
        basis_version: int | None = None,
    ) -> JournalEntry:
        """Append one contribution; returns the new immutable entry.

        ``snapshot`` (optional) installs the contributor's own merged view
        of the journal after this entry — the engine passes its
        LLM-mediated merge result here so the serving view is exactly what
        the model produced.  ``basis_version`` names the head version the
        snapshot was computed against: if another contributor appended in
        the meantime the snapshot is stale, so it is discarded and the view
        lazily rebuilt by :meth:`replay` (which includes every entry).
        Without a snapshot the view is always rebuilt lazily.
        """
        with self._lock:
            stale = (
                basis_version is not None and basis_version != len(self._entries)
            )
            self._sequence += 1
            entry = JournalEntry(
                version=len(self._entries) + 1,
                origin=(seed, self._sequence),
                rules=tuple(dict(rule) for rule in rules),
            )
            self._entries.append(entry)
            self._view = (
                RuleSet.from_json(list(snapshot))
                if snapshot is not None and not stale
                else None
            )
            return entry

    @classmethod
    def seeded(cls, rule_set: RuleSet, seed: int = 0) -> "RuleJournal":
        """A journal adopting ``rule_set`` verbatim as its baseline."""
        journal = cls()
        if len(rule_set):
            entry = JournalEntry(
                version=1,
                origin=(seed, BASELINE_SEQUENCE),
                rules=tuple(rule_set.to_json()),
            )
            journal._entries.append(entry)
        return journal

    # -- reading ---------------------------------------------------------
    @property
    def current(self) -> RuleSet:
        """The merged view at the journal's head version."""
        with self._lock:
            if self._view is None:
                self._view = self.replay()
            return self._view

    def replay(self, up_to_version: int | None = None) -> RuleSet:
        """Deterministically rebuild the merged view from the entries.

        Entries fold in ``(origin, version)`` order — seed order first, so
        two journals holding the same entries merge identically no matter
        the order the entries arrived in.  ``up_to_version`` replays a
        historical prefix (by arrival version), which is what makes every
        past state of the knowledge reconstructible.
        """
        with self._lock:
            entries = self._entries
            if up_to_version is not None:
                entries = [e for e in entries if e.version <= up_to_version]
            ordered = sorted(entries, key=lambda e: (e.origin, e.version))
        merged = RuleSet()
        for entry in ordered:
            merged = _fold(merged, entry.rules)
        return merged

    # -- persistence -----------------------------------------------------
    def to_json(self) -> dict:
        return {
            "format": 1,
            "version": self.version,
            "entries": [entry.to_dict() for entry in self.entries],
        }

    @classmethod
    def from_json(cls, raw: dict) -> "RuleJournal":
        return cls(JournalEntry.from_dict(entry) for entry in raw["entries"])

    def save(self, path: str | Path) -> None:
        atomic_write_text(path, json.dumps(self.to_json(), indent=1))

    @classmethod
    def load(cls, path: str | Path) -> "RuleJournal":
        path = Path(path)
        try:
            raw = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise JournalCorruptError(
                f"rule journal at {path} is not valid JSON ({exc}); "
                "the file is truncated or corrupt"
            ) from exc
        try:
            return cls.from_json(raw)
        except (KeyError, TypeError, ValueError, AttributeError) as exc:
            raise JournalCorruptError(
                f"rule journal at {path} does not have journal structure "
                f"({type(exc).__name__}: {exc})"
            ) from exc

    # -- cross-journal merge ---------------------------------------------
    @classmethod
    def merged(cls, journals: Sequence["RuleJournal"]) -> "RuleJournal":
        """One journal holding every entry of ``journals``, renumbered.

        Entries are ordered by ``(origin, source position)`` and assigned
        fresh arrival versions, so merging the per-tenant journals of a
        fleet run yields the same combined journal for any completion
        order or worker count.
        """
        tagged = [
            (entry.origin, index, entry.version, entry)
            for index, journal in enumerate(journals)
            for entry in journal.entries
        ]
        tagged.sort(key=lambda item: item[:3])
        return cls(
            JournalEntry(version=i + 1, origin=entry.origin, rules=entry.rules)
            for i, (_, _, _, entry) in enumerate(tagged)
        )


def _fold(current: RuleSet, rules: Sequence[dict]) -> RuleSet:
    """Fold one contribution into the merged view.

    Mirrors :func:`repro.agents.reflection.merge_rules_via_llm` exactly —
    including its empty-side short-circuits — so a journal replay is
    byte-for-byte the rule set the engine's chained LLM merges produced.
    """
    if not rules:
        return current
    if not len(current):
        return RuleSet.from_json(list(rules))
    return merge_rule_sets(current, RuleSet.from_json(list(rules)))


def session_to_dict(session: TuningSession) -> dict:
    """JSON-serializable view of a tuning session."""
    out = {
        "workload": session.workload,
        "model": session.model,
        "initial_seconds": session.initial_seconds,
        "attempts": [
            {
                "index": a.index,
                "changes": a.changes,
                "seconds": a.seconds,
                "speedup": a.speedup,
                "rationale": a.rationale,
            }
            for a in session.attempts
        ],
        "best_config": session.best_config,
        "best_speedup": session.best_speedup,
        "end_reason": session.end_reason,
        "rules": session.rules_json,
        "executions": session.executions,
        "usage": {
            agent: {
                "input_tokens": usage.input_tokens,
                "output_tokens": usage.output_tokens,
                "cached_input_tokens": usage.cached_input_tokens,
            }
            for agent, usage in session.usage.items()
        },
        "transcript": [
            {"kind": e.kind, "detail": e.detail} for e in session.transcript.events
        ],
    }
    # Fault-plane fields appear only when a run actually degraded, so
    # unfaulted sessions serialize byte-identically to the pre-fault format.
    if session.degradations or session.fault_recovery:
        out["degradations"] = list(session.degradations)
        out["fault_recovery"] = dict(session.fault_recovery)
    return out


def session_from_dict(raw: dict) -> TuningSession:
    """Rebuild a :class:`TuningSession` from :func:`session_to_dict` output.

    The round trip preserves everything the dict format carries —
    ``session_to_dict(session_from_dict(d)) == d`` — which is what lets a
    fleet checkpoint restore completed tenants without re-running them.
    (Rendered transcripts survive; per-event payloads, which the dict
    format never carried, do not.)
    """
    from repro.agents.transcript import Transcript
    from repro.core.session import TuningSession

    transcript = Transcript()
    for event in raw.get("transcript", []):
        transcript.add(event["kind"], event["detail"])
    return TuningSession(
        workload=raw["workload"],
        model=raw["model"],
        initial_seconds=raw["initial_seconds"],
        attempts=[
            AttemptRecord(
                index=a["index"],
                changes={k: int(v) for k, v in a["changes"].items()},
                seconds=a["seconds"],
                speedup=a["speedup"],
                rationale=a.get("rationale", ""),
            )
            for a in raw.get("attempts", [])
        ],
        end_reason=raw.get("end_reason", ""),
        rules_json=[dict(rule) for rule in raw.get("rules", [])],
        transcript=transcript,
        executions=int(raw.get("executions", 0)),
        usage={
            agent: TokenUsage(
                input_tokens=int(u.get("input_tokens", 0)),
                output_tokens=int(u.get("output_tokens", 0)),
                cached_input_tokens=int(u.get("cached_input_tokens", 0)),
            )
            for agent, u in raw.get("usage", {}).items()
        },
        degradations=list(raw.get("degradations", [])),
        fault_recovery={
            site: int(count)
            for site, count in raw.get("fault_recovery", {}).items()
        },
    )


def save_session(session: TuningSession, path: str | Path) -> None:
    atomic_write_text(path, json.dumps(session_to_dict(session), indent=1))


def load_session_summary(path: str | Path) -> dict:
    """Load a previously saved session export (as plain data)."""
    raw = json.loads(Path(path).read_text())
    raw["attempts"] = [
        AttemptRecord(
            index=a["index"],
            changes={k: int(v) for k, v in a["changes"].items()},
            seconds=a["seconds"],
            speedup=a["speedup"],
            rationale=a.get("rationale", ""),
        )
        for a in raw.get("attempts", [])
    ]
    return raw
