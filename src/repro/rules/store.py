"""Persistence for rule sets and tuning sessions.

The global rule set is STELLAR's accumulated platform knowledge; operators
keep it across engine restarts (`save_rule_set`/`load_rule_set`).  Tuning
sessions are exported as JSON for offline inspection and for the experiment
artifacts.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.session import TuningSession
from repro.llm.promptparse import AttemptRecord
from repro.rules.model import RuleSet


def save_rule_set(rule_set: RuleSet, path: str | Path) -> None:
    Path(path).write_text(rule_set.dumps())


def load_rule_set(path: str | Path) -> RuleSet:
    return RuleSet.loads(Path(path).read_text())


def session_to_dict(session: TuningSession) -> dict:
    """JSON-serializable view of a tuning session."""
    return {
        "workload": session.workload,
        "model": session.model,
        "initial_seconds": session.initial_seconds,
        "attempts": [
            {
                "index": a.index,
                "changes": a.changes,
                "seconds": a.seconds,
                "speedup": a.speedup,
                "rationale": a.rationale,
            }
            for a in session.attempts
        ],
        "best_config": session.best_config,
        "best_speedup": session.best_speedup,
        "end_reason": session.end_reason,
        "rules": session.rules_json,
        "executions": session.executions,
        "usage": {
            agent: {
                "input_tokens": usage.input_tokens,
                "output_tokens": usage.output_tokens,
                "cached_input_tokens": usage.cached_input_tokens,
            }
            for agent, usage in session.usage.items()
        },
        "transcript": [
            {"kind": e.kind, "detail": e.detail} for e in session.transcript.events
        ],
    }


def save_session(session: TuningSession, path: str | Path) -> None:
    Path(path).write_text(json.dumps(session_to_dict(session), indent=1))


def load_session_summary(path: str | Path) -> dict:
    """Load a previously saved session export (as plain data)."""
    raw = json.loads(Path(path).read_text())
    raw["attempts"] = [
        AttemptRecord(
            index=a["index"],
            changes={k: int(v) for k, v in a["changes"].items()},
            seconds=a["seconds"],
            speedup=a["speedup"],
            rationale=a.get("rationale", ""),
        )
        for a in raw.get("attempts", [])
    ]
    return raw
