"""Tuning rule sets (§4.4).

Rules are the reusable knowledge STELLAR distills after each tuning run.
Each rule names a parameter, a natural-language rule description, and the
tuning context in which it applies; merged rule sets resolve contradictions
(drop both), track alternatives (keep both, marked), and prune alternatives
with observed negative outcomes.
"""

from repro.rules.model import Rule, RuleSet
from repro.rules.merge import merge_rule_sets

__all__ = ["Rule", "RuleSet", "merge_rule_sets", "JournalEntry", "RuleJournal"]


def __getattr__(name):
    # The journal lives in ``rules.store``, which imports the session record
    # (and through it the LLM layer); resolve lazily so ``repro.rules``
    # stays importable from the bottom of the dependency graph.
    if name in ("JournalEntry", "RuleJournal"):
        from repro.rules import store

        return getattr(store, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
