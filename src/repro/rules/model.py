"""Rule and RuleSet data model.

The paper enforces a strict JSON structure: a list of objects with
``Parameter``, ``Rule Description`` and ``Tuning Context`` keys.  We carry
those three (snake_cased) plus machine-readable companions the Tuning Agent
uses to *apply* rules: context tags for matching, the concretely recommended
value, and the observed speedup that produced the rule.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Iterable


@dataclass
class Rule:
    """One distilled piece of tuning knowledge."""

    parameter: str
    rule_description: str
    tuning_context: str
    context_tags: list[str] = field(default_factory=list)
    recommended_value: int | None = None
    observed_speedup: float | None = None
    alternative: bool = False  # marked when merged as one of several options

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "parameter": self.parameter,
            "rule_description": self.rule_description,
            "tuning_context": self.tuning_context,
            "context_tags": list(self.context_tags),
            "recommended_value": self.recommended_value,
        }
        if self.observed_speedup is not None:
            out["observed_speedup"] = self.observed_speedup
        if self.alternative:
            out["alternative"] = True
        return out

    @classmethod
    def from_dict(cls, raw: dict[str, Any]) -> "Rule":
        # Accept both the paper's TitleCase keys and snake_case.
        def pick(*names, default=None):
            for name in names:
                if name in raw:
                    return raw[name]
            return default

        return cls(
            parameter=pick("parameter", "Parameter", default=""),
            rule_description=pick("rule_description", "Rule Description", default=""),
            tuning_context=pick("tuning_context", "Tuning Context", default=""),
            context_tags=list(pick("context_tags", default=[]) or []),
            recommended_value=pick("recommended_value"),
            observed_speedup=pick("observed_speedup"),
            alternative=bool(pick("alternative", default=False)),
        )

    def same_context(self, other: "Rule") -> bool:
        """Rules about the same parameter in an equal tuning context.

        Contexts count as equal when they share the workload-class tag or at
        least two descriptive tags; one generic shared tag (e.g. both touch
        a shared file) is not the "equal tuning context" of §4.4.2.
        """
        if self.parameter != other.parameter:
            return False
        mine, theirs = set(self.context_tags), set(other.context_tags)
        if mine and theirs:
            if self.context_tags[0] == other.context_tags[0]:
                return True  # same workload class
            return len(mine & theirs) >= 2
        return self.tuning_context == other.tuning_context

    def contradicts(self, other: "Rule") -> bool:
        """Same parameter + context but *opposite* concrete guidance.

        Opposite means direction, not magnitude: recommending 16 and 128
        for the same knob is the same advice at different strengths (kept
        as alternatives), while -1 vs. 1 for a stripe count is a genuine
        contradiction.
        """
        if not self.same_context(other):
            return False
        mine, theirs = self.recommended_value, other.recommended_value
        if mine is None or theirs is None:
            return False
        return (mine > 0) != (theirs > 0)


@dataclass
class RuleSet:
    """An ordered collection of rules with JSON round-tripping."""

    rules: list[Rule] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.rules)

    def __iter__(self):
        return iter(self.rules)

    def add(self, rule: Rule) -> None:
        self.rules.append(rule)

    def for_parameter(self, parameter: str) -> list[Rule]:
        return [r for r in self.rules if r.parameter == parameter]

    def matching_tags(self, tags: Iterable[str]) -> list[Rule]:
        wanted = set(tags)
        return [r for r in self.rules if set(r.context_tags) & wanted]

    def to_json(self) -> list[dict[str, Any]]:
        return [r.to_dict() for r in self.rules]

    def dumps(self) -> str:
        return json.dumps(self.to_json(), indent=1)

    @classmethod
    def from_json(cls, raw: list[dict[str, Any]]) -> "RuleSet":
        return cls(rules=[Rule.from_dict(r) for r in raw])

    @classmethod
    def loads(cls, payload: str) -> "RuleSet":
        return cls.from_json(json.loads(payload))
