"""Darshan log container and text serialization.

The text format mirrors ``darshan-parser`` output closely enough to feel
familiar: a header block of ``# key: value`` lines followed by one line per
(module, record, counter) triple.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass
class DarshanRecord:
    """One instrumented record (a file, or an aggregated file group)."""

    module: str  # "POSIX" | "MPIIO"
    file: str
    rank: int  # -1 for shared records
    counters: dict[str, float] = field(default_factory=dict)
    record_type: str = "file"

    def get(self, counter: str, default: float = 0.0) -> float:
        return self.counters.get(counter, default)


@dataclass
class DarshanLog:
    """A complete log for one application execution.

    ``lost_ranks`` is nonzero when the capture was truncated (e.g. by an
    injected ``darshan.truncate`` fault): the tail ranks' records are
    missing, the shared ``rank=-1`` reduction records and a prefix of
    per-rank records survive, and ``coverage`` says how much of the job
    the surviving records describe.
    """

    exe: str
    nprocs: int
    run_time: float
    jobid: int = 0
    start_time: float = 0.0
    records: list[DarshanRecord] = field(default_factory=list)
    lost_ranks: int = 0

    @property
    def coverage(self) -> float:
        """Fraction of ranks whose records survive in this log."""
        if self.nprocs <= 0:
            return 1.0
        return (self.nprocs - self.lost_ranks) / self.nprocs

    def module_records(self, module: str) -> list[DarshanRecord]:
        return [r for r in self.records if r.module == module]

    @property
    def modules(self) -> list[str]:
        seen: list[str] = []
        for record in self.records:
            if record.module not in seen:
                seen.append(record.module)
        return seen

    def total(self, counter: str) -> float:
        return sum(r.get(counter) for r in self.records)

    # -- text round trip ---------------------------------------------------
    def dumps(self) -> str:
        lines = [
            "# darshan log version: 3.41 (simulated)",
            f"# exe: {self.exe}",
            f"# jobid: {self.jobid}",
            f"# nprocs: {self.nprocs}",
            f"# start_time: {self.start_time}",
            f"# run time: {self.run_time}",
        ]
        if self.lost_ranks:
            # Only truncated captures carry the marker, so untruncated
            # logs serialize byte-identically to the pre-fault format.
            lines.append(f"# lost ranks: {self.lost_ranks}")
        for record in self.records:
            for counter, value in record.counters.items():
                lines.append(
                    f"{record.module}\t{record.rank}\t{record.file}\t"
                    f"{record.record_type}\t{counter}\t{value:g}"
                )
        return "\n".join(lines) + "\n"

    @classmethod
    def loads(cls, text: str) -> "DarshanLog":
        header: dict[str, str] = {}
        records: dict[tuple[str, int, str, str], DarshanRecord] = {}
        for line in text.splitlines():
            line = line.rstrip()
            if not line:
                continue
            if line.startswith("#"):
                if ":" in line:
                    key, _, value = line[1:].partition(":")
                    header[key.strip()] = value.strip()
                continue
            parts = line.split("\t")
            if len(parts) != 6:
                raise ValueError(f"malformed darshan line: {line!r}")
            module, rank, path, rtype, counter, value = parts
            key = (module, int(rank), path, rtype)
            record = records.get(key)
            if record is None:
                record = DarshanRecord(
                    module=module, file=path, rank=int(rank), record_type=rtype
                )
                records[key] = record
            record.counters[counter] = float(value)
        return cls(
            exe=header.get("exe", "unknown"),
            nprocs=int(header.get("nprocs", "0")),
            run_time=float(header.get("run time", "0")),
            jobid=int(header.get("jobid", "0")),
            start_time=float(header.get("start_time", "0")),
            records=list(records.values()),
            lost_ranks=int(header.get("lost ranks", "0")),
        )

    def header_text(self) -> str:
        """The header string handed to the Analysis Agent."""
        text = (
            f"exe: {self.exe}; nprocs: {self.nprocs}; "
            f"run time: {self.run_time:.3f} s; modules: {', '.join(self.modules)}"
        )
        if self.lost_ranks:
            text += (
                f"; TRUNCATED capture: {self.lost_ranks} rank(s) lost "
                f"({self.coverage:.0%} coverage)"
            )
        return text
