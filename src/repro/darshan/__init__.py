"""Darshan-style I/O tracing substrate.

The paper's online loop starts from a Darshan log of the target application.
This package provides the pieces that pipeline needs:

- :mod:`repro.darshan.counters` — POSIX/MPIIO counter definitions with the
  per-counter descriptions the Analysis Agent receives;
- :mod:`repro.darshan.tracer` — instruments a simulated run and produces a
  :class:`~repro.darshan.log.DarshanLog`;
- :mod:`repro.darshan.log` — the log container plus a darshan-parser-like
  text serialization;
- :mod:`repro.darshan.parser` — the paper's preprocessing step: log →
  columnar Frames (one per module) + column-description strings.
"""

from repro.darshan.log import DarshanLog, DarshanRecord
from repro.darshan.parser import ParsedLog, parse_log
from repro.darshan.tracer import trace_run, truncate_log

__all__ = [
    "DarshanLog",
    "DarshanRecord",
    "trace_run",
    "truncate_log",
    "parse_log",
    "ParsedLog",
]
