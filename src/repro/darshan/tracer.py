"""Instrument a simulated run into a Darshan log.

Darshan aggregates identical-behaviour records; we mirror that by emitting,
for each fileset a phase touched, per-rank records (and a shared ``rank=-1``
reduction record for shared files).  Filesets holding many small files
become ``file_group`` records with ``POSIX_FILE_COUNT`` carrying the
population size — the same information a real log would spread over
thousands of per-file records, in the compact form the paper's preprocessing
step would produce anyway.
"""

from __future__ import annotations

from collections import defaultdict

from repro.darshan.log import DarshanLog, DarshanRecord
from repro.pfs.phases import DataPhase, MetaPhase
from repro.pfs.simulator import RunResult


def trace_run(result: RunResult, n_ranks: int | None = None) -> DarshanLog:
    """Produce the Darshan log for one run.

    Every rank performs identical work in these phase models, so only rank 0
    (plus the shared ``rank=-1`` reduction records) is traced through the
    phase loop; ranks ``1..nprocs-1`` are then stamped out as counter-dict
    copies.  The emitted log is identical to tracing each rank separately.
    """
    nprocs = n_ranks or 50
    log = DarshanLog(exe=result.workload, nprocs=nprocs, run_time=result.seconds)

    posix: dict[tuple[str, int], DarshanRecord] = {}
    mpiio: dict[tuple[str, int], DarshanRecord] = {}

    def posix_record(fileset, rank: int) -> DarshanRecord:
        key = (fileset.name, rank)
        record = posix.get(key)
        if record is None:
            rtype = "file" if fileset.n_files <= nprocs else "file_group"
            suffix = "" if fileset.n_files == 1 else "*"
            record = DarshanRecord(
                module="POSIX",
                file=f"/mnt/testfs/{fileset.name}{suffix}",
                rank=rank,
                record_type=rtype,
            )
            record.counters["POSIX_FILE_COUNT"] = (
                fileset.n_files / nprocs if rank >= 0 else fileset.n_files
            )
            record.counters["POSIX_FILE_SIZE"] = fileset.file_size
            posix[key] = record
        return record

    def mpiio_record(fileset, rank: int) -> DarshanRecord:
        key = (fileset.name, rank)
        record = mpiio.get(key)
        if record is None:
            record = DarshanRecord(
                module="MPIIO",
                file=f"/mnt/testfs/{fileset.name}",
                rank=rank,
            )
            mpiio[key] = record
        return record

    def bump(record: DarshanRecord, counter: str, amount: float) -> None:
        record.counters[counter] = record.get(counter) + amount

    for phase_result in result.phases:
        phase = phase_result.phase
        seconds = phase_result.seconds
        if isinstance(phase, DataPhase):
            _trace_data_phase(
                phase, seconds, nprocs, posix_record, mpiio_record, bump
            )
        elif isinstance(phase, MetaPhase):
            _trace_meta_phase(phase, seconds, nprocs, posix_record, bump)

    for store in (posix, mpiio):
        for (fileset_name, rank), record in list(store.items()):
            if rank != 0:
                continue
            for other in range(1, nprocs):
                # Replicas share rank 0's counter dict: counters are never
                # mutated after tracing (fault paths only drop whole
                # records), and the shared object lets the log parser
                # recognize identical-behaviour ranks without comparing
                # every counter.
                store[(fileset_name, other)] = DarshanRecord(
                    module=record.module,
                    file=record.file,
                    rank=other,
                    counters=record.counters,
                    record_type=record.record_type,
                )

    ranked = sorted(posix.values(), key=lambda r: (r.file, r.rank)) + sorted(
        mpiio.values(), key=lambda r: (r.file, r.rank)
    )
    log.records = ranked
    return log


def truncate_log(log: DarshanLog, keep_ranks: int) -> DarshanLog:
    """Drop the records of every rank ``>= keep_ranks`` (in place).

    Models a torn Darshan capture: the shared ``rank=-1`` reduction
    records and a prefix of per-rank records survive, the tail is lost,
    and ``lost_ranks`` flags the hole so analysis can report coverage
    instead of crashing on the partial log.  At least rank 0 always
    survives.
    """
    keep_ranks = max(1, min(keep_ranks, log.nprocs))
    if keep_ranks >= log.nprocs:
        return log
    log.records = [r for r in log.records if r.rank < keep_ranks]
    log.lost_ranks = log.nprocs - keep_ranks
    return log


def _trace_data_phase(phase, seconds, nprocs, posix_record, mpiio_record, bump):
    fs = phase.fileset
    ops = phase.ops_per_rank
    is_read = phase.io == "read"
    time_counter = "POSIX_F_READ_TIME" if is_read else "POSIX_F_WRITE_TIME"
    op_counter = "POSIX_READS" if is_read else "POSIX_WRITES"
    byte_counter = "POSIX_BYTES_READ" if is_read else "POSIX_BYTES_WRITTEN"
    consec_counter = "POSIX_CONSEC_READS" if is_read else "POSIX_CONSEC_WRITES"
    consec = ops - 1 if phase.pattern == "seq" else 0
    seeks = 0 if phase.pattern == "seq" else ops

    # Rank 0 stands in for every rank (replicated by ``trace_run``); the
    # shared reduction record carries the nprocs-scaled totals.
    ranks = [0, -1] if fs.shared else [0]
    for rank in ranks:
        scale = nprocs if rank == -1 else 1
        record = posix_record(fs, rank)
        bump(record, "POSIX_OPENS", 1 * scale)
        bump(record, op_counter, ops * scale)
        bump(record, byte_counter, phase.bytes_per_rank * scale)
        bump(record, consec_counter, consec * scale)
        bump(record, "POSIX_SEEKS", seeks * scale)
        bump(record, time_counter, seconds * scale)
        bump(record, "POSIX_F_META_TIME", 0.001 * scale)
        record.counters["POSIX_ACCESS1_ACCESS"] = phase.xfer_size
        bump(record, "POSIX_ACCESS1_COUNT", ops * scale)
        if phase.interface == "mpiio":
            mrec = mpiio_record(fs, rank)
            bump(mrec, "MPIIO_INDEP_OPENS", 1 * scale)
            bump(
                mrec,
                "MPIIO_INDEP_READS" if is_read else "MPIIO_INDEP_WRITES",
                ops * scale,
            )
            bump(
                mrec,
                "MPIIO_BYTES_READ" if is_read else "MPIIO_BYTES_WRITTEN",
                phase.bytes_per_rank * scale,
            )
            bump(
                mrec,
                "MPIIO_F_READ_TIME" if is_read else "MPIIO_F_WRITE_TIME",
                seconds * scale,
            )


_META_COUNTER = {
    "create": "POSIX_OPENS",
    "open": "POSIX_OPENS",
    "stat": "POSIX_STATS",
    "unlink": "POSIX_UNLINKS",
    "mkdir": "POSIX_MKDIRS",
    "close": None,  # folded into meta time
}


def _trace_meta_phase(phase, seconds, nprocs, posix_record, bump):
    fs = phase.fileset
    files = phase.files_per_rank
    data_ops = defaultdict(int)
    meta_ops = defaultdict(int)
    for op in phase.cycle:
        if op == "write_small":
            data_ops["write"] += 1
        elif op == "read_small":
            data_ops["read"] += 1
        else:
            meta_ops[op] += 1

    # Rank 0 stands in for every rank; ``trace_run`` replicates it.
    record = posix_record(fs, 0)
    for op, count in meta_ops.items():
        counter = _META_COUNTER[op]
        if counter:
            bump(record, counter, count * files)
    bump(record, "POSIX_F_META_TIME", seconds)
    if data_ops["write"]:
        bump(record, "POSIX_WRITES", data_ops["write"] * files)
        bump(record, "POSIX_BYTES_WRITTEN", data_ops["write"] * files * phase.data_bytes)
        record.counters["POSIX_ACCESS1_ACCESS"] = phase.data_bytes
        bump(record, "POSIX_ACCESS1_COUNT", data_ops["write"] * files)
    if data_ops["read"]:
        bump(record, "POSIX_READS", data_ops["read"] * files)
        bump(record, "POSIX_BYTES_READ", data_ops["read"] * files * phase.data_bytes)
