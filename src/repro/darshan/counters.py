"""Counter definitions for the POSIX and MPIIO modules.

Names and semantics follow Darshan 3.x; the subset covers everything the
paper's Analysis Agent needs: op counts, byte totals, access-size statistics,
sequentiality, sharing, and time split across read/write/metadata.
"""

from __future__ import annotations

POSIX_COUNTERS: dict[str, str] = {
    "POSIX_OPENS": "number of open/create calls on this file",
    "POSIX_READS": "number of read calls",
    "POSIX_WRITES": "number of write calls",
    "POSIX_SEEKS": "number of seek calls (non-sequential repositioning)",
    "POSIX_STATS": "number of stat/fstat calls",
    "POSIX_UNLINKS": "number of unlink calls",
    "POSIX_MKDIRS": "number of mkdir calls attributed to this record",
    "POSIX_BYTES_READ": "total bytes read",
    "POSIX_BYTES_WRITTEN": "total bytes written",
    "POSIX_CONSEC_READS": "reads at the offset immediately following the previous read",
    "POSIX_CONSEC_WRITES": "writes at the offset immediately following the previous write",
    "POSIX_ACCESS1_ACCESS": "most common access size in bytes",
    "POSIX_ACCESS1_COUNT": "count of accesses using the most common size",
    "POSIX_F_READ_TIME": "cumulative seconds spent in read calls",
    "POSIX_F_WRITE_TIME": "cumulative seconds spent in write calls",
    "POSIX_F_META_TIME": "cumulative seconds spent in metadata calls (open/stat/close/unlink)",
    "POSIX_FILE_COUNT": "number of files aggregated into this record (1 = a single file)",
    "POSIX_FILE_SIZE": "size in bytes of (each of) the file(s) in this record",
}

MPIIO_COUNTERS: dict[str, str] = {
    "MPIIO_INDEP_OPENS": "independent MPI-IO opens",
    "MPIIO_INDEP_READS": "independent MPI-IO reads",
    "MPIIO_INDEP_WRITES": "independent MPI-IO writes",
    "MPIIO_BYTES_READ": "total bytes read through MPI-IO",
    "MPIIO_BYTES_WRITTEN": "total bytes written through MPI-IO",
    "MPIIO_F_READ_TIME": "cumulative seconds in MPI-IO reads",
    "MPIIO_F_WRITE_TIME": "cumulative seconds in MPI-IO writes",
    "MPIIO_F_META_TIME": "cumulative seconds in MPI-IO metadata calls",
}

#: Columns present in every record regardless of module.
COMMON_COLUMNS: dict[str, str] = {
    "rank": "MPI rank that issued the operations; -1 means a shared record aggregated across all ranks",
    "file": "file path (for aggregated records, a representative path with a * suffix)",
    "record_type": "'file' for a single file, 'file_group' for an aggregate over many similar files",
}


def column_descriptions(module: str) -> dict[str, str]:
    """Merged column->description mapping for a module frame."""
    table = {"POSIX": POSIX_COUNTERS, "MPIIO": MPIIO_COUNTERS}[module]
    merged = dict(COMMON_COLUMNS)
    merged.update(table)
    return merged
