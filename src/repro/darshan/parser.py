"""Log preprocessing: Darshan log → Frames + column descriptions.

This is the paper's preprocessing script (§4.1): counters for each module are
extracted into separate dataframes with a string describing every column, and
the log header becomes a separate string variable.  The Analysis Agent
operates on this parsed form, never on the raw log.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.darshan.counters import column_descriptions
from repro.darshan.log import DarshanLog
from repro.frame import Frame


@dataclass
class ParsedLog:
    """The Analysis Agent's working set."""

    header: str
    frames: dict[str, Frame] = field(default_factory=dict)
    descriptions: dict[str, dict[str, str]] = field(default_factory=dict)

    def namespace(self) -> dict[str, object]:
        """Variables injected into the Analysis Agent's sandbox."""
        ns: dict[str, object] = {"header": self.header}
        for module, frame in self.frames.items():
            ns[module.lower()] = frame
            ns[f"{module.lower()}_columns"] = self.descriptions[module]
        return ns


def parse_log(log: DarshanLog) -> ParsedLog:
    """Convert a log into per-module Frames with described columns."""
    parsed = ParsedLog(header=log.header_text())
    for module in log.modules:
        records = log.module_records(module)
        columns = column_descriptions(module)
        # Zero-filled template in column order; per-record counters override
        # in place, which keeps key order (and the resulting Frame) identical
        # to counter-by-counter lookups while skipping them.
        template: dict[str, object] = {
            counter: 0.0
            for counter in columns
            if counter not in ("rank", "file", "record_type")
        }
        rows = []
        for record in records:
            row: dict[str, object] = {
                "rank": record.rank,
                "file": record.file,
                "record_type": record.record_type,
            }
            row.update(template)
            for counter, value in record.counters.items():
                if counter in template:
                    row[counter] = value
            rows.append(row)
        frame = Frame.from_records(rows)
        parsed.frames[module] = frame
        parsed.descriptions[module] = {
            name: desc for name, desc in columns.items() if name in frame.columns
        }
    return parsed
