"""Log preprocessing: Darshan log → Frames + column descriptions.

This is the paper's preprocessing script (§4.1): counters for each module are
extracted into separate dataframes with a string describing every column, and
the log header becomes a separate string variable.  The Analysis Agent
operates on this parsed form, never on the raw log.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.darshan.counters import column_descriptions
from repro.darshan.log import DarshanLog
from repro.frame import Frame


@dataclass
class ParsedLog:
    """The Analysis Agent's working set."""

    header: str
    frames: dict[str, Frame] = field(default_factory=dict)
    descriptions: dict[str, dict[str, str]] = field(default_factory=dict)

    def namespace(self) -> dict[str, object]:
        """Variables injected into the Analysis Agent's sandbox."""
        ns: dict[str, object] = {"header": self.header}
        for module, frame in self.frames.items():
            ns[module.lower()] = frame
            ns[f"{module.lower()}_columns"] = self.descriptions[module]
        return ns


def parse_log(log: DarshanLog) -> ParsedLog:
    """Convert a log into per-module Frames with described columns."""
    parsed = ParsedLog(header=log.header_text())
    for module in log.modules:
        records = log.module_records(module)
        columns = column_descriptions(module)
        counters = [
            counter
            for counter in columns
            if counter not in ("rank", "file", "record_type")
        ]
        # Columns are assembled directly (identity columns first, then every
        # described counter zero-filled in description order) — the same
        # layout a row-by-row build with a zero template produces, without
        # materializing a dict per record and re-pivoting.
        if records:
            data: dict[str, object] = {
                "rank": [record.rank for record in records],
                "file": [record.file for record in records],
                "record_type": [record.record_type for record in records],
            }
            # Darshan replicates identical-behaviour ranks; the tracer marks
            # that by sharing one counter dict across replicas.  Counter
            # lookups run once per *distinct* dict and fan out with one take
            # per column, which for an nprocs-rank log cuts the dict walks
            # by ~nprocs while producing byte-identical columns.
            distinct: dict[int, int] = {}
            unique_counters: list[dict] = []
            spread: list[int] = []
            for record in records:
                bucket = distinct.get(id(record.counters))
                if bucket is None:
                    bucket = distinct[id(record.counters)] = len(unique_counters)
                    unique_counters.append(record.counters)
                spread.append(bucket)
            if len(unique_counters) == len(records):
                for counter in counters:
                    data[counter] = [
                        record.counters.get(counter, 0.0) for record in records
                    ]
            else:
                indices = np.asarray(spread)
                for counter in counters:
                    values = np.asarray(
                        [c.get(counter, 0.0) for c in unique_counters]
                    )
                    data[counter] = values[indices]
            frame = Frame(data)
        else:
            frame = Frame()
        parsed.frames[module] = frame
        parsed.descriptions[module] = {
            name: desc for name, desc in columns.items() if name in frame.columns
        }
    return parsed
