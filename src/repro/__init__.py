"""repro — a reproduction of STELLAR (SC'25).

STELLAR is an autonomous, agentic-LLM tuner for high-performance parallel file
systems.  This package implements the full system described in the paper plus
every substrate its evaluation depends on:

- :mod:`repro.pfs` — a Lustre-like parallel file system performance simulator
  with a ``/proc``-style tunable parameter tree.
- :mod:`repro.workloads` — IOR, MDWorkbench, IO500, AMReX and MACSio workload
  generators.
- :mod:`repro.darshan` — Darshan-style I/O tracing, log format and parsing.
- :mod:`repro.llm` — a deterministic mock LLM with per-model capability
  profiles, tool-calling, token accounting and prompt-cache simulation.
- :mod:`repro.rag` — chunking, embeddings, a vector index and the RAG-based
  parameter-extraction pipeline.
- :mod:`repro.agents` — the Analysis Agent and Tuning Agent.
- :mod:`repro.rules` — tuning rule sets with conflict-resolving merges.
- :mod:`repro.core` — the STELLAR engine orchestrating offline extraction and
  the online trial-and-error tuning loop.
- :mod:`repro.experiments` — reproductions of every figure in the paper's
  evaluation section.

Quickstart::

    from repro import Stellar, make_cluster, get_workload

    cluster = make_cluster(seed=0)
    stellar = Stellar.build(cluster, model="claude-3.7-sonnet", seed=0)
    session = stellar.tune(get_workload("IOR_16M"), max_attempts=5)
    print(session.best_config, session.best_speedup)
"""

from repro.version import __version__

__all__ = ["__version__", "Stellar", "make_cluster", "get_workload"]

_LAZY = {
    "Stellar": ("repro.core.engine", "Stellar"),
    "make_cluster": ("repro.cluster", "make_cluster"),
    "get_workload": ("repro.workloads", "get_workload"),
}


def __getattr__(name):
    """Lazily resolve the public facade to avoid import cycles at startup."""
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module 'repro' has no attribute {name!r}") from None
    import importlib

    module = importlib.import_module(module_name)
    value = getattr(module, attr)
    globals()[name] = value
    return value
