"""The Lustre 2.15 backend: ground truth for the paper's evaluation system.

Every table here was previously scattered across ``pfs/params.py`` (the
parameter registry), ``corpus/manual.py`` (chapters), ``pfs/proctree.py``
(device naming), ``llm/knowledge.py`` (hallucination profile),
``llm/reasoning.py`` (tuning ladders) and ``baselines/expert.py`` /
``baselines/search.py`` — the backend refactor moved them, byte-identical,
into one place.

The registry mirrors Lustre 2.15 semantics: names, defaults and ranges follow
the real system where the paper cites them (e.g. ``llite.statahead_max``
default 32, range 0–8192).
"""

from __future__ import annotations

from repro.backends.base import (
    KiB,
    MiB,
    PAGE_SIZE,
    ParamSpec,
    PfsBackend,
    TuningHeuristics,
)


def _p(**kwargs) -> ParamSpec:
    return ParamSpec(**kwargs)


# ---------------------------------------------------------------------------
# The 13 high-impact runtime-tunable parameters STELLAR selects for Lustre.
# ---------------------------------------------------------------------------
_SELECTED = [
    _p(
        name="lov.stripe_size",
        ptype="int",
        default=1 * MiB,
        min_expr=64 * KiB,
        max_expr=4 * 1024 * MiB,
        unit="bytes",
        impact="high",
        per_device=False,
        selected=True,
        user_settable=True,
        description=(
            "The number of bytes stored on each OST object before moving to "
            "the next OST in a file's layout. Applies to files created after "
            "the setting is changed on their parent directory."
        ),
        perf_note=(
            "Directly shapes I/O throughput: stripe size should generally "
            "match or exceed the application's transfer size so each RPC "
            "stays within one stripe object; very small stripes fragment "
            "large transfers across servers, while very large stripes can "
            "reduce parallelism for medium files."
        ),
    ),
    _p(
        name="lov.stripe_count",
        ptype="int",
        default=1,
        min_expr=-1,
        max_expr="n_ost",
        unit="count",
        impact="high",
        selected=True,
        user_settable=True,
        description=(
            "The number of Object Storage Targets (OSTs) across which a file "
            "will be striped. A value of -1 stripes across all available "
            "OSTs. The layout is fixed when the file is created."
        ),
        perf_note=(
            "The primary lever for aggregate bandwidth on shared files: "
            "striping a large shared file across more OSTs multiplies "
            "available disk and network bandwidth and reduces extent lock "
            "contention. For workloads creating many small files, stripe "
            "counts above 1 add per-file object allocation overhead on "
            "every create and unlink, slowing metadata-intensive jobs."
        ),
    ),
    _p(
        name="osc.max_rpcs_in_flight",
        ptype="int",
        default=8,
        min_expr=1,
        max_expr=256,
        unit="count",
        impact="high",
        per_device=True,
        selected=True,
        description=(
            "The maximum number of concurrent bulk RPCs an object storage "
            "client (OSC) keeps in flight to a single OST."
        ),
        perf_note=(
            "Controls data-path concurrency and therefore directly "
            "influences both latency hiding and achievable bandwidth; "
            "increase it when many processes per node target the same OST "
            "or when the bandwidth-delay product exceeds the in-flight "
            "window."
        ),
    ),
    _p(
        name="osc.max_pages_per_rpc",
        ptype="int",
        default=256,
        min_expr=1,
        max_expr=4096,
        unit="pages",
        impact="high",
        per_device=True,
        selected=True,
        description=(
            "The maximum number of 4 KiB pages aggregated into a single bulk "
            "RPC (256 pages = 1 MiB; 4096 pages = 16 MiB)."
        ),
        perf_note=(
            "Larger RPCs amortize per-RPC CPU, network and disk-request "
            "overhead and directly improve large sequential I/O throughput; "
            "small random requests cannot be aggregated and see little "
            "benefit."
        ),
    ),
    _p(
        name="osc.max_dirty_mb",
        ptype="int",
        default=32,
        min_expr=1,
        max_expr=2047,
        unit="MiB",
        impact="high",
        per_device=True,
        selected=True,
        description=(
            "The amount of dirty (unwritten) client page-cache data allowed "
            "per OSC device before writers are throttled."
        ),
        perf_note=(
            "Governs write-back aggregation and pipelining: enough dirty "
            "headroom lets the client coalesce writes into full-size RPCs "
            "and keep the pipe to the OST full; too little serializes "
            "writers behind cache flushes."
        ),
    ),
    _p(
        name="osc.short_io_bytes",
        ptype="int",
        default=16 * KiB,
        min_expr=0,
        max_expr=64 * KiB,
        unit="bytes",
        impact="medium",
        per_device=True,
        selected=True,
        description=(
            "Requests at or below this size are sent inline in the RPC "
            "request/reply (short I/O) instead of using a separate bulk "
            "transfer handshake. 0 disables short I/O."
        ),
        perf_note=(
            "Reduces per-request latency for small random reads and writes "
            "by skipping the bulk DMA setup round-trip; irrelevant for "
            "large transfers."
        ),
    ),
    _p(
        name="llite.max_read_ahead_mb",
        ptype="int",
        default=64,
        min_expr=0,
        max_expr="system_memory_mb / 2",
        unit="MiB",
        impact="high",
        selected=True,
        description=(
            "The maximum amount of data, per client mount, that may be "
            "prefetched by the readahead engine across all files."
        ),
        perf_note=(
            "Determines how far sequential reads can run ahead of the "
            "application, hiding network and disk latency; raising it helps "
            "streaming reads from many files at once, while random readers "
            "gain nothing."
        ),
    ),
    _p(
        name="llite.max_read_ahead_per_file_mb",
        ptype="int",
        default=32,
        min_expr=0,
        max_expr="llite.max_read_ahead_mb / 2",
        unit="MiB",
        impact="high",
        selected=True,
        description=(
            "The maximum readahead window for a single file. Its value may "
            "be at most half of llite.max_read_ahead_mb."
        ),
        perf_note=(
            "Caps per-stream prefetch depth: large sequential reads of a "
            "single big file need this window to cover the bandwidth-delay "
            "product to the OSTs."
        ),
    ),
    _p(
        name="llite.max_read_ahead_whole_mb",
        ptype="int",
        default=2,
        min_expr=0,
        max_expr="llite.max_read_ahead_per_file_mb",
        unit="MiB",
        impact="medium",
        selected=True,
        description=(
            "Files smaller than this size are read in their entirety on "
            "first access rather than page by page."
        ),
        perf_note=(
            "Turns many small reads of a small file into one RPC; useful "
            "when applications scan small-to-medium files front to back."
        ),
    ),
    _p(
        name="llite.max_cached_mb",
        ptype="int",
        default=147456,  # 3/4 of 196 GiB client RAM, in MiB
        min_expr=32,
        max_expr="system_memory_mb",
        unit="MiB",
        impact="medium",
        selected=True,
        description=(
            "The maximum amount of file data cached in the client page "
            "cache for this mount (default: three quarters of RAM)."
        ),
        perf_note=(
            "Bounds how much previously read or written data can be served "
            "from client memory on re-access; shrinking it forces re-reads "
            "over the network."
        ),
    ),
    _p(
        name="llite.statahead_max",
        ptype="int",
        default=32,
        min_expr=0,
        max_expr=8192,
        unit="count",
        impact="high",
        selected=True,
        description=(
            "The maximum number of files for which attributes are "
            "prefetched asynchronously by the statahead thread when a "
            "process traverses a directory (e.g. readdir followed by stat). "
            "Setting it to 0 disables statahead."
        ),
        perf_note=(
            "Pipelines metadata attribute fetches during directory scans, "
            "hiding per-stat round-trip latency; directly accelerates "
            "metadata-intensive workloads that stat many files in readdir "
            "order."
        ),
    ),
    _p(
        name="mdc.max_rpcs_in_flight",
        ptype="int",
        default=8,
        min_expr=2,  # must stay above max_mod_rpcs_in_flight's minimum of 1
        max_expr=256,
        unit="count",
        per_device=True,
        impact="high",
        selected=True,
        description=(
            "The maximum number of concurrent metadata RPCs a client keeps "
            "in flight to a single MDT."
        ),
        perf_note=(
            "Caps metadata concurrency per client node; when more processes "
            "than this issue metadata operations simultaneously, requests "
            "queue on the client and metadata operation rates drop."
        ),
    ),
    _p(
        name="mdc.max_mod_rpcs_in_flight",
        ptype="int",
        default=7,
        min_expr=1,
        max_expr="mdc.max_rpcs_in_flight - 1",
        unit="count",
        per_device=True,
        impact="high",
        selected=True,
        description=(
            "The maximum number of concurrent *modifying* metadata RPCs "
            "(create, unlink, rename, setattr) in flight to a single MDT. "
            "Must be strictly less than mdc.max_rpcs_in_flight."
        ),
        perf_note=(
            "Bounds file creation and deletion concurrency per client; "
            "workloads that create or remove many files in parallel are "
            "directly limited by this value."
        ),
    ),
]

# ---------------------------------------------------------------------------
# Binary parameters: significant performance impact but represent user
# trade-offs (data integrity, semantics) — excluded from tuning by design.
# ---------------------------------------------------------------------------
_BINARY = [
    _p(
        name="osc.checksums",
        ptype="bool",
        default=1,
        min_expr=0,
        max_expr=1,
        unit="flag",
        binary=True,
        impact="high",
        per_device=True,
        description=(
            "Enables in-memory checksums of bulk data at the osc layer to "
            "detect corruption between client and OST."
        ),
        perf_note=(
            "Checksumming costs CPU per transferred byte and measurably "
            "reduces large-transfer throughput, but disabling it risks "
            "undetected data corruption; configure per data-integrity "
            "requirements rather than for performance."
        ),
    ),
    _p(
        name="llite.checksums",
        ptype="bool",
        default=1,
        min_expr=0,
        max_expr=1,
        unit="flag",
        binary=True,
        impact="high",
        description=(
            "Enables checksums at the llite layer for data read into or "
            "written from the client page cache."
        ),
        perf_note=(
            "Like osc checksums, a data-integrity trade-off: it consumes "
            "client CPU per byte and should follow integrity policy, not "
            "performance goals."
        ),
    ),
    _p(
        name="llite.fast_read",
        ptype="bool",
        default=1,
        min_expr=0,
        max_expr=1,
        unit="flag",
        binary=True,
        impact="medium",
        description=(
            "Allows reads to be served directly from the page cache without "
            "taking the distributed lock when the pages are already cached."
        ),
        perf_note=(
            "A correctness/performance trade-off for concurrent writers; "
            "leave enabled unless strict lock semantics are required."
        ),
    ),
    _p(
        name="llite.statahead_agl",
        ptype="bool",
        default=1,
        min_expr=0,
        max_expr=1,
        unit="flag",
        binary=True,
        impact="low",
        description=(
            "Enables asynchronous glimpse locks (AGL) so statahead can also "
            "prefetch file sizes from OSTs."
        ),
        perf_note="Complements statahead for ls -l style scans.",
    ),
    _p(
        name="osc.grant_shrink",
        ptype="bool",
        default=1,
        min_expr=0,
        max_expr=1,
        unit="flag",
        binary=True,
        impact="low",
        doc="partial",
        description=(
            "Allows the client to return unused grant (preallocated write "
            "space) to OSTs when idle."
        ),
        perf_note="Affects grant accounting, not steady-state throughput.",
    ),
]

# ---------------------------------------------------------------------------
# Writable but low/no-impact or under-documented parameters: the extraction
# pipeline must filter these out.
# ---------------------------------------------------------------------------
_FILTERED = [
    _p(
        name="ldlm.lru_size",
        ptype="int",
        default=0,
        min_expr=0,
        max_expr=1 << 20,
        unit="count",
        impact="low",
        description=(
            "The number of client-side locks kept in the LRU cached locks "
            "queue; 0 enables dynamic sizing."
        ),
        perf_note=(
            "Primarily affects client memory usage rather than directly "
            "impacting I/O performance; oversizing it wastes memory."
        ),
    ),
    _p(
        name="ldlm.lru_max_age",
        ptype="int",
        default=3900,
        min_expr=1,
        max_expr=36000,
        unit="seconds",
        impact="low",
        doc="partial",
        description="Maximum age of an unused lock before cancellation.",
        perf_note="A memory/lock housekeeping setting.",
    ),
    _p(
        name="osc.idle_timeout",
        ptype="int",
        default=20,
        min_expr=0,
        max_expr=3600,
        unit="seconds",
        impact="low",
        doc="partial",
        per_device=True,
        description="Seconds of inactivity before an idle OSC connection is closed.",
        perf_note="A connection housekeeping setting.",
    ),
    _p(
        name="osc.resend_count",
        ptype="int",
        default=4,
        min_expr=0,
        max_expr=10,
        unit="count",
        impact="low",
        doc="partial",
        per_device=True,
        description="How many times a failed request is resent before erroring.",
        perf_note="Matters for fault handling, not steady-state performance.",
    ),
    _p(
        name="mdc.ping_interval",
        ptype="int",
        default=25,
        min_expr=1,
        max_expr=600,
        unit="seconds",
        impact="none",
        doc="none",
        per_device=True,
        description="Interval between keep-alive pings to the MDT.",
        perf_note="",
    ),
    _p(
        name="nrs.delay_min",
        ptype="int",
        default=5,
        min_expr=0,
        max_expr=3600,
        unit="seconds",
        impact="none",
        description=(
            "Minimum artificial delay injected by the NRS delay policy."
        ),
        perf_note=(
            "The delay policy simulates high server load scenarios for "
            "testing; it is relevant to experimentation but not directly "
            "connected to I/O performance tuning."
        ),
    ),
    _p(
        name="nrs.delay_max",
        ptype="int",
        default=10,
        min_expr=0,
        max_expr=3600,
        unit="seconds",
        impact="none",
        description="Maximum artificial delay injected by the NRS delay policy.",
        perf_note=(
            "Used together with nrs.delay_min to simulate loaded servers "
            "during testing; not a performance tuning control."
        ),
    ),
    _p(
        name="nrs.delay_pct",
        ptype="int",
        default=100,
        min_expr=0,
        max_expr=100,
        unit="count",
        impact="none",
        description="Percentage of requests subjected to the NRS delay policy.",
        perf_note="Testing aid; not a performance tuning control.",
    ),
    _p(
        name="llite.lazystatfs",
        ptype="bool",
        default=1,
        min_expr=0,
        max_expr=1,
        unit="flag",
        binary=True,
        impact="low",
        doc="partial",
        description="Allows statfs to return without waiting for unreachable OSTs.",
        perf_note="Availability behaviour, not throughput.",
    ),
    _p(
        name="llite.xattr_cache",
        ptype="bool",
        default=1,
        min_expr=0,
        max_expr=1,
        unit="flag",
        binary=True,
        impact="low",
        doc="partial",
        description="Caches extended attributes on the client.",
        perf_note="Minor metadata effect for xattr-heavy workloads only.",
    ),
]

# ---------------------------------------------------------------------------
# Read-only informational entries (exist in /proc but are not writable).
# ---------------------------------------------------------------------------
_READONLY = [
    _p(name="lov.version", ptype="int", default=2155, writable=False, impact="none", doc="none"),
    _p(name="llite.blocksize", ptype="int", default=4096, writable=False, impact="none", doc="none"),
    _p(name="osc.kbytestotal", ptype="int", default=0, writable=False, impact="none", doc="none", per_device=True),
    _p(name="osc.kbytesfree", ptype="int", default=0, writable=False, impact="none", doc="none", per_device=True),
    _p(name="osc.stats", ptype="int", default=0, writable=False, impact="none", doc="none", per_device=True),
    _p(name="mdc.uuid", ptype="int", default=0, writable=False, impact="none", doc="none", per_device=True),
    _p(name="mdc.stats", ptype="int", default=0, writable=False, impact="none", doc="none", per_device=True),
    _p(name="llite.stats", ptype="int", default=0, writable=False, impact="none", doc="none"),
    _p(name="mds.num_exports", ptype="int", default=11, writable=False, impact="none", doc="none"),
]

# ---------------------------------------------------------------------------
# Manual chapters
# ---------------------------------------------------------------------------
_SUBSYSTEM_CHAPTER = {
    "lov": "Managing File Layout (Striping)",
    "osc": "Tuning the Object Storage Client",
    "llite": "Tuning the Lustre Client (llite)",
    "mdc": "Tuning the Metadata Client",
    "ldlm": "The Lustre Distributed Lock Manager",
    "nrs": "Network Request Scheduler Policies",
    "mds": "Metadata Server Administration",
}

_FILLER_CHAPTERS = (
    (
        "Introduction to the Lustre Architecture",
        "A Lustre file system consists of a Management Server (MGS), one or "
        "more Metadata Servers (MDS) exporting Metadata Targets (MDTs), and "
        "Object Storage Servers (OSS) exporting Object Storage Targets "
        "(OSTs). Clients mount the file system through the llite layer and "
        "communicate with servers using the PtlRPC protocol over LNet. File "
        "metadata (names, permissions, layout) lives on the MDT while file "
        "data is striped over OST objects. The separation of metadata and "
        "data paths is what allows a Lustre file system to scale bandwidth "
        "by adding OSS nodes.",
    ),
    (
        "Understanding PtlRPC and Bulk Transfers",
        "Data moves between clients and OSTs using bulk RPCs. A bulk "
        "transfer is negotiated with a request/reply handshake after which "
        "the payload pages are moved via remote DMA where the fabric "
        "supports it. Requests are queued per import and scheduled by the "
        "Network Request Scheduler on the server. Each client maintains a "
        "separate import (and therefore separate request queues and "
        "in-flight accounting) for every OST and MDT it communicates with.",
    ),
    (
        "LNet Networking",
        "LNet provides the message passing layer used by PtlRPC. Network "
        "interfaces are grouped into LNet networks such as tcp0 or o2ib0. "
        "Routing between networks is performed by LNet routers. The "
        "configuration is managed with lnetctl and persists in "
        "/etc/lnet.conf. Credits control the number of concurrent messages "
        "per peer and per interface.",
    ),
    (
        "Recovery and High Availability",
        "When a client loses contact with a server it enters recovery: "
        "requests are replayed after reconnection in transaction order. "
        "Servers maintain a recovery window during which clients must "
        "reconnect; requests from clients that miss the window are evicted. "
        "Failover pairs share storage so a standby server can take over a "
        "target. Imperative recovery shortens the window using the MGS to "
        "notify clients of restarts.",
    ),
    (
        "Quotas and Usage Accounting",
        "Lustre enforces block and inode quotas per user, group and "
        "project. Quota masters run on the MDT and acquire/release quota "
        "space from slaves on OSTs. The lfs quota and lfs setquota commands "
        "manage limits; accounting is always enabled on modern versions "
        "even when enforcement is off.",
    ),
    (
        "The Distributed NamespacE (DNE)",
        "DNE allows a file system to use multiple MDTs. Remote directories "
        "place a subtree on another MDT; striped directories hash directory "
        "entries across several MDTs to scale the operation rate of a "
        "single large directory. Striped directories add an extra RPC to "
        "some operations, so they are recommended only for directories with "
        "very high file counts.",
    ),
    (
        "Hierarchical Storage Management (HSM)",
        "HSM connects Lustre to an archive tier. Files can be archived, "
        "released (leaving a stub), and restored on access via copytools. "
        "Release and restore operations are coordinated by the MDT, which "
        "maintains HSM state flags per file.",
    ),
    (
        "Monitoring with the jobstats Framework",
        "Job statistics attribute server-side operation counts to scheduler "
        "job identifiers. Enable them by setting jobid_var appropriately; "
        "statistics appear under obdfilter.*.job_stats and "
        "mdt.*.job_stats and are invaluable when attributing load on a "
        "shared file system to specific batch jobs.",
    ),
)

# ---------------------------------------------------------------------------
# Hallucination profile (what unaided models mis-remember — Figure 2)
# ---------------------------------------------------------------------------
_MISCONCEPTIONS = {
    "lov.stripe_count": (
        "The number of OSTs used by a directory; setting the parent "
        "directory's stripe count to -1 distributes the files in it more "
        "evenly across all OSTs."
    ),
    "lov.stripe_size": (
        "The block size used by the underlying ldiskfs file system for "
        "each OST object."
    ),
    "llite.statahead_max": (
        "The maximum number of concurrent statahead threads the client "
        "may spawn while listing directories."
    ),
    "osc.max_rpcs_in_flight": (
        "The total number of RPCs a client may send per second to one OST."
    ),
    "osc.max_pages_per_rpc": (
        "The number of pages the OST reads ahead from disk for each RPC."
    ),
    "osc.max_dirty_mb": (
        "The maximum size of a single write call before it bypasses the "
        "page cache and is sent synchronously."
    ),
    "osc.short_io_bytes": (
        "The minimum size of an RPC before compression is applied to the "
        "payload."
    ),
    "llite.max_read_ahead_mb": (
        "The size of the read cache kept on each OSS for recently read data."
    ),
    "llite.max_read_ahead_per_file_mb": (
        "The largest file size eligible for client-side caching."
    ),
    "llite.max_read_ahead_whole_mb": (
        "The amount of data read ahead after every random read."
    ),
    "llite.max_cached_mb": (
        "The maximum memory the MDS uses to cache inode attributes."
    ),
    "mdc.max_rpcs_in_flight": (
        "The number of metadata server threads reserved for this client."
    ),
    "mdc.max_mod_rpcs_in_flight": (
        "The number of retries for failed metadata modifications."
    ),
}

#: Pinned Figure 2 outcomes: (model, param) -> (definition_correct, max_value)
_BELIEF_OVERRIDES = {
    ("gpt-4.5", "llite.statahead_max"): (False, 64),
    ("gemini-2.5-pro", "llite.statahead_max"): (False, 128),
    ("claude-3.7-sonnet", "llite.statahead_max"): (True, 1024),
}

#: Misconceptions so pervasive in training corpora that every model holds
#: them unaided.  The stripe-count one is the paper's own §5.4 example: the
#: ablated agent claims stripe count "distributes the files more evenly
#: across all OSTs" — a flawed reading of how striping affects a directory's
#: files.
_UNIVERSAL_FLAWS = frozenset({"lov.stripe_count"})

# ---------------------------------------------------------------------------
# Mock tuning policy heuristics (what a grounded LLM proposes for Lustre)
# ---------------------------------------------------------------------------
def _xfer(report) -> int:
    if report is None:
        return MiB
    return int(report.get("common_access_size", MiB)) or MiB


def _stripe_size_for(report, facts, aggressive: bool) -> int:
    xfer = _xfer(report)
    floor = 16 * MiB if aggressive else 4 * MiB
    return max(floor, min(xfer, 64 * MiB))


_LADDERS = {
    "shared_seq_large": (
        ("lov.stripe_count", lambda r, f: -1, lambda r, f: -1),
        (
            "lov.stripe_size",
            lambda r, f: _stripe_size_for(r, f, False),
            lambda r, f: _stripe_size_for(r, f, True),
        ),
        ("osc.max_pages_per_rpc", lambda r, f: 1024, lambda r, f: 4096),
        ("osc.max_rpcs_in_flight", lambda r, f: 16, lambda r, f: 32),
        ("osc.max_dirty_mb", lambda r, f: 128, lambda r, f: 512),
    ),
    "shared_random_small": (
        ("lov.stripe_count", lambda r, f: -1, lambda r, f: -1),
        ("osc.max_rpcs_in_flight", lambda r, f: 16, lambda r, f: 32),
        (
            "osc.short_io_bytes",
            lambda r, f: 64 * KiB if _xfer(r) <= 64 * KiB else None,
            lambda r, f: 64 * KiB if _xfer(r) <= 64 * KiB else None,
        ),
        ("osc.max_pages_per_rpc", lambda r, f: 1024, lambda r, f: 1024),
    ),
    "metadata_small_files": (
        ("mdc.max_rpcs_in_flight", lambda r, f: 16, lambda r, f: 64),
        ("mdc.max_mod_rpcs_in_flight", lambda r, f: 8, lambda r, f: 32),
        ("llite.statahead_max", lambda r, f: 128, lambda r, f: 512),
    ),
    "fpp_data": (
        ("osc.max_pages_per_rpc", lambda r, f: 1024, lambda r, f: 4096),
        (
            "lov.stripe_size",
            lambda r, f: _stripe_size_for(r, f, False),
            lambda r, f: _stripe_size_for(r, f, True),
        ),
        ("osc.max_rpcs_in_flight", lambda r, f: 16, lambda r, f: 32),
        ("osc.max_dirty_mb", lambda r, f: 128, lambda r, f: 256),
    ),
}
_LADDERS["mixed"] = (
    _LADDERS["shared_seq_large"][:4]
    + (_LADDERS["shared_random_small"][2],)  # short_io
    + _LADDERS["metadata_small_files"]
)

_SECONDARY = {
    "shared_seq_large": (
        ("llite.max_read_ahead_mb", lambda r, f: 2048),
        ("llite.max_read_ahead_per_file_mb", lambda r, f: 1024),
    ),
    "shared_random_small": (
        ("osc.max_dirty_mb", lambda r, f: 256),
    ),
    "metadata_small_files": (
        ("mdc.max_rpcs_in_flight", lambda r, f: 128),
        ("llite.statahead_max", lambda r, f: 2048),
    ),
    "fpp_data": (
        ("llite.max_read_ahead_mb", lambda r, f: 1024),
        ("llite.max_read_ahead_per_file_mb", lambda r, f: 512),
    ),
    "mixed": (
        ("llite.max_read_ahead_mb", lambda r, f: 2048),
        ("llite.max_read_ahead_per_file_mb", lambda r, f: 1024),
    ),
}

#: What a model with a *flawed* definition does instead (keyed by parameter).
_MISGUIDED_ACTIONS = {
    "lov.stripe_count": lambda r, f: -1,  # "distribute files across OSTs"
    "lov.stripe_size": lambda r, f: 64 * KiB,  # "match the fs block size"
    "llite.statahead_max": lambda r, f: 8,  # "limit statahead threads"
    "osc.max_dirty_mb": lambda r, f: 4,  # "smaller sync threshold"
    "osc.max_pages_per_rpc": lambda r, f: 64,  # "server readahead pages"
    "osc.max_rpcs_in_flight": lambda r, f: 16,  # direction survives, magnitude off
    "mdc.max_rpcs_in_flight": lambda r, f: 16,
    "mdc.max_mod_rpcs_in_flight": lambda r, f: 8,
    "osc.short_io_bytes": lambda r, f: 0,  # "disable compression threshold"
    "llite.max_read_ahead_mb": lambda r, f: 4096,
    "llite.max_read_ahead_per_file_mb": lambda r, f: 2048,
    "llite.max_read_ahead_whole_mb": lambda r, f: 64,
    "llite.max_cached_mb": lambda r, f: 4096,
}

#: Misconception-driven levers an UNGROUNDED agent adds per workload class.
_UNGROUNDED_TRAPS = {
    "metadata_small_files": (("lov.stripe_count", -1),),
    "mixed": (("lov.stripe_size", 64 * KiB),),
    "shared_random_small": (("lov.stripe_size", 64 * KiB),),
    "shared_seq_large": (("osc.max_dirty_mb", 4),),
    "fpp_data": (("lov.stripe_count", -1),),
}

_META_PARAMS = frozenset(
    {
        "mdc.max_rpcs_in_flight",
        "mdc.max_mod_rpcs_in_flight",
        "llite.statahead_max",
    }
)

# ---------------------------------------------------------------------------
# Expert baseline (§5.2)
# ---------------------------------------------------------------------------
_EXPERT = {
    "IOR_64K": {
        "lov.stripe_count": -1,
        "osc.max_rpcs_in_flight": 32,
        "osc.short_io_bytes": 64 * KiB,
        "osc.max_pages_per_rpc": 1024,
        "osc.max_dirty_mb": 256,
    },
    "IOR_16M": {
        "lov.stripe_count": -1,
        "lov.stripe_size": 16 * MiB,
        "osc.max_pages_per_rpc": 4096,
        "osc.max_rpcs_in_flight": 32,
        "osc.max_dirty_mb": 512,
        "llite.max_read_ahead_mb": 2048,
        "llite.max_read_ahead_per_file_mb": 1024,
    },
    "MDWorkbench_2K": {
        "mdc.max_rpcs_in_flight": 64,
        "mdc.max_mod_rpcs_in_flight": 32,
        "llite.statahead_max": 1024,
    },
    "MDWorkbench_8K": {
        "mdc.max_rpcs_in_flight": 64,
        "mdc.max_mod_rpcs_in_flight": 32,
        "llite.statahead_max": 1024,
    },
    "IO500": {
        # Bandwidth-focused: tuned for the IOR phases that dominate wall
        # time, per common practice; metadata client limits left default.
        "lov.stripe_count": 5,
        "lov.stripe_size": 16 * MiB,
        "osc.max_pages_per_rpc": 4096,
        "osc.max_rpcs_in_flight": 32,
        "osc.max_dirty_mb": 512,
        "llite.max_read_ahead_mb": 2048,
        "llite.max_read_ahead_per_file_mb": 1024,
    },
    "AMReX": {
        "lov.stripe_count": -1,
        "osc.max_pages_per_rpc": 4096,
        "osc.max_rpcs_in_flight": 32,
        "osc.max_dirty_mb": 256,
    },
    "MACSio_512K": {
        "lov.stripe_count": -1,
        "osc.max_rpcs_in_flight": 32,
        "osc.max_pages_per_rpc": 1024,
        "osc.max_dirty_mb": 256,
    },
    "MACSio_16M": {
        "lov.stripe_count": -1,
        "lov.stripe_size": 16 * MiB,
        "osc.max_pages_per_rpc": 4096,
        "osc.max_rpcs_in_flight": 32,
        "osc.max_dirty_mb": 512,
    },
}

_RATIONALE = {
    "IOR_64K": (
        "Random small writes to one shared file: stripe across every OST to "
        "spread per-request overhead and lock traffic, raise RPC "
        "concurrency, and enable inline short I/O for 64 KiB requests."
    ),
    "IOR_16M": (
        "Large sequential shared-file streams: stripe wide with 16 MiB "
        "stripes matching the transfer size, maximize RPC size and "
        "concurrency, and widen readahead for the read phase."
    ),
    "MDWorkbench_2K": (
        "Pure metadata churn over many tiny files: keep the default layout "
        "(striping would add per-file object costs) and raise the client "
        "metadata concurrency limits and statahead window."
    ),
    "MDWorkbench_8K": "Same reasoning as MDWorkbench_2K.",
    "IO500": (
        "The score is usually dominated by the IOR bandwidth phases, so "
        "configure for streaming throughput across all OSTs."
    ),
    "AMReX": (
        "A small number of shared level files written in large chunks: "
        "stripe wide so both output files use every OST."
    ),
    "MACSio_512K": (
        "Scattered medium writes to a single shared dump file: stripe wide "
        "and deepen the RPC pipeline."
    ),
    "MACSio_16M": (
        "Large contiguous dump objects: stripe wide with large stripes and "
        "maximum RPC size."
    ),
}

#: Candidate grids for the oracle coordinate-descent baseline.
_SEARCH_CANDIDATES = {
    "lov.stripe_count": (1, 2, 5, -1),
    "lov.stripe_size": (1 * MiB, 4 * MiB, 16 * MiB, 64 * MiB),
    "osc.max_rpcs_in_flight": (8, 16, 32, 64),
    "osc.max_pages_per_rpc": (256, 1024, 4096),
    "osc.max_dirty_mb": (32, 128, 512),
    "osc.short_io_bytes": (0, 16 * KiB, 64 * KiB),
    "llite.max_read_ahead_mb": (64, 512, 2048),
    "llite.max_read_ahead_per_file_mb": (32, 256, 1024),
    "llite.max_read_ahead_whole_mb": (2, 16),
    "llite.max_cached_mb": (65536, 147456),
    "llite.statahead_max": (32, 128, 512, 2048),
    "mdc.max_rpcs_in_flight": (8, 32, 128),
    "mdc.max_mod_rpcs_in_flight": (7, 16, 64),
}


# ---------------------------------------------------------------------------
# /proc device naming
# ---------------------------------------------------------------------------
def _osc_devices(cluster, fsname: str) -> list[str]:
    return [f"{fsname}-OST{i:04x}-osc" for i in range(cluster.n_ost)]


def _mdc_devices(cluster, fsname: str) -> list[str]:
    return [f"{fsname}-MDT0000-mdc"]


BACKEND = PfsBackend(
    name="lustre",
    display_name="Lustre 2.15",
    fs_family="Lustre",
    proc_root="/proc/fs/lustre",
    specs=tuple(_SELECTED + _BINARY + _FILTERED + _READONLY),
    roles={
        "stripe_size_bytes": ("lov.stripe_size", 1),
        "stripe_count": ("lov.stripe_count", 1),
        "data_rpcs_in_flight": ("osc.max_rpcs_in_flight", 1),
        "rpc_cap_bytes": ("osc.max_pages_per_rpc", PAGE_SIZE),
        "dirty_bytes": ("osc.max_dirty_mb", MiB),
        "short_io_bytes": ("osc.short_io_bytes", 1),
        "checksums": ("osc.checksums", 1),
        "read_ahead_total_bytes": ("llite.max_read_ahead_mb", MiB),
        "read_ahead_file_bytes": ("llite.max_read_ahead_per_file_mb", MiB),
        "read_ahead_whole_bytes": ("llite.max_read_ahead_whole_mb", MiB),
        "cached_bytes": ("llite.max_cached_mb", MiB),
        "meta_rpcs_in_flight": ("mdc.max_rpcs_in_flight", 1),
        "meta_mod_rpcs_in_flight": ("mdc.max_mod_rpcs_in_flight", 1),
        "statahead_count": ("llite.statahead_max", 1),
    },
    manual_title="Lustre Software Release 2.15 Operations Manual (simulated)",
    manual_intro=(
        "This manual describes the administration and tuning of the Lustre "
        "parallel file system."
    ),
    subsystem_chapters=_SUBSYSTEM_CHAPTER,
    filler_chapters=_FILLER_CHAPTERS,
    cost_overrides={},  # CostModel defaults are calibrated to Lustre 2.15
    misconceptions=_MISCONCEPTIONS,
    belief_overrides=_BELIEF_OVERRIDES,
    universal_flaws=_UNIVERSAL_FLAWS,
    tuning=TuningHeuristics(
        ladders=_LADDERS,
        secondary=_SECONDARY,
        misguided_actions=_MISGUIDED_ACTIONS,
        ungrounded_traps=_UNGROUNDED_TRAPS,
        meta_params=_META_PARAMS,
        noise_param="llite.max_cached_mb",
        noise_value=65536,
    ),
    expert_configs=_EXPERT,
    expert_rationale=_RATIONALE,
    search_candidates=_SEARCH_CANDIDATES,
    device_namers={"osc": _osc_devices, "mdc": _mdc_devices},
)
