"""A BeeGFS-flavored backend: the second file system wired through the stack.

Modeled on BeeGFS 7.x semantics: striping is a per-directory *pattern*
(chunk size + number of storage targets, set with ``beegfs-ctl``), the
client multiplexes work over a bounded pool of connections per server
(``connMaxInternodeNum``), buffered I/O coalesces writes in fixed-size file
cache buffers, and there is no Lustre-style short-I/O fast path.  Parameter
names follow the ``beegfs-client.conf`` camel-to-dotted convention used by
this reproduction's registry (``client.conn_max_internode_num`` etc.) and
defaults/ranges are plausible for the modeled 10-node testbed — this is a
"BeeGFS-like" system for cross-backend experiments, not a byte-exact copy
of any shipping release.

Deliberate contrasts with the Lustre backend (so cross-backend transfer is
non-trivial):

- different parameter names and units everywhere (KiB buffers vs. 4 KiB
  pages, chunk size in bytes vs. stripe size);
- wider default stripe pattern (4 targets) but a smaller default chunk;
- directory-entry prefetch ships *disabled* (``meta.dentry_prefetch_num``
  default 0), so metadata scans have more headroom to gain;
- no short-I/O role and slightly different wire-cost coefficients.
"""

from __future__ import annotations

from repro.backends.base import (
    KiB,
    MiB,
    ParamSpec,
    PfsBackend,
    TuningHeuristics,
)


def _p(**kwargs) -> ParamSpec:
    return ParamSpec(**kwargs)


# ---------------------------------------------------------------------------
# The 12 high-impact runtime-tunable parameters STELLAR selects for BeeGFS.
# ---------------------------------------------------------------------------
_SELECTED = [
    _p(
        name="stripe.chunk_size",
        ptype="int",
        default=512 * KiB,
        min_expr=64 * KiB,
        max_expr=64 * MiB,
        unit="bytes",
        impact="high",
        selected=True,
        user_settable=True,
        description=(
            "The number of bytes stored on each storage target before the "
            "layout advances to the next target in the stripe pattern. "
            "Applies to files created after the pattern is set on their "
            "parent directory."
        ),
        perf_note=(
            "Directly shapes streaming throughput: chunks should cover the "
            "application's transfer size so one request stays within a "
            "single target; tiny chunks fragment large transfers across "
            "servers, while oversized chunks reduce parallelism for medium "
            "files."
        ),
    ),
    _p(
        name="stripe.num_targets",
        ptype="int",
        default=4,
        min_expr=-1,
        max_expr="n_ost",
        unit="count",
        impact="high",
        selected=True,
        user_settable=True,
        description=(
            "The number of storage targets a file's contents are striped "
            "across. A value of -1 stripes across every available target. "
            "The pattern is fixed when the file is created."
        ),
        perf_note=(
            "The main bandwidth lever for large shared files: striping "
            "across more targets multiplies available disk and network "
            "bandwidth. Workloads creating many small files pay per-file "
            "chunk allocation overhead on every create and unlink when the "
            "pattern is wide."
        ),
    ),
    _p(
        name="client.conn_max_internode_num",
        ptype="int",
        default=12,
        min_expr=1,
        max_expr=128,
        unit="count",
        impact="high",
        per_device=True,
        selected=True,
        description=(
            "The maximum number of simultaneous connections a client node "
            "opens to each storage node; each connection carries one "
            "outstanding data request."
        ),
        perf_note=(
            "Controls data-path concurrency and therefore directly "
            "influences achievable bandwidth and latency hiding; raise it "
            "when many processes per node target the same storage server."
        ),
    ),
    _p(
        name="tune.file_cache_buf_kb",
        ptype="int",
        default=512,
        min_expr=64,
        max_expr=32768,
        unit="KiB",
        impact="high",
        selected=True,
        description=(
            "The size in KiB of each client file cache buffer; sequential "
            "writes coalesce inside a buffer until it fills, and a full "
            "buffer is shipped to a storage target as one wire request."
        ),
        perf_note=(
            "Larger buffers amortize per-request CPU and network overhead "
            "and directly improve large sequential throughput; small random "
            "requests cannot be coalesced and see little benefit."
        ),
    ),
    _p(
        name="tune.dirty_buf_mb",
        ptype="int",
        default=32,
        min_expr=1,
        max_expr=2047,
        unit="MiB",
        impact="high",
        selected=True,
        description=(
            "The amount of dirty (unflushed) buffered write data allowed "
            "per mount before writers are throttled."
        ),
        perf_note=(
            "Governs write-back pipelining: enough dirty headroom keeps the "
            "pipe to the storage servers full; too little serializes "
            "writers behind buffer flushes."
        ),
    ),
    _p(
        name="tune.read_ahead_total_mb",
        ptype="int",
        default=48,
        min_expr=0,
        max_expr="system_memory_mb / 2",
        unit="MiB",
        impact="high",
        selected=True,
        description=(
            "The maximum amount of data, per client mount, the readahead "
            "engine may prefetch across all open files."
        ),
        perf_note=(
            "Determines how far sequential reads run ahead of the "
            "application, hiding network and disk latency; streaming "
            "readers benefit, random readers gain nothing."
        ),
    ),
    _p(
        name="tune.read_ahead_file_kb",
        ptype="int",
        default=8192,
        min_expr=0,
        max_expr="tune.read_ahead_total_mb * 512",
        unit="KiB",
        impact="high",
        selected=True,
        description=(
            "The maximum readahead window in KiB for a single file; it may "
            "use at most half of the total readahead budget."
        ),
        perf_note=(
            "Caps per-stream prefetch depth: large sequential reads of one "
            "big file need this window to cover the bandwidth-delay product "
            "to the storage targets."
        ),
    ),
    _p(
        name="tune.read_whole_file_kb",
        ptype="int",
        default=1024,
        min_expr=0,
        max_expr="tune.read_ahead_file_kb",
        unit="KiB",
        impact="medium",
        selected=True,
        description=(
            "Files at or below this size in KiB are fetched in their "
            "entirety on first access rather than page by page."
        ),
        perf_note=(
            "Coalesces many small reads of a small file into one request; "
            "useful when applications scan small files front to back."
        ),
    ),
    _p(
        name="tune.page_cache_mb",
        ptype="int",
        default=98304,  # half of the 196 GiB client RAM, in MiB
        min_expr=32,
        max_expr="system_memory_mb",
        unit="MiB",
        impact="medium",
        selected=True,
        description=(
            "The maximum amount of file data cached in the client page "
            "cache for this mount (default: half of RAM)."
        ),
        perf_note=(
            "Bounds how much previously read or written data can be served "
            "from client memory on re-access; shrinking it forces re-reads "
            "over the network."
        ),
    ),
    _p(
        name="meta.conn_max_internode_num",
        ptype="int",
        default=8,
        min_expr=2,  # must stay above mod_queue_depth's minimum of 1
        max_expr=128,
        unit="count",
        impact="high",
        per_device=True,
        selected=True,
        description=(
            "The maximum number of simultaneous connections a client keeps "
            "to each metadata server; each carries one outstanding metadata "
            "request."
        ),
        perf_note=(
            "Caps metadata concurrency per client node; when more processes "
            "than this issue metadata operations simultaneously, requests "
            "queue on the client and the per-client operation rate drops."
        ),
    ),
    _p(
        name="meta.mod_queue_depth",
        ptype="int",
        default=6,
        min_expr=1,
        max_expr="meta.conn_max_internode_num - 1",
        unit="count",
        impact="high",
        per_device=True,
        selected=True,
        description=(
            "The maximum number of concurrent *modifying* metadata requests "
            "(create, unlink, rename) a client keeps queued to one metadata "
            "server. Must stay strictly below meta.conn_max_internode_num."
        ),
        perf_note=(
            "Bounds file creation and deletion concurrency per client; "
            "workloads that create or remove many files in parallel are "
            "directly limited by this value."
        ),
    ),
    _p(
        name="meta.dentry_prefetch_num",
        ptype="int",
        default=0,
        min_expr=0,
        max_expr=4096,
        unit="count",
        impact="high",
        selected=True,
        description=(
            "The maximum number of directory entries whose attributes are "
            "prefetched asynchronously when a process scans a directory "
            "(e.g. readdir followed by stat). 0 disables entry prefetch; "
            "the feature ships disabled."
        ),
        perf_note=(
            "Pipelines attribute fetches during directory scans, hiding "
            "per-stat round-trip latency; directly accelerates "
            "metadata-intensive workloads that stat many files in readdir "
            "order."
        ),
    ),
]

# ---------------------------------------------------------------------------
# Binary parameters: user trade-offs, excluded from tuning by design.
# ---------------------------------------------------------------------------
_BINARY = [
    _p(
        name="net.data_checksums",
        ptype="bool",
        default=0,
        min_expr=0,
        max_expr=1,
        unit="flag",
        binary=True,
        impact="high",
        description=(
            "Enables end-to-end checksums of bulk data between client and "
            "storage targets to detect wire corruption."
        ),
        perf_note=(
            "Checksumming costs CPU per transferred byte and measurably "
            "reduces large-transfer throughput; configure per "
            "data-integrity requirements rather than for performance."
        ),
    ),
    _p(
        name="tune.use_buffered_io",
        ptype="bool",
        default=1,
        min_expr=0,
        max_expr=1,
        unit="flag",
        binary=True,
        impact="high",
        description=(
            "Selects the buffered file cache mode; when disabled the client "
            "bypasses its cache buffers and issues every request directly."
        ),
        perf_note=(
            "A semantics/performance trade-off for applications that need "
            "strict write-through behaviour; leave enabled otherwise."
        ),
    ),
    _p(
        name="tune.remote_fsync",
        ptype="bool",
        default=1,
        min_expr=0,
        max_expr=1,
        unit="flag",
        binary=True,
        impact="low",
        doc="partial",
        description=(
            "Controls whether fsync flushes data to the storage servers' "
            "disks or only to their caches."
        ),
        perf_note="A durability trade-off, not a tuning control.",
    ),
]

# ---------------------------------------------------------------------------
# Writable but low/no-impact or under-documented parameters.
# ---------------------------------------------------------------------------
_FILTERED = [
    _p(
        name="client.conn_num_retries",
        ptype="int",
        default=3,
        min_expr=0,
        max_expr=100,
        unit="count",
        impact="low",
        description=(
            "How many times a failed connection attempt is retried before "
            "the remote node is reported unreachable."
        ),
        perf_note="Matters for fault handling, not steady-state performance.",
    ),
    _p(
        name="mgmtd.quota_update_secs",
        ptype="int",
        default=30,
        min_expr=1,
        max_expr=3600,
        unit="seconds",
        impact="low",
        description=(
            "Interval between quota usage refreshes collected by the "
            "management daemon from the storage targets."
        ),
        perf_note=(
            "Usage accounting housekeeping; not a performance tuning "
            "control."
        ),
    ),
    _p(
        name="client.conn_tcp_fallback_secs",
        ptype="int",
        default=30,
        min_expr=0,
        max_expr=600,
        unit="seconds",
        impact="low",
        doc="partial",
        description=(
            "Seconds to wait for an RDMA connection before falling back to "
            "TCP."
        ),
        perf_note="A connection-establishment setting.",
    ),
    _p(
        name="sys.update_target_states_secs",
        ptype="int",
        default=30,
        min_expr=1,
        max_expr=600,
        unit="seconds",
        impact="none",
        doc="none",
        description="Interval between target reachability state refreshes.",
        perf_note="",
    ),
    _p(
        name="client.heartbeat_secs",
        ptype="int",
        default=20,
        min_expr=1,
        max_expr=600,
        unit="seconds",
        impact="none",
        doc="none",
        description="Interval between keep-alive heartbeats to known nodes.",
        perf_note="",
    ),
]

# ---------------------------------------------------------------------------
# Read-only informational entries.
# ---------------------------------------------------------------------------
_READONLY = [
    _p(name="client.version", ptype="int", default=740, writable=False, impact="none", doc="none"),
    _p(name="client.stats", ptype="int", default=0, writable=False, impact="none", doc="none"),
    _p(name="storage.free_space_gb", ptype="int", default=0, writable=False, impact="none", doc="none", per_device=True),
    _p(name="meta.node_id", ptype="int", default=1, writable=False, impact="none", doc="none", per_device=True),
]

# ---------------------------------------------------------------------------
# Manual chapters
# ---------------------------------------------------------------------------
_SUBSYSTEM_CHAPTER = {
    "stripe": "Striping Patterns and File Layout",
    "client": "Client Connection Management",
    "tune": "Client Tuning and Caching",
    "meta": "Metadata Service Tuning",
    "net": "Network Integrity Options",
    "mgmtd": "The Management Service",
    "storage": "Storage Service Administration",
    "sys": "System State Monitoring",
}

_FILLER_CHAPTERS = (
    (
        "Introduction to the BeeGFS Architecture",
        "A BeeGFS installation consists of a management service (mgmtd) "
        "holding the registry of all nodes, one or more metadata services "
        "owning directory entries and file attributes, storage services "
        "exporting storage targets that hold file chunks, and the client "
        "kernel module. File contents are split into chunks and distributed "
        "over storage targets according to the directory's stripe pattern, "
        "while metadata is distributed over metadata services per "
        "directory. Adding storage servers scales bandwidth; adding "
        "metadata servers scales operation rates.",
    ),
    (
        "Connection-Based Messaging",
        "Clients communicate with services over persistent connections "
        "established on demand, preferring RDMA where available and "
        "falling back to TCP. Each connection carries one request at a "
        "time, so the per-node connection limits bound request "
        "parallelism. Idle connections are dropped after a timeout and "
        "re-established transparently.",
    ),
    (
        "Buddy Mirroring and High Availability",
        "Buddy mirror groups pair two targets so that chunks or metadata "
        "written to the primary are replicated to its buddy. When a "
        "primary becomes unreachable the buddy takes over. Resynchronizing "
        "a returning buddy happens online, tracked per changed chunk.",
    ),
    (
        "Storage Pools",
        "Storage pools group targets into classes (e.g. flash and "
        "capacity). A directory's stripe pattern selects the pool its new "
        "files are placed in, so hot project directories can be pinned to "
        "flash targets while bulk data lands on capacity pools.",
    ),
    (
        "Quotas and Usage Tracking",
        "BeeGFS tracks per-user and per-group block and inode usage on "
        "each storage target. The management service aggregates usage and "
        "enforces limits when quota enforcement is enabled. Usage queries "
        "are served from periodically refreshed caches.",
    ),
    (
        "The beegfs-ctl Command",
        "beegfs-ctl is the administrative front end: it lists nodes and "
        "targets, sets and queries stripe patterns, starts resyncs, "
        "migrates data away from targets, and queries client connection "
        "state. Pattern changes apply to files created afterwards.",
    ),
    (
        "Monitoring with beegfs-mon",
        "beegfs-mon collects per-service statistics (request rates, queue "
        "lengths, per-client operation counts) into a time-series database "
        "and is the recommended way to attribute load on a shared "
        "installation to specific jobs or users.",
    ),
)

# ---------------------------------------------------------------------------
# Hallucination profile
# ---------------------------------------------------------------------------
_MISCONCEPTIONS = {
    "stripe.num_targets": (
        "The number of storage targets used by a directory; setting the "
        "parent directory's pattern to -1 distributes the files in it more "
        "evenly across all targets."
    ),
    "stripe.chunk_size": (
        "The block size used by the underlying ext4 file system on each "
        "storage target."
    ),
    "client.conn_max_internode_num": (
        "The total number of requests a client may send per second to one "
        "storage node."
    ),
    "tune.file_cache_buf_kb": (
        "The number of KiB the storage server reads ahead from disk for "
        "each request."
    ),
    "tune.dirty_buf_mb": (
        "The maximum size of a single write call before it bypasses the "
        "cache and is sent synchronously."
    ),
    "tune.read_ahead_total_mb": (
        "The size of the read cache kept on each storage server for "
        "recently read chunks."
    ),
    "tune.read_ahead_file_kb": (
        "The largest file size eligible for client-side caching."
    ),
    "tune.read_whole_file_kb": (
        "The amount of data read ahead after every random read."
    ),
    "tune.page_cache_mb": (
        "The maximum memory the metadata service uses to cache directory "
        "entries."
    ),
    "meta.conn_max_internode_num": (
        "The number of metadata server worker threads reserved for this "
        "client."
    ),
    "meta.mod_queue_depth": (
        "The number of retries for failed metadata modifications."
    ),
    "meta.dentry_prefetch_num": (
        "The maximum number of prefetch threads the client may spawn while "
        "listing directories."
    ),
}

#: The striping misconception is as pervasive for BeeGFS as for Lustre.
_UNIVERSAL_FLAWS = frozenset({"stripe.num_targets"})

# ---------------------------------------------------------------------------
# Mock tuning policy heuristics
# ---------------------------------------------------------------------------
def _xfer(report) -> int:
    if report is None:
        return MiB
    return int(report.get("common_access_size", MiB)) or MiB


def _chunk_for(report, facts, aggressive: bool) -> int:
    xfer = _xfer(report)
    floor = 16 * MiB if aggressive else 4 * MiB
    return max(floor, min(xfer, 64 * MiB))


_LADDERS = {
    "shared_seq_large": (
        ("stripe.num_targets", lambda r, f: -1, lambda r, f: -1),
        (
            "stripe.chunk_size",
            lambda r, f: _chunk_for(r, f, False),
            lambda r, f: _chunk_for(r, f, True),
        ),
        ("tune.file_cache_buf_kb", lambda r, f: 4096, lambda r, f: 16384),
        ("client.conn_max_internode_num", lambda r, f: 24, lambda r, f: 48),
        ("tune.dirty_buf_mb", lambda r, f: 128, lambda r, f: 512),
    ),
    "shared_random_small": (
        ("stripe.num_targets", lambda r, f: -1, lambda r, f: -1),
        ("client.conn_max_internode_num", lambda r, f: 24, lambda r, f: 48),
        ("tune.file_cache_buf_kb", lambda r, f: 4096, lambda r, f: 4096),
    ),
    "metadata_small_files": (
        ("meta.conn_max_internode_num", lambda r, f: 16, lambda r, f: 64),
        ("meta.mod_queue_depth", lambda r, f: 8, lambda r, f: 32),
        ("meta.dentry_prefetch_num", lambda r, f: 128, lambda r, f: 512),
    ),
    "fpp_data": (
        ("tune.file_cache_buf_kb", lambda r, f: 4096, lambda r, f: 16384),
        (
            "stripe.chunk_size",
            lambda r, f: _chunk_for(r, f, False),
            lambda r, f: _chunk_for(r, f, True),
        ),
        ("client.conn_max_internode_num", lambda r, f: 24, lambda r, f: 48),
        ("tune.dirty_buf_mb", lambda r, f: 128, lambda r, f: 256),
    ),
}
_LADDERS["mixed"] = _LADDERS["shared_seq_large"] + _LADDERS["metadata_small_files"]

_SECONDARY = {
    "shared_seq_large": (
        ("tune.read_ahead_total_mb", lambda r, f: 2048),
        ("tune.read_ahead_file_kb", lambda r, f: 524288),
    ),
    "shared_random_small": (
        ("tune.dirty_buf_mb", lambda r, f: 256),
    ),
    "metadata_small_files": (
        ("meta.conn_max_internode_num", lambda r, f: 128),
        ("meta.dentry_prefetch_num", lambda r, f: 2048),
    ),
    "fpp_data": (
        ("tune.read_ahead_total_mb", lambda r, f: 1024),
        ("tune.read_ahead_file_kb", lambda r, f: 262144),
    ),
    "mixed": (
        ("tune.read_ahead_total_mb", lambda r, f: 2048),
        ("tune.read_ahead_file_kb", lambda r, f: 524288),
    ),
}

_MISGUIDED_ACTIONS = {
    "stripe.num_targets": lambda r, f: -1,  # "distribute files across targets"
    "stripe.chunk_size": lambda r, f: 64 * KiB,  # "match the fs block size"
    "client.conn_max_internode_num": lambda r, f: 16,  # magnitude off
    "tune.file_cache_buf_kb": lambda r, f: 64,  # "server readahead"
    "tune.dirty_buf_mb": lambda r, f: 4,  # "smaller sync threshold"
    "tune.read_ahead_total_mb": lambda r, f: 4096,
    "tune.read_ahead_file_kb": lambda r, f: 2048,
    "tune.read_whole_file_kb": lambda r, f: 65536,
    "tune.page_cache_mb": lambda r, f: 4096,
    "meta.conn_max_internode_num": lambda r, f: 16,
    "meta.mod_queue_depth": lambda r, f: 4,  # "retry count"
    "meta.dentry_prefetch_num": lambda r, f: 4,  # "limit prefetch threads"
}

_UNGROUNDED_TRAPS = {
    "metadata_small_files": (("stripe.num_targets", -1),),
    "mixed": (("stripe.chunk_size", 64 * KiB),),
    "shared_random_small": (("stripe.chunk_size", 64 * KiB),),
    "shared_seq_large": (("tune.dirty_buf_mb", 4),),
    "fpp_data": (("stripe.num_targets", -1),),
}

_META_PARAMS = frozenset(
    {
        "meta.conn_max_internode_num",
        "meta.mod_queue_depth",
        "meta.dentry_prefetch_num",
    }
)

# ---------------------------------------------------------------------------
# Expert baseline (the same administrator, tuning the BeeGFS testbed)
# ---------------------------------------------------------------------------
_EXPERT = {
    "IOR_64K": {
        "stripe.num_targets": -1,
        "client.conn_max_internode_num": 48,
        "tune.file_cache_buf_kb": 4096,
        "tune.dirty_buf_mb": 256,
    },
    "IOR_16M": {
        "stripe.num_targets": -1,
        "stripe.chunk_size": 16 * MiB,
        "tune.file_cache_buf_kb": 16384,
        "client.conn_max_internode_num": 48,
        "tune.dirty_buf_mb": 512,
        "tune.read_ahead_total_mb": 2048,
        "tune.read_ahead_file_kb": 524288,
    },
    "MDWorkbench_2K": {
        "meta.conn_max_internode_num": 64,
        "meta.mod_queue_depth": 32,
        "meta.dentry_prefetch_num": 1024,
    },
    "MDWorkbench_8K": {
        "meta.conn_max_internode_num": 64,
        "meta.mod_queue_depth": 32,
        "meta.dentry_prefetch_num": 1024,
    },
    "IO500": {
        "stripe.num_targets": 5,
        "stripe.chunk_size": 16 * MiB,
        "tune.file_cache_buf_kb": 16384,
        "client.conn_max_internode_num": 48,
        "tune.dirty_buf_mb": 512,
        "tune.read_ahead_total_mb": 2048,
        "tune.read_ahead_file_kb": 524288,
    },
    "AMReX": {
        "stripe.num_targets": -1,
        "stripe.chunk_size": 4 * MiB,
        "tune.file_cache_buf_kb": 16384,
        "client.conn_max_internode_num": 48,
        "tune.dirty_buf_mb": 256,
    },
    "MACSio_512K": {
        "stripe.num_targets": -1,
        "client.conn_max_internode_num": 48,
        "tune.file_cache_buf_kb": 4096,
        "tune.dirty_buf_mb": 256,
    },
    "MACSio_16M": {
        "stripe.num_targets": -1,
        "stripe.chunk_size": 16 * MiB,
        "tune.file_cache_buf_kb": 16384,
        "client.conn_max_internode_num": 48,
        "tune.dirty_buf_mb": 512,
    },
}

_RATIONALE = {
    "IOR_64K": (
        "Random small writes to one shared file: stripe across every "
        "target and raise connection concurrency; BeeGFS has no inline "
        "short-I/O path, so buffer sizing does the aggregation work."
    ),
    "IOR_16M": (
        "Large sequential shared-file streams: wide pattern with 16 MiB "
        "chunks matching the transfer size, big cache buffers, and a wide "
        "readahead window for the read phase."
    ),
    "MDWorkbench_2K": (
        "Pure metadata churn: keep the default pattern narrow and raise "
        "the metadata connection limits; enabling directory-entry prefetch "
        "is the big win since it ships disabled."
    ),
    "MDWorkbench_8K": "Same reasoning as MDWorkbench_2K.",
    "IO500": (
        "Configure for the bandwidth phases that dominate the score, "
        "using every target."
    ),
    "AMReX": (
        "A few shared level files written in large chunks: wide pattern, "
        "chunks sized up from the small default, and large cache buffers."
    ),
    "MACSio_512K": (
        "Scattered medium writes to one shared dump file: wide pattern "
        "and deeper connection pipeline."
    ),
    "MACSio_16M": (
        "Large contiguous dump objects: wide pattern, large chunks, "
        "maximum buffer size."
    ),
}

_SEARCH_CANDIDATES = {
    "stripe.num_targets": (1, 2, 5, -1),
    "stripe.chunk_size": (512 * KiB, 4 * MiB, 16 * MiB, 64 * MiB),
    "client.conn_max_internode_num": (12, 24, 48, 96),
    "tune.file_cache_buf_kb": (512, 4096, 16384),
    "tune.dirty_buf_mb": (32, 128, 512),
    "tune.read_ahead_total_mb": (48, 512, 2048),
    "tune.read_ahead_file_kb": (8192, 131072, 524288),
    "tune.read_whole_file_kb": (1024, 8192),
    "tune.page_cache_mb": (65536, 98304),
    "meta.conn_max_internode_num": (8, 32, 128),
    "meta.mod_queue_depth": (6, 16, 64),
    "meta.dentry_prefetch_num": (0, 128, 512, 2048),
}


# ---------------------------------------------------------------------------
# /proc device naming (the client module's procfs mirrors per-node state)
# ---------------------------------------------------------------------------
def _storage_devices(cluster, fsname: str) -> list[str]:
    return [f"{fsname}-storage{i:02d}" for i in range(cluster.n_ost)]


def _meta_devices(cluster, fsname: str) -> list[str]:
    return [f"{fsname}-meta00"]


BACKEND = PfsBackend(
    name="beegfs",
    display_name="BeeGFS 7.4",
    fs_family="BeeGFS",
    proc_root="/proc/fs/beegfs",
    specs=tuple(_SELECTED + _BINARY + _FILTERED + _READONLY),
    roles={
        "stripe_size_bytes": ("stripe.chunk_size", 1),
        "stripe_count": ("stripe.num_targets", 1),
        "data_rpcs_in_flight": ("client.conn_max_internode_num", 1),
        "rpc_cap_bytes": ("tune.file_cache_buf_kb", KiB),
        "dirty_bytes": ("tune.dirty_buf_mb", MiB),
        # no short_io role: BeeGFS has no inline fast path
        "checksums": ("net.data_checksums", 1),
        "read_ahead_total_bytes": ("tune.read_ahead_total_mb", MiB),
        "read_ahead_file_bytes": ("tune.read_ahead_file_kb", KiB),
        "read_ahead_whole_bytes": ("tune.read_whole_file_kb", KiB),
        "cached_bytes": ("tune.page_cache_mb", MiB),
        "meta_rpcs_in_flight": ("meta.conn_max_internode_num", 1),
        "meta_mod_rpcs_in_flight": ("meta.mod_queue_depth", 1),
        "statahead_count": ("meta.dentry_prefetch_num", 1),
    },
    manual_title="BeeGFS 7.4 Administration and Tuning Guide (simulated)",
    manual_intro=(
        "This guide describes the administration and tuning of the BeeGFS "
        "parallel file system."
    ),
    subsystem_chapters=_SUBSYSTEM_CHAPTER,
    filler_chapters=_FILLER_CHAPTERS,
    # Connection-based messaging: no bulk-handshake negotiation, slightly
    # higher base RTT over the persistent-connection pool, cheaper metadata
    # requests than PtlRPC.
    cost_overrides={
        "bulk_handshake": 40e-6,
        "data_rtt": 70e-6,
        "meta_rtt": 150e-6,
    },
    misconceptions=_MISCONCEPTIONS,
    belief_overrides={},
    universal_flaws=_UNIVERSAL_FLAWS,
    tuning=TuningHeuristics(
        ladders=_LADDERS,
        secondary=_SECONDARY,
        misguided_actions=_MISGUIDED_ACTIONS,
        ungrounded_traps=_UNGROUNDED_TRAPS,
        meta_params=_META_PARAMS,
        noise_param="tune.page_cache_mb",
        noise_value=65536,
    ),
    expert_configs=_EXPERT,
    expert_rationale=_RATIONALE,
    search_candidates=_SEARCH_CANDIDATES,
    device_namers={
        "client": _storage_devices,
        "meta": _meta_devices,
        "storage": _storage_devices,
    },
    hardware_terms={
        "data_servers": "storage servers (one storage target each)",
        "mgmt_server": "combined mgmtd/metadata node",
        "target_disks": "Storage target disks",
        "meta_service": "Metadata service",
        "client_cache": "client cache buffers",
        "storage_targets": "storage targets",
    },
)
