"""The :class:`PfsBackend` abstraction: everything file-system-specific.

A backend owns the complete description of one parallel file system flavor —
the tunable-parameter registry, how those parameters are documented (manual
chapters), how they are exposed (``/proc``-tree layout), how they feed the
performance model (role mapping + cost coefficients), what an unaided LLM
mis-remembers about them (hallucination profile), what the mock tuning
policy proposes for them (heuristic ladders), and what a human expert would
configure.  Every layer of the pipeline resolves the active backend through
:func:`repro.backends.get_backend` instead of importing a concrete parameter
table, which is what makes the RAG → analysis → tuning → reflection loop
file-system-agnostic.

Model roles
-----------
The analytic performance model is written against *roles* — abstract levers
like ``stripe_size_bytes`` or ``data_rpcs_in_flight`` — and each backend maps
roles to its own parameter names with a unit scale (Lustre counts dirty cache
in MiB, a BeeGFS-like system may count buffer sizes in KiB).  A backend may
omit a role; the model then falls back to a documented default (e.g. no
short-I/O fast path, no statahead).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Any, Callable, Mapping

KiB = 1024
MiB = 1024 * KiB
PAGE_SIZE = 4096

#: Hardware facts dependent parameter ranges may reference (the keys of
#: :meth:`repro.cluster.hardware.ClusterSpec.config_facts`).  Facts are never
#: changed by parameter writes, so expressions referencing only facts and
#: known parameters participate in dependency-aware bounds invalidation; an
#: identifier outside both sets falls back to wholesale invalidation.
KNOWN_FACTS = frozenset({"system_memory_mb", "n_ost"})

#: Roles the analytic model understands.  ``required`` roles must be mapped
#: by every backend; optional ones default as documented in the model.
MODEL_ROLES = {
    # data path
    "stripe_size_bytes": "required",
    "stripe_count": "required",
    "data_rpcs_in_flight": "required",
    "rpc_cap_bytes": "required",
    "dirty_bytes": "required",
    "short_io_bytes": "optional",  # absent -> no inline fast path
    "checksums": "optional",  # absent -> checksums off
    # client caching / readahead
    "read_ahead_total_bytes": "required",
    "read_ahead_file_bytes": "required",
    "read_ahead_whole_bytes": "required",
    "cached_bytes": "required",
    # metadata path
    "meta_rpcs_in_flight": "required",
    "meta_mod_rpcs_in_flight": "optional",  # absent -> meta_rpcs_in_flight
    "statahead_count": "optional",  # absent -> no attribute prefetch
}


@dataclass(frozen=True)
class ParamSpec:
    """One tunable (or non-tunable) parameter."""

    name: str  # dotted, e.g. "osc.max_rpcs_in_flight"
    ptype: str  # "int" | "bool"
    default: int
    min_expr: float | str | None = None
    max_expr: float | str | None = None
    unit: str = "count"
    writable: bool = True
    binary: bool = False
    impact: str = "high"  # "high" | "medium" | "low" | "none" (ground truth)
    doc: str = "full"  # manual coverage: "full" | "partial" | "none"
    per_device: bool = False  # instantiated once per OST/MDT device
    # Settable without root (lfs setstripe on a user-owned directory); the
    # §5.6 user-space tuning mode restricts STELLAR to these.
    user_settable: bool = False
    description: str = ""
    perf_note: str = ""
    selected: bool = False  # expected member of STELLAR's final selection

    @property
    def subsystem(self) -> str:
        return self.name.split(".", 1)[0]

    @property
    def basename(self) -> str:
        return self.name.rsplit(".", 1)[-1]


@dataclass(frozen=True)
class TuningHeuristics:
    """What the mock LLM "knows" about tuning this file system.

    Value functions receive ``(report, facts)`` and may return ``None`` to
    skip a lever for the observed workload.
    """

    #: workload class -> ((param, moderate_fn, aggressive_fn), ...)
    ladders: Mapping[str, tuple]
    #: workload class -> ((param, value_fn), ...) third-attempt refinements
    secondary: Mapping[str, tuple]
    #: what a model holding a *flawed* definition does instead, per param
    misguided_actions: Mapping[str, Callable]
    #: misconception-driven levers an ungrounded agent adds per class
    ungrounded_traps: Mapping[str, tuple]
    #: metadata-path parameters (rule-tag domain split)
    meta_params: frozenset
    #: the occasionally-explored suboptimal lever and its value
    noise_param: str = ""
    noise_value: int = 0


#: Lustre-flavored defaults for the hardware-description nouns.
DEFAULT_HARDWARE_TERMS = {
    "data_servers": "OSS nodes (one OST each)",
    "mgmt_server": "combined MGS/MDS node",
    "target_disks": "OST disks",
    "meta_service": "MDS",
    "client_cache": "llite caches",
    "storage_targets": "OSTs",
}


@dataclass(frozen=True)
class PfsBackend:
    """Complete description of one parallel file system flavor."""

    name: str  # registry key, e.g. "lustre"
    display_name: str  # e.g. "Lustre 2.15"
    fs_family: str  # e.g. "Lustre" (agent prompts name this)
    proc_root: str  # e.g. "/proc/fs/lustre"
    specs: tuple  # tuple[ParamSpec, ...]
    #: role -> (parameter name, unit scale to the role's canonical unit)
    roles: Mapping[str, tuple]
    # -- manual ---------------------------------------------------------
    manual_title: str = ""
    manual_intro: str = ""
    subsystem_chapters: Mapping[str, str] = field(default_factory=dict)
    filler_chapters: tuple = ()
    # -- performance model ---------------------------------------------
    #: overrides applied to CostModel's per-RPC timing fields
    cost_overrides: Mapping[str, float] = field(default_factory=dict)
    # -- hallucination profile (mock parametric knowledge) --------------
    misconceptions: Mapping[str, str] = field(default_factory=dict)
    #: (model, param) -> (definition_correct, wrong_max) pinned outcomes
    belief_overrides: Mapping[tuple, tuple] = field(default_factory=dict)
    universal_flaws: frozenset = frozenset()
    # -- mock tuning policy --------------------------------------------
    tuning: TuningHeuristics | None = None
    # -- baselines ------------------------------------------------------
    expert_configs: Mapping[str, Mapping[str, int]] = field(default_factory=dict)
    expert_rationale: Mapping[str, str] = field(default_factory=dict)
    search_candidates: Mapping[str, tuple] = field(default_factory=dict)
    #: device naming for per-device /proc entries: subsystem -> fn(cluster, fsname)
    device_namers: Mapping[str, Callable] = field(default_factory=dict)
    #: nouns for the hardware description the agents read (ClusterSpec.describe)
    hardware_terms: Mapping[str, str] = field(
        default_factory=lambda: dict(DEFAULT_HARDWARE_TERMS)
    )

    # -- derived views (cached; frozen dataclasses allow cached_property) --
    @cached_property
    def registry(self) -> dict:
        """``{name: ParamSpec}`` for every parameter."""
        return {spec.name: spec for spec in self.specs}

    @cached_property
    def _by_basename(self) -> dict:
        table: dict[str, list] = {}
        for spec in self.specs:
            table.setdefault(spec.basename, []).append(spec)
        return table

    def param(self, name: str) -> ParamSpec:
        """Lookup by full dotted name or unique basename."""
        spec = self.registry.get(name)
        if spec is not None:
            return spec
        matches = self._by_basename.get(name, [])
        if len(matches) == 1:
            return matches[0]
        if not matches:
            raise KeyError(f"unknown parameter {name!r}")
        raise KeyError(
            f"ambiguous parameter basename {name!r}: {[m.name for m in matches]}"
        )

    def __contains__(self, name: str) -> bool:
        try:
            self.param(name)
            return True
        except KeyError:
            return False

    def defaults(self) -> dict:
        """Default value for every writable parameter."""
        return {s.name: s.default for s in self.specs if s.writable}

    def writable_specs(self) -> list:
        return [s for s in self.specs if s.writable]

    def selected_parameter_names(self) -> list:
        """The parameters STELLAR is expected to select for tuning."""
        return [s.name for s in self.specs if s.selected]

    @cached_property
    def role_of(self) -> dict:
        """Reverse role map: parameter name -> role."""
        return {entry[0]: role for role, entry in self.roles.items()}

    @cached_property
    def bounds_dependents(self) -> dict:
        """``{written param -> params whose resolved bounds may change}``.

        Drives dependency-aware cache invalidation in
        :meth:`repro.pfs.config.PfsConfig.__setitem__`: writing one parameter
        only drops the cached bounds of parameters whose range expressions
        reference it (by full dotted name or basename — ambiguous basenames
        conservatively edge every match).  Facts (``KNOWN_FACTS``) are never
        written through ``__setitem__``, so fact-only references need no
        edge; an expression that fails to parse or references an identifier
        that is neither a registered parameter nor a known fact makes its
        parameter invalidate on *every* write (the conservative wholesale
        fallback).
        """
        from repro.pfs.expressions import ExpressionError, referenced_names

        edges: dict[str, set] = {spec.name: set() for spec in self.specs}
        always: set = set()
        for spec in self.specs:
            for expr in (spec.min_expr, spec.max_expr):
                if not isinstance(expr, str):
                    continue
                try:
                    idents = referenced_names(expr)
                except ExpressionError:
                    always.add(spec.name)
                    continue
                for ident in idents:
                    if ident in self.registry:
                        edges[ident].add(spec.name)
                        continue
                    matches = self._by_basename.get(ident, [])
                    if matches:
                        for match in matches:
                            edges[match.name].add(spec.name)
                    elif ident not in KNOWN_FACTS:
                        always.add(spec.name)
        return {name: frozenset(deps | always) for name, deps in edges.items()}

    def validate(self) -> None:
        """Sanity-check internal consistency (used by the parity suite)."""
        for role, requirement in MODEL_ROLES.items():
            entry = self.roles.get(role)
            if entry is None:
                if requirement == "required":
                    raise ValueError(f"backend {self.name} misses role {role!r}")
                continue
            param, scale = entry
            spec = self.registry.get(param)
            if spec is None:
                raise ValueError(
                    f"backend {self.name} role {role!r} names unknown "
                    f"parameter {param!r}"
                )
            if not spec.writable:
                # PfsConfig holds values for writable params only; a
                # read-only role target would KeyError deep in the model.
                raise ValueError(
                    f"backend {self.name} role {role!r} maps read-only "
                    f"parameter {param!r}"
                )
            if scale < 1:
                raise ValueError(f"backend {self.name} role {role!r} scale < 1")
        for role in self.roles:
            if role not in MODEL_ROLES:
                raise ValueError(f"backend {self.name} maps unknown role {role!r}")
        if self.tuning is None:
            raise ValueError(f"backend {self.name} provides no tuning heuristics")


# ---------------------------------------------------------------------------
# Backend registry
# ---------------------------------------------------------------------------
_REGISTRY: dict[str, PfsBackend] = {}

DEFAULT_BACKEND = "lustre"


def register_backend(backend: PfsBackend) -> PfsBackend:
    """Register a backend under its name (idempotent for identical objects)."""
    existing = _REGISTRY.get(backend.name)
    if existing is not None and existing is not backend:
        raise ValueError(f"backend {backend.name!r} already registered")
    _REGISTRY[backend.name] = backend
    return backend


def get_backend(name: str | None = None) -> PfsBackend:
    """The registered backend for ``name`` (default: Lustre)."""
    key = name or DEFAULT_BACKEND
    try:
        return _REGISTRY[key]
    except KeyError:
        raise KeyError(
            f"unknown backend {key!r}; registered: {sorted(_REGISTRY)}"
        ) from None


def list_backends() -> list[str]:
    """Registered backend names, in registration order."""
    return list(_REGISTRY)


def resolve_backend(backend: "PfsBackend | str | None") -> PfsBackend:
    """Coerce a backend argument: instance passes through, name or ``None``
    (the default backend) resolves via :func:`get_backend`."""
    if backend is None or isinstance(backend, str):
        return get_backend(backend)
    return backend


def find_backend_for_param(name: str) -> PfsBackend:
    """The backend whose registry defines ``name`` (registration order wins)."""
    for backend in _REGISTRY.values():
        if name in backend.registry:
            return backend
    # Basename fallback mirrors PfsBackend.param's convenience lookup.
    for backend in _REGISTRY.values():
        if name in backend:
            return backend
    raise KeyError(f"no registered backend defines parameter {name!r}")


def detect_backend(param_names) -> PfsBackend:
    """The unique backend covering the most of ``param_names``.

    The mock LLM uses this: its "knowledge" of which file system it is tuning
    comes from the parameter names present in the prompt, exactly like a real
    model inferring the system from context.  A prompt whose parameter names
    match no registered backend, or whose best coverage is tied between
    several backends, is undecidable — raising beats silently tuning the
    wrong file system, so a descriptive :class:`KeyError` names the
    candidates instead.
    """
    names = list(param_names)
    hits = {
        backend.name: sum(1 for name in names if name in backend.registry)
        for backend in _REGISTRY.values()
    }
    best_hits = max(hits.values(), default=0)
    if best_hits == 0:
        shown = sorted(set(names))[:5]
        raise KeyError(
            f"cannot detect backend: parameter names {shown or '(none)'} "
            f"match no registered backend (registered: {sorted(_REGISTRY)})"
        )
    candidates = sorted(name for name, count in hits.items() if count == best_hits)
    if len(candidates) > 1:
        raise KeyError(
            f"cannot detect backend: parameter names match {candidates} "
            f"equally well ({best_hits} name(s) each); prompts must name "
            "parameters from exactly one backend"
        )
    return _REGISTRY[candidates[0]]
