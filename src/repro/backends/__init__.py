"""Pluggable parallel-file-system backends.

A :class:`~repro.backends.base.PfsBackend` bundles everything that is
specific to one file system flavor: the parameter registry, manual chapters,
``/proc`` layout, performance-model role mapping and coefficients, the mock
LLM's hallucination profile and tuning heuristics, and the expert/search
baselines.  The rest of the pipeline is backend-agnostic and resolves the
active backend through :func:`get_backend` (usually via
``ClusterSpec.backend``).

Lustre is registered first and is the default; registration order also
decides lookup priority in :func:`find_backend_for_param`.
"""

from repro.backends import beegfs as _beegfs
from repro.backends import lustre as _lustre
from repro.backends.base import (
    MODEL_ROLES,
    ParamSpec,
    PfsBackend,
    TuningHeuristics,
    detect_backend,
    find_backend_for_param,
    get_backend,
    list_backends,
    register_backend,
    resolve_backend,
)

LUSTRE = register_backend(_lustre.BACKEND)
BEEGFS = register_backend(_beegfs.BACKEND)

__all__ = [
    "MODEL_ROLES",
    "ParamSpec",
    "PfsBackend",
    "TuningHeuristics",
    "LUSTRE",
    "BEEGFS",
    "detect_backend",
    "find_backend_for_param",
    "get_backend",
    "list_backends",
    "register_backend",
    "resolve_backend",
]
