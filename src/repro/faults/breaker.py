"""Per-fault-site circuit breakers over tenant outcomes.

A long-lived service must not let one hostile fault site bleed every
subsequent tenant's retry budget: after ``threshold`` *consecutive*
tenant quarantines on the same site, the breaker opens and later tenants
run with that site in :attr:`repro.faults.RetryPolicy.fail_fast_sites`
(degraded mode — the first fault exhausts immediately instead of burning
the full backoff schedule).  After ``cooldown`` degraded tenants, the
breaker half-opens: the next tenant probes the site at full retries, and
its outcome closes the breaker again or re-opens it.

Determinism contract: breaker state is a pure fold over a *canonical
sequence of tenant outcomes* — never wall clock, never worker count.
Both the batch :class:`~repro.service.scheduler.FleetScheduler` and the
:class:`~repro.service.daemon.TuningService` feed it the same canonical
order, so the same tenants under the same plan trip the same breakers no
matter how they were submitted or parallelised.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.service.tenant import TenantFailure, TenantResult

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


@dataclass(frozen=True)
class BreakerPolicy:
    """When a fault site's breaker opens and how long it stays open.

    ``threshold`` consecutive tenant quarantines on one site open its
    breaker; ``cooldown`` subsequent (degraded) tenants later it
    half-opens and the next tenant probes the site at full retries.
    """

    threshold: int = 3
    cooldown: int = 4

    def __post_init__(self) -> None:
        if self.threshold < 1:
            raise ValueError(f"threshold={self.threshold} must be >= 1")
        if self.cooldown < 1:
            raise ValueError(f"cooldown={self.cooldown} must be >= 1")


class _SiteBreaker:
    """State machine for one fault site."""

    def __init__(self, policy: BreakerPolicy):
        self.policy = policy
        self.state = CLOSED
        self.consecutive = 0
        self.since_open = 0
        self.trips = 0

    def observe(self, failed_here: bool) -> None:
        if self.state == CLOSED:
            if failed_here:
                self.consecutive += 1
                if self.consecutive >= self.policy.threshold:
                    self.state = OPEN
                    self.since_open = 0
                    self.trips += 1
            else:
                self.consecutive = 0
        elif self.state == OPEN:
            # The observed tenant ran degraded on this site; its (fail-fast)
            # failure says nothing new about the site's health.  Count it
            # toward the cooldown only.
            self.since_open += 1
            if self.since_open >= self.policy.cooldown:
                self.state = HALF_OPEN
        else:  # HALF_OPEN: the observed tenant was the full-retry probe.
            if failed_here:
                self.state = OPEN
                self.since_open = 0
                self.trips += 1
            else:
                self.state = CLOSED
                self.consecutive = 0


class BreakerState:
    """Breakers for every fault site, folded over tenant outcomes.

    Feed outcomes with :meth:`observe` in the canonical tenant order;
    before each tenant, :meth:`open_sites` is the degraded mode that
    tenant must run under.  The fold is pure: same outcome sequence,
    same decisions.
    """

    def __init__(self, policy: BreakerPolicy):
        self.policy = policy
        self._sites: dict[str, _SiteBreaker] = {}

    def _site(self, name: str) -> _SiteBreaker:
        breaker = self._sites.get(name)
        if breaker is None:
            breaker = self._sites[name] = _SiteBreaker(self.policy)
        return breaker

    def open_sites(self) -> frozenset[str]:
        """Sites the *next* tenant must treat as fail-fast."""
        return frozenset(
            name for name, breaker in self._sites.items() if breaker.state == OPEN
        )

    def observe(self, outcome: "TenantResult | TenantFailure") -> None:
        """Fold one tenant outcome (in canonical order) into every breaker."""
        failed_site = getattr(outcome, "site", None)
        if failed_site is not None:
            self._site(failed_site)  # ensure the failing site is tracked
        for name, breaker in sorted(self._sites.items()):
            breaker.observe(name == failed_site)

    def report(self) -> dict[str, dict[str, int | str]]:
        """Per-site state summary (for rendering; sorted, wall-clock-free)."""
        return {
            name: {"state": breaker.state, "trips": breaker.trips}
            for name, breaker in sorted(self._sites.items())
        }
