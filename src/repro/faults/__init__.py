"""The deterministic fault-injection plane.

One seeded :class:`FaultPlan` decides — statelessly, by hashing (plan
stream, site, context key) — where the system fails; one
:class:`RetryPolicy` decides how hard the system fights back.  The
determinism contract everything else in the repo enforces extends here
unchanged: the same ``(seed, fault plan)`` produces byte-identical
sessions, transcripts and quarantine reports at any worker count, and the
zero-fault plan is byte-identical to running without the plane at all.
"""

from repro.faults.breaker import BreakerPolicy, BreakerState
from repro.faults.llm import ResilientLLMClient
from repro.faults.plan import FAULT_SITES, LLM_SITES, FaultPlan
from repro.faults.retry import (
    FaultBudgetExhausted,
    FaultError,
    RetryPolicy,
    TransientFault,
)

__all__ = [
    "FAULT_SITES",
    "LLM_SITES",
    "FaultPlan",
    "FaultError",
    "TransientFault",
    "FaultBudgetExhausted",
    "RetryPolicy",
    "ResilientLLMClient",
    "BreakerPolicy",
    "BreakerState",
]
