"""A fault-absorbing LLM client.

:class:`ResilientLLMClient` wraps :class:`repro.llm.client.LLMClient` with
the retry policy: before each attempt of a request it consults the fault
plan — a fired LLM site means that attempt never reaches the backend (the
provider errored, timed out, or returned an undecodable payload the caller
rejects before parsing), so the mock backend's prompt-cache state and the
successful request's usage are byte-identical to an unfaulted run.  Failed
attempts are charged separately: wasted tokens land on the ledger under
the ``llm_retries`` agent and backoff/timeout wall time accrues to LLM
latency, so degraded sessions are visible in cost accounting without
perturbing any other agent's numbers.
"""

from __future__ import annotations

from repro.faults.plan import LLM_SITES, FaultPlan
from repro.faults.retry import RetryPolicy, TransientFault
from repro.llm.api import ChatMessage, Completion, ToolSpec
from repro.llm.client import LLMClient
from repro.llm.tokens import TokenUsage, UsageLedger, count_tokens

#: Stand-in payload for a malformed response; only its token cost matters.
MALFORMED_PAYLOAD = '{"oops": truncated garbage that no parser accepts'


class ResilientLLMClient(LLMClient):
    """An :class:`LLMClient` that survives the plan's LLM fault sites."""

    def __init__(
        self,
        model="claude-3.7-sonnet",
        seed: int = 0,
        ledger: UsageLedger | None = None,
        faults: FaultPlan | None = None,
        retry: RetryPolicy | None = None,
    ):
        super().__init__(model, seed=seed, ledger=ledger)
        self.faults = faults if faults is not None else FaultPlan.none()
        self.retry = retry if retry is not None else RetryPolicy()
        #: Absorbed faults per site (feeds the session's recovery record).
        self.fault_counts: dict[str, int] = {}
        self._request_index: dict[str, int] = {}

    def complete(
        self,
        messages: list[ChatMessage],
        tools: list[ToolSpec] | None = None,
        agent: str = "generic",
        session: str | None = None,
    ) -> Completion:
        if not self.faults.active:
            return super().complete(messages, tools=tools, agent=agent, session=session)
        # Logical request identity: the session's name plus this client's
        # per-session call index.  Session names embed workload and run
        # seed, so the key — hence the fault draw — is stable across
        # worker counts and interleavings.
        session_key = session or agent
        index = self._request_index.get(session_key, 0) + 1
        self._request_index[session_key] = index
        key = f"llm:{session_key}:{index}"
        prompt_tokens = count_tokens("\n\n".join(m.content for m in messages))

        def attempt(n: int) -> Completion:
            for site in LLM_SITES:
                if self.faults.should_fire(site, f"{key}:a{n}"):
                    raise TransientFault(site, key=f"{key}:a{n}")
            return LLMClient.complete(
                self, messages, tools=tools, agent=agent, session=session
            )

        def record(fault: TransientFault, n: int, delay: float) -> None:
            wasted = TokenUsage(input_tokens=prompt_tokens)
            latency = delay + self.profile.latency_per_request
            if fault.site == "llm.timeout":
                latency = delay + self.retry.request_timeout
            elif fault.site == "llm.malformed":
                wasted = wasted + TokenUsage(
                    output_tokens=count_tokens(MALFORMED_PAYLOAD)
                )
            self.ledger.record_retry(wasted, latency=latency)
            self.fault_counts[fault.site] = self.fault_counts.get(fault.site, 0) + 1

        return self.retry.execute(attempt, site="llm", key=key, plan=self.faults, record=record)
