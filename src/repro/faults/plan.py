"""The seeded, deterministic fault plan.

A :class:`FaultPlan` decides, for every *named fault site* in the system,
whether a given operation fails.  Decisions are **stateless**: each one is
a pure hash of ``(plan stream seed, site, context key)``, so the plan never
carries counters that could drift between workers or interleavings — the
same property that makes :class:`repro.sim.random.RngStreams` safe makes
the plan worker-count invariant and trivially picklable.

The registered sites (the complete injection surface):

========================  ==================================================
``llm.transient``         the LLM API returns a retryable 5xx/overloaded
``llm.timeout``           the LLM request exceeds its timeout budget
``llm.malformed``         the LLM responds, but with an undecodable payload
``probe.run``             a configuration probe run fails to complete
``darshan.truncate``      the Darshan capture loses a suffix of ranks
``journal.write``         persisting journal/checkpoint state fails
========================  ==================================================

Sites are *backend-agnostic* — keys are built from seeds, workload names
and logical call indices, never from backend parameter names, so one plan
means the same schedule of adversity on every registered backend.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Mapping

from repro.sim.random import RngStreams

#: Every named fault site the plan can arm, with what firing means.
FAULT_SITES: dict[str, str] = {
    "llm.transient": "LLM API returns a retryable transient error",
    "llm.timeout": "LLM request exceeds the per-request timeout",
    "llm.malformed": "LLM responds with an undecodable payload",
    "probe.run": "a configuration probe run fails to complete",
    "darshan.truncate": "the Darshan capture loses a suffix of ranks",
    "journal.write": "persisting journal/checkpoint state fails",
}

#: The LLM-facing sites, in the order the resilient client checks them.
LLM_SITES = ("llm.transient", "llm.timeout", "llm.malformed")


@dataclass(frozen=True)
class FaultPlan:
    """Per-site fault rates rooted in one dedicated RNG stream.

    ``seed`` roots the plan's own stream space (spawned as ``faults`` so the
    plan can never correlate with simulator noise drawn from the same root
    seed); ``rates`` maps registered site names to firing probabilities.
    The plan is frozen, hashable-free and picklable — workers receive the
    same plan the parent holds, byte for byte.
    """

    seed: int = 0
    rates: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self):
        unknown = set(self.rates) - set(FAULT_SITES)
        if unknown:
            raise ValueError(
                f"unknown fault site(s) {sorted(unknown)}; "
                f"registered: {sorted(FAULT_SITES)}"
            )
        for site, rate in self.rates.items():
            if not 0.0 <= float(rate) <= 1.0:
                raise ValueError(f"rate for {site} must lie in [0, 1], got {rate}")
        object.__setattr__(self, "rates", dict(self.rates))
        object.__setattr__(
            self, "_root", RngStreams(self.seed).spawn("faults").seed
        )

    # ------------------------------------------------------------------
    @property
    def active(self) -> bool:
        """Whether any site can ever fire (the zero plan is inert)."""
        return any(rate > 0.0 for rate in self.rates.values())

    def rate(self, site: str) -> float:
        return float(self.rates.get(site, 0.0))

    def fraction(self, name: str, key: str) -> float:
        """A deterministic uniform draw in ``[0, 1)`` for ``(name, key)``.

        Stateless by construction: the draw is a pure hash, so it is
        independent of call order, worker count and every other draw.
        """
        digest = hashlib.sha256(f"{self._root}:{name}:{key}".encode()).digest()
        return int.from_bytes(digest[:8], "little") / 2**64

    def should_fire(self, site: str, key: str) -> bool:
        """Whether ``site`` fails for the operation identified by ``key``."""
        rate = self.rate(site)
        return rate > 0.0 and self.fraction(site, key) < rate

    # ------------------------------------------------------------------
    @classmethod
    def none(cls, seed: int = 0) -> "FaultPlan":
        """The inert plan: every site at rate zero."""
        return cls(seed=seed)

    @classmethod
    def uniform(cls, rate: float, seed: int = 0) -> "FaultPlan":
        """Every registered site armed at the same ``rate``."""
        return cls(seed=seed, rates={site: rate for site in FAULT_SITES})

    def describe(self) -> str:
        armed = {s: r for s, r in sorted(self.rates.items()) if r > 0.0}
        if not armed:
            return f"FaultPlan(seed={self.seed}, inert)"
        rates = ", ".join(f"{site}={rate:g}" for site, rate in armed.items())
        return f"FaultPlan(seed={self.seed}, {rates})"
