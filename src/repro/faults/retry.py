"""Bounded, deterministic retries around injectable fault sites.

:class:`RetryPolicy` is the one retry loop the whole system uses — around
LLM requests, probe runs and journal/checkpoint writes.  Backoff is
exponential with *seeded* jitter: the jitter is drawn from the fault plan's
hash space, so a retried operation backs off identically in every worker
and on every replay.  All delays are simulated time — they are charged to
latency accounting, never slept.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Iterable, TypeVar

from repro.faults.plan import FaultPlan

T = TypeVar("T")


class FaultError(RuntimeError):
    """Base class for injected-fault errors."""


class TransientFault(FaultError):
    """One injected failure of a single operation attempt (retryable)."""

    def __init__(self, site: str, key: str = ""):
        super().__init__(f"injected {site} fault at {key or '<unkeyed>'}")
        self.site = site
        self.key = key


class FaultBudgetExhausted(FaultError):
    """Every allowed attempt of an operation failed.

    Carries the structured context quarantine reports are built from:
    the failing site, the operation key, how many attempts were spent and
    how much simulated backoff accrued before giving up.  ``backoff_spent``
    counts only delays that preceded an attempt that actually ran — the
    backoff a final retry *would* have waited is never charged, because that
    retry never happens.  ``fail_fast`` marks exhaustions short-circuited by
    an open circuit breaker (see :attr:`RetryPolicy.fail_fast_sites`).
    """

    def __init__(
        self,
        site: str,
        key: str,
        attempts: int,
        backoff_spent: float = 0.0,
        fail_fast: bool = False,
    ):
        mode = "fail-fast (breaker open)" if fail_fast else "exhausted its retry budget"
        super().__init__(
            f"fault site {site} {mode} after "
            f"{attempts} attempt(s) at {key or '<unkeyed>'} "
            f"({backoff_spent:.1f}s backoff spent)"
        )
        self.site = site
        self.key = key
        self.attempts = attempts
        self.backoff_spent = backoff_spent
        self.fail_fast = fail_fast


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with deterministic exponential backoff.

    ``max_retries`` bounds retries *after* the first try (so an operation
    gets ``max_retries + 1`` attempts); ``timeout_budget`` bounds the total
    simulated backoff an operation may accrue — whichever limit trips
    first raises :class:`FaultBudgetExhausted`.  ``request_timeout`` is the
    simulated wall cost charged for one timed-out request.

    ``fail_fast_sites`` lists sites whose *first* transient fault exhausts
    immediately — no retries, no backoff.  The service layer's circuit
    breaker routes tenants into this degraded mode once a site has proven
    hostile, instead of burning every tenant's full retry budget on it.
    """

    max_retries: int = 4
    base_backoff: float = 0.5
    backoff_factor: float = 2.0
    jitter: float = 0.1
    request_timeout: float = 30.0
    timeout_budget: float = 120.0
    fail_fast_sites: frozenset[str] = frozenset()

    def with_fail_fast(self, sites: Iterable[str]) -> "RetryPolicy":
        """This policy, failing fast on ``sites`` (replaces any prior set)."""
        return replace(self, fail_fast_sites=frozenset(sites))

    def with_deadline(self, deadline: float | None) -> "RetryPolicy":
        """This policy with ``timeout_budget`` capped at ``deadline``.

        ``None`` leaves the policy untouched; the cap never *raises* the
        budget, so a generous deadline cannot loosen an existing policy.
        """
        if deadline is None:
            return self
        return replace(self, timeout_budget=min(self.timeout_budget, float(deadline)))

    def backoff(self, plan: FaultPlan, key: str, attempt: int) -> float:
        """Simulated delay before retrying ``attempt`` (0-based)."""
        spread = 2.0 * plan.fraction("backoff", f"{key}:jitter:{attempt}") - 1.0
        return self.base_backoff * self.backoff_factor**attempt * (
            1.0 + self.jitter * spread
        )

    def execute(
        self,
        fn: Callable[[int], T],
        site: str,
        key: str,
        plan: FaultPlan,
        record: Callable[[TransientFault, int, float], None] | None = None,
    ) -> T:
        """Run ``fn(attempt)`` until it succeeds or the budget is spent.

        ``record`` observes every failed attempt (for retry/latency
        accounting) *before* the exhaustion decision, so quarantine reports
        and ledgers see each attempt exactly once.  The attempt that
        exhausts the budget is recorded with a zero delay: the backoff that
        would have preceded the next retry is never waited, so neither the
        ledger nor ``backoff_spent`` charges it.
        """
        spent = 0.0
        for attempt in range(self.max_retries + 1):
            try:
                return fn(attempt)
            except TransientFault as fault:
                if fault.site in self.fail_fast_sites:
                    if record is not None:
                        record(fault, attempt, 0.0)
                    raise FaultBudgetExhausted(
                        site=fault.site,
                        key=key,
                        attempts=attempt + 1,
                        backoff_spent=spent,
                        fail_fast=True,
                    ) from fault
                delay = self.backoff(plan, key, attempt)
                if attempt == self.max_retries or spent + delay > self.timeout_budget:
                    if record is not None:
                        record(fault, attempt, 0.0)
                    raise FaultBudgetExhausted(
                        site=fault.site,
                        key=key,
                        attempts=attempt + 1,
                        backoff_spent=spent,
                    ) from fault
                spent += delay
                if record is not None:
                    record(fault, attempt, delay)
        raise AssertionError("unreachable")  # pragma: no cover
