"""Bounded, deterministic retries around injectable fault sites.

:class:`RetryPolicy` is the one retry loop the whole system uses — around
LLM requests, probe runs and journal/checkpoint writes.  Backoff is
exponential with *seeded* jitter: the jitter is drawn from the fault plan's
hash space, so a retried operation backs off identically in every worker
and on every replay.  All delays are simulated time — they are charged to
latency accounting, never slept.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, TypeVar

from repro.faults.plan import FaultPlan

T = TypeVar("T")


class FaultError(RuntimeError):
    """Base class for injected-fault errors."""


class TransientFault(FaultError):
    """One injected failure of a single operation attempt (retryable)."""

    def __init__(self, site: str, key: str = ""):
        super().__init__(f"injected {site} fault at {key or '<unkeyed>'}")
        self.site = site
        self.key = key


class FaultBudgetExhausted(FaultError):
    """Every allowed attempt of an operation failed.

    Carries the structured context quarantine reports are built from:
    the failing site, the operation key, how many attempts were spent and
    how much simulated backoff accrued before giving up.
    """

    def __init__(self, site: str, key: str, attempts: int, backoff_spent: float = 0.0):
        super().__init__(
            f"fault site {site} exhausted its retry budget after "
            f"{attempts} attempt(s) at {key or '<unkeyed>'} "
            f"({backoff_spent:.1f}s backoff spent)"
        )
        self.site = site
        self.key = key
        self.attempts = attempts
        self.backoff_spent = backoff_spent


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with deterministic exponential backoff.

    ``max_retries`` bounds retries *after* the first try (so an operation
    gets ``max_retries + 1`` attempts); ``timeout_budget`` bounds the total
    simulated backoff an operation may accrue — whichever limit trips
    first raises :class:`FaultBudgetExhausted`.  ``request_timeout`` is the
    simulated wall cost charged for one timed-out request.
    """

    max_retries: int = 4
    base_backoff: float = 0.5
    backoff_factor: float = 2.0
    jitter: float = 0.1
    request_timeout: float = 30.0
    timeout_budget: float = 120.0

    def backoff(self, plan: FaultPlan, key: str, attempt: int) -> float:
        """Simulated delay before retrying ``attempt`` (0-based)."""
        spread = 2.0 * plan.fraction("backoff", f"{key}:jitter:{attempt}") - 1.0
        return self.base_backoff * self.backoff_factor**attempt * (
            1.0 + self.jitter * spread
        )

    def execute(
        self,
        fn: Callable[[int], T],
        site: str,
        key: str,
        plan: FaultPlan,
        record: Callable[[TransientFault, int, float], None] | None = None,
    ) -> T:
        """Run ``fn(attempt)`` until it succeeds or the budget is spent.

        ``record`` observes every failed attempt (for retry/latency
        accounting) *before* the exhaustion decision, so quarantine reports
        and ledgers see each attempt exactly once.
        """
        spent = 0.0
        for attempt in range(self.max_retries + 1):
            try:
                return fn(attempt)
            except TransientFault as fault:
                delay = self.backoff(plan, key, attempt)
                spent += delay
                if record is not None:
                    record(fault, attempt, delay)
                if attempt == self.max_retries or spent > self.timeout_budget:
                    raise FaultBudgetExhausted(
                        site=fault.site,
                        key=key,
                        attempts=attempt + 1,
                        backoff_spent=spent,
                    ) from fault
        raise AssertionError("unreachable")  # pragma: no cover
