"""Named, reproducible RNG streams.

Every stochastic component in the simulator draws from its own named stream so
that adding a new consumer never perturbs the draws seen by existing ones —
the standard trick for reproducible parallel-discrete-event experiments.
"""

from __future__ import annotations

import hashlib
from functools import lru_cache

import numpy as np


@lru_cache(maxsize=1 << 15)
def _derive_seed(root_seed: int, name: str) -> int:
    """Derive a 63-bit child seed from a root seed and a stream name.

    Memoized: every simulator run re-derives the same handful of stream
    names under the same rep seeds, and the sha256 shows up in fleet
    profiles.  The map is pure, so caching cannot change any draw.
    """
    digest = hashlib.sha256(f"{root_seed}:{name}".encode()).digest()
    return int.from_bytes(digest[:8], "little") & (2**63 - 1)


#: Repetition index space per root seed — rep seeds are ``root * 10_000 + rep``.
REP_STRIDE = 10_000


class RngStreams:
    """A factory of independent :class:`numpy.random.Generator` streams."""

    def __init__(self, seed: int):
        self.seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    @staticmethod
    def rep_seed(root_seed: int, rep: int) -> int:
        """The run seed for repetition ``rep`` of an experiment rooted at
        ``root_seed``.

        Every call site that performs repeated measurements (the harness's
        ``measure_config``, ``Simulator.run_repetitions``, the batch API)
        derives its per-rep seeds here, so two experiments rooted at
        different seeds can never collide or correlate as long as
        ``rep < REP_STRIDE`` — which is asserted.
        """
        if not 0 <= rep < REP_STRIDE:
            raise ValueError(f"rep {rep} outside [0, {REP_STRIDE})")
        return root_seed * REP_STRIDE + rep

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating if needed) the generator for ``name``."""
        gen = self._streams.get(name)
        if gen is None:
            gen = np.random.default_rng(_derive_seed(self.seed, name))
            self._streams[name] = gen
        return gen

    def spawn(self, name: str) -> "RngStreams":
        """Create a child stream-space, e.g. one per tuning repetition."""
        return RngStreams(_derive_seed(self.seed, f"spawn:{name}"))

    def lognormal_noise(self, name: str, sigma: float) -> float:
        """One multiplicative noise factor with unit median."""
        if sigma <= 0:
            return 1.0
        return float(np.exp(self.stream(name).normal(0.0, sigma)))

    def lognormal_noise_vector(self, names: list[str], sigma: float) -> np.ndarray:
        """Noise factors for many named streams in one vectorized ``exp``.

        Element ``i`` is bit-identical to ``lognormal_noise(names[i], sigma)``
        — each name still owns an independent generator (so adding consumers
        never perturbs existing draws); only the normal→lognormal transform
        is batched.
        """
        if sigma <= 0:
            return np.ones(len(names))
        draws = np.array([self.stream(n).normal(0.0, sigma) for n in names])
        return np.exp(draws)
