"""Named, reproducible RNG streams.

Every stochastic component in the simulator draws from its own named stream so
that adding a new consumer never perturbs the draws seen by existing ones —
the standard trick for reproducible parallel-discrete-event experiments.
"""

from __future__ import annotations

import hashlib

import numpy as np


def _derive_seed(root_seed: int, name: str) -> int:
    """Derive a 63-bit child seed from a root seed and a stream name."""
    digest = hashlib.sha256(f"{root_seed}:{name}".encode()).digest()
    return int.from_bytes(digest[:8], "little") & (2**63 - 1)


class RngStreams:
    """A factory of independent :class:`numpy.random.Generator` streams."""

    def __init__(self, seed: int):
        self.seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating if needed) the generator for ``name``."""
        gen = self._streams.get(name)
        if gen is None:
            gen = np.random.default_rng(_derive_seed(self.seed, name))
            self._streams[name] = gen
        return gen

    def spawn(self, name: str) -> "RngStreams":
        """Create a child stream-space, e.g. one per tuning repetition."""
        return RngStreams(_derive_seed(self.seed, f"spawn:{name}"))

    def lognormal_noise(self, name: str, sigma: float) -> float:
        """One multiplicative noise factor with unit median."""
        if sigma <= 0:
            return 1.0
        return float(np.exp(self.stream(name).normal(0.0, sigma)))
