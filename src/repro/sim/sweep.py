"""Columnar candidate sweeps: many configurations, one workload, one pass.

``run_batch`` (:mod:`repro.sim.batch`) dedups *identical* (workload, config)
pairs, but a candidate grid — the coordinate-descent baseline, cross-backend
transfer scoring, a tuning probe ladder — is the opposite shape: one workload
and dozens of *distinct* configurations.  There the batch path re-runs the
whole scalar pipeline per candidate: config copy, validation, ``CostModel``
construction, and a Python-level costing of every phase.

This engine hoists everything config-invariant out of the candidate loop
(compiled phases, job geometry, per-phase byte/RPC totals, fileset
spreading, the client-cache write ledger) and extracts each candidate's role
values into structure-of-arrays columns, evaluating the analytic bounds
across the whole candidate axis with numpy.  Scalar float64 arithmetic and
elementwise numpy float64 arithmetic are both IEEE-754 double with identical
rounding, so by mapping every scalar operation to one elementwise operation
with the same operand order the results are **bit-identical** to
``run_batch`` on the same (workload, config, seed) items — asserted per
registered backend by ``tests/test_sweep.py``.  Transcendentals that numpy
may route through a different libm path (``log2`` in the lock model, the
``rho ** 8`` in the MDS wait) are deliberately evaluated through the scalar
helpers per candidate instead of vectorized.

The per-item noise application re-derives exactly the seeds and streams the
sequential path uses (``RngStreams`` named streams), but constructs each
generator directly as ``Generator(PCG64(seed))`` — bit-identical to
``np.random.default_rng(seed)``, which wraps an integer seed in the same
``SeedSequence`` — skipping the per-stream bookkeeping of the generic API.

Sharing caveats match the batch engine: items with equal configurations
share one validated ``PfsConfig`` and phase results share ``phase`` /
``bounds`` objects; consumers treat both as immutable.  When the
:data:`~repro.sim.cache.RUN_CACHE` is enabled, finished ``RunResult``s are
served from and stored into it per (backend, cluster, workload, config,
seed) key.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Sequence

import numpy as np

from repro.backends.base import PAGE_SIZE
from repro.cluster.mpi import MpiJob
from repro.pfs import locks
from repro.pfs.config import PfsConfig
from repro.pfs.costs import (
    CHECKSUM_BW,
    CLIENT_MEM_BW,
    CLIENT_META_CPU,
    JOURNAL_COST,
    MDS_SERVICE_TIME,
    PDIROPS_CONCURRENCY,
    STATAHEAD_SLOT_DIVISOR,
    STATAHEAD_WINDOW_CAP,
    STRIPE_OBJECT_COST,
    CostModel,
)
from repro.pfs.expressions import ExpressionError, compile_expression_vector
from repro.pfs.model import RunState
from repro.pfs.phases import MODIFYING_OPS, DataPhase, MetaPhase, PhaseResult
from repro.pfs.striping import resolve_stripe_count
from repro.sim.cache import RUN_CACHE
from repro.sim.fastrng import first_normals
from repro.sim.random import _derive_seed

if TYPE_CHECKING:  # pragma: no cover - import cycle with the facade module
    from repro.pfs.simulator import RunResult, Simulator, WorkloadLike
    from repro.sim.batch import BatchItem


def run_sweep(
    sim: "Simulator",
    workload: "WorkloadLike",
    configs: Sequence[PfsConfig],
    seeds: Sequence[int],
) -> list["RunResult"]:
    """Evaluate aligned ``(config, seed)`` pairs of one workload columnar.

    Bit-identical to ``sim.run_batch(sweep_items(workload, configs, seeds))``
    — only faster, because the candidate axis is evaluated once through the
    structure-of-arrays model instead of per config.
    """
    from repro.sim.batch import sweep_items

    return run_items(sim, sweep_items(workload, configs, seeds))


def run_items(sim: "Simulator", items: Iterable["BatchItem"]) -> list["RunResult"]:
    """Arbitrary batch items, grouped per workload through the columnar path.

    Items are partitioned by workload identity; each partition sweeps its
    distinct configurations in one columnar pass (single-config partitions
    take the scalar fast path — same result, no vector overhead).  Results
    come back in item order, bit-identical to :func:`repro.sim.batch.run_batch`.
    """
    items = list(items)
    results, pending, keys = RUN_CACHE.partition(sim.cluster, items)

    groups: dict[tuple, list[int]] = {}
    for index in pending:
        groups.setdefault(items[index][0].cache_key(), []).append(index)
    for indices in groups.values():
        workload = items[indices[0]][0]
        swept = _sweep_group(sim, workload, [items[i] for i in indices])
        for index, result in zip(indices, swept):
            results[index] = result
            if keys is not None:
                RUN_CACHE.put(keys[index], result)
    return results


def run_fleet_items(
    items: Sequence[tuple["Simulator", "WorkloadLike", PfsConfig, int]],
) -> list["RunResult"]:
    """Grouped *multi-tenant* batch: items may span clusters.

    The fleet broker's flush path.  Each item names the simulator (hence the
    cluster) it belongs to; items are regrouped per cluster key and every
    cluster group runs through :func:`run_items` — one columnar pass per
    (workload, cluster) group across all co-batched tenants.  Because each
    item's result depends only on its own (cluster, workload, config, seed)
    and the columnar engine is bit-identical to the scalar path, the output
    never depends on *which* tenants happened to be batched together.
    Results come back in item order.
    """
    results: list["RunResult | None"] = [None] * len(items)
    groups: dict[tuple, tuple["Simulator", list[int]]] = {}
    for index, (sim, _, _, _) in enumerate(items):
        key = (sim.cluster.backend_name, sim.cluster.cache_key())
        entry = groups.get(key)
        if entry is None:
            entry = groups[key] = (sim, [])
        entry[1].append(index)
    for sim, indices in groups.values():
        batch = [items[i][1:] for i in indices]
        for index, result in zip(indices, run_items(sim, batch)):
            results[index] = result
    return results


# ---------------------------------------------------------------------------
# Group evaluation
# ---------------------------------------------------------------------------
def _sweep_group(
    sim: "Simulator", workload: "WorkloadLike", group_items: list["BatchItem"]
) -> list["RunResult"]:
    """All items of one workload: dedup configs, evaluate, apply noise."""
    from repro.pfs.simulator import PHASE_NOISE_SIGMA, RUN_NOISE_SIGMA, RunResult

    slots: dict[tuple, int] = {}
    unique_configs: list[PfsConfig] = []
    members: list[int] = []
    for _workload, config, _seed in group_items:
        key = config.cache_key()
        slot = slots.get(key)
        if slot is None:
            slot = len(unique_configs)
            slots[key] = slot
            unique_configs.append(config)
        members.append(slot)

    if len(unique_configs) == 1:
        from repro.sim.batch import _evaluate_phases

        evaluated = [_evaluate_phases(sim, workload, unique_configs[0])]
    else:
        evaluated = _evaluate_columnar(sim, workload, unique_configs)

    # -- per-item noise: dedup by seed, bulk-seed only the cache misses ----
    # Noise depends on (seed, workload, n_phases) alone — never the config —
    # so a config×seed grid computes each seed's factors once, and the
    # shared memo in the simulator module carries them across groups, broker
    # flushes and engines (the scalar path fills and reads the same dict).
    from repro.pfs.simulator import _NOISE_CACHE, _NOISE_CACHE_MAX

    name = workload.name
    n_phases = len(evaluated[0][1])
    noise_by_seed: dict[int, tuple[tuple[float, ...], float]] = {}
    for _workload, _config, seed in group_items:
        if seed not in noise_by_seed:
            noise_by_seed[seed] = _NOISE_CACHE.get((seed, name, n_phases))
    missing = [seed for seed, noise in noise_by_seed.items() if noise is None]
    if missing:
        roots = [_derive_seed(seed, f"spawn:run:{name}") for seed in missing]
        phase_names = [f"phase:{i}" for i in range(n_phases)]
        if PHASE_NOISE_SIGMA > 0:
            phase_noises = np.exp(
                first_normals(
                    [_derive_seed(root, pn) for root in roots for pn in phase_names],
                    PHASE_NOISE_SIGMA,
                )
            ).reshape(len(missing), n_phases)
        else:
            phase_noises = np.ones((len(missing), n_phases))
        if RUN_NOISE_SIGMA > 0:
            run_noises = np.exp(
                first_normals(
                    [_derive_seed(root, "run") for root in roots], RUN_NOISE_SIGMA
                )
            )
        else:
            run_noises = np.ones(len(missing))
        for index, seed in enumerate(missing):
            noise = (
                tuple(phase_noises[index].tolist()),
                float(run_noises[index]),
            )
            noise_by_seed[seed] = noise
            if len(_NOISE_CACHE) < _NOISE_CACHE_MAX:
                _NOISE_CACHE[(seed, name, n_phases)] = noise

    results: list["RunResult"] = []
    for (_workload, _config, seed), slot in zip(group_items, members):
        shared_config, base = evaluated[slot]
        noise_row, run_factor = noise_by_seed[seed]
        phases: list[PhaseResult] = []
        total = 0.0
        for result, noise in zip(base, noise_row):
            seconds = result.seconds * noise
            phases.append(
                _phase_result(
                    result.phase,
                    seconds,
                    result.bottleneck,
                    result.bounds,
                    result.bytes_read,
                    result.bytes_written,
                    result.mds_ops,
                    result.rpcs,
                )
            )
            total += seconds
        total *= run_factor
        results.append(
            RunResult(
                workload=name,
                config=shared_config,
                seconds=total,
                phases=phases,
                seed=seed,
            )
        )
    return results


def _phase_result(
    phase, seconds, bottleneck, bounds, bytes_read, bytes_written, mds_ops, rpcs
) -> PhaseResult:
    """Construct a :class:`PhaseResult` without dataclass-__init__ overhead.

    The sweep builds two phase results per (candidate, phase) — the
    noise-free base and the noisy copy — so constructor cost is hot.
    ``__post_init__``'s negative-seconds guard is upheld by construction
    (model bounds are non-negative and noise factors positive).
    """
    result = PhaseResult.__new__(PhaseResult)
    result.__dict__ = {
        "phase": phase,
        "seconds": seconds,
        "bottleneck": bottleneck,
        "bounds": bounds,
        "bytes_read": bytes_read,
        "bytes_written": bytes_written,
        "mds_ops": mds_ops,
        "rpcs": rpcs,
    }
    return result


# ---------------------------------------------------------------------------
# Columnar model evaluation
# ---------------------------------------------------------------------------
class _RoleColumns:
    """Lazy structure-of-arrays view of every candidate's role values."""

    def __init__(self, configs: list[PfsConfig]):
        self.configs = configs
        self.n = len(configs)
        self._cache: dict[str, np.ndarray] = {}

    def get(self, role: str, default=None):
        """Int64 column of ``config.role(role)`` per candidate.

        For roles the backend omits, ``default`` is returned as-is (scalar or
        column) — mirroring ``PfsConfig.role``'s fallback, including its
        ``KeyError`` when no default is given.
        """
        column = self._cache.get(role)
        if column is not None:
            return column
        backend = self.configs[0].backend
        entry = backend.roles.get(role)
        if entry is None:
            if default is None:
                raise KeyError(
                    f"backend {backend.name!r} maps no parameter to "
                    f"role {role!r}"
                )
            return default
        # The bulk form of ``config.role(role)`` — resolved through the
        # backend's role map, never by literal parameter name.
        name, scale = entry
        column = np.fromiter(
            (config._values[name] for config in self.configs),
            dtype=np.int64,
            count=self.n,
        )
        if scale != 1:
            column = column * scale
        self._cache[role] = column
        return column

    def stripe_counts(self, n_ost: int) -> np.ndarray:
        """Resolved stripe counts (``-1`` = all OSTs), like ``_layout``."""
        resolved = self._cache.get("#stripe_count_resolved")
        if resolved is None:
            requested = self.get("stripe_count")
            invalid = (requested != -1) & (requested < 1)
            if invalid.any():
                # Raise exactly what the scalar path raises for this value.
                resolve_stripe_count(int(requested[int(np.argmax(invalid))]), n_ost)
            resolved = np.where(requested == -1, n_ost, np.minimum(requested, n_ost))
            self._cache["#stripe_count_resolved"] = resolved
        return resolved


def _evaluate_columnar(
    sim: "Simulator", workload: "WorkloadLike", configs: list[PfsConfig]
) -> list[tuple[PfsConfig, list[PhaseResult]]]:
    """Validate and cost every distinct candidate, noise-free."""
    from repro.pfs.simulator import bind_run_config

    cluster = sim.cluster
    prepared = [bind_run_config(cluster, config) for config in configs]
    if not _validated_columnar(prepared):
        for config in prepared:
            config.validate()

    job = MpiJob.launch(workload.name, workload.n_ranks, cluster)
    columns = _RoleColumns(prepared)
    # Every CostModel field except ``checksums`` is a (cluster, backend)
    # constant; the checksums flag is handled columnar below.
    costs = CostModel(cluster, prepared[0])
    state = RunState()
    rows: list[list[PhaseResult]] = [[] for _ in prepared]
    for phase in workload.compile(cluster):
        if isinstance(phase, DataPhase):
            phase_rows = _eval_data(phase, job, state, cluster, costs, columns)
        elif isinstance(phase, MetaPhase):
            phase_rows = _eval_meta(phase, job, state, cluster, costs, columns)
        else:
            raise TypeError(f"unknown phase type {type(phase).__name__}")
        for row, result in zip(rows, phase_rows):
            row.append(result)
    return list(zip(prepared, rows))


def _validated_columnar(prepared: list[PfsConfig]) -> bool:
    """``True`` when every candidate is proven valid columnar.

    Anything the vectorized check cannot prove — heterogeneous fact keys,
    expression errors, an actual violation — returns ``False`` and the
    caller falls back to per-config ``validate()``, which raises the exact
    scalar error messages.
    """
    first = prepared[0]
    backend = first.backend
    fact_keys = list(first.facts)
    value_names = list(first._values)
    for config in prepared[1:]:
        if (
            config.backend is not backend
            or list(config.facts) != fact_keys
            or list(config._values) != value_names
        ):
            return False
    n = len(prepared)
    env: dict[str, np.ndarray] = {}
    try:
        # Same backend ⇒ same value-dict key order, so one matrix covers all.
        matrix = np.array(
            [list(config._values.values()) for config in prepared],
            dtype=np.float64,
        )
        for column, name in enumerate(first._values):
            env[name] = matrix[:, column]
        for key in fact_keys:
            env[key] = np.fromiter(
                (config.facts[key] for config in prepared),
                dtype=np.float64,
                count=n,
            )
    except (KeyError, TypeError, ValueError):
        return False
    try:
        for name in first._values:
            spec = backend.registry[name]
            values = env[name]
            if spec.ptype == "bool" and bool(np.any((values != 0) & (values != 1))):
                return False
            low = _resolve_vector(spec.min_expr, env, float("-inf"))
            high = _resolve_vector(spec.max_expr, env, float("inf"))
            if bool(np.any(values < low)) or bool(np.any(values > high)):
                return False
    except ExpressionError:
        return False
    return True


def _resolve_vector(expr, env: dict, default: float):
    if expr is None:
        return default
    if isinstance(expr, (int, float)):
        return float(expr)
    return compile_expression_vector(expr)(env)


def _columns_as_rows(n: int, columns: list) -> list[list]:
    """Transpose columns (arrays or broadcast scalars) into per-candidate
    rows of builtin Python values."""
    lists = [
        column.tolist() if isinstance(column, np.ndarray) else [column] * n
        for column in columns
    ]
    return [[values[i] for values in lists] for i in range(n)]


def _assemble(
    n: int,
    phase,
    names: list[str],
    bound_columns: list,
    tail,
    skip=None,
    bytes_read=0,
    bytes_written=0,
    mds_ops=0,
    rpcs=0,
):
    """Per-candidate ``PhaseResult``s from bound columns.

    ``tail`` is the pipeline-fill term added after the max (the RPC round
    trip for data phases, the loaded cycle for metadata phases); ``skip``
    marks candidates handled elsewhere (the client-cache fast path).
    Bounds keep the scalar model's dict insertion order, so ties in the
    bottleneck argmax break identically.
    """
    stacked = np.vstack(
        [
            np.broadcast_to(np.asarray(column, dtype=np.float64), (n,))
            for column in bound_columns
        ]
    )
    seconds = (stacked.max(axis=0) + tail).tolist()
    bottlenecks = [names[i] for i in np.argmax(stacked, axis=0).tolist()]
    rows = _columns_as_rows(n, bound_columns)
    rpcs_list = rpcs.tolist() if isinstance(rpcs, np.ndarray) else [rpcs] * n
    results: list[PhaseResult | None] = []
    for i in range(n):
        if skip is not None and skip[i]:
            results.append(None)
            continue
        results.append(
            _phase_result(
                phase,
                seconds[i],
                bottlenecks[i],
                dict(zip(names, rows[i])),
                bytes_read,
                bytes_written,
                mds_ops,
                rpcs_list[i],
            )
        )
    return results


def _eval_data(
    phase: DataPhase, job: MpiJob, state: RunState, cluster, costs, columns
) -> list[PhaseResult]:
    n = columns.n
    n_ranks = job.n_ranks
    n_clients = cluster.n_clients
    ranks_pc = max(1, -(-n_ranks // n_clients))
    k = columns.stripe_counts(cluster.n_ost)
    stripe_size = columns.get("stripe_size_bytes")
    fs = phase.fileset

    total_bytes = phase.bytes_per_rank * n_ranks
    cap = np.minimum(columns.get("rpc_cap_bytes"), stripe_size)
    if phase.pattern == "seq":
        dirty = columns.get("dirty_bytes")
        eff_rpc = np.maximum(
            PAGE_SIZE, np.minimum(cap, np.maximum(phase.xfer_size, dirty))
        )
    else:
        eff_rpc = np.maximum(1, np.minimum(phase.xfer_size, cap))
    rpcs_per_rank = -((-phase.bytes_per_rank) // eff_rpc)
    total_rpcs = rpcs_per_rank * n_ranks

    # Cache-served re-reads: per-candidate only through the cache limit; the
    # write ledger itself is configuration-invariant.
    hit_mask = None
    hit_seconds = 0.0
    if phase.io == "read" and phase.reuse:
        cached = state.cached_bytes(fs.name)
        per_client = phase.bytes_per_rank * ranks_pc
        if cached >= per_client:
            hit_mask = per_client <= columns.get("cached_bytes")
            if not hit_mask.any():
                hit_mask = None
            else:
                hit_seconds = per_client / CLIENT_MEM_BW + phase.ops_per_rank * 2e-6

    # --- stripe object spreading -----------------------------------
    if fs.shared:
        used_osts = np.minimum(k * fs.n_files, cluster.n_ost)
        imbalance = 1.0
    else:
        objects = fs.n_files * k
        used_osts = np.minimum(objects, cluster.n_ost)
        per_ost = objects / cluster.n_ost
        imbalance = np.where(
            per_ost >= 1, (-((-objects) // cluster.n_ost)) / per_ost, 1.0
        )
    worst_bytes = total_bytes / used_osts * imbalance
    worst_rpcs = total_rpcs / used_osts * imbalance

    active_ranks = (
        min(n_ranks, phase.concurrent_writers)
        if phase.concurrent_writers is not None
        else n_ranks
    )
    conflicting = active_ranks if fs.shared else 1
    if not fs.shared or conflicting <= 1:
        writers = 1.0
    elif phase.pattern == "seq":
        writers = np.maximum(1.0, conflicting / np.maximum(1, k))
    else:
        writers = float(conflicting)
    if phase.io == "write":
        if isinstance(writers, np.ndarray):
            # log2 goes through the scalar helper: numpy's log2 may take a
            # different libm path, and bit-identity matters more than
            # vectorizing one call per candidate.
            lock_lat = np.fromiter(
                (locks.lock_penalty(float(w), phase.pattern) for w in writers),
                dtype=np.float64,
                count=n,
            )
            lock_srv = np.fromiter(
                (locks.server_lock_cost(float(w), phase.pattern) for w in writers),
                dtype=np.float64,
                count=n,
            )
        else:
            lock_lat = locks.lock_penalty(writers, phase.pattern)
            lock_srv = locks.server_lock_cost(writers, phase.pattern)
    else:
        lock_lat = 0.0
        lock_srv = 0.0

    short = eff_rpc <= columns.get("short_io_bytes", 0)
    if phase.pattern == "seq":
        overhead = costs.disk_overhead_seq
    else:
        overhead = np.where(
            short, costs.disk_overhead_short, costs.disk_overhead_random
        )
    checksum_mask = columns.get("checksums", 0) != 0
    checksum_eff = np.where(checksum_mask, eff_rpc / CHECKSUM_BW, 0.0)

    names = ["ost_disk", "server_nic", "client_nic", "client_cpu", "pipeline"]
    b_ost = worst_bytes / costs.disk_bw + worst_rpcs * (overhead + lock_srv)
    b_server = worst_bytes / costs.server_nic
    b_client_nic = phase.bytes_per_rank * ranks_pc / costs.client_nic
    per_rank_cpu = rpcs_per_rank * (costs.client_cpu_per_rpc + checksum_eff)
    b_cpu = per_rank_cpu * ranks_pc / costs.cores

    # --- latency-limited pipeline bound ------------------------------
    handshake = np.where(short, costs.short_io_handshake, costs.bulk_handshake)
    wire = eff_rpc / costs.client_nic + eff_rpc / costs.server_nic
    disk = eff_rpc / costs.disk_bw + overhead
    rtt = (
        costs.client_cpu_per_rpc
        + checksum_eff * 2
        + handshake
        + costs.data_rtt
        + wire
        + disk
        + lock_lat
    )
    q = columns.get("data_rpcs_in_flight")
    if phase.io == "write":
        flow_window = np.minimum(q * eff_rpc, columns.get("dirty_bytes"))
    else:
        flow_window = np.minimum(
            q * eff_rpc, _read_window(phase, ranks_pc, used_osts, columns)
        )
    flow_rate = flow_window / rtt
    agg_rate = (n_clients * used_osts) * flow_rate
    if phase.concurrent_writers is not None:
        per_writer_window = np.minimum(q * eff_rpc, flow_window)
        per_writer = np.minimum(
            per_writer_window / rtt,
            used_osts * costs.disk_bw / max(1, phase.concurrent_writers),
        )
        agg_rate = np.minimum(agg_rate, phase.concurrent_writers * per_writer)
    with np.errstate(divide="ignore", invalid="ignore"):
        b_pipeline = np.where(agg_rate > 0, total_bytes / agg_rate, float("inf"))

    if phase.io == "write":
        state.record_write(fs.name, phase.bytes_per_rank * ranks_pc)

    results = _assemble(
        n,
        phase,
        names,
        [b_ost, b_server, b_client_nic, b_cpu, b_pipeline],
        rtt,
        skip=hit_mask,
        bytes_read=total_bytes if phase.io == "read" else 0,
        bytes_written=total_bytes if phase.io == "write" else 0,
        rpcs=total_rpcs,
    )
    if hit_mask is not None:
        for i in range(n):
            if hit_mask[i]:
                results[i] = PhaseResult(
                    phase=phase,
                    seconds=hit_seconds,
                    bottleneck="client_cache",
                    bounds={"client_cache": hit_seconds},
                    bytes_read=total_bytes,
                )
    return results


def _read_window(phase: DataPhase, ranks_pc: int, used_osts, columns):
    """Columnar twin of ``AnalyticModel._read_window``."""
    fs = phase.fileset
    if phase.pattern == "random":
        client_window = ranks_pc * phase.xfer_size
        return client_window / used_osts
    per_file = columns.get("read_ahead_file_bytes")
    whole = columns.get("read_ahead_whole_bytes")
    per_file = np.where(
        fs.file_size <= whole, np.maximum(per_file, fs.file_size), per_file
    )
    global_cap = columns.get("read_ahead_total_bytes")
    if fs.shared:
        client_window = np.maximum(
            ranks_pc * phase.xfer_size, np.minimum(per_file, global_cap)
        )
    else:
        active_files = max(1, ranks_pc)
        per_rank = np.maximum(
            phase.xfer_size, np.minimum(per_file, global_cap / active_files)
        )
        client_window = ranks_pc * per_rank
    return client_window / used_osts


def _eval_meta(
    phase: MetaPhase, job: MpiJob, state: RunState, cluster, costs, columns
) -> list[PhaseResult]:
    n = columns.n
    n_ranks = job.n_ranks
    n_clients = cluster.n_clients
    ranks_pc = max(1, -(-n_ranks // n_clients))
    k = columns.stripe_counts(cluster.n_ost)
    fs = phase.fileset

    n_files_total = phase.files_per_rank * n_ranks
    mds_ops_per_file = phase.mds_rpcs_per_file
    total_mds_ops = n_files_total * mds_ops_per_file

    extra_stripes = np.maximum(0, k - 1)
    service_cache: dict[str, np.ndarray] = {}

    def service_time(op: str):
        column = service_cache.get(op)
        if column is None:
            column = (
                MDS_SERVICE_TIME[op]
                + STRIPE_OBJECT_COST.get(op, 0.0) * extra_stripes
            )
            service_cache[op] = column
        return column

    service_per_file = 0
    for op in phase.cycle:
        if op in MDS_SERVICE_TIME:
            service_per_file = service_per_file + service_time(op)
    mod_ops_per_file = sum(1 for op in phase.cycle if op in MODIFYING_OPS)

    names = ["mds_cpu", "mds_journal"]
    bound_columns = [
        n_files_total * service_per_file / cluster.mds_service_threads,
        n_files_total * mod_ops_per_file * JOURNAL_COST,
    ]

    if mod_ops_per_file:
        n_dirs = 1 if fs.shared_dir else max(1, fs.n_dirs)
        ops_busiest_dir = n_files_total * mod_ops_per_file / n_dirs
        mod_service = 0
        for op in phase.cycle:
            if op in MODIFYING_OPS:
                mod_service = mod_service + service_time(op)
        avg_mod_service = mod_service / mod_ops_per_file
        names.append("dir_serialization")
        bound_columns.append(
            ops_busiest_dir * avg_mod_service / PDIROPS_CONCURRENCY
        )

    # --- client concurrency bound ------------------------------------
    cycle_rt = 0.0
    for op in phase.cycle:
        if op in MDS_SERVICE_TIME:
            cycle_rt = cycle_rt + (
                service_time(op) + costs.meta_rtt + CLIENT_META_CPU
            )
        elif op in ("write_small", "read_small"):
            cycle_rt = cycle_rt + (5e-6 + phase.data_bytes / CLIENT_MEM_BW)
    q_mdc = columns.get("meta_rpcs_in_flight")
    q_mod = columns.get("meta_mod_rpcs_in_flight", q_mdc)
    q_eff = np.minimum(q_mdc, q_mod) if phase.is_modifying else q_mdc
    per_rank_conc = 1.0
    if phase.scan_order and set(phase.cycle) == {"stat"}:
        statahead = columns.get("statahead_count", 0)
        if isinstance(statahead, np.ndarray):
            per_rank_conc = np.where(
                statahead <= 0,
                1.0,
                1.0
                + np.minimum(statahead, STATAHEAD_WINDOW_CAP)
                / STATAHEAD_SLOT_DIVISOR,
            )
    conc_client = np.minimum(q_eff.astype(np.float64), ranks_pc * per_rank_conc)

    rate_total = (n_clients * conc_client) / cycle_rt
    utilization = np.minimum(
        rate_total * service_per_file / cluster.mds_service_threads, 1.0
    )
    avg_service = service_per_file / max(1, mds_ops_per_file)
    # The rho**8 inside mds_wait goes through the scalar helper — libm pow
    # and numpy's power loop may round the same value differently.
    wait = np.fromiter(
        (
            costs.mds_wait(float(u), float(s))
            for u, s in zip(
                np.broadcast_to(np.asarray(utilization, dtype=np.float64), (n,)),
                np.broadcast_to(np.asarray(avg_service, dtype=np.float64), (n,)),
            )
        ),
        dtype=np.float64,
        count=n,
    )
    cycle_loaded = cycle_rt + mds_ops_per_file * wait
    rate_total = (n_clients * conc_client) / cycle_loaded
    names.append("client_concurrency")
    bound_columns.append(n_files_total / rate_total)

    if phase.data_persists and phase.data_bytes > 0:
        data_total = n_files_total * phase.data_bytes
        per_ost_files = n_files_total / cluster.n_ost
        names.append("ost_small_io")
        bound_columns.append(
            per_ost_files * 8e-5 + (data_total / cluster.n_ost / costs.disk_bw)
        )

    wrote = "write_small" in phase.cycle
    read = "read_small" in phase.cycle
    if wrote:
        state.record_write(
            fs.name, phase.files_per_rank * phase.data_bytes * ranks_pc
        )
    return _assemble(
        n,
        phase,
        names,
        bound_columns,
        cycle_loaded,
        bytes_written=n_files_total * phase.data_bytes if wrote else 0,
        bytes_read=n_files_total * phase.data_bytes if read else 0,
        mds_ops=total_mds_ops,
    )
