"""Discrete-event simulation kernel.

A small, fast event-driven core used by the PFS micro-models and to
cross-validate the phase-analytic performance model: an event heap
(:class:`Engine`), FIFO service resources (:class:`FifoServer`,
:class:`BandwidthLink`), reproducible named RNG streams
(:class:`RngStreams`), the batch run executor (:func:`run_batch`), the
columnar candidate-sweep engine (:func:`run_sweep`) and the bounded
process-wide run cache (:data:`RUN_CACHE`).
"""

from repro.sim.cache import RUN_CACHE, RunCache
from repro.sim.engine import Engine, Event
from repro.sim.random import RngStreams
from repro.sim.resources import BandwidthLink, FifoServer, TokenPool

__all__ = [
    "Engine",
    "Event",
    "FifoServer",
    "BandwidthLink",
    "TokenPool",
    "RngStreams",
    "RunCache",
    "RUN_CACHE",
    "run_batch",
    "repetition_items",
    "sweep_items",
    "grid_items",
    "run_sweep",
]


def __getattr__(name: str):
    # The batch/sweep modules sit above the PFS model layers, which
    # themselves use the RNG streams here — resolve lazily to keep imports
    # acyclic.
    if name in ("run_batch", "repetition_items", "sweep_items", "grid_items"):
        from repro.sim import batch

        return getattr(batch, name)
    if name == "run_sweep":
        from repro.sim import sweep

        return sweep.run_sweep
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
