"""Discrete-event simulation kernel.

A small, fast event-driven core used by the PFS micro-models and to
cross-validate the phase-analytic performance model: an event heap
(:class:`Engine`), FIFO service resources (:class:`FifoServer`,
:class:`BandwidthLink`) and reproducible named RNG streams
(:class:`RngStreams`).
"""

from repro.sim.engine import Engine, Event
from repro.sim.resources import BandwidthLink, FifoServer, TokenPool
from repro.sim.random import RngStreams

__all__ = [
    "Engine",
    "Event",
    "FifoServer",
    "BandwidthLink",
    "TokenPool",
    "RngStreams",
]
