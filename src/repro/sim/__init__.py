"""Discrete-event simulation kernel.

A small, fast event-driven core used by the PFS micro-models and to
cross-validate the phase-analytic performance model: an event heap
(:class:`Engine`), FIFO service resources (:class:`FifoServer`,
:class:`BandwidthLink`), reproducible named RNG streams
(:class:`RngStreams`) and the batch run executor (:func:`run_batch`).
"""

from repro.sim.engine import Engine, Event
from repro.sim.random import RngStreams
from repro.sim.resources import BandwidthLink, FifoServer, TokenPool

__all__ = [
    "Engine",
    "Event",
    "FifoServer",
    "BandwidthLink",
    "TokenPool",
    "RngStreams",
    "run_batch",
    "repetition_items",
    "sweep_items",
]


def __getattr__(name: str):
    # The batch module sits above the PFS model layers, which themselves use
    # the RNG streams here — resolve it lazily to keep imports acyclic.
    if name in ("run_batch", "repetition_items", "sweep_items"):
        from repro.sim import batch

        return getattr(batch, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
