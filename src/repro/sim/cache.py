"""Process-wide memoization of deterministic simulated runs.

The analytic model is a pure function of (cluster, workload, configuration,
seed) — two strategies measuring the same cell draw byte-identical
:class:`~repro.pfs.simulator.RunResult`s.  The experiment layer leans on
that heavily: the drift experiment's static/online/oracle arms share
segment measurements, the oracle search re-measures incumbent
configurations, cross-backend transfer scores the same default
configuration per target, and every ``measure_config`` caller replays the
paper's repetition protocol.  :class:`RunCache` lets all of them share one
bounded result store instead of re-running the model.

Contract:

- **Keys lead with the backend name** (consistent with
  ``PfsConfig.cache_key()``), then the cluster hardware key, the workload
  key, the configuration key and the run seed.  Equal keys imply equal
  model inputs, so a hit can never alias two different runs.
- **Cached results are immutable to consumers.**  A hit returns the stored
  :class:`RunResult` object itself — the same sharing rule the batch
  engine already applies to grouped configs and phase objects.  Consumers
  read, never write (``Simulator.run`` only ever mutates phase results it
  created itself).
- **Bounded.**  The store is an LRU of ``maxsize`` entries; experiments
  cannot grow memory without bound.
- **Opt-in.**  The cache only serves and stores while at least one
  ``with RUN_CACHE.enabled():`` scope is active, so parity suites and
  micro-benchmarks that intentionally re-run the model measure the real
  thing unless they ask otherwise.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from contextlib import contextmanager
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.cluster.hardware import ClusterSpec
    from repro.pfs.config import PfsConfig
    from repro.pfs.simulator import RunResult, WorkloadLike

#: Default entry bound for the process-wide cache.
DEFAULT_MAXSIZE = 4096


class RunCache:
    """A bounded LRU of deterministic :class:`RunResult`s."""

    def __init__(self, maxsize: int = DEFAULT_MAXSIZE):
        if maxsize < 1:
            raise ValueError(f"maxsize must be positive, got {maxsize}")
        self.maxsize = maxsize
        self._store: OrderedDict[tuple, "RunResult"] = OrderedDict()
        self._depth = 0
        # Concurrent tenant threads (the fleet's batched groups) each enter
        # their own ``enabled()`` scope; the depth update is a
        # read-modify-write, so it needs a lock to stay exact.  Store access
        # itself stays single-threaded: with batching, every simulation runs
        # inside the broker's flush while other tenant threads are parked.
        self._depth_lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # -- enablement --------------------------------------------------------
    @property
    def active(self) -> bool:
        """Whether lookups/stores are currently served."""
        return self._depth > 0

    @contextmanager
    def enabled(self):
        """Serve the cache inside this scope (scopes nest)."""
        with self._depth_lock:
            self._depth += 1
        try:
            yield self
        finally:
            with self._depth_lock:
                self._depth -= 1

    # -- keying ------------------------------------------------------------
    @staticmethod
    def key(
        cluster: "ClusterSpec",
        workload: "WorkloadLike",
        config: "PfsConfig",
        seed: int,
    ) -> tuple:
        """The cache key for one run; leads with the backend name."""
        return (
            cluster.backend_name,
            cluster.cache_key(),
            workload.cache_key(),
            config.cache_key(),
            seed,
        )

    def partition(self, cluster: "ClusterSpec", items: list):
        """Split batch items into served hits and still-to-run indices.

        Returns ``(results, pending, keys)``: per-item results (``None``
        where missing), the indices the caller must evaluate, and the
        per-item keys to :meth:`put` finished results under (``None`` when
        the cache is inactive).  The single cache prologue shared by the
        batch and sweep engines, so the protocol cannot drift between them.
        """
        results: list["RunResult | None"] = [None] * len(items)
        if not self.active:
            return results, list(range(len(items))), None
        keys = [
            self.key(cluster, workload, config, seed)
            for workload, config, seed in items
        ]
        pending = []
        for index, key in enumerate(keys):
            hit = self.get(key)
            if hit is not None:
                results[index] = hit
            else:
                pending.append(index)
        return results, pending, keys

    # -- storage -----------------------------------------------------------
    def get(self, key: tuple) -> "RunResult | None":
        result = self._store.get(key)
        if result is None:
            self.misses += 1
            return None
        self._store.move_to_end(key)
        self.hits += 1
        return result

    def put(self, key: tuple, result: "RunResult") -> None:
        self._store[key] = result
        self._store.move_to_end(key)
        while len(self._store) > self.maxsize:
            self._store.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        """Drop every entry (statistics are kept)."""
        self._store.clear()

    def __len__(self) -> int:
        return len(self._store)

    def stats(self) -> dict:
        return {
            "entries": len(self._store),
            "maxsize": self.maxsize,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }


#: The process-wide instance every simulator path consults when enabled.
RUN_CACHE = RunCache()
