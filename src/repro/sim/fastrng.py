"""Bit-identical bulk seeding of first-draw noise streams.

Every simulated run draws one lognormal factor per phase plus one per run,
each from its own freshly-seeded ``np.random.default_rng(seed)`` stream
(:mod:`repro.sim.random`).  Constructing a ``SeedSequence`` + ``PCG64`` +
``Generator`` per stream costs ~10-20us — the single largest per-run cost in
the simulation hot path once the model itself is amortized.

This module replicates numpy's seeding arithmetic in vectorized form:

1. ``SeedSequence`` entropy pooling (the O'Neill seed-sequence hash) runs
   across all requested seeds at once on uint32 columns — the hash-constant
   schedule is seed-independent, so every step is one elementwise op;
2. ``PCG64``'s 128-bit ``srandom`` (state = ((inc + initstate) * MULT + inc))
   runs on uint64 hi/lo limb columns;
3. one process-wide ``PCG64`` bit generator is re-pointed at each computed
   state through its ``.state`` setter, and a shared ``Generator`` takes the
   stream's first ``normal`` draw through the normal C ziggurat path.

Step 3 keeps the draw itself inside numpy — the ziggurat tables are not
exposed — so the result is **bit-identical** to
``np.random.default_rng(seed).normal(0.0, sigma)`` for every seed, which
``tests/test_sweep.py`` asserts against the generic path.  Seeds below
2**32 entropy-pool differently (one entropy word instead of two) and are
rare for SHA-derived stream seeds; they fall back to ``default_rng``.

The shared generator is guarded by a lock so broker flush threads and the
scalar simulator can both seed noise here; sequential callers never contend.
"""

from __future__ import annotations

import threading

import numpy as np

_U32_MASK = np.uint64(0xFFFFFFFF)
_U64_1 = np.uint64(1)
_U64_16 = np.uint64(16)
_U64_32 = np.uint64(32)
_U64_63 = np.uint64(63)

# SeedSequence pooling constants (numpy/random/bit_generator.pyx).
_INIT_A = 0x43B0D7E5
_MULT_A = 0x931E8875
_INIT_B = 0x8B51F9DD
_MULT_B = 0x58F38DED
_MIX_MULT_L = np.uint32(0xCA01F9DD)
_MIX_MULT_R = np.uint32(0x4973F715)
_POOL_SIZE = 4

#: PCG64's default 128-bit multiplier, split into uint64 limbs.
_PCG_MULT = (2549297995355413924 << 64) + 4865540595714422341
_PCG_MULT_HI = np.uint64(_PCG_MULT >> 64)
_PCG_MULT_LO = np.uint64(_PCG_MULT & ((1 << 64) - 1))

#: The reused bit generator + generator pair.  Guarded by a lock: the fleet
#: broker's flush runs on whichever tenant thread arrived last, and the
#: scalar simulator also seeds its noise here, so two threads may reach the
#: shared generator; the lock is uncontended in every sequential path.
_GEN_LOCK = threading.Lock()
_PCG = np.random.PCG64(0)
_GEN = np.random.Generator(_PCG)
_STATE_TEMPLATE = {
    "bit_generator": "PCG64",
    "state": None,
    "has_uint32": 0,
    "uinteger": 0,
}


def _seed_pools(seeds: np.ndarray) -> list[np.ndarray]:
    """The mixed 4-word entropy pool per seed (all seeds in [2**32, 2**63))."""
    entropy0 = (seeds & _U32_MASK).astype(np.uint32)
    entropy1 = (seeds >> _U64_32).astype(np.uint32)
    hash_const = _INIT_A

    def hashmix(value: np.ndarray) -> np.ndarray:
        nonlocal hash_const
        value = value ^ np.uint32(hash_const)
        hash_const = (hash_const * _MULT_A) & 0xFFFFFFFF
        value = value * np.uint32(hash_const)
        return value ^ (value >> np.uint32(16))

    def mix(x: np.ndarray, y: np.ndarray) -> np.ndarray:
        result = (_MIX_MULT_L * x) - (_MIX_MULT_R * y)
        return result ^ (result >> np.uint32(16))

    zeros = np.zeros(len(seeds), dtype=np.uint32)
    pool = [hashmix(entropy0), hashmix(entropy1), hashmix(zeros), hashmix(zeros)]
    for i_src in range(_POOL_SIZE):
        for i_dst in range(_POOL_SIZE):
            if i_src != i_dst:
                pool[i_dst] = mix(pool[i_dst], hashmix(pool[i_src]))
    return pool


def _generated_u64(pool: list[np.ndarray]) -> list[np.ndarray]:
    """``SeedSequence.generate_state(4, uint64)`` per seed, as hi/lo columns."""
    hash_const = _INIT_B
    words = []
    for index in range(8):
        value = pool[index % _POOL_SIZE] ^ np.uint32(hash_const)
        hash_const = (hash_const * _MULT_B) & 0xFFFFFFFF
        value = value * np.uint32(hash_const)
        words.append(value ^ (value >> np.uint32(16)))
    return [
        words[2 * i].astype(np.uint64) | (words[2 * i + 1].astype(np.uint64) << _U64_32)
        for i in range(4)
    ]


def _add128(a_hi, a_lo, b_hi, b_lo):
    lo = a_lo + b_lo
    return a_hi + b_hi + (lo < a_lo).astype(np.uint64), lo


def _mul128(a_hi, a_lo, b_hi, b_lo):
    """``(a * b) mod 2**128`` on uint64 hi/lo limb columns."""
    a0 = a_lo & _U32_MASK
    a1 = a_lo >> _U64_32
    b0 = b_lo & _U32_MASK
    b1 = b_lo >> _U64_32
    t00 = a0 * b0
    t10 = a1 * b0
    t01 = a0 * b1
    mid = (t00 >> _U64_32) + (t10 & _U32_MASK) + (t01 & _U32_MASK)
    lo = (t00 & _U32_MASK) | (mid << _U64_32)
    hi = (
        a1 * b1
        + (t10 >> _U64_32)
        + (t01 >> _U64_32)
        + (mid >> _U64_32)
        + a_lo * b_hi
        + a_hi * b_lo
    )
    return hi, lo


def _pcg64_states(seeds: np.ndarray):
    """Post-``srandom`` (state, inc) hi/lo columns for every seed."""
    seed0_hi, seed0_lo, seq_hi, seq_lo = _generated_u64(_seed_pools(seeds))
    # pcg64_set_seed: initstate = u64[0]<<64 | u64[1]; initseq likewise.
    inc_lo = (seq_lo << _U64_1) | _U64_1
    inc_hi = (seq_hi << _U64_1) | (seq_lo >> _U64_63)
    state_hi, state_lo = _add128(inc_hi, inc_lo, seed0_hi, seed0_lo)
    state_hi, state_lo = _mul128(state_hi, state_lo, _PCG_MULT_HI, _PCG_MULT_LO)
    state_hi, state_lo = _add128(state_hi, state_lo, inc_hi, inc_lo)
    return state_hi, state_lo, inc_hi, inc_lo


def first_normals(seeds, sigma: float) -> np.ndarray:
    """``default_rng(seed).normal(0.0, sigma)`` for every seed, bulk-seeded.

    Bit-identical to the per-seed construction for every input; seeds below
    2**32 go through ``default_rng`` directly (their entropy pools one word,
    not two).
    """
    seeds = np.asarray(seeds, dtype=np.uint64)
    count = len(seeds)
    out = np.empty(count)
    if count == 0:
        return out
    small = seeds < np.uint64(1 << 32)
    if small.any():
        for index in np.flatnonzero(small):
            out[index] = np.random.default_rng(int(seeds[index])).normal(0.0, sigma)
        if small.all():
            return out
        indices = np.flatnonzero(~small).tolist()
        state_hi, state_lo, inc_hi, inc_lo = _pcg64_states(seeds[indices])
    else:
        state_hi, state_lo, inc_hi, inc_lo = _pcg64_states(seeds)
        indices = range(count)
    template = dict(_STATE_TEMPLATE)
    pcg, gen = _PCG, _GEN
    set_state = type(pcg).state.__set__
    with _GEN_LOCK:
        normal = gen.normal
        for state_h, state_l, inc_h, inc_l, index in zip(
            state_hi.tolist(), state_lo.tolist(), inc_hi.tolist(), inc_lo.tolist(), indices
        ):
            template["state"] = {
                "state": (state_h << 64) | state_l,
                "inc": (inc_h << 64) | inc_l,
            }
            set_state(pcg, template)
            out[index] = normal(0.0, sigma)
    return out
