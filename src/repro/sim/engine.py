"""Event heap and callback scheduling.

The engine is intentionally minimal: events are ``(time, seq, callback)``
triples popped in time order; ties break by insertion order so runs are fully
deterministic.  Components schedule follow-up events from inside callbacks.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable


@dataclass(order=True)
class Event:
    """A scheduled callback.  Ordered by ``(time, seq)``."""

    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class Engine:
    """A deterministic discrete-event loop."""

    def __init__(self):
        self.now = 0.0
        self._heap: list[Event] = []
        self._seq = 0
        self.processed = 0

    def schedule(self, delay: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` to fire ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        event = Event(self.now + delay, self._seq, callback)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    def schedule_at(self, time: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at an absolute simulation time."""
        if time < self.now:
            raise ValueError(f"cannot schedule in the past ({time} < {self.now})")
        return self.schedule(time - self.now, callback)

    def cancel(self, event: Event) -> None:
        """Mark an event so it is skipped when popped."""
        event.cancelled = True

    def run(self, until: float | None = None, max_events: int | None = None) -> float:
        """Drain the heap; returns the final simulation time.

        Parameters
        ----------
        until:
            Stop once the next event is later than this time.
        max_events:
            Safety valve for runaway models; raises ``RuntimeError`` if hit.
        """
        while self._heap:
            if until is not None and self._heap[0].time > until:
                self.now = until
                return self.now
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self.now = event.time
            self.processed += 1
            if max_events is not None and self.processed > max_events:
                raise RuntimeError(f"event budget exceeded ({max_events})")
            event.callback()
        return self.now

    @property
    def pending(self) -> int:
        """Number of not-yet-cancelled events still queued."""
        return sum(1 for e in self._heap if not e.cancelled)
