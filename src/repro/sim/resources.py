"""Service resources for the event kernel.

Three primitives cover every device in the PFS model:

- :class:`FifoServer` — a ``c``-server queue with caller-supplied service
  times (disks, MDS service threads).
- :class:`BandwidthLink` — a store-and-forward pipe: transfers serialize at
  ``bytes / bandwidth`` each plus a fixed per-transfer latency (NICs, switch
  ports).
- :class:`TokenPool` — a counting semaphore for client-side concurrency caps
  (``max_rpcs_in_flight``).
"""

from __future__ import annotations

from collections import deque
from typing import Callable

from repro.sim.engine import Engine


class FifoServer:
    """A first-come-first-served queue with ``servers`` parallel workers."""

    def __init__(self, engine: Engine, servers: int = 1, name: str = "server"):
        if servers < 1:
            raise ValueError("servers must be >= 1")
        self.engine = engine
        self.servers = servers
        self.name = name
        self.busy = 0
        self._queue: deque[tuple[float, Callable[[], None]]] = deque()
        self.completed = 0
        self.busy_time = 0.0

    def submit(self, service_time: float, done: Callable[[], None]) -> None:
        """Enqueue one job; ``done`` fires when its service completes."""
        if service_time < 0:
            raise ValueError("negative service time")
        self._queue.append((service_time, done))
        self._dispatch()

    def _dispatch(self) -> None:
        while self.busy < self.servers and self._queue:
            service_time, done = self._queue.popleft()
            self.busy += 1
            self.busy_time += service_time

            def finish(done=done):
                self.busy -= 1
                self.completed += 1
                done()
                self._dispatch()

            self.engine.schedule(service_time, finish)

    @property
    def queued(self) -> int:
        return len(self._queue)


class BandwidthLink:
    """A serializing pipe with fixed latency and finite bandwidth."""

    def __init__(
        self,
        engine: Engine,
        bandwidth: float,
        latency: float = 0.0,
        name: str = "link",
    ):
        if bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        self.engine = engine
        self.bandwidth = bandwidth
        self.latency = latency
        self.name = name
        self._server = FifoServer(engine, servers=1, name=f"{name}.wire")
        self.bytes_moved = 0

    def transfer(self, nbytes: int, done: Callable[[], None]) -> None:
        """Move ``nbytes`` through the pipe, then fire ``done``."""
        if nbytes < 0:
            raise ValueError("negative transfer size")
        self.bytes_moved += nbytes
        wire = nbytes / self.bandwidth

        def after_wire():
            # Propagation latency does not occupy the wire.
            self.engine.schedule(self.latency, done)

        self._server.submit(wire, after_wire)


class TokenPool:
    """A counting semaphore; waiters are released FIFO."""

    def __init__(self, tokens: int, name: str = "tokens"):
        if tokens < 1:
            raise ValueError("tokens must be >= 1")
        self.capacity = tokens
        self.available = tokens
        self.name = name
        self._waiters: deque[Callable[[], None]] = deque()

    def acquire(self, ready: Callable[[], None]) -> None:
        """Invoke ``ready`` as soon as a token is available."""
        if self.available > 0:
            self.available -= 1
            ready()
        else:
            self._waiters.append(ready)

    def release(self) -> None:
        if self._waiters:
            self._waiters.popleft()()
        else:
            self.available += 1
            if self.available > self.capacity:
                raise RuntimeError(f"{self.name}: release without acquire")
