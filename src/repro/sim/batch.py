"""Batch simulation: evaluate many (workload, config, seed) runs at once.

The analytic model is deterministic — for a fixed (workload, cluster, config)
every repetition shares the exact same noise-free phase costs; only the
seeded lognormal noise differs run to run.  ``run_batch`` exploits that:

1. runs are grouped by ``(workload.cache_key(), config.cache_key())`` and the
   phase list is costed **once** per group (phase compilation itself is
   memoized per cluster, see :mod:`repro.workloads.base`);
2. each run then applies its own per-phase and per-run noise, served from
   the shared :func:`~repro.pfs.simulator.run_noise` memo — the same named
   streams the sequential path uses, derived once per (seed, workload).

The results are **bit-identical** to calling :meth:`Simulator.run` once per
tuple with the same seeds — asserted by ``tests/test_batch.py`` — so callers
(the repeated-measurement harness, the coordinate-descent baseline) can
switch freely between the two paths.

Sharing caveats: runs in the same group share one validated ``PfsConfig``
instance and their :class:`PhaseResult`s share ``phase``/``bounds`` objects;
both are treated as immutable by every consumer (the Darshan tracer reads,
never writes).
"""

from __future__ import annotations

from dataclasses import replace
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.cluster.mpi import MpiJob
from repro.pfs.config import PfsConfig
from repro.pfs.model import AnalyticModel, RunState
from repro.pfs.phases import PhaseResult
from repro.sim.cache import RUN_CACHE
from repro.sim.random import RngStreams

if TYPE_CHECKING:  # pragma: no cover - import cycle with the facade module
    from repro.pfs.simulator import RunResult, Simulator, WorkloadLike

BatchItem = tuple["WorkloadLike", PfsConfig, int]


def run_batch(sim: "Simulator", items: Iterable[BatchItem]) -> list["RunResult"]:
    """Execute every ``(workload, config, seed)`` tuple; results in order.

    Identical (workload, config) pairs are deduplicated: the model runs once
    and only the (cheap) noise application repeats per seed.
    """
    from repro.pfs.simulator import RunResult, run_noise

    items = list(items)
    results, pending, cache_keys = RUN_CACHE.partition(sim.cluster, items)

    # -- group runs sharing deterministic phase costs ----------------------
    prepared: dict[tuple, tuple[PfsConfig, list[PhaseResult]]] = {}
    keys: dict[int, tuple] = {}
    for index in pending:
        workload, config, _seed = items[index]
        key = (workload.cache_key(), config.cache_key())
        keys[index] = key
        if key in prepared:
            continue
        prepared[key] = _evaluate_phases(sim, workload, config)

    # -- per-run noise application ----------------------------------------
    for index in pending:
        workload, _config, seed = items[index]
        shared_config, base = prepared[keys[index]]
        phase_noise, run_factor = run_noise(seed, workload.name, len(base))
        phases: list[PhaseResult] = []
        total = 0.0
        for result, noise in zip(base, phase_noise):
            noisy = replace(result, seconds=result.seconds * noise)
            phases.append(noisy)
            total += noisy.seconds
        total *= run_factor
        run = RunResult(
            workload=workload.name,
            config=shared_config,
            seconds=total,
            phases=phases,
            seed=seed,
        )
        results[index] = run
        if cache_keys is not None:
            RUN_CACHE.put(cache_keys[index], run)
    return results


def _evaluate_phases(
    sim: "Simulator", workload: "WorkloadLike", config: PfsConfig
) -> tuple[PfsConfig, list[PhaseResult]]:
    """Validate ``config`` and cost every phase, noise-free.

    Uses the same :func:`~repro.pfs.simulator.prepare_run_config` setup as
    :meth:`Simulator.run` (fresh config copy, facts injection, validation)
    plus a fresh :class:`RunState`, so the shared results feed bit-identical
    totals.
    """
    from repro.pfs.simulator import prepare_run_config

    config = prepare_run_config(sim.cluster, config)

    job = MpiJob.launch(workload.name, workload.n_ranks, sim.cluster)
    model = AnalyticModel(sim.cluster, config)
    state = RunState()
    return config, [
        model.evaluate(phase, job, state) for phase in workload.compile(sim.cluster)
    ]


def repetition_items(
    workload: "WorkloadLike", config: PfsConfig, n: int, seed: int = 0
) -> list[BatchItem]:
    """The paper's n-repetition protocol as a batch: rep ``i`` runs with
    ``RngStreams.rep_seed(seed, i)``."""
    return [(workload, config, RngStreams.rep_seed(seed, i)) for i in range(n)]


def sweep_items(
    workload: "WorkloadLike",
    configs: Sequence[PfsConfig],
    seeds: Sequence[int],
) -> list[BatchItem]:
    """One run per aligned (config, seed) pair — the candidate-grid shape
    used by the coordinate-descent baseline.

    ``configs`` and ``seeds`` pair up elementwise; for "every config under
    every seed" use :func:`grid_items`, whose cartesian contract is harder
    to misuse.
    """
    if len(configs) != len(seeds):
        raise ValueError("configs and seeds must align")
    return [(workload, c, s) for c, s in zip(configs, seeds)]


def grid_items(
    workload: "WorkloadLike",
    configs: Sequence[PfsConfig],
    seeds: Sequence[int],
) -> list[BatchItem]:
    """The cartesian candidate grid: every config under every seed.

    Config-major order — item ``i * len(seeds) + j`` is config ``i`` under
    seed ``j`` — so measuring config ``i`` with ``reps`` seeds derived via
    :meth:`RngStreams.rep_seed` is bit-identical to ``repetition_items`` per
    config, and callers can slice results per config.
    """
    return [(workload, c, s) for c in configs for s in seeds]


def schedule_items(
    schedule: Iterable,
    configs: "PfsConfig | Sequence[PfsConfig]",
    seed: int = 0,
) -> list[BatchItem]:
    """A time-segmented schedule as a batch: segment ``i`` runs with
    ``RngStreams.rep_seed(seed, i)``.

    ``schedule`` yields segments (anything with a ``workload`` attribute, or
    bare workloads); ``configs`` is a single configuration applied to every
    segment, or one configuration per segment (the online controller's
    evolving sequence).  Seeds index the segment's *position*, so the same
    ``seed`` replays the same noise regardless of which strategy chose the
    configs — what makes strategy totals comparable.
    """
    workloads = [getattr(item, "workload", item) for item in schedule]
    if isinstance(configs, PfsConfig):
        configs = [configs] * len(workloads)
    else:
        configs = list(configs)
    if len(configs) != len(workloads):
        raise ValueError(
            f"schedule has {len(workloads)} segment(s) but {len(configs)} "
            "config(s); pass one config, or one per segment"
        )
    return [
        (workload, config, RngStreams.rep_seed(seed, index))
        for index, (workload, config) in enumerate(zip(workloads, configs))
    ]
