"""Shared-memory offline artifacts: publish once, resolve everywhere.

The fleet's offline artifacts — the per-backend cluster spec, the RAG
:class:`~repro.rag.extraction.ExtractionResult`, the compiled manual text
and the rendered hardware document — are immutable at serving time but used
to be pickled into *every* tenant job tuple.  This module ships them to
workers once instead:

- :func:`publish` pickles the artifact bundle, records its sha256 content
  hash, and (when the platform provides ``/dev/shm``) copies the blob into
  a named :class:`multiprocessing.shared_memory.SharedMemory` segment.  The
  artifact also stays in the parent's process-local store, which
  fork-started workers inherit for free.
- Job tuples carry only the tiny :class:`ArtifactRef` (key + segment name +
  digest).
- :func:`resolve` returns the artifact: from the process-local store when
  the digest matches (fork inheritance, or a previous resolve), otherwise
  by attaching the shared-memory segment, **verifying the content hash**,
  and unpickling once per worker process.  The digest check is what makes
  "every worker sees byte-identical artifacts" an assertion instead of a
  hope — a torn or stale segment raises :class:`ArtifactIntegrityError`
  instead of silently desynchronizing tenants.

Keys are plain tuples, conventionally ``("offline", backend, seed)`` — one
bundle per (backend, seed) cell, exactly the granularity
:func:`repro.experiments.harness.shared_extraction` memoizes under.
Publishing the same key twice returns the existing ref (the artifacts are
deterministic, so a republication can only ever carry equal bytes).

The parent unlinks its segments at interpreter exit; resolvers only ever
``close()`` their attachment.
"""

from __future__ import annotations

import atexit
import hashlib
import pickle
from dataclasses import dataclass
from typing import Any

try:  # pragma: no cover - absent only on exotic platforms
    from multiprocessing import shared_memory
except ImportError:  # pragma: no cover
    shared_memory = None  # type: ignore[assignment]


class ArtifactIntegrityError(RuntimeError):
    """A resolved blob's content hash does not match its ref."""


class ArtifactUnavailableError(RuntimeError):
    """A ref cannot be resolved in this process (no local copy, no segment)."""


@dataclass(frozen=True)
class ArtifactRef:
    """A tiny, picklable pointer to one published artifact."""

    key: tuple
    digest: str
    size: int
    shm_name: str | None = None


@dataclass(frozen=True)
class OfflineArtifacts:
    """The per-(backend, seed) bundle every tenant session reads.

    ``cluster`` and ``extraction`` are the objects tenant jobs used to carry
    individually; ``manual`` and ``hardware_doc`` are the compiled prompt
    corpus sections derived from them, bundled so workers never re-render.
    """

    cluster: Any
    extraction: Any
    manual: str = ""
    hardware_doc: str = ""


#: Process-local artifact store: key -> (digest, artifact).  In the parent
#: this holds everything published; fork-started workers inherit it.
_LOCAL: dict[tuple, tuple[str, Any]] = {}
#: Refs of everything published by *this* process, in publication order.
_REFS: dict[tuple, ArtifactRef] = {}
#: Shared-memory segments owned (and unlinked at exit) by this process.
_OWNED: dict[tuple, Any] = {}


def publish(key: tuple, artifact: Any) -> ArtifactRef:
    """Make ``artifact`` resolvable in every worker; returns its ref."""
    existing = _REFS.get(key)
    if existing is not None:
        return existing
    blob = pickle.dumps(artifact, protocol=pickle.HIGHEST_PROTOCOL)
    digest = hashlib.sha256(blob).hexdigest()
    shm_name = None
    if shared_memory is not None:
        try:
            segment = shared_memory.SharedMemory(create=True, size=len(blob))
            segment.buf[: len(blob)] = blob
            shm_name = segment.name
            _OWNED[key] = segment
        except OSError:
            # No usable /dev/shm — fork inheritance still covers the
            # default start method; spawn-started workers will raise
            # ArtifactUnavailableError and the caller falls back to
            # shipping the artifact inline.
            shm_name = None
    ref = ArtifactRef(key=key, digest=digest, size=len(blob), shm_name=shm_name)
    _LOCAL[key] = (digest, artifact)
    _REFS[key] = ref
    return ref


def resolve(ref: ArtifactRef) -> Any:
    """The artifact behind ``ref`` — local copy or verified shared blob."""
    hit = _LOCAL.get(ref.key)
    if hit is not None and hit[0] == ref.digest:
        return hit[1]
    blob = _read_blob(ref)
    actual = hashlib.sha256(blob).hexdigest()
    if actual != ref.digest:
        raise ArtifactIntegrityError(
            f"artifact {ref.key!r}: shared blob hashes to {actual[:12]}..., "
            f"ref expects {ref.digest[:12]}... — the segment is torn or stale"
        )
    artifact = pickle.loads(blob)
    _LOCAL[ref.key] = (ref.digest, artifact)
    return artifact


def _read_blob(ref: ArtifactRef) -> bytes:
    if ref.shm_name is None or shared_memory is None:
        raise ArtifactUnavailableError(
            f"artifact {ref.key!r} has no shared segment and no local copy "
            "in this process (spawn-started worker without /dev/shm?)"
        )
    try:
        segment = shared_memory.SharedMemory(name=ref.shm_name)
    except FileNotFoundError as exc:
        raise ArtifactUnavailableError(
            f"artifact {ref.key!r}: shared segment {ref.shm_name} is gone "
            "(publisher exited?)"
        ) from exc
    try:
        return bytes(segment.buf[: ref.size])
    finally:
        segment.close()


def ref_for(key: tuple) -> ArtifactRef | None:
    """The ref already published under ``key`` in this process, if any."""
    return _REFS.get(key)


def published_refs() -> list[ArtifactRef]:
    """Every ref published by this process (pool initializers warm these)."""
    return list(_REFS.values())


def install(refs: list[ArtifactRef]) -> None:
    """Pool-initializer hook: resolve ``refs`` once, at worker start.

    Best-effort — a ref that cannot be resolved here is deferred to the
    first job that actually needs it (which may have a fresher ref).
    """
    for ref in refs:
        try:
            resolve(ref)
        except (ArtifactUnavailableError, ArtifactIntegrityError):
            pass


def local_digest(key: tuple) -> str | None:
    """The digest of the locally installed artifact (tests / diagnostics)."""
    hit = _LOCAL.get(key)
    return hit[0] if hit is not None else None


def _probe_worker(ref: ArtifactRef) -> str:
    """Resolve ``ref`` in a worker and report the verified digest.

    Module-level so pools can pickle it; used by the start-method parity
    tests to assert every worker observes byte-identical artifacts.
    """
    resolve(ref)
    digest = local_digest(ref.key)
    assert digest is not None
    return digest


@atexit.register
def _cleanup() -> None:  # pragma: no cover - interpreter teardown
    for segment in _OWNED.values():
        try:
            segment.close()
            segment.unlink()
        except Exception:
            pass
    _OWNED.clear()
