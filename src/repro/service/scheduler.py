"""The fleet scheduler: many tenants over one deterministic process pool.

:class:`FleetScheduler` turns the engine's per-workload tuning loop into a
schedulable service: each :class:`~repro.service.tenant.TenantSpec` is an
independent unit whose session queue runs in order on a worker, while the
tenants themselves fan over :func:`repro.experiments.parallel.imap` — the
same deterministic pool the figure experiments use, so results arrive in
tenant submission order regardless of worker count or completion order.

What tenants share, and how:

- **Immutable offline artifacts.**  The RAG extraction is computed once per
  (backend, seed) in the parent (:func:`shared_extraction`) and shipped to
  workers with the job — tenants never redo the offline phase.  Manuals and
  the RAG index live behind the extraction and the backend registry, both
  immutable at serving time.
- **The opt-in run cache.**  Every tenant job runs inside
  ``RUN_CACHE.enabled()`` (unless the scheduler is built with
  ``use_cache=False``), so tenants co-located on a worker share
  deterministic simulation results.  The cache can only ever short-circuit
  identical (backend, cluster, workload, config, seed) runs, so sharing
  never changes results — worker-count independence is asserted by
  ``tests/test_fleet.py``.
- **Rule knowledge, after the fact.**  Each tenant accumulates into its own
  :class:`~repro.rules.store.RuleJournal`; the scheduler replay-merges them
  (:meth:`RuleJournal.merged`) so concurrent tenants' contributions land in
  seed order — the fleet-wide journal is identical for any execution
  interleaving.

Fault domains: each tenant is its own blast radius.  A tenant whose queue
exhausts a retry budget (or raises outright) becomes a structured
:class:`~repro.service.tenant.TenantFailure` — quarantined, excluded from
the merged journal — while every other tenant completes; there is no
fleet-wide abort path.  With a ``checkpoint`` path the scheduler persists
fleet state (atomically, through the journal store's writer) after every
tenant arrival, so a killed fleet resumes without re-running completed
tenants.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import threading
from contextlib import nullcontext
from dataclasses import dataclass, field
from pathlib import Path
from time import perf_counter
from typing import Iterable, Iterator, Sequence

from repro.cluster.hardware import ClusterSpec, make_cluster
from repro.core.engine import Stellar
from repro.core.runner import EvaluationBroker
from repro.core.session import TuningSession
from repro.corpus import render_hardware_doc, render_manual
from repro.experiments.harness import shared_extraction
from repro.experiments.parallel import effective_workers
from repro.faults.breaker import BreakerPolicy, BreakerState
from repro.faults.plan import FaultPlan
from repro.faults.retry import FaultBudgetExhausted, RetryPolicy, TransientFault
from repro.rag.extraction import ExtractionResult
from repro.rules.store import (
    JournalCorruptError,
    RuleJournal,
    atomic_write_text,
    session_from_dict,
    session_to_dict,
)
from repro.service import artifacts
from repro.service.artifacts import ArtifactRef, OfflineArtifacts
from repro.service.broker import FleetEvalBroker, TenantPort
from repro.service.tenant import TenantFailure, TenantResult, TenantSpec
from repro.sim.cache import RUN_CACHE

#: Version tag of the fleet checkpoint file format.  Format 2 stamps every
#: checkpoint with a fleet fingerprint (tenant ids + seed + plan digest) and
#: every outcome with its spec digest, so a checkpoint written by a
#: *different* fleet is rejected loudly instead of silently partially
#: applied.
CHECKPOINT_FORMAT = 2


def spec_digest(spec: TenantSpec) -> str:
    """Stable content digest of one tenant spec (checkpoint identity)."""
    payload = json.dumps(dataclasses.asdict(spec), sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def plan_digest(plan: FaultPlan | None) -> str:
    """Stable digest of a fault plan; inert plans all digest to ``"none"``.

    An unarmed plan is byte-identical to no plan at all (the plane's
    standing contract), so both fingerprint the same way.
    """
    if plan is None or not plan.active:
        return "none"
    payload = json.dumps(
        {"seed": plan.seed, "rates": dict(sorted(plan.rates.items()))},
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def fleet_stamp(
    tenant_ids: Sequence[str] | None, seed: int, plan: FaultPlan | None
) -> dict:
    """The fleet fingerprint stamped into every checkpoint.

    ``tenant_ids`` is ``None`` for a dynamic fleet (the service daemon,
    whose tenant set grows with submissions) — then only seed and plan
    participate in the identity check.
    """
    return {
        "tenants": sorted(tenant_ids) if tenant_ids is not None else None,
        "seed": seed,
        "plan": plan_digest(plan),
    }


def _merge_recovery(sessions: Sequence[TuningSession]) -> dict[str, int]:
    merged: dict[str, int] = {}
    for session in sessions:
        for site, count in session.fault_recovery.items():
            merged[site] = merged.get(site, 0) + count
    return merged


def run_tenant(
    spec: TenantSpec,
    cluster: ClusterSpec,
    extraction: ExtractionResult,
    use_cache: bool = True,
    faults: FaultPlan | None = None,
    retry: RetryPolicy | None = None,
    broker: EvaluationBroker | None = None,
) -> TenantResult | TenantFailure:
    """One tenant's whole session queue — THE per-tenant body.

    Module-level and dependent only on its arguments, so the inline and
    pooled paths cannot drift; the throughput bench also calls it directly
    to build its sequential comparison arm.  The cache scope is
    (re-)entered here because worker processes do not inherit the parent's
    enablement depth under every start method.

    This function is the tenant's fault boundary: anything the resilience
    machinery could not absorb surfaces here and becomes a
    :class:`TenantFailure` instead of propagating into the pool — a raising
    tenant can never abort the fleet.
    """
    engine = Stellar(
        cluster=cluster,
        model=spec.model,
        extraction=extraction,
        seed=spec.seed,
        faults=faults,
        retry=retry if retry is not None else RetryPolicy(),
        broker=broker,
        policy=spec.policy,
    )
    scope = RUN_CACHE.enabled() if use_cache else nullcontext()
    sessions: list[TuningSession] = []
    current = ""
    try:
        with scope:
            for workload in spec.session_queue():
                current = workload.name
                sessions.append(
                    engine.tune_and_accumulate(
                        workload, max_attempts=spec.max_attempts
                    )
                )
    except FaultBudgetExhausted as exc:
        return TenantFailure(
            spec=spec,
            site=exc.site,
            error=str(exc),
            failed_workload=current,
            attempts=exc.attempts,
            completed_sessions=len(sessions),
            fault_recovery=_merge_recovery(sessions),
        )
    except Exception as exc:  # noqa: BLE001 - the quarantine boundary
        return TenantFailure(
            spec=spec,
            site="exception",
            error=f"{type(exc).__name__}: {exc}",
            failed_workload=current,
            completed_sessions=len(sessions),
            fault_recovery=_merge_recovery(sessions),
        )
    return TenantResult(spec=spec, sessions=sessions, journal=engine.journal)


def _resolve_payload(payload: "ArtifactRef | OfflineArtifacts") -> OfflineArtifacts:
    """The tenant's offline bundle — shared-memory ref or inline fallback."""
    if isinstance(payload, ArtifactRef):
        return artifacts.resolve(payload)
    return payload


def _tenant_job(args: tuple) -> TenantResult | TenantFailure:
    """Picklable adapter: one jobs-tuple -> :func:`run_tenant`."""
    spec, payload, use_cache, faults, retry = args
    bundle = _resolve_payload(payload)
    return run_tenant(spec, bundle.cluster, bundle.extraction, use_cache, faults, retry)


def run_tenant_group(
    jobs: Sequence[tuple],
) -> list[TenantResult | TenantFailure]:
    """Run co-located tenants concurrently over one shared eval broker.

    ``jobs`` are :func:`run_tenant` argument tuples.  Each tenant runs on
    its own thread; every simulated probe routes through the group's
    :class:`~repro.service.broker.FleetEvalBroker`, which batches pending
    evaluations across tenants into columnar sweeps.  Results are
    bit-identical to running each tenant alone (the broker contract), and
    tenants *enter* ``run_tenant`` strictly in submission order — each
    thread holds the entry baton until its first broker contact — so
    observable call order matches the sequential path.

    Per-tenant state (engines, transcripts, journals, RNG streams) is
    thread-confined by construction; the shared pieces (run cache, compiled
    workload/expression memos) are only ever touched inside the broker's
    flush, while every other tenant thread is parked.
    """
    if len(jobs) == 1:
        return [run_tenant(*jobs[0])]
    broker = FleetEvalBroker()
    for _ in jobs:
        broker.register()
    turns = [threading.Event() for _ in jobs]
    turns[0].set()
    outcomes: list[TenantResult | TenantFailure | None] = [None] * len(jobs)

    def body(index: int, args: tuple, port: TenantPort) -> None:
        turns[index].wait()
        try:
            outcomes[index] = run_tenant(*args, broker=port)
        finally:
            port.retire()

    threads = []
    for index, args in enumerate(jobs):
        advance = (
            turns[index + 1].set if index + 1 < len(jobs) else (lambda: None)
        )
        port = TenantPort(broker, on_first_contact=advance)
        threads.append(
            threading.Thread(
                target=body,
                args=(index, args, port),
                name=f"tenant-{args[0].tenant_id}",
            )
        )
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    for index, outcome in enumerate(outcomes):
        if outcome is None:  # pragma: no cover - thread died pre-boundary
            raise RuntimeError(
                f"tenant thread {jobs[index][0].tenant_id} exited without "
                "an outcome"
            )
    return outcomes


def _tenant_group_job(jobs: tuple) -> list[TenantResult | TenantFailure]:
    """Picklable adapter: resolve artifact refs, run the co-located group."""
    resolved = []
    for spec, payload, use_cache, faults, retry in jobs:
        bundle = _resolve_payload(payload)
        resolved.append(
            (spec, bundle.cluster, bundle.extraction, use_cache, faults, retry)
        )
    return run_tenant_group(resolved)


def execute_jobs(
    jobs: Sequence[tuple],
    max_workers: int | None = None,
    batching: bool = True,
    shards: int = 1,
) -> Iterator[tuple[int, TenantResult | TenantFailure]]:
    """THE tenant-execution core: run job tuples over the warm pool(s).

    ``jobs`` are :func:`run_tenant` payload tuples
    ``(spec, payload, use_cache, faults, retry)`` — each entry carries its
    *own* retry policy, which is how the service daemon applies per-tenant
    deadlines and degraded modes without forking the execution path.
    Yields ``(index, outcome)`` as each tenant becomes next; the yield
    order is deterministic for a fixed (jobs, worker count, batching,
    shard count) and every outcome is deterministic for its job tuple
    alone, so consumers may checkpoint incrementally and reorder freely.

    ``shards`` partitions the tenant space across that many worker groups
    (see :mod:`repro.service.shards`); ``shards=1`` is the classic
    single-pool schedule.  With several workers the grouped path
    co-locates tenants round-robin over shared eval brokers; with one
    worker (or one tenant per group) the scalar path runs instead — an
    adaptive, bit-identical routing choice.

    Both :class:`FleetScheduler` and the service daemon route through this
    one generator — the daemon owns no tuning logic of its own.
    """
    # Imported lazily: shards.py needs this module's job adapters at its
    # import time, so a top-level import here would cycle.
    from repro.service.shards import ShardedExecutor

    yield from ShardedExecutor(
        shards, max_workers=max_workers, batching=batching
    ).execute(jobs)


@dataclass
class FleetResult:
    """Per-tenant outcomes (submission order) plus the fleet-wide journal.

    ``outcomes`` interleaves completed :class:`TenantResult`\\ s and
    quarantined :class:`TenantFailure`\\ s in tenant submission order;
    ``tenants``/``failures`` are the filtered views.  The merged journal
    is built from completed tenants only — a quarantined tenant's partial
    knowledge never contaminates the fleet.
    """

    outcomes: list = field(default_factory=list)
    journal: RuleJournal = field(default_factory=RuleJournal)
    elapsed: float = 0.0
    workers: int = 1
    checkpoint_write_failures: int = 0
    #: Lazy id -> outcome map; built once, outcomes are append-complete by
    #: the time anyone looks tenants up.
    _by_id: dict | None = field(default=None, init=False, repr=False, compare=False)

    @property
    def tenants(self) -> list[TenantResult]:
        return [o for o in self.outcomes if isinstance(o, TenantResult)]

    @property
    def failures(self) -> list[TenantFailure]:
        return [o for o in self.outcomes if isinstance(o, TenantFailure)]

    @property
    def total_sessions(self) -> int:
        return sum(len(t.sessions) for t in self.tenants)

    @property
    def sessions_per_sec(self) -> float:
        return self.total_sessions / self.elapsed if self.elapsed > 0 else 0.0

    def _index(self) -> dict:
        if self._by_id is None or len(self._by_id) != len(self.outcomes):
            self._by_id = {o.tenant_id: o for o in self.outcomes}
        return self._by_id

    def get(self, tenant_id: str) -> TenantResult:
        found = self._index().get(tenant_id)
        if not isinstance(found, TenantResult):
            raise KeyError(tenant_id)
        return found

    def failure(self, tenant_id: str) -> TenantFailure:
        found = self._index().get(tenant_id)
        if not isinstance(found, TenantFailure):
            raise KeyError(tenant_id)
        return found

    def render(self) -> str:
        """Per-tenant rows are deterministic; the aggregate line (wall time,
        throughput, worker count) is machine-dependent and stays last so
        smoke checks can diff everything above it."""
        lines = [
            "Fleet: per-tenant tuning sessions over shared offline artifacts"
        ]
        lines.extend(outcome.render_row() for outcome in self.outcomes)
        lines.append(
            f"  fleet journal: {len(self.journal)} rule version(s), "
            f"{len(self.journal.current)} merged rule(s)"
        )
        if self.failures:
            lines.append(
                f"  quarantined: {len(self.failures)}/{len(self.outcomes)} "
                "tenant(s) (reports above); other tenants unaffected"
            )
        lines.append(
            f"  aggregate: {self.total_sessions} sessions in "
            f"{self.elapsed:.2f}s ({self.sessions_per_sec:.2f} sessions/sec, "
            f"{self.workers} worker(s))"
        )
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Fleet checkpoint serialization (resume without re-running tenants).
# ---------------------------------------------------------------------------


def _outcome_to_json(
    outcome: TenantResult | TenantFailure,
    spec_fingerprint: str | None = None,
    degraded_sites: Iterable[str] = (),
) -> dict:
    if isinstance(outcome, TenantFailure):
        raw: dict = {"kind": "failure", "report": outcome.to_dict()}
    else:
        raw = {
            "kind": "result",
            "tenant_id": outcome.tenant_id,
            "sessions": [session_to_dict(s) for s in outcome.sessions],
            "journal": outcome.journal.to_json(),
        }
    if spec_fingerprint is not None:
        raw["spec_digest"] = spec_fingerprint
    sites = sorted(degraded_sites)
    if sites:
        raw["degraded_sites"] = sites
    return raw


def _outcome_from_json(raw: dict, spec: TenantSpec) -> TenantResult | TenantFailure:
    if raw["kind"] == "failure":
        return TenantFailure.from_dict(raw["report"], spec)
    return TenantResult(
        spec=spec,
        sessions=[session_from_dict(s) for s in raw["sessions"]],
        journal=RuleJournal.from_json(raw["journal"]),
    )


class CheckpointStore:
    """Incremental, fingerprinted fleet checkpoints (one JSON file).

    Each outcome is JSON-encoded exactly once (restored ones at load,
    fresh ones on arrival) into ``fragments``; every save joins the
    precomputed fragments instead of re-serializing the fleet, keeping
    per-arrival writes O(T) instead of the old O(T²) amplification.

    Every payload carries the owning fleet's fingerprint (see
    :func:`fleet_stamp`); :meth:`load` refuses — with a descriptive
    :class:`JournalCorruptError` — to hand a different fleet's outcomes
    back.  Writes go through the armed ``journal.write`` fault site with
    the caller's retry policy; an exhausted write budget leaves the
    previous (complete, atomic) checkpoint on disk and is only *counted*
    (``write_failures``), never raised — a resume just re-runs one more
    tenant.
    """

    def __init__(
        self,
        path: str | Path,
        stamp: dict,
        retry: RetryPolicy,
        plan: FaultPlan | None = None,
    ):
        self.path = Path(path)
        self.stamp = stamp
        self.retry = retry
        self.plan = plan if plan is not None else FaultPlan.none()
        self.fragments: dict[str, str] = {}
        self.write_failures = 0

    # -- read side ------------------------------------------------------
    def load(self) -> dict[str, dict]:
        """Raw outcome dicts from disk, keyed by tenant id.

        Validates the file shape, the format version and the fleet
        fingerprint; returns ``{}`` when no checkpoint exists yet.
        """
        if not self.path.exists():
            return {}
        try:
            raw = json.loads(self.path.read_text())
        except json.JSONDecodeError as exc:
            raise JournalCorruptError(
                f"fleet checkpoint at {self.path} is not valid JSON "
                f"({exc}); the file is truncated or corrupt"
            ) from exc
        if raw.get("format") != CHECKPOINT_FORMAT:
            raise JournalCorruptError(
                f"fleet checkpoint at {self.path} has format "
                f"{raw.get('format')!r}, expected {CHECKPOINT_FORMAT}"
            )
        recorded = raw.get("fleet")
        if not isinstance(recorded, dict):
            raise JournalCorruptError(
                f"fleet checkpoint at {self.path} carries no fleet "
                "fingerprint; the file is truncated or corrupt"
            )
        self._check_stamp(recorded)
        outcomes = raw.get("outcomes", {})
        if not isinstance(outcomes, dict):
            raise JournalCorruptError(
                f"fleet checkpoint at {self.path} has a malformed outcomes "
                "table; the file is truncated or corrupt"
            )
        return outcomes

    def _check_stamp(self, recorded: dict) -> None:
        for part in ("seed", "plan"):
            if recorded.get(part) != self.stamp[part]:
                raise JournalCorruptError(
                    f"fleet checkpoint at {self.path} was written by a "
                    f"different fleet: {part} {recorded.get(part)!r} != "
                    f"{self.stamp[part]!r}; delete the file (or point the "
                    "fleet at a fresh path) to start over"
                )
        mine, theirs = self.stamp.get("tenants"), recorded.get("tenants")
        if mine is not None and theirs is not None and mine != theirs:
            raise JournalCorruptError(
                f"fleet checkpoint at {self.path} was written by a "
                f"different fleet: tenant ids {theirs!r} != {mine!r}; "
                "delete the file (or point the fleet at a fresh path) to "
                "start over"
            )

    # -- write side -----------------------------------------------------
    def restore_fragment(self, tenant_id: str, raw: dict) -> None:
        """Adopt a loaded outcome into the fragment table (no write)."""
        self.fragments[tenant_id] = json.dumps(raw)

    def record(self, tenant_id: str, raw: dict) -> None:
        """Encode one arrival and persist the assembled checkpoint."""
        self.fragments[tenant_id] = json.dumps(raw)
        self.write_failures += self._save(key=tenant_id)

    def _save(self, key: str) -> int:
        body = ", ".join(
            f"{json.dumps(tenant_id)}: {fragment}"
            for tenant_id, fragment in self.fragments.items()
        )
        payload = (
            f'{{"format": {CHECKPOINT_FORMAT}, '
            f'"fleet": {json.dumps(self.stamp)}, '
            f'"outcomes": {{{body}}}}}'
        )

        def attempt(n: int) -> int:
            if self.plan.should_fire("journal.write", f"checkpoint:{key}:a{n}"):
                raise TransientFault("journal.write", key=f"checkpoint:{key}:a{n}")
            atomic_write_text(self.path, payload)
            return 0

        try:
            return self.retry.execute(
                attempt, site="journal.write", key=f"checkpoint:{key}", plan=self.plan
            )
        except FaultBudgetExhausted:
            return 1


class ArtifactCatalog:
    """Shared offline artifacts, resolved once per (backend, cluster seed).

    The one place tenant specs turn into clusters, extractions and
    publishable worker payloads — the batch scheduler and the service
    daemon both lean on it, so neither can drift in how tenants acquire
    their offline phase.
    """

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._clusters: dict[tuple[str, int], ClusterSpec] = {}

    def cluster_for(self, spec: TenantSpec) -> ClusterSpec:
        """The tenant's testbed; one instance per (backend, cluster seed)."""
        key = (
            spec.backend,
            spec.cluster_seed if spec.cluster_seed is not None else self.seed,
        )
        if key not in self._clusters:
            self._clusters[key] = make_cluster(seed=key[1], backend=key[0])
        return self._clusters[key]

    def extraction_for(self, spec: TenantSpec) -> ExtractionResult:
        """The shared offline artifact for the tenant's backend.

        Memoized process-wide by :func:`shared_extraction` under
        (backend, seed) — every scheduler and experiment in the process
        shares one copy per cell.
        """
        return shared_extraction(self.cluster_for(spec), seed=self.seed)

    def _bundle_key(self, spec: TenantSpec) -> tuple:
        cluster_seed = (
            spec.cluster_seed if spec.cluster_seed is not None else self.seed
        )
        return ("offline", spec.backend, cluster_seed, self.seed)

    def payload_for(self, spec: TenantSpec) -> "ArtifactRef | OfflineArtifacts":
        """The tenant's offline bundle, published once per (backend, seed).

        Returns the shared-memory ref when one exists; when the platform
        could not provide a segment the bundle itself ships inline (the
        fork-started default still dedups it through the publisher's
        process-local store).
        """
        key = self._bundle_key(spec)
        ref = artifacts.ref_for(key)
        if ref is None:
            cluster = self.cluster_for(spec)
            bundle = OfflineArtifacts(
                cluster=cluster,
                extraction=self.extraction_for(spec),
                manual=render_manual(backend=cluster.backend),
                hardware_doc=render_hardware_doc(cluster),
            )
            ref = artifacts.publish(key, bundle)
        if ref.shm_name is not None:
            return ref
        return artifacts.resolve(ref)


class FleetScheduler:
    """Runs many tenants concurrently with deterministic results.

    ``seed`` roots the shared offline artifacts (and any tenant that does
    not pin its own ``cluster_seed``); ``max_workers`` resolves through
    :func:`repro.experiments.parallel.effective_workers` (explicit arg >
    ``REPRO_MAX_WORKERS`` > cpu count).  ``faults`` arms the fault plan
    for every tenant (``None`` keeps the plane out of the code path
    entirely); ``checkpoint`` names a JSON file that persists completed
    outcomes after each arrival and is consulted on the next run, so a
    killed fleet resumes where it stopped.

    ``breaker`` arms per-fault-site circuit breakers: after the policy's
    threshold of consecutive quarantines on one site, later tenants (in
    tenant list order) run with that site fail-fast.  Breaker decisions
    fold over outcomes in canonical (list) order regardless of how the
    pool parallelised execution — tenants whose speculative run used the
    wrong mode are deterministically re-run — so results stay worker-count
    invariant.  ``None`` (the default) keeps behaviour identical to the
    pre-breaker scheduler.

    ``shards`` partitions the tenant space across that many worker groups
    (stable principal hash, one warm pool + eval broker per shard — see
    :mod:`repro.service.shards`); the merged result is byte-identical to
    the single-pool schedule at any shard count.
    """

    def __init__(
        self,
        tenants: Sequence[TenantSpec],
        seed: int = 0,
        max_workers: int | None = None,
        use_cache: bool = True,
        faults: FaultPlan | None = None,
        retry: RetryPolicy | None = None,
        checkpoint: str | Path | None = None,
        batching: bool = True,
        breaker: BreakerPolicy | None = None,
        shards: int = 1,
    ):
        ids = [spec.tenant_id for spec in tenants]
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate tenant ids in {ids}")
        if shards < 1:
            raise ValueError(f"shards={shards} must be a positive shard count")
        self.tenants = list(tenants)
        self.seed = seed
        self.max_workers = max_workers
        self.use_cache = use_cache
        self.faults = faults
        self.retry = retry if retry is not None else RetryPolicy()
        self.checkpoint = Path(checkpoint) if checkpoint is not None else None
        self.batching = batching
        self.breaker = breaker
        self.shards = shards
        self._breaker_state: BreakerState | None = None
        self._catalog = ArtifactCatalog(seed)

    # ------------------------------------------------------------------
    def cluster_for(self, spec: TenantSpec) -> ClusterSpec:
        """The tenant's testbed (delegates to the shared catalog)."""
        return self._catalog.cluster_for(spec)

    def extraction_for(self, spec: TenantSpec) -> ExtractionResult:
        """The tenant's shared offline extraction (catalog delegate)."""
        return self._catalog.extraction_for(spec)

    def _artifact_payload(self, spec: TenantSpec) -> "ArtifactRef | OfflineArtifacts":
        return self._catalog.payload_for(spec)

    # ------------------------------------------------------------------
    def run(self) -> FleetResult:
        """Run every tenant's queue; results in tenant submission order."""
        store = (
            CheckpointStore(
                self.checkpoint,
                fleet_stamp(
                    [spec.tenant_id for spec in self.tenants],
                    self.seed,
                    self.faults,
                ),
                self.retry,
                self.faults,
            )
            if self.checkpoint is not None
            else None
        )
        restored = self._load_checkpoint(store)
        pending = [
            spec for spec in self.tenants if spec.tenant_id not in restored
        ]
        jobs = [
            (
                spec,
                self._artifact_payload(spec),
                self.use_cache,
                self.faults,
                self.retry,
            )
            for spec in pending
        ]
        workers = effective_workers(self.max_workers, max(len(jobs), 1))
        start = perf_counter()
        outcomes_by_id = {
            tenant_id: outcome for tenant_id, (outcome, _) in restored.items()
        }
        ran_modes = {
            tenant_id: mode for tenant_id, (_, mode) in restored.items()
        }

        def arrive(spec: TenantSpec, outcome, mode: frozenset) -> None:
            outcomes_by_id[spec.tenant_id] = outcome
            ran_modes[spec.tenant_id] = mode
            if store is not None:
                store.record(
                    spec.tenant_id,
                    _outcome_to_json(
                        outcome,
                        spec_fingerprint=spec_digest(spec),
                        degraded_sites=mode,
                    ),
                )

        for index, outcome in execute_jobs(
            jobs,
            max_workers=self.max_workers,
            batching=self.batching,
            shards=self.shards,
        ):
            arrive(pending[index], outcome, frozenset())

        if self.breaker is not None:
            # Canonical breaker walk: fold outcomes in tenant list order,
            # re-running (deterministically, inline) any tenant whose
            # speculative mode disagrees with the canonical one.
            state = BreakerState(self.breaker)
            for spec in self.tenants:
                mode = state.open_sites()
                if mode != ran_modes[spec.tenant_id]:
                    arrive(spec, self._rerun_tenant(spec, mode), mode)
                state.observe(outcomes_by_id[spec.tenant_id])
            self._breaker_state = state

        elapsed = perf_counter() - start
        outcomes = [outcomes_by_id[spec.tenant_id] for spec in self.tenants]
        journal = RuleJournal.merged(
            [o.journal for o in outcomes if isinstance(o, TenantResult)]
        )
        return FleetResult(
            outcomes=outcomes,
            journal=journal,
            elapsed=elapsed,
            workers=workers,
            checkpoint_write_failures=(
                store.write_failures if store is not None else 0
            ),
        )

    def breaker_report(self) -> dict[str, dict[str, int | str]]:
        """Canonical per-site breaker states after the last :meth:`run`."""
        if self._breaker_state is None:
            return {}
        return self._breaker_state.report()

    def _rerun_tenant(
        self, spec: TenantSpec, mode: frozenset
    ) -> TenantResult | TenantFailure:
        """One tenant, inline, under the canonical degraded mode.

        :func:`run_tenant` depends only on its arguments, so the inline
        re-run is byte-identical to what a pooled run under ``mode`` would
        have produced.
        """
        bundle = _resolve_payload(self._artifact_payload(spec))
        return run_tenant(
            spec,
            bundle.cluster,
            bundle.extraction,
            self.use_cache,
            self.faults,
            self.retry.with_fail_fast(mode),
        )

    # ------------------------------------------------------------------
    def _load_checkpoint(
        self, store: CheckpointStore | None
    ) -> dict[str, tuple[TenantResult | TenantFailure, frozenset]]:
        """Outcomes persisted by a previous (killed) run of this fleet.

        Returns ``tenant_id -> (outcome, degraded_sites)`` — the mode each
        outcome ran under feeds the canonical breaker walk on resume.
        Every restored entry's spec digest must match this fleet's spec
        for that id; a mismatch means the checkpoint belongs to a
        different fleet and raises :class:`JournalCorruptError`.
        """
        if store is None:
            return {}
        specs = {spec.tenant_id: spec for spec in self.tenants}
        restored = {}
        for tenant_id, outcome_raw in store.load().items():
            spec = specs.get(tenant_id)
            if spec is None:
                # A dynamic-fleet (service) checkpoint may hold tenants
                # outside this batch fleet; they are simply not restored.
                continue
            expected = spec_digest(spec)
            recorded = outcome_raw.get("spec_digest")
            if recorded != expected:
                raise JournalCorruptError(
                    f"fleet checkpoint entry for tenant {tenant_id!r} was "
                    f"written by a different spec (digest {recorded!r}, "
                    f"this fleet expects {expected!r}); the checkpoint "
                    "belongs to a different fleet"
                )
            try:
                outcome = _outcome_from_json(outcome_raw, spec)
            except (KeyError, TypeError, ValueError) as exc:
                raise JournalCorruptError(
                    f"fleet checkpoint entry for tenant {tenant_id!r} is "
                    f"malformed ({type(exc).__name__}: {exc})"
                ) from exc
            restored[tenant_id] = (
                outcome,
                frozenset(outcome_raw.get("degraded_sites", ())),
            )
            store.restore_fragment(tenant_id, outcome_raw)
        return restored
