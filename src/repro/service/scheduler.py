"""The fleet scheduler: many tenants over one deterministic process pool.

:class:`FleetScheduler` turns the engine's per-workload tuning loop into a
schedulable service: each :class:`~repro.service.tenant.TenantSpec` is an
independent unit whose session queue runs in order on a worker, while the
tenants themselves fan over :func:`repro.experiments.parallel.pmap` — the
same deterministic pool the figure experiments use, so results arrive in
tenant submission order regardless of worker count or completion order.

What tenants share, and how:

- **Immutable offline artifacts.**  The RAG extraction is computed once per
  (backend, seed) in the parent (:func:`shared_extraction`) and shipped to
  workers with the job — tenants never redo the offline phase.  Manuals and
  the RAG index live behind the extraction and the backend registry, both
  immutable at serving time.
- **The opt-in run cache.**  Every tenant job runs inside
  ``RUN_CACHE.enabled()`` (unless the scheduler is built with
  ``use_cache=False``), so tenants co-located on a worker share
  deterministic simulation results.  The cache can only ever short-circuit
  identical (backend, cluster, workload, config, seed) runs, so sharing
  never changes results — worker-count independence is asserted by
  ``tests/test_fleet.py``.
- **Rule knowledge, after the fact.**  Each tenant accumulates into its own
  :class:`~repro.rules.store.RuleJournal`; the scheduler replay-merges them
  (:meth:`RuleJournal.merged`) so concurrent tenants' contributions land in
  seed order — the fleet-wide journal is identical for any execution
  interleaving.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field
from time import perf_counter
from typing import Sequence

from repro.cluster.hardware import ClusterSpec, make_cluster
from repro.core.engine import Stellar
from repro.experiments.harness import shared_extraction
from repro.experiments.parallel import effective_workers, pmap
from repro.rag.extraction import ExtractionResult
from repro.rules.store import RuleJournal
from repro.service.tenant import TenantResult, TenantSpec
from repro.sim.cache import RUN_CACHE


def run_tenant(
    spec: TenantSpec,
    cluster: ClusterSpec,
    extraction: ExtractionResult,
    use_cache: bool = True,
) -> TenantResult:
    """One tenant's whole session queue — THE per-tenant body.

    Module-level and dependent only on its arguments, so the inline and
    pooled paths cannot drift; the throughput bench also calls it directly
    to build its sequential comparison arm.  The cache scope is
    (re-)entered here because worker processes do not inherit the parent's
    enablement depth under every start method.
    """
    engine = Stellar(
        cluster=cluster,
        model=spec.model,
        extraction=extraction,
        seed=spec.seed,
    )
    scope = RUN_CACHE.enabled() if use_cache else nullcontext()
    with scope:
        sessions = [
            engine.tune_and_accumulate(workload, max_attempts=spec.max_attempts)
            for workload in spec.session_queue()
        ]
    return TenantResult(spec=spec, sessions=sessions, journal=engine.journal)


def _tenant_job(args: tuple) -> TenantResult:
    """Picklable adapter: one jobs-tuple -> :func:`run_tenant`."""
    return run_tenant(*args)


@dataclass
class FleetResult:
    """Per-tenant results (submission order) plus the fleet-wide journal."""

    tenants: list[TenantResult] = field(default_factory=list)
    journal: RuleJournal = field(default_factory=RuleJournal)
    elapsed: float = 0.0
    workers: int = 1

    @property
    def total_sessions(self) -> int:
        return sum(len(t.sessions) for t in self.tenants)

    @property
    def sessions_per_sec(self) -> float:
        return self.total_sessions / self.elapsed if self.elapsed > 0 else 0.0

    def get(self, tenant_id: str) -> TenantResult:
        found = next(
            (t for t in self.tenants if t.tenant_id == tenant_id), None
        )
        if found is None:
            raise KeyError(tenant_id)
        return found

    def render(self) -> str:
        """Per-tenant rows are deterministic; the aggregate line (wall time,
        throughput, worker count) is machine-dependent and stays last so
        smoke checks can diff everything above it."""
        lines = [
            "Fleet: per-tenant tuning sessions over shared offline artifacts"
        ]
        lines.extend(tenant.render_row() for tenant in self.tenants)
        lines.append(
            f"  fleet journal: {len(self.journal)} rule version(s), "
            f"{len(self.journal.current)} merged rule(s)"
        )
        lines.append(
            f"  aggregate: {self.total_sessions} sessions in "
            f"{self.elapsed:.2f}s ({self.sessions_per_sec:.2f} sessions/sec, "
            f"{self.workers} worker(s))"
        )
        return "\n".join(lines)


class FleetScheduler:
    """Runs many tenants concurrently with deterministic results.

    ``seed`` roots the shared offline artifacts (and any tenant that does
    not pin its own ``cluster_seed``); ``max_workers`` resolves through
    :func:`repro.experiments.parallel.effective_workers` (explicit arg >
    ``REPRO_MAX_WORKERS`` > cpu count).
    """

    def __init__(
        self,
        tenants: Sequence[TenantSpec],
        seed: int = 0,
        max_workers: int | None = None,
        use_cache: bool = True,
    ):
        ids = [spec.tenant_id for spec in tenants]
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate tenant ids in {ids}")
        self.tenants = list(tenants)
        self.seed = seed
        self.max_workers = max_workers
        self.use_cache = use_cache
        self._clusters: dict[tuple[str, int], ClusterSpec] = {}

    # ------------------------------------------------------------------
    def cluster_for(self, spec: TenantSpec) -> ClusterSpec:
        """The tenant's testbed; one instance per (backend, cluster seed)."""
        key = (spec.backend, spec.cluster_seed if spec.cluster_seed is not None else self.seed)
        if key not in self._clusters:
            self._clusters[key] = make_cluster(seed=key[1], backend=key[0])
        return self._clusters[key]

    def extraction_for(self, spec: TenantSpec) -> ExtractionResult:
        """The shared offline artifact for the tenant's backend.

        Memoized process-wide by :func:`shared_extraction` under
        (backend, seed) — every scheduler and experiment in the process
        shares one copy per cell.
        """
        return shared_extraction(self.cluster_for(spec), seed=self.seed)

    # ------------------------------------------------------------------
    def run(self) -> FleetResult:
        """Run every tenant's queue; results in tenant submission order."""
        jobs = [
            (spec, self.cluster_for(spec), self.extraction_for(spec), self.use_cache)
            for spec in self.tenants
        ]
        workers = effective_workers(self.max_workers, len(jobs))
        start = perf_counter()
        results = pmap(_tenant_job, jobs, max_workers=workers)
        elapsed = perf_counter() - start
        return FleetResult(
            tenants=results,
            journal=RuleJournal.merged([r.journal for r in results]),
            elapsed=elapsed,
            workers=workers,
        )
