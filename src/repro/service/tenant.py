"""Tenant cells for the fleet scheduler.

A *tenant* is one schedulable unit of the multi-tenant service: a backend ×
cluster × workload-or-schedule × engine cell.  Its session queue is the
ordered list of tuning runs the tenant wants; rules accumulate across the
queue through the tenant's own :class:`~repro.rules.store.RuleJournal`, so
session order within a tenant matters (and is preserved) while tenants are
independent of each other (and run concurrently).

Import-graph rule: like every experiment-layer module, this package never
imports the legacy Lustre parameter shim — everything backend-specific
resolves through the cluster's backend.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.session import TuningSession
from repro.llm.tokens import TokenUsage
from repro.rules.store import RuleJournal
from repro.workloads import build_schedule, get_workload
from repro.workloads.base import Workload
from repro.workloads.dynamic import DEFAULT_SEGMENTS


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's cell: what to tune, on what, with which engine.

    Exactly one of ``workloads`` (an ordered queue of registered workload
    names) or ``schedule`` (a seeded dynamic-schedule kind; the queue is
    the schedule's distinct segment workloads in first-appearance order)
    describes the work.  ``seed`` doubles as the tenant's replay-order key:
    when a fleet merges journals, this tenant's rule contributions land at
    its seed's position regardless of completion order.  ``policy`` names
    the agent's turn-taking strategy (a registered
    :mod:`repro.agents.policies` name) — a first-class fleet dimension like
    the backend; policies only change *when* a tenant parks evaluations,
    never probe seeds or operand order, so every scheduler contract
    (worker-count invariance, batched-broker parity) holds per policy.
    """

    tenant_id: str
    backend: str = "lustre"
    workloads: tuple[str, ...] = ()
    schedule: str | None = None
    n_segments: int = DEFAULT_SEGMENTS
    model: str = "claude-3.7-sonnet"
    seed: int = 0
    cluster_seed: int | None = None
    max_attempts: int = 5
    policy: str = "reflection"

    def __post_init__(self):
        if bool(self.workloads) == bool(self.schedule):
            raise ValueError(
                f"tenant {self.tenant_id!r} must set exactly one of "
                "workloads or schedule"
            )
        from repro.agents.policies import list_policies

        if self.policy not in list_policies():
            raise ValueError(
                f"tenant {self.tenant_id!r} names unknown policy "
                f"{self.policy!r}; registered: {', '.join(list_policies())}"
            )

    def session_queue(self) -> list[Workload]:
        """The ordered tuning runs this tenant wants."""
        if self.workloads:
            return [get_workload(name) for name in self.workloads]
        schedule = build_schedule(
            self.schedule, seed=self.seed, n_segments=self.n_segments
        )
        queue: list[Workload] = []
        seen: set[tuple] = set()
        for segment in schedule:
            key = segment.workload.cache_key()
            if key not in seen:
                seen.add(key)
                queue.append(segment.workload)
        return queue


@dataclass
class TenantResult:
    """Everything one tenant's queue produced, in queue order."""

    spec: TenantSpec
    sessions: list[TuningSession] = field(default_factory=list)
    journal: RuleJournal = field(default_factory=RuleJournal)

    @property
    def tenant_id(self) -> str:
        return self.spec.tenant_id

    @property
    def mean_speedup(self) -> float:
        if not self.sessions:
            return 1.0
        return sum(s.best_speedup for s in self.sessions) / len(self.sessions)

    @property
    def executions(self) -> int:
        return sum(s.executions for s in self.sessions)

    def total_usage(self) -> TokenUsage:
        total = TokenUsage()
        for session in self.sessions:
            for usage in session.usage.values():
                total = total + usage
        return total

    def render_row(self) -> str:
        queue = self.spec.schedule or "+".join(self.spec.workloads)
        usage = self.total_usage()
        # The default policy stays unmarked so pre-policy fixtures (and the
        # chaos smoke's fleet-row comparisons) remain byte-identical.
        policy_note = (
            f" | policy={self.spec.policy}"
            if self.spec.policy != "reflection"
            else ""
        )
        return (
            f"  {self.tenant_id:12s} {self.spec.backend:8s} {queue:30s} "
            f"{len(self.sessions)} session(s) | mean speedup "
            f"{self.mean_speedup:.2f}x | {len(self.journal)} rule version(s) "
            f"| {self.executions} runs | {usage.input_tokens} tok in"
            f"{policy_note}"
        )


@dataclass
class TenantFailure:
    """Structured quarantine report for a tenant that could not finish.

    Produced when a tenant's session queue exhausts a fault site's retry
    budget (or raises outright): the tenant is *quarantined* — removed
    from the fleet's merged journal, reported here — while every other
    tenant completes.  Reports are deterministic for a fixed
    ``(seed, fault plan)``: same site, same key, same attempt counts, at
    any worker count.
    """

    spec: TenantSpec
    site: str  # the exhausted fault site, or "exception" for raw errors
    error: str  # human-readable cause
    failed_workload: str = ""  # queue entry that was running at failure
    attempts: int = 0  # attempts spent at the failing site
    completed_sessions: int = 0  # sessions finished before the failure
    fault_recovery: dict[str, int] = field(default_factory=dict)

    @property
    def tenant_id(self) -> str:
        return self.spec.tenant_id

    def render_row(self) -> str:
        return (
            f"  QUARANTINED {self.tenant_id:12s} {self.spec.backend:8s} "
            f"site={self.site} workload={self.failed_workload or '<none>'} "
            f"after {self.attempts} attempt(s) "
            f"[{self.completed_sessions} session(s) completed]: {self.error}"
        )

    def to_dict(self) -> dict:
        return {
            "tenant_id": self.tenant_id,
            "site": self.site,
            "error": self.error,
            "failed_workload": self.failed_workload,
            "attempts": self.attempts,
            "completed_sessions": self.completed_sessions,
            "fault_recovery": dict(self.fault_recovery),
        }

    @classmethod
    def from_dict(cls, raw: dict, spec: TenantSpec) -> "TenantFailure":
        return cls(
            spec=spec,
            site=raw["site"],
            error=raw["error"],
            failed_workload=raw.get("failed_workload", ""),
            attempts=int(raw.get("attempts", 0)),
            completed_sessions=int(raw.get("completed_sessions", 0)),
            fault_recovery={
                site: int(count)
                for site, count in raw.get("fault_recovery", {}).items()
            },
        )
