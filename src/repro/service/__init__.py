"""The service layer: STELLAR as a multi-tenant fleet.

Where :mod:`repro.core` tunes one workload for one operator, this package
schedules *many tenants* — each a backend × cluster × workload-or-schedule
× engine cell — concurrently over the deterministic process pool, sharing
the immutable offline artifacts and the opt-in run cache, and merging every
tenant's rule contributions into one versioned, replay-deterministic
journal.

Import-graph rules (guarded by ``tests/test_fleet.py``):

- ``service/`` never imports the legacy Lustre parameter shim — tenants
  are backend-agnostic, everything resolves through the cluster's backend;
- the scheduler owns no tuning logic: a tenant's queue runs through the
  ordinary :meth:`Stellar.tune_and_accumulate`, so the service layer can
  never drift from the single-operator path;
- sharding owns no execution logic: :mod:`repro.service.shards` only
  partitions jobs and merges streams — tenants still run through the
  scheduler's job adapters, and ``execute_jobs`` imports the executor
  lazily so the layering stays acyclic.

Fault domains: each tenant is its own blast radius.  Under an armed
:class:`~repro.faults.plan.FaultPlan`, a tenant that exhausts its retry
budget is quarantined with a structured
:class:`~repro.service.tenant.TenantFailure` report while every other
tenant completes, and fleet state checkpoints through the journal store so
a killed fleet resumes without re-running completed tenants.

The long-lived face of the layer is :class:`~repro.service.daemon.
TuningService`: tenants arrive through deterministic admission control
(rate limits + bounded queue with backpressure), run in waves over the
same pool, and ``drain()`` returns a fleet byte-identical to the batch
scheduler — the daemon owns no tuning logic, everything routes through
:func:`~repro.service.scheduler.run_tenant`.
"""

from repro.service.admission import (
    Admission,
    AdmissionController,
    AdmissionDecision,
    AdmissionPolicy,
)
from repro.service.daemon import TuningService
from repro.service.scheduler import (
    FleetResult,
    FleetScheduler,
    execute_jobs,
    run_tenant,
)
from repro.service.shards import ShardedExecutor, shard_of
from repro.service.tenant import TenantFailure, TenantResult, TenantSpec

__all__ = [
    "FleetScheduler",
    "FleetResult",
    "TenantSpec",
    "TenantResult",
    "TenantFailure",
    "run_tenant",
    "execute_jobs",
    "ShardedExecutor",
    "shard_of",
    "TuningService",
    "Admission",
    "AdmissionPolicy",
    "AdmissionDecision",
    "AdmissionController",
]
