"""Cross-tenant evaluation batching: the fleet's columnar agent loop.

Tenants co-located on a worker run their session queues as threads sharing
one :class:`FleetEvalBroker`.  Every simulated probe a tenant's
:class:`~repro.core.runner.ConfigurationRunner` would execute directly is
submitted to the broker instead, which *parks* the submitting thread until
every live tenant is parked on a pending evaluation of its own — at which
point the last arrival flushes the whole round through
:func:`repro.sim.sweep.run_fleet_items`: one columnar sweep per
(workload, cluster) group spanning all co-batched tenants.

Why this is deterministic: a flushed item's result depends only on its own
(cluster, workload, config, seed) — the columnar engine is bit-identical to
``Simulator.run`` per item (``tests/test_sweep.py``), so thread scheduling
can change *grouping* (how many items share a flush) but never values.
All simulation happens inside the flush while every other tenant thread is
parked, so the run cache and the model's memoized state are touched by one
thread at a time.

The rendezvous counts only threads *blocked on an uncomputed result*
(``_blocked``), not threads that merely have not collected a finished one —
otherwise a fast tenant re-submitting could trigger premature single-item
flushes and the batching would quietly degenerate to the scalar path.

:class:`TenantPort` is the per-tenant handle the group runner hands to
``run_tenant``: it forwards to the shared broker and fires a one-shot
callback at the tenant's first broker contact, which is how
:func:`repro.service.scheduler.run_tenant_group` passes the entry baton to
the next tenant — tenants *enter* ``run_tenant`` in submission order (so
checkpoint and monkeypatching semantics match the sequential path) while
still evaluating concurrently.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Callable

from repro.pfs.simulator import Simulator
from repro.sim.sweep import run_fleet_items

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.cluster.hardware import ClusterSpec
    from repro.pfs.config import PfsConfig
    from repro.pfs.simulator import RunResult, WorkloadLike


class FleetEvalBroker:
    """Collects pending evaluations across tenant threads, flushes columnar.

    Lifecycle: the group runner calls :meth:`register` once per tenant
    *before* any tenant thread starts (so the first rendezvous already
    counts everyone), each tenant thread calls :meth:`evaluate` any number
    of times, and :meth:`retire` exactly once when its queue is done —
    retiring shrinks the rendezvous so stragglers keep batching among
    themselves.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._live = 0
        self._blocked = 0
        self._next_token = 0
        self._pending: list[tuple[int, Simulator, "WorkloadLike", "PfsConfig", int]] = []
        self._results: dict[int, "RunResult"] = {}
        self._errors: dict[int, BaseException] = {}
        self._sims: dict[tuple, Simulator] = {}
        #: Flush rounds performed (observability + tests).
        self.flushes = 0
        #: Items evaluated through flushes (observability + tests).
        self.batched_items = 0

    # ------------------------------------------------------------------
    def register(self) -> None:
        """Count one tenant into the rendezvous (call before its thread runs)."""
        with self._cond:
            self._live += 1

    def retire(self) -> None:
        """A tenant's queue is done; it no longer gates the rendezvous."""
        with self._cond:
            self._live -= 1
            self._maybe_flush_locked()

    def evaluate(
        self,
        cluster: "ClusterSpec",
        workload: "WorkloadLike",
        config: "PfsConfig",
        seed: int,
    ) -> "RunResult":
        """Submit one probe; parks until a flush computes its result."""
        sim = self._sim_for(cluster)
        with self._cond:
            token = self._next_token
            self._next_token += 1
            self._pending.append((token, sim, workload, config, seed))
            self._blocked += 1
            self._maybe_flush_locked()
            while token not in self._results and token not in self._errors:
                self._cond.wait()
            if token in self._errors:
                raise self._errors.pop(token)
            return self._results.pop(token)

    # ------------------------------------------------------------------
    def _sim_for(self, cluster: "ClusterSpec") -> Simulator:
        key = (cluster.backend_name, cluster.cache_key())
        sim = self._sims.get(key)
        if sim is None:
            sim = self._sims[key] = Simulator(cluster)
        return sim

    def _maybe_flush_locked(self) -> None:
        if self._pending and self._blocked >= self._live:
            self._flush_locked()

    def _flush_locked(self) -> None:
        pending, self._pending = self._pending, []
        self.flushes += 1
        self.batched_items += len(pending)
        try:
            flushed = run_fleet_items(
                [(sim, workload, config, seed) for _, sim, workload, config, seed in pending]
            )
        except Exception:
            # Keep the blast radius per item: re-evaluate each through the
            # scalar path so one poisoned request cannot take down the
            # tenants that merely shared its flush.
            for token, sim, workload, config, seed in pending:
                try:
                    self._results[token] = sim.run(workload, config, seed=seed)
                except BaseException as exc:  # noqa: BLE001 - routed to owner
                    self._errors[token] = exc
        else:
            for (token, *_), result in zip(pending, flushed):
                self._results[token] = result
        # Every flushed thread now has a result waiting; none of them gates
        # the next rendezvous round anymore.
        self._blocked -= len(pending)
        self._cond.notify_all()


class TenantPort:
    """One tenant's handle on the shared broker.

    Structurally satisfies :class:`repro.core.runner.EvaluationBroker`.
    ``on_first_contact`` fires exactly once, at the first evaluation or at
    retirement (whichever happens first) — the group runner's entry baton.
    """

    def __init__(
        self,
        broker: FleetEvalBroker,
        on_first_contact: Callable[[], None] | None = None,
    ) -> None:
        self._broker = broker
        self._callback = on_first_contact
        self._touched = False

    def _touch(self) -> None:
        if not self._touched:
            self._touched = True
            if self._callback is not None:
                self._callback()

    def evaluate(
        self,
        cluster: "ClusterSpec",
        workload: "WorkloadLike",
        config: "PfsConfig",
        seed: int,
    ) -> "RunResult":
        self._touch()
        return self._broker.evaluate(cluster, workload, config, seed)

    def retire(self) -> None:
        self._touch()
        self._broker.retire()
