"""Sharded fleet execution: N worker groups, one canonical merge.

:class:`ShardedExecutor` partitions the tenant space into ``n_shards``
worker groups and runs each group over its *own* warm pool slice (a named
group in the :mod:`repro.experiments.parallel` registry), its own
:class:`~repro.service.broker.FleetEvalBroker` rendezvous (brokers are
per tenant group, so co-scheduling follows the shard) and the shared
offline artifacts (published once, installed per worker regardless of
which shard's pool forked it).

Shard assignment is a pure function of the tenant id: the stable SHA-256
hash of the id's ``account/`` principal (the same derivation the
admission controller uses for rate limiting) modulo the shard count.
Hashing the *principal* rather than the full id keeps one account's
tenants co-resident — they share a broker and their batched sweeps stay
co-scheduled, exactly like their admission shares a rate bucket.

Determinism contract (guarded by ``tests/test_shards.py``): the merged
outcome stream — and therefore the :class:`~repro.service.scheduler.
FleetResult` folded from it — is byte-identical to the single-pool
``FleetScheduler`` at any (shard count × worker count × submission order
× fault plan).  Three properties make that hold:

- every outcome is a pure function of its job tuple (the standing
  :func:`~repro.service.scheduler.run_tenant` contract), so *where* a
  tenant runs cannot change *what* it produces;
- within a shard, jobs keep their fleet submission order, and the grouped
  (broker) and scalar paths are already bit-identical;
- the merge interleaves shard streams round-robin in shard order — a
  deterministic schedule over deterministic per-shard streams.

Fault domains compose with sharding: a ``BrokenProcessPool`` in one
shard retires only that shard's pool (the registry is per group) and
quarantines only that shard's unfinished tenants with structured
``site="pool.broken"`` reports; sibling shards drain to completion.

Adaptive batching lives here too: a shard routes through the grouped
broker path only when it really has concurrency to win (``workers > 1``
and more tenants than workers); a 1-worker or 1-tenant-per-group shard
takes the scalar path, skipping thread + rendezvous overhead that
measured *slower* than scalar on single-core boxes.  Pure routing — both
paths are bit-identical — so the choice can never change results.

Import-graph rule: this module sits between the scheduler's picklable
job adapters (imported here) and the pool registry; the scheduler's
``execute_jobs`` imports :class:`ShardedExecutor` lazily so the layering
stays acyclic and ``service/`` still never imports the legacy parameter
shim.
"""

from __future__ import annotations

import hashlib
from concurrent.futures.process import BrokenProcessPool
from typing import Iterator, Sequence

from repro.experiments.parallel import DEFAULT_GROUP, effective_workers, imap
from repro.service.scheduler import _tenant_group_job, _tenant_job
from repro.service.tenant import TenantFailure, TenantResult

#: Pool-registry group name for shard ``k`` of a multi-shard fleet.
POOL_GROUP_PREFIX = "shard-"


def shard_of(tenant_id: str, n_shards: int) -> int:
    """The shard owning ``tenant_id``: stable hash of its principal.

    The principal is the id's leading ``"account/"`` segment (a flat id
    is its own principal), mirroring
    :meth:`~repro.service.admission.AdmissionController.principal_of` —
    one account's tenants always land on one shard.  Stable across
    processes and Python versions (SHA-256, not ``hash()``), so shard
    membership is part of the deterministic schedule, not runtime state.
    """
    if n_shards < 1:
        raise ValueError(f"n_shards={n_shards} must be a positive shard count")
    if n_shards == 1:
        return 0
    principal = tenant_id.split("/", 1)[0]
    digest = hashlib.sha256(principal.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % n_shards


def split_workers(total: int, n_groups: int) -> list[int]:
    """Split ``total`` workers across ``n_groups`` shards, min 1 each.

    Remainders go to the lowest-numbered groups; a shard never gets zero
    workers (a populated shard must always make progress, even when
    shards outnumber cores).
    """
    if n_groups < 1:
        raise ValueError(f"n_groups={n_groups} must be >= 1")
    base, extra = divmod(total, n_groups)
    return [max(1, base + (1 if k < extra else 0)) for k in range(n_groups)]


def use_grouped_path(batching: bool, workers: int, n_jobs: int) -> bool:
    """Whether a shard should batch tenants over a shared broker.

    The grouped path wins only when groups genuinely co-locate several
    tenants on several workers; with one worker — or so few tenants that
    every group would hold exactly one — the threads + rendezvous
    machinery is pure overhead (the measured single-core regression), so
    the shard runs tenants scalar.  Both paths are bit-identical, so
    this is a routing decision, never a semantic one.
    """
    return batching and workers > 1 and n_jobs > workers


def _broken_pool_failure(spec) -> TenantFailure:
    """The quarantine report for a tenant stranded by its shard's pool."""
    return TenantFailure(
        spec=spec,
        site="pool.broken",
        error=(
            "worker pool broke (BrokenProcessPool); the shard's pool was "
            "retired and its unfinished tenants quarantined"
        ),
    )


class ShardedExecutor:
    """Run job tuples across ``n_shards`` worker groups, merged canonically.

    ``jobs`` are the scheduler's :func:`~repro.service.scheduler.run_tenant`
    payload tuples ``(spec, payload, use_cache, faults, retry)``;
    :meth:`execute` yields ``(index, outcome)`` exactly like
    :func:`~repro.service.scheduler.execute_jobs` (which delegates here).
    ``n_shards=1`` with the default group *is* the classic single-pool
    schedule; more shards split the effective worker budget across
    per-shard pools and interleave their arrival streams round-robin.
    """

    def __init__(
        self,
        n_shards: int = 1,
        max_workers: int | None = None,
        batching: bool = True,
    ):
        if n_shards < 1:
            raise ValueError(
                f"n_shards={n_shards} must be a positive shard count"
            )
        self.n_shards = n_shards
        self.max_workers = max_workers
        self.batching = batching

    def execute(
        self, jobs: Sequence[tuple]
    ) -> Iterator[tuple[int, TenantResult | TenantFailure]]:
        jobs = list(jobs)
        if not jobs:
            return
        total = effective_workers(self.max_workers, len(jobs))
        buckets: list[list[int]] = [[] for _ in range(self.n_shards)]
        for index, job in enumerate(jobs):
            buckets[shard_of(job[0].tenant_id, self.n_shards)].append(index)
        live = [
            (shard, indices) for shard, indices in enumerate(buckets) if indices
        ]
        shares = split_workers(total, len(live))
        # Give every shard a real worker process only when there is genuine
        # parallelism to buy (several cores, several shards); a single-core
        # box keeps the classic inline path and pays zero fork overhead.
        force_pool = total > 1 and len(live) > 1
        streams = [
            self._shard_stream(
                shard, indices, jobs, min(share, len(indices)), force_pool
            )
            for (shard, indices), share in zip(live, shares)
        ]
        # Canonical merge: one arrival per live shard per round, in shard
        # order — a deterministic interleave of deterministic streams, so
        # the merged order depends only on (jobs, shard count, workers).
        while streams:
            still_live = []
            for stream in streams:
                item = next(stream, None)
                if item is not None:
                    yield item
                    still_live.append(stream)
            streams = still_live

    # ------------------------------------------------------------------
    def _shard_stream(
        self,
        shard: int,
        indices: list[int],
        jobs: list[tuple],
        workers: int,
        force_pool: bool,
    ) -> Iterator[tuple[int, TenantResult | TenantFailure]]:
        """One shard's arrival stream: ``(fleet index, outcome)`` pairs.

        Work is submitted to the shard's pool *here*, eagerly, so building
        every shard's stream starts every shard's pool before the merge
        blocks on any of them.
        """
        group = (
            f"{POOL_GROUP_PREFIX}{shard}" if self.n_shards > 1 else DEFAULT_GROUP
        )
        shard_jobs = [jobs[index] for index in indices]
        try:
            if use_grouped_path(self.batching, workers, len(shard_jobs)):
                # Tenants co-locate round-robin inside the shard: group g
                # gets the shard's jobs g, g+W, g+2W, ... and runs them as
                # threads over one shared eval broker.
                slices = [indices[g::workers] for g in range(workers)]
                slices = [chunk for chunk in slices if chunk]
                arrivals = imap(
                    _tenant_group_job,
                    [[jobs[i] for i in chunk] for chunk in slices],
                    max_workers=len(slices),
                    group=group,
                    force_pool=force_pool,
                )
                plan: list = slices
                grouped = True
            else:
                arrivals = imap(
                    _tenant_job,
                    shard_jobs,
                    max_workers=workers,
                    group=group,
                    force_pool=force_pool,
                )
                plan = indices
                grouped = False
        except BrokenProcessPool:
            # The shard's pool was already poisoned at submission time;
            # the registry retired it — quarantine the whole shard.
            return self._quarantined(indices, jobs, set())
        return self._drain_shard(indices, jobs, plan, arrivals, grouped)

    def _drain_shard(
        self,
        indices: list[int],
        jobs: list[tuple],
        plan: list,
        arrivals,
        grouped: bool,
    ) -> Iterator[tuple[int, TenantResult | TenantFailure]]:
        yielded: set[int] = set()
        try:
            if grouped:
                for chunk, outcomes in zip(plan, arrivals):
                    for index, outcome in zip(chunk, outcomes):
                        yielded.add(index)
                        yield index, outcome
            else:
                for index, outcome in zip(plan, arrivals):
                    yielded.add(index)
                    yield index, outcome
        except BrokenProcessPool:
            # One shard's worker died: its pool group is already retired
            # (imap's handler); only *this* shard's unfinished tenants are
            # quarantined — sibling shards keep draining.
            yield from self._quarantined(indices, jobs, yielded)

    @staticmethod
    def _quarantined(
        indices: list[int], jobs: list[tuple], yielded: set[int]
    ) -> Iterator[tuple[int, TenantFailure]]:
        for index in indices:
            if index not in yielded:
                yield index, _broken_pool_failure(jobs[index][0])
