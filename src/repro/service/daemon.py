"""The long-lived tuning service: a persistent front end over the fleet.

:class:`TuningService` is what the batch :class:`~repro.service.scheduler.
FleetScheduler` becomes when the process never exits: tenants arrive one
at a time through :meth:`submit`, pass the deterministic
:class:`~repro.service.admission.AdmissionController` (per-principal rate
limits, bounded global queue with explicit backpressure), wait in
per-principal priority queues, and execute in waves over the same warm
pool — every tenant still runs through
:func:`~repro.service.scheduler.run_tenant`; the daemon owns **no**
tuning logic of its own.

Robustness features, all wall-clock-free:

- **Deadlines.**  ``submit(..., deadline=...)`` caps the tenant's
  simulated-time retry budget (:meth:`RetryPolicy.with_deadline`), so a
  latency-sensitive tenant exhausts early instead of burning the full
  backoff schedule.
- **Circuit breakers.**  After ``breaker.threshold`` consecutive
  quarantines on one fault site, later tenants run with that site
  fail-fast (degraded mode) instead of each re-proving the site hostile.
- **Crash safety.**  With a ``checkpoint`` path the service persists
  every arrival through the fleet's fingerprinted checkpoint machinery;
  a ``kill -9`` + restart + identical resubmission stream resumes
  without re-running completed tenants, byte-identical to the
  uninterrupted service.

Determinism contract: :meth:`drain` stops admission, finishes the queue
and returns a :class:`~repro.service.scheduler.FleetResult` over the
admitted tenants in canonical ``(seed, tenant_id)`` order that is
byte-identical (sessions, transcripts, merged journal) to running the
same tenants through the batch ``FleetScheduler`` — at any worker count,
any submission interleaving, under any fault plan.  Pre-drain execution
may speculate about breaker modes (waves run in parallel); the drain
walk re-folds every outcome in canonical order and deterministically
re-runs any tenant whose speculative mode disagrees, which is what makes
the final result independent of how the queue happened to be paced.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from time import perf_counter

from repro.experiments.parallel import effective_workers
from repro.faults.breaker import BreakerPolicy, BreakerState
from repro.faults.plan import FaultPlan
from repro.faults.retry import RetryPolicy
from repro.rules.store import JournalCorruptError, RuleJournal
from repro.service.admission import (
    AdmissionController,
    AdmissionDecision,
    AdmissionPolicy,
)
from repro.service.scheduler import (
    ArtifactCatalog,
    CheckpointStore,
    FleetResult,
    _outcome_from_json,
    _outcome_to_json,
    _resolve_payload,
    execute_jobs,
    fleet_stamp,
    run_tenant,
    spec_digest,
)
from repro.service.tenant import TenantFailure, TenantResult, TenantSpec


@dataclass
class _Submission:
    """One accepted submission waiting in the queue."""

    spec: TenantSpec
    seq: int
    priority: int
    retry: RetryPolicy
    restored: tuple[TenantResult | TenantFailure, frozenset] | None = None


class TuningService:
    """A persistent, crash-safe, overload-aware tuning daemon.

    ``admission`` guards the front door (``None`` applies the default
    :class:`AdmissionPolicy`); ``breaker`` arms per-site circuit breakers
    (``None`` disables them); ``pump_interval`` auto-runs a wave whenever
    that many submissions are queued (``None`` defers all execution to
    :meth:`pump`/:meth:`drain`).  Higher ``priority`` submissions run
    earlier within a wave; ties break by submission order.
    """

    def __init__(
        self,
        seed: int = 0,
        max_workers: int | None = None,
        use_cache: bool = True,
        faults: FaultPlan | None = None,
        retry: RetryPolicy | None = None,
        checkpoint: str | Path | None = None,
        batching: bool = True,
        admission: AdmissionPolicy | None = None,
        breaker: BreakerPolicy | None = BreakerPolicy(),
        pump_interval: int | None = 4,
    ):
        if pump_interval is not None and pump_interval < 1:
            raise ValueError(f"pump_interval={pump_interval} must be >= 1")
        self.seed = seed
        self.max_workers = max_workers
        self.use_cache = use_cache
        self.faults = faults
        self.retry = retry if retry is not None else RetryPolicy()
        self.batching = batching
        self.breaker = breaker
        self.pump_interval = pump_interval
        self.admission = AdmissionController(admission)
        self._catalog = ArtifactCatalog(seed)
        self._queue: list[_Submission] = []
        self._specs: dict[str, TenantSpec] = {}
        self._retries: dict[str, RetryPolicy] = {}
        #: tenant_id -> (outcome, mode the outcome actually ran under)
        self._outcomes: dict[str, tuple[TenantResult | TenantFailure, frozenset]] = {}
        self._online = BreakerState(breaker) if breaker is not None else None
        self._breaker_state: BreakerState | None = None
        self._elapsed = 0.0
        self._drained: FleetResult | None = None
        self._abandoned = 0
        self._store = (
            CheckpointStore(
                checkpoint,
                fleet_stamp(None, seed, faults),
                self.retry,
                faults,
            )
            if checkpoint is not None
            else None
        )
        self._restored_raw = self._store.load() if self._store is not None else {}

    # -- the front door -------------------------------------------------
    def submit(
        self,
        spec: TenantSpec,
        priority: int = 0,
        deadline: float | None = None,
        principal: str | None = None,
    ) -> AdmissionDecision:
        """Offer one tenant to the service; returns the admission verdict.

        ``deadline`` caps the tenant's simulated-time retry budget;
        ``principal`` is the rate-limiting identity (defaults to the
        tenant id's leading ``"acct/"`` segment, or the id itself).
        """
        if spec.tenant_id in self._specs:
            raise ValueError(
                f"duplicate tenant id {spec.tenant_id!r}: already admitted"
            )
        decision = self.admission.decide(spec.tenant_id, principal)
        if not decision.accepted:
            return decision
        self._specs[spec.tenant_id] = spec
        retry = self.retry.with_deadline(deadline)
        self._retries[spec.tenant_id] = retry
        self._queue.append(
            _Submission(
                spec=spec,
                seq=decision.seq,
                priority=priority,
                retry=retry,
                restored=self._adopt_restored(spec),
            )
        )
        if (
            self.pump_interval is not None
            and len(self._queue) >= self.pump_interval
        ):
            self.pump()
        return decision

    def _adopt_restored(
        self, spec: TenantSpec
    ) -> tuple[TenantResult | TenantFailure, frozenset] | None:
        """The checkpointed outcome for ``spec``, when one exists.

        The restored submission still flows through admission and the
        queue exactly like a fresh one — only its *execution* is skipped —
        so every admission/backpressure decision matches the uninterrupted
        run.  A digest mismatch means the checkpoint belongs to a
        different submission stream and is refused loudly.
        """
        raw = self._restored_raw.get(spec.tenant_id)
        if raw is None:
            return None
        expected = spec_digest(spec)
        recorded = raw.get("spec_digest")
        if recorded != expected:
            raise JournalCorruptError(
                f"service checkpoint entry for tenant {spec.tenant_id!r} "
                f"was written by a different spec (digest {recorded!r}, "
                f"this submission expects {expected!r}); the checkpoint "
                "belongs to a different fleet"
            )
        outcome = _outcome_from_json(raw, spec)
        if self._store is not None:
            self._store.restore_fragment(spec.tenant_id, raw)
        return outcome, frozenset(raw.get("degraded_sites", ()))

    # -- execution ------------------------------------------------------
    def pump(self) -> int:
        """Run every queued submission as one wave over the warm pool.

        Returns the number of submissions taken off the queue.  Wave
        execution is speculative with respect to breaker modes (the
        canonical fold happens at :meth:`drain`); outcomes and
        checkpoints are still recorded per arrival.
        """
        if self._drained is not None:
            raise RuntimeError("service already drained")
        if not self._queue:
            return 0
        wave = sorted(self._queue, key=lambda s: (-s.priority, s.seq))
        self._queue = []
        self.admission.release(len(wave))
        start = perf_counter()
        jobs: list[tuple] = []
        modes: list[tuple[_Submission, frozenset]] = []
        for sub in wave:
            if sub.restored is not None:
                outcome, mode = sub.restored
                self._outcomes[sub.spec.tenant_id] = (outcome, mode)
                continue
            mode = (
                self._online.open_sites()
                if self._online is not None
                else frozenset()
            )
            jobs.append(
                (
                    sub.spec,
                    self._catalog.payload_for(sub.spec),
                    self.use_cache,
                    self.faults,
                    sub.retry.with_fail_fast(mode),
                )
            )
            modes.append((sub, mode))
        for index, outcome in execute_jobs(
            jobs, max_workers=self.max_workers, batching=self.batching
        ):
            sub, mode = modes[index]
            self._arrive(sub.spec, outcome, mode)
        self._elapsed += perf_counter() - start
        return len(wave)

    def _arrive(
        self,
        spec: TenantSpec,
        outcome: TenantResult | TenantFailure,
        mode: frozenset,
    ) -> None:
        self._outcomes[spec.tenant_id] = (outcome, mode)
        if self._online is not None:
            self._online.observe(outcome)
        if self._store is not None:
            self._store.record(
                spec.tenant_id,
                _outcome_to_json(
                    outcome,
                    spec_fingerprint=spec_digest(spec),
                    degraded_sites=mode,
                ),
            )

    def _rerun_tenant(
        self, spec: TenantSpec, mode: frozenset
    ) -> TenantResult | TenantFailure:
        bundle = _resolve_payload(self._catalog.payload_for(spec))
        return run_tenant(
            spec,
            bundle.cluster,
            bundle.extraction,
            self.use_cache,
            self.faults,
            self._retries[spec.tenant_id].with_fail_fast(mode),
        )

    # -- lifecycle ------------------------------------------------------
    def drain(self) -> FleetResult:
        """Stop admission, finish the queue, return the canonical fleet.

        The result lists admitted tenants in canonical ``(seed,
        tenant_id)`` order and is byte-identical to the batch
        ``FleetScheduler`` over the same specs (same seed, plan, retry
        and breaker), whatever the submission interleaving, pump pacing
        or worker count was.  Idempotent: later calls return the same
        result.
        """
        if self._drained is not None:
            return self._drained
        if not self.admission.closed:
            self.admission.close("draining: service no longer accepts work")
        self.pump()
        specs = sorted(
            self._specs.values(), key=lambda s: (s.seed, s.tenant_id)
        )
        start = perf_counter()
        if self.breaker is not None:
            # The canonical breaker fold: same semantics as the batch
            # scheduler's walk, over the canonical tenant order.
            state = BreakerState(self.breaker)
            for spec in specs:
                outcome, ran_mode = self._outcomes[spec.tenant_id]
                mode = state.open_sites()
                if mode != ran_mode:
                    outcome = self._rerun_tenant(spec, mode)
                    self._arrive(spec, outcome, mode)
                state.observe(outcome)
            self._breaker_state = state
        self._elapsed += perf_counter() - start
        outcomes = [self._outcomes[spec.tenant_id][0] for spec in specs]
        journal = RuleJournal.merged(
            [o.journal for o in outcomes if isinstance(o, TenantResult)]
        )
        self._drained = FleetResult(
            outcomes=outcomes,
            journal=journal,
            elapsed=self._elapsed,
            workers=effective_workers(self.max_workers, max(len(specs), 1)),
            checkpoint_write_failures=(
                self._store.write_failures if self._store is not None else 0
            ),
        )
        return self._drained

    def shutdown(self) -> dict[str, int]:
        """Stop admission and abandon the queue (no further execution).

        Returns a summary of what the service got done.  Unlike
        :meth:`drain`, queued-but-unexecuted submissions are dropped —
        with a checkpoint armed their completed peers survive for the
        next incarnation.
        """
        if not self.admission.closed:
            self.admission.close("shutdown: service stopped")
        self._abandoned += len(self._queue)
        self._queue = []
        completed = sum(
            1
            for outcome, _ in self._outcomes.values()
            if isinstance(outcome, TenantResult)
        )
        return {
            "completed": completed,
            "quarantined": len(self._outcomes) - completed,
            "abandoned": self._abandoned,
            "rejected": len(self.admission.shed()),
        }

    # -- introspection --------------------------------------------------
    def status(self, tenant_id: str) -> str:
        """One of ``completed``/``quarantined``/``queued``/``rejected``/
        ``unknown`` (pre-drain outcomes are provisional under breakers)."""
        held = self._outcomes.get(tenant_id)
        if held is not None:
            outcome, _ = held
            return (
                "completed" if isinstance(outcome, TenantResult) else "quarantined"
            )
        if any(sub.spec.tenant_id == tenant_id for sub in self._queue):
            return "queued"
        decision = self.admission.last_decision(tenant_id)
        if decision is not None and not decision.accepted:
            return "rejected"
        return "unknown"

    def results(self, tenant_id: str) -> TenantResult:
        """The tenant's completed result (KeyError otherwise)."""
        held = self._outcomes.get(tenant_id)
        if held is None or not isinstance(held[0], TenantResult):
            raise KeyError(tenant_id)
        return held[0]

    def failure(self, tenant_id: str) -> TenantFailure:
        """The tenant's quarantine report (KeyError otherwise)."""
        held = self._outcomes.get(tenant_id)
        if held is None or not isinstance(held[0], TenantFailure):
            raise KeyError(tenant_id)
        return held[0]

    def breaker_report(self) -> dict[str, dict[str, int | str]]:
        """Canonical per-site breaker states (empty before :meth:`drain`)."""
        if self._breaker_state is None:
            return {}
        return self._breaker_state.report()
