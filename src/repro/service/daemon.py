"""The long-lived tuning service: a persistent front end over the fleet.

:class:`TuningService` is what the batch :class:`~repro.service.scheduler.
FleetScheduler` becomes when the process never exits: tenants arrive one
at a time through :meth:`submit`, pass the deterministic
:class:`~repro.service.admission.AdmissionController` (per-principal rate
limits, bounded global queue with explicit backpressure), wait in
per-principal priority queues, and execute in waves over the same warm
pool — every tenant still runs through
:func:`~repro.service.scheduler.run_tenant`; the daemon owns **no**
tuning logic of its own.

Robustness features, all wall-clock-free:

- **Deadlines.**  ``submit(..., deadline=...)`` caps the tenant's
  simulated-time retry budget (:meth:`RetryPolicy.with_deadline`), so a
  latency-sensitive tenant exhausts early instead of burning the full
  backoff schedule.
- **Circuit breakers.**  After ``breaker.threshold`` consecutive
  quarantines on one fault site, later tenants run with that site
  fail-fast (degraded mode) instead of each re-proving the site hostile.
- **Crash safety.**  With a ``checkpoint`` path the service persists
  every arrival through the fleet's fingerprinted checkpoint machinery;
  a ``kill -9`` + restart + identical resubmission stream resumes
  without re-running completed tenants, byte-identical to the
  uninterrupted service.

Determinism contract: :meth:`drain` stops admission, finishes the queue
and returns a :class:`~repro.service.scheduler.FleetResult` over the
admitted tenants in canonical ``(seed, tenant_id)`` order that is
byte-identical (sessions, transcripts, merged journal) to running the
same tenants through the batch ``FleetScheduler`` — at any worker count,
any submission interleaving, under any fault plan.  Pre-drain execution
may speculate about breaker modes (waves run in parallel); the drain
walk re-folds every outcome in canonical order and deterministically
re-runs any tenant whose speculative mode disagrees, which is what makes
the final result independent of how the queue happened to be paced.

The streaming front end rides the same machinery: wave execution is a
generator over :func:`~repro.service.scheduler.execute_jobs` arrivals
(shard-by-shard through :mod:`repro.experiments.parallel`'s ``imap``
streams), so outcomes, checkpoints and :meth:`status`/:meth:`results`
update per completed tenant, not only at pump boundaries — and
:meth:`iter_results` yields finished tenants in the canonical drain
order as soon as their canonical prefix is complete, folding breaker
decisions incrementally with exactly drain's semantics.  ``shards``
partitions wave execution across per-shard pools (see
:mod:`repro.service.shards`) without changing a byte of any result.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from time import perf_counter

from repro.experiments.parallel import effective_workers
from repro.faults.breaker import BreakerPolicy, BreakerState
from repro.faults.plan import FaultPlan
from repro.faults.retry import RetryPolicy
from repro.rules.store import JournalCorruptError, RuleJournal
from repro.service.admission import (
    AdmissionController,
    AdmissionDecision,
    AdmissionPolicy,
)
from repro.service.scheduler import (
    ArtifactCatalog,
    CheckpointStore,
    FleetResult,
    _outcome_from_json,
    _outcome_to_json,
    _resolve_payload,
    execute_jobs,
    fleet_stamp,
    run_tenant,
    spec_digest,
)
from repro.service.tenant import TenantFailure, TenantResult, TenantSpec


@dataclass
class _Submission:
    """One accepted submission waiting in the queue."""

    spec: TenantSpec
    seq: int
    priority: int
    retry: RetryPolicy
    restored: tuple[TenantResult | TenantFailure, frozenset] | None = None


class TuningService:
    """A persistent, crash-safe, overload-aware tuning daemon.

    ``admission`` guards the front door (``None`` applies the default
    :class:`AdmissionPolicy`); ``breaker`` arms per-site circuit breakers
    (``None`` disables them); ``pump_interval`` auto-runs a wave whenever
    that many submissions are queued (``None`` defers all execution to
    :meth:`pump`/:meth:`drain`).  Higher ``priority`` submissions run
    earlier within a wave; ties break by submission order.  ``shards``
    spreads wave execution across that many per-shard worker pools (see
    :mod:`repro.service.shards`) without changing any result byte.
    """

    def __init__(
        self,
        seed: int = 0,
        max_workers: int | None = None,
        use_cache: bool = True,
        faults: FaultPlan | None = None,
        retry: RetryPolicy | None = None,
        checkpoint: str | Path | None = None,
        batching: bool = True,
        admission: AdmissionPolicy | None = None,
        breaker: BreakerPolicy | None = BreakerPolicy(),
        pump_interval: int | None = 4,
        shards: int = 1,
    ):
        if pump_interval is not None and pump_interval < 1:
            raise ValueError(f"pump_interval={pump_interval} must be >= 1")
        if shards < 1:
            raise ValueError(f"shards={shards} must be a positive shard count")
        self.seed = seed
        self.max_workers = max_workers
        self.use_cache = use_cache
        self.faults = faults
        self.retry = retry if retry is not None else RetryPolicy()
        self.batching = batching
        self.breaker = breaker
        self.pump_interval = pump_interval
        self.shards = shards
        self.admission = AdmissionController(admission)
        self._catalog = ArtifactCatalog(seed)
        self._queue: list[_Submission] = []
        self._specs: dict[str, TenantSpec] = {}
        self._retries: dict[str, RetryPolicy] = {}
        #: tenant_id -> (outcome, mode the outcome actually ran under)
        self._outcomes: dict[str, tuple[TenantResult | TenantFailure, frozenset]] = {}
        self._online = BreakerState(breaker) if breaker is not None else None
        self._breaker_state: BreakerState | None = None
        self._elapsed = 0.0
        self._drained: FleetResult | None = None
        self._abandoned = 0
        #: The in-flight wave generator a streaming consumer left unfinished.
        self._live_wave = None
        #: Tenant ids taken into the live wave but not yet arrived.
        self._inflight: set[str] = set()
        # -- streaming (iter_results) state --------------------------------
        self._streamed: set[str] = set()
        self._stream_state = (
            BreakerState(breaker) if breaker is not None else None
        )
        self._stream_last: tuple[int, str] | None = None
        self._arrived_sessions = 0
        #: Completed sessions that had arrived when the first canonical
        #: result streamed out — the wall-clock-free time-to-first-result
        #: proxy the throughput bench records.
        self.first_result_sessions: int | None = None
        self._store = (
            CheckpointStore(
                checkpoint,
                fleet_stamp(None, seed, faults),
                self.retry,
                faults,
            )
            if checkpoint is not None
            else None
        )
        self._restored_raw = self._store.load() if self._store is not None else {}

    # -- the front door -------------------------------------------------
    def submit(
        self,
        spec: TenantSpec,
        priority: int = 0,
        deadline: float | None = None,
        principal: str | None = None,
    ) -> AdmissionDecision:
        """Offer one tenant to the service; returns the admission verdict.

        ``deadline`` caps the tenant's simulated-time retry budget;
        ``principal`` is the rate-limiting identity (defaults to the
        tenant id's leading ``"acct/"`` segment, or the id itself).
        """
        if spec.tenant_id in self._specs:
            raise ValueError(
                f"duplicate tenant id {spec.tenant_id!r}: already admitted"
            )
        decision = self.admission.decide(spec.tenant_id, principal)
        if not decision.accepted:
            return decision
        self._specs[spec.tenant_id] = spec
        retry = self.retry.with_deadline(deadline)
        self._retries[spec.tenant_id] = retry
        self._queue.append(
            _Submission(
                spec=spec,
                seq=decision.seq,
                priority=priority,
                retry=retry,
                restored=self._adopt_restored(spec),
            )
        )
        if (
            self.pump_interval is not None
            and len(self._queue) >= self.pump_interval
        ):
            self.pump()
        return decision

    def _adopt_restored(
        self, spec: TenantSpec
    ) -> tuple[TenantResult | TenantFailure, frozenset] | None:
        """The checkpointed outcome for ``spec``, when one exists.

        The restored submission still flows through admission and the
        queue exactly like a fresh one — only its *execution* is skipped —
        so every admission/backpressure decision matches the uninterrupted
        run.  A digest mismatch means the checkpoint belongs to a
        different submission stream and is refused loudly.
        """
        raw = self._restored_raw.get(spec.tenant_id)
        if raw is None:
            return None
        expected = spec_digest(spec)
        recorded = raw.get("spec_digest")
        if recorded != expected:
            raise JournalCorruptError(
                f"service checkpoint entry for tenant {spec.tenant_id!r} "
                f"was written by a different spec (digest {recorded!r}, "
                f"this submission expects {expected!r}); the checkpoint "
                "belongs to a different fleet"
            )
        outcome = _outcome_from_json(raw, spec)
        if self._store is not None:
            self._store.restore_fragment(spec.tenant_id, raw)
        return outcome, frozenset(raw.get("degraded_sites", ()))

    # -- execution ------------------------------------------------------
    def pump(self) -> int:
        """Run every queued submission as one wave over the warm pool(s).

        Returns the number of submissions taken off the queue.  Wave
        execution is speculative with respect to breaker modes (the
        canonical fold happens at :meth:`drain`); outcomes and
        checkpoints are still recorded per arrival.  A wave a streaming
        consumer (:meth:`iter_results`) left in flight is finished first.
        """
        if self._drained is not None:
            raise RuntimeError("service already drained")
        taken = len(self._queue)
        while self._advance():
            pass
        return taken

    def _advance(self) -> bool:
        """Advance execution by one step: one arrival, or one wave closed.

        Starts a wave from the queue when none is in flight.  Returns
        False only when there is nothing left to execute — no live wave
        and an empty queue.  The single-step granularity is what lets
        :meth:`iter_results` interleave canonical yields with execution
        instead of waiting out whole pump waves.
        """
        if self._live_wave is None:
            if not self._queue:
                return False
            wave = sorted(self._queue, key=lambda s: (-s.priority, s.seq))
            self._queue = []
            self.admission.release(len(wave))
            self._live_wave = self._wave_stream(wave)
        start = perf_counter()
        try:
            next(self._live_wave)
        except StopIteration:
            self._live_wave = None
        self._elapsed += perf_counter() - start
        return True

    def _wave_stream(self, wave: list[_Submission]):
        """One wave as a generator: yields a tenant id per arrival.

        Restored submissions are adopted up front (their execution is the
        checkpoint read); the rest run through
        :func:`~repro.service.scheduler.execute_jobs` — outcomes, online
        breaker observations and checkpoints land per completed tenant,
        while the pool is still working on the others.
        """
        jobs: list[tuple] = []
        modes: list[tuple[_Submission, frozenset]] = []
        for sub in wave:
            if sub.restored is not None:
                outcome, mode = sub.restored
                self._outcomes[sub.spec.tenant_id] = (outcome, mode)
                continue
            mode = (
                self._online.open_sites()
                if self._online is not None
                else frozenset()
            )
            jobs.append(
                (
                    sub.spec,
                    self._catalog.payload_for(sub.spec),
                    self.use_cache,
                    self.faults,
                    sub.retry.with_fail_fast(mode),
                )
            )
            modes.append((sub, mode))
        self._inflight = {sub.spec.tenant_id for sub, _ in modes}
        try:
            for index, outcome in execute_jobs(
                jobs,
                max_workers=self.max_workers,
                batching=self.batching,
                shards=self.shards,
            ):
                sub, mode = modes[index]
                self._inflight.discard(sub.spec.tenant_id)
                self._arrive(sub.spec, outcome, mode)
                yield sub.spec.tenant_id
        finally:
            self._inflight = set()

    def _arrive(
        self,
        spec: TenantSpec,
        outcome: TenantResult | TenantFailure,
        mode: frozenset,
    ) -> None:
        if spec.tenant_id not in self._outcomes and isinstance(
            outcome, TenantResult
        ):
            self._arrived_sessions += len(outcome.sessions)
        self._outcomes[spec.tenant_id] = (outcome, mode)
        if self._online is not None:
            self._online.observe(outcome)
        if self._store is not None:
            self._store.record(
                spec.tenant_id,
                _outcome_to_json(
                    outcome,
                    spec_fingerprint=spec_digest(spec),
                    degraded_sites=mode,
                ),
            )

    def _rerun_tenant(
        self, spec: TenantSpec, mode: frozenset
    ) -> TenantResult | TenantFailure:
        bundle = _resolve_payload(self._catalog.payload_for(spec))
        return run_tenant(
            spec,
            bundle.cluster,
            bundle.extraction,
            self.use_cache,
            self.faults,
            self._retries[spec.tenant_id].with_fail_fast(mode),
        )

    # -- lifecycle ------------------------------------------------------
    def drain(self) -> FleetResult:
        """Stop admission, finish the queue, return the canonical fleet.

        The result lists admitted tenants in canonical ``(seed,
        tenant_id)`` order and is byte-identical to the batch
        ``FleetScheduler`` over the same specs (same seed, plan, retry
        and breaker), whatever the submission interleaving, pump pacing
        or worker count was.  Idempotent: later calls return the same
        result.
        """
        if self._drained is not None:
            return self._drained
        if not self.admission.closed:
            self.admission.close("draining: service no longer accepts work")
        self.pump()
        specs = sorted(
            self._specs.values(), key=lambda s: (s.seed, s.tenant_id)
        )
        start = perf_counter()
        if self.breaker is not None:
            # The canonical breaker fold: same semantics as the batch
            # scheduler's walk, over the canonical tenant order.
            state = BreakerState(self.breaker)
            for spec in specs:
                outcome, ran_mode = self._outcomes[spec.tenant_id]
                mode = state.open_sites()
                if mode != ran_mode:
                    outcome = self._rerun_tenant(spec, mode)
                    self._arrive(spec, outcome, mode)
                state.observe(outcome)
            self._breaker_state = state
        self._elapsed += perf_counter() - start
        outcomes = [self._outcomes[spec.tenant_id][0] for spec in specs]
        journal = RuleJournal.merged(
            [o.journal for o in outcomes if isinstance(o, TenantResult)]
        )
        self._drained = FleetResult(
            outcomes=outcomes,
            journal=journal,
            elapsed=self._elapsed,
            workers=effective_workers(self.max_workers, max(len(specs), 1)),
            checkpoint_write_failures=(
                self._store.write_failures if self._store is not None else 0
            ),
        )
        return self._drained

    # -- streaming ------------------------------------------------------
    def iter_results(self):
        """Yield finished tenants in canonical order, as soon as possible.

        The yield order is exactly :meth:`drain`'s canonical ``(seed,
        tenant_id)`` order, and each outcome is byte-identical to the one
        drain would return — the breaker fold (including deterministic
        re-runs of tenants whose speculative mode disagrees) happens
        incrementally, per canonical position, instead of all at once.
        A tenant streams out the moment its canonical prefix is complete;
        execution advances one arrival at a time underneath, so early
        tenants flow back while later shards are still working.

        The generator returns (without closing the service) when every
        yieldable outcome needs a submission that has not happened yet;
        iterating again after more submissions — or after :meth:`drain`
        — picks up where it left off.  A late submission that sorts
        canonically *before* an already-streamed tenant cannot be folded
        consistently and raises ``RuntimeError``.
        """
        while True:
            spec = self._next_canonical()
            if spec is None:
                if self._drained is None and self._advance():
                    continue
                return
            key = (spec.seed, spec.tenant_id)
            if self._stream_last is not None and key < self._stream_last:
                raise RuntimeError(
                    f"tenant {spec.tenant_id!r} (seed {spec.seed}) was "
                    "submitted after later canonical positions already "
                    "streamed out; the canonical prefix cannot be reopened "
                    "— drain() or a fresh service handles such streams"
                )
            if spec.tenant_id not in self._outcomes:
                if self._drained is None and self._advance():
                    continue
                return
            start = perf_counter()
            outcome = self._stream_fold(spec)
            self._streamed.add(spec.tenant_id)
            self._stream_last = key
            self._elapsed += perf_counter() - start
            if self.first_result_sessions is None:
                self.first_result_sessions = self._arrived_sessions
            yield outcome

    def _next_canonical(self) -> TenantSpec | None:
        """The lowest canonical (seed, tenant_id) spec not yet streamed."""
        remaining = [
            spec
            for spec in self._specs.values()
            if spec.tenant_id not in self._streamed
        ]
        if not remaining:
            return None
        return min(remaining, key=lambda s: (s.seed, s.tenant_id))

    def _stream_fold(self, spec: TenantSpec) -> TenantResult | TenantFailure:
        """Fold one canonical position through the streaming breaker state.

        The same walk :meth:`drain` performs, one tenant at a time: if
        the outcome's recorded mode disagrees with the canonical mode at
        this position, the tenant re-runs (inline, deterministically)
        under the canonical mode — so the streamed outcome is the drained
        outcome, whatever the waves speculated.
        """
        outcome, ran_mode = self._outcomes[spec.tenant_id]
        if self._stream_state is None:
            return outcome
        mode = self._stream_state.open_sites()
        if mode != ran_mode:
            outcome = self._rerun_tenant(spec, mode)
            self._arrive(spec, outcome, mode)
        self._stream_state.observe(outcome)
        return outcome

    def shutdown(self) -> dict[str, int]:
        """Stop admission and abandon the queue (no further execution).

        Returns a summary of what the service got done.  Unlike
        :meth:`drain`, queued-but-unexecuted submissions are dropped —
        with a checkpoint armed their completed peers survive for the
        next incarnation.  A wave a streaming consumer left in flight is
        abandoned with the queue.
        """
        if not self.admission.closed:
            self.admission.close("shutdown: service stopped")
        self._abandoned += len(self._queue) + len(self._inflight)
        if self._live_wave is not None:
            self._live_wave.close()
            self._live_wave = None
        self._inflight = set()
        self._queue = []
        completed = sum(
            1
            for outcome, _ in self._outcomes.values()
            if isinstance(outcome, TenantResult)
        )
        return {
            "completed": completed,
            "quarantined": len(self._outcomes) - completed,
            "abandoned": self._abandoned,
            "rejected": len(self.admission.shed()),
        }

    # -- introspection --------------------------------------------------
    def status(self, tenant_id: str) -> str:
        """One of ``completed``/``quarantined``/``queued``/``rejected``/
        ``unknown`` (pre-drain outcomes are provisional under breakers)."""
        held = self._outcomes.get(tenant_id)
        if held is not None:
            outcome, _ = held
            return (
                "completed" if isinstance(outcome, TenantResult) else "quarantined"
            )
        if tenant_id in self._inflight or any(
            sub.spec.tenant_id == tenant_id for sub in self._queue
        ):
            return "queued"
        decision = self.admission.last_decision(tenant_id)
        if decision is not None and not decision.accepted:
            return "rejected"
        return "unknown"

    def results(self, tenant_id: str) -> TenantResult:
        """The tenant's completed result (KeyError otherwise)."""
        held = self._outcomes.get(tenant_id)
        if held is None or not isinstance(held[0], TenantResult):
            raise KeyError(tenant_id)
        return held[0]

    def failure(self, tenant_id: str) -> TenantFailure:
        """The tenant's quarantine report (KeyError otherwise)."""
        held = self._outcomes.get(tenant_id)
        if held is None or not isinstance(held[0], TenantFailure):
            raise KeyError(tenant_id)
        return held[0]

    def breaker_report(self) -> dict[str, dict[str, int | str]]:
        """Canonical per-site breaker states (empty before :meth:`drain`)."""
        if self._breaker_state is None:
            return {}
        return self._breaker_state.report()
