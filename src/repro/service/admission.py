"""Deterministic admission control for the long-lived tuning service.

The daemon's front door: every submission passes through an
:class:`AdmissionController`, which applies a per-principal sliding-window
rate limit and a bounded global queue with explicit backpressure.  The
controller is a pure state machine over the *submission sequence* — its
decisions are functions of submission order and the prior decisions, never
wall clock, worker count, or execution timing — so the same submission
stream sheds the same tenants on every run of the service.

A submission's *principal* is who it counts against for rate limiting:
explicitly provided, or derived from a hierarchical tenant id
(``"acct/job"`` -> ``"acct"``; a flat id is its own principal).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class Admission(Enum):
    """What the service decided about one submission."""

    #: Accepted; the queue was empty, so it heads the next wave.
    ADMITTED = "admitted"
    #: Accepted; parked behind pending work.
    QUEUED = "queued"
    #: Shed — over the rate limit, over the queue bound, or the service
    #: is no longer accepting work.
    REJECTED = "rejected"


@dataclass(frozen=True)
class AdmissionPolicy:
    """How much offered load the service absorbs before shedding.

    ``max_pending`` bounds the global queue (accepted-but-unexecuted
    submissions); ``per_tenant_limit`` bounds how many submissions one
    principal may have accepted within the last ``window`` global
    submissions (a sliding window in sequence numbers, not seconds —
    the deterministic analogue of a rate limit).
    """

    max_pending: int = 64
    per_tenant_limit: int = 8
    window: int = 32

    def __post_init__(self) -> None:
        if self.max_pending < 1:
            raise ValueError(f"max_pending={self.max_pending} must be >= 1")
        if self.per_tenant_limit < 1:
            raise ValueError(
                f"per_tenant_limit={self.per_tenant_limit} must be >= 1"
            )
        if self.window < 1:
            raise ValueError(f"window={self.window} must be >= 1")


@dataclass(frozen=True)
class AdmissionDecision:
    """One submission's verdict, in the order submissions arrived."""

    seq: int
    tenant_id: str
    principal: str
    admission: Admission
    reason: str = ""

    @property
    def accepted(self) -> bool:
        return self.admission is not Admission.REJECTED

    def render_row(self) -> str:
        verdict = self.admission.value
        note = f" ({self.reason})" if self.reason else ""
        return f"  #{self.seq:03d} {self.tenant_id:24s} {verdict}{note}"


class AdmissionController:
    """The pure admission state machine.

    :meth:`decide` is called once per submission, in submission order;
    :meth:`release` is called by the execution pump when it takes
    accepted submissions off the queue.  Nothing here reads a clock.
    """

    def __init__(self, policy: AdmissionPolicy | None = None):
        self.policy = policy if policy is not None else AdmissionPolicy()
        self.decisions: list[AdmissionDecision] = []
        self._seq = 0
        self._accepted: list[tuple[int, str]] = []  # (seq, principal)
        self._released = 0
        self._closed: str | None = None

    @staticmethod
    def principal_of(tenant_id: str, principal: str | None = None) -> str:
        if principal is not None:
            return principal
        return tenant_id.split("/", 1)[0]

    @property
    def pending(self) -> int:
        """Accepted submissions not yet released to execution."""
        return len(self._accepted) - self._released

    @property
    def closed(self) -> bool:
        return self._closed is not None

    def close(self, reason: str) -> None:
        """Stop admission; every later submission is shed with ``reason``."""
        self._closed = reason

    def release(self, count: int) -> None:
        """The pump took ``count`` accepted submissions off the queue."""
        self._released += count

    def decide(
        self, tenant_id: str, principal: str | None = None
    ) -> AdmissionDecision:
        seq = self._seq
        self._seq += 1
        who = self.principal_of(tenant_id, principal)

        def shed(reason: str) -> AdmissionDecision:
            return AdmissionDecision(
                seq, tenant_id, who, Admission.REJECTED, reason
            )

        if self._closed is not None:
            decision = shed(self._closed)
        else:
            recent = [
                s
                for s, p in self._accepted
                if p == who and s > seq - self.policy.window
            ]
            if len(recent) >= self.policy.per_tenant_limit:
                decision = shed(
                    f"rate limit: {len(recent)} accepted for {who!r} in the "
                    f"last {self.policy.window} submissions"
                )
            elif self.pending >= self.policy.max_pending:
                decision = shed(
                    f"backpressure: queue full at {self.pending} pending"
                )
            else:
                verdict = (
                    Admission.ADMITTED if self.pending == 0 else Admission.QUEUED
                )
                self._accepted.append((seq, who))
                decision = AdmissionDecision(seq, tenant_id, who, verdict)
        self.decisions.append(decision)
        return decision

    def last_decision(self, tenant_id: str) -> AdmissionDecision | None:
        for decision in reversed(self.decisions):
            if decision.tenant_id == tenant_id:
                return decision
        return None

    def shed(self) -> list[AdmissionDecision]:
        """Every rejected submission, in submission order."""
        return [d for d in self.decisions if not d.accepted]
