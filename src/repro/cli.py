"""Command-line interface.

Examples::

    stellar extract                    # offline RAG extraction report
    stellar tune IOR_16M               # one tuning run with transcript
    stellar tune IOR_16M --backend beegfs
    stellar experiment fig5            # reproduce a paper figure
    stellar experiment all --reps 4
    stellar experiment crossfs         # cross-backend rule transfer
    stellar experiment drift           # workload drift: static vs online
    stellar drift --schedule regime_flip --backend beegfs
    stellar fleet                      # multi-tenant fleet over both backends
    stellar fleet --backend lustre --workers 4
    stellar fleet --workers 4 --shards 2   # two worker groups, same bytes
    stellar chaos                      # fleet under injected faults
    stellar chaos --backend beegfs --rates 0,0.1
    stellar tune IOR_16M --policy react
    stellar policies                   # rank agent policies over the fleet
    stellar serve                      # long-lived service: submit -> drain
    stellar overload                   # service under rising offered load
    stellar list                       # workloads, experiments, backends
"""

from __future__ import annotations

import argparse
import sys

from repro.agents.policies import list_policies
from repro.backends import list_backends
from repro.cluster import make_cluster
from repro.core.engine import Stellar
from repro.workloads import get_workload, list_schedules, list_workloads
from repro.workloads.dynamic import DEFAULT_SEGMENTS

EXPERIMENTS = (
    "fig2",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "cost",
    "casestudy",
    "extraction",
    "userspace",
    "autotuner-cost",
    "crossfs",
    "drift",
    "fleet",
    "resilience",
    "policies",
    "overload",
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="stellar",
        description="STELLAR (SC'25) reproduction: autonomous PFS tuning.",
    )
    parser.add_argument("--seed", type=int, default=0)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list workloads, experiments and backends")

    extract = sub.add_parser("extract", help="run the offline RAG extraction")
    extract.add_argument("--model", default="gpt-4o")
    extract.add_argument("--backend", choices=list_backends(), default="lustre")

    tune = sub.add_parser("tune", help="run one tuning run for a workload")
    tune.add_argument("workload", choices=list_workloads())
    tune.add_argument("--model", default="claude-3.7-sonnet")
    tune.add_argument("--backend", choices=list_backends(), default="lustre")
    tune.add_argument("--max-attempts", type=int, default=5)
    tune.add_argument("--no-descriptions", action="store_true")
    tune.add_argument("--no-analysis", action="store_true")
    tune.add_argument("--transcript", action="store_true")
    tune.add_argument(
        "--policy",
        choices=list_policies(),
        default="reflection",
        help="agent turn-taking strategy (default: reflection)",
    )

    experiment = sub.add_parser("experiment", help="reproduce a paper figure")
    experiment.add_argument("name", choices=EXPERIMENTS + ("all",))
    experiment.add_argument("--reps", type=int, default=8)
    experiment.add_argument("--backend", choices=list_backends(), default="lustre")

    drift = sub.add_parser(
        "drift",
        help="dynamic workloads: static one-shot vs online re-tuning vs oracle",
    )
    drift.add_argument(
        "--schedule", choices=list_schedules() + ["all"], default="all"
    )
    drift.add_argument(
        "--backend", choices=list_backends() + ["all"], default="all"
    )
    drift.add_argument("--segments", type=int, default=DEFAULT_SEGMENTS)
    drift.add_argument("--reps", type=int, default=8)

    fleet = sub.add_parser(
        "fleet",
        help="multi-tenant fleet: mixed tenants over the scheduler pool",
    )
    fleet.add_argument(
        "--backend", choices=list_backends() + ["all"], default="all"
    )
    fleet.add_argument(
        "--workers",
        type=int,
        default=None,
        help="pool size (default: REPRO_MAX_WORKERS, then cpu count)",
    )
    fleet.add_argument(
        "--shards",
        type=int,
        default=1,
        help="worker groups to shard the tenant space across (default: 1)",
    )

    chaos = sub.add_parser(
        "chaos",
        help="fault-injection sweep: fleet completion and quality under faults",
    )
    chaos.add_argument(
        "--backend", choices=list_backends() + ["all"], default="all"
    )
    chaos.add_argument(
        "--rates",
        default="0,0.05,0.1,0.2",
        help="comma-separated fault rates in [0, 1] (0 is the oracle cell)",
    )
    chaos.add_argument(
        "--workers",
        type=int,
        default=None,
        help="pool size (default: REPRO_MAX_WORKERS, then cpu count)",
    )

    policies = sub.add_parser(
        "policies",
        help="rank agent policies over the mixed-tenant fleet matrix",
    )
    policies.add_argument(
        "--backend", choices=list_backends() + ["all"], default="all"
    )
    policies.add_argument(
        "--workers",
        type=int,
        default=None,
        help="pool size (default: REPRO_MAX_WORKERS, then cpu count)",
    )

    serve = sub.add_parser(
        "serve",
        help="long-lived tuning service: submit the fleet matrix, drain",
    )
    serve.add_argument(
        "--backend", choices=list_backends() + ["all"], default="all"
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=None,
        help="pool size (default: REPRO_MAX_WORKERS, then cpu count)",
    )
    serve.add_argument(
        "--shards",
        type=int,
        default=1,
        help="worker groups to shard the tenant space across (default: 1)",
    )
    serve.add_argument(
        "--in-order",
        action="store_true",
        help="submit in matrix order instead of the seeded shuffle",
    )

    overload = sub.add_parser(
        "overload",
        help="service overload sweep: admitted/shed/queue depth vs offered load",
    )
    overload.add_argument(
        "--backend", choices=list_backends() + ["all"], default="all"
    )
    overload.add_argument(
        "--loads",
        default="4,8,16",
        help="comma-separated submission burst sizes",
    )
    overload.add_argument(
        "--rate",
        type=float,
        default=0.0,
        help="uniform fault rate in [0, 1] composed with the overload",
    )
    overload.add_argument(
        "--workers",
        type=int,
        default=None,
        help="pool size (default: REPRO_MAX_WORKERS, then cpu count)",
    )
    return parser


def _run_experiment(name: str, cluster, reps: int, seed: int) -> str:
    from repro.experiments import (
        casestudy,
        cost,
        extraction_report,
        fig2,
        fig5,
        fig6,
        fig7,
        fig8,
        fig9,
    )

    if name == "fig2":
        return fig2.run(cluster, seed=seed).render()
    if name == "fig5":
        return fig5.run(cluster, reps=reps, seed=seed).render()
    if name == "fig6":
        return fig6.run(cluster, reps=reps, seed=seed).render()
    if name == "fig7":
        return fig7.run(cluster, reps=reps, seed=seed).render()
    if name == "fig8":
        return fig8.run(cluster, reps=reps, seed=seed).render()
    if name == "fig9":
        return fig9.run(cluster, reps=reps, seed=seed).render()
    if name == "cost":
        return cost.run(cluster, seed=seed).render()
    if name == "casestudy":
        return casestudy.run(cluster, seed=seed or 3).render()
    if name == "extraction":
        return extraction_report.run(cluster, seed=seed).render()
    if name == "userspace":
        from repro.experiments import userspace

        return userspace.run(cluster, reps=reps, seed=seed).render()
    if name == "autotuner-cost":
        from repro.experiments import autotuner_cost

        return autotuner_cost.run(cluster, seed=seed).render()
    if name == "crossfs":
        from repro.experiments import crossfs

        return crossfs.run(cluster, reps=reps, seed=seed).render()
    if name == "drift":
        from repro.experiments import drift

        # Like the other figure experiments, honor the testbed's backend;
        # the dedicated `stellar drift` subcommand covers the full grid.
        return drift.run(
            cluster, reps=reps, seed=seed, backends=(cluster.backend_name,)
        ).render()
    if name == "fleet":
        from repro.experiments import fleet

        return fleet.run(cluster, seed=seed).render()
    if name == "resilience":
        from repro.experiments import resilience

        return resilience.run(cluster, seed=seed).render()
    if name == "policies":
        from repro.experiments import policies

        return policies.run(cluster, seed=seed).render()
    if name == "overload":
        from repro.experiments import overload

        return overload.run(cluster, seed=seed).render()
    raise ValueError(f"unknown experiment {name!r}")


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    backend_arg = getattr(args, "backend", "lustre")

    if args.command == "drift":
        from repro.experiments import drift
        from repro.workloads import SCHEDULE_KINDS, build_schedule

        schedules = (
            SCHEDULE_KINDS if args.schedule == "all" else (args.schedule,)
        )
        # Schedule builders have per-kind segment minima (a regime flip
        # needs 3); surface those as a CLI error, not a traceback.  The
        # catch stays scoped to the builders so an internal ValueError
        # from the experiment itself still surfaces as a real traceback.
        for kind in schedules:
            try:
                build_schedule(kind, seed=args.seed, n_segments=args.segments)
            except ValueError as exc:
                print(f"error: --segments {args.segments}: {exc}", file=sys.stderr)
                return 2
        backends = drift.BACKENDS if backend_arg == "all" else (backend_arg,)
        result = drift.run(
            reps=args.reps,
            seed=args.seed,
            schedules=schedules,
            backends=backends,
            n_segments=args.segments,
        )
        print(result.render())
        return 0

    if args.command == "fleet":
        from repro.experiments import fleet

        if args.workers is not None and args.workers <= 0:
            # Mirror the drift subcommand's convention: a config typo is a
            # clean CLI error, not a traceback from deep in the pool sizing.
            print(
                f"error: --workers {args.workers}: must be a positive "
                "worker count",
                file=sys.stderr,
            )
            return 2
        if args.shards <= 0:
            print(
                f"error: --shards {args.shards}: must be a positive "
                "shard count",
                file=sys.stderr,
            )
            return 2
        backends = (
            fleet.BACKENDS if backend_arg == "all" else (backend_arg,)
        )
        report = fleet.run(
            seed=args.seed,
            backends=backends,
            max_workers=args.workers,
            shards=args.shards,
        )
        print(report.render())
        return 0

    if args.command == "chaos":
        from repro.experiments import resilience

        if args.workers is not None and args.workers <= 0:
            print(
                f"error: --workers {args.workers}: must be a positive "
                "worker count",
                file=sys.stderr,
            )
            return 2
        try:
            rates = tuple(
                float(token) for token in args.rates.split(",") if token.strip()
            )
        except ValueError:
            print(
                f"error: --rates {args.rates!r}: not a comma-separated "
                "list of numbers",
                file=sys.stderr,
            )
            return 2
        if not rates or any(not 0.0 <= rate <= 1.0 for rate in rates):
            print(
                f"error: --rates {args.rates!r}: rates must lie in [0, 1]",
                file=sys.stderr,
            )
            return 2
        backends = (
            resilience.BACKENDS if backend_arg == "all" else (backend_arg,)
        )
        report = resilience.run(
            seed=args.seed,
            backends=backends,
            rates=rates,
            max_workers=args.workers,
        )
        print(report.render())
        return 0

    if args.command == "serve":
        import random

        from repro.experiments import fleet as fleet_experiment
        from repro.service import TuningService

        if args.workers is not None and args.workers <= 0:
            print(
                f"error: --workers {args.workers}: must be a positive "
                "worker count",
                file=sys.stderr,
            )
            return 2
        if args.shards <= 0:
            print(
                f"error: --shards {args.shards}: must be a positive "
                "shard count",
                file=sys.stderr,
            )
            return 2
        backends = (
            fleet_experiment.BACKENDS if backend_arg == "all" else (backend_arg,)
        )
        tenants = fleet_experiment.default_tenants(backends, seed=args.seed)
        order = list(tenants)
        if not args.in_order:
            # A seeded shuffle: the daemon must produce the same drained
            # fleet whatever order tenants arrive in, so the default
            # exercises an out-of-order submission stream deterministically.
            random.Random(args.seed).shuffle(order)
        service = TuningService(
            seed=args.seed, max_workers=args.workers, shards=args.shards
        )
        print(
            "Service: long-lived tuning daemon "
            f"({len(order)} submission(s), out-of-order={not args.in_order})"
        )
        print("  admission log:")
        for index, spec in enumerate(order):
            print(service.submit(spec, priority=index % 3).render_row())
        result = service.drain()
        print(result.render())
        return 0

    if args.command == "overload":
        from repro.experiments import overload

        if args.workers is not None and args.workers <= 0:
            print(
                f"error: --workers {args.workers}: must be a positive "
                "worker count",
                file=sys.stderr,
            )
            return 2
        try:
            loads = tuple(
                int(token) for token in args.loads.split(",") if token.strip()
            )
        except ValueError:
            print(
                f"error: --loads {args.loads!r}: not a comma-separated "
                "list of integers",
                file=sys.stderr,
            )
            return 2
        if not loads or any(load <= 0 for load in loads):
            print(
                f"error: --loads {args.loads!r}: burst sizes must be "
                "positive",
                file=sys.stderr,
            )
            return 2
        if not 0.0 <= args.rate <= 1.0:
            print(
                f"error: --rate {args.rate}: must lie in [0, 1]",
                file=sys.stderr,
            )
            return 2
        backends = (
            overload.BACKENDS if backend_arg == "all" else (backend_arg,)
        )
        report = overload.run(
            seed=args.seed,
            backends=backends,
            loads=loads,
            rate=args.rate,
            max_workers=args.workers,
        )
        print(report.render())
        return 0

    if args.command == "policies":
        from repro.experiments import policies

        if args.workers is not None and args.workers <= 0:
            print(
                f"error: --workers {args.workers}: must be a positive "
                "worker count",
                file=sys.stderr,
            )
            return 2
        backends = (
            policies.BACKENDS if backend_arg == "all" else (backend_arg,)
        )
        report = policies.run(
            seed=args.seed, backends=backends, max_workers=args.workers
        )
        print(report.render())
        return 0

    cluster = make_cluster(seed=args.seed, backend=backend_arg)

    if args.command == "list":
        print("workloads:", ", ".join(list_workloads()))
        print("schedules:", ", ".join(list_schedules()))
        print("experiments:", ", ".join(EXPERIMENTS))
        print("backends:", ", ".join(list_backends()))
        print("policies:", ", ".join(list_policies()))
        return 0

    if args.command == "extract":
        from repro.experiments import extraction_report

        print(extraction_report.run(cluster, seed=args.seed, model=args.model).render())
        return 0

    if args.command == "tune":
        engine = Stellar.build(cluster, model=args.model, seed=args.seed)
        session = engine.tune(
            get_workload(args.workload),
            max_attempts=args.max_attempts,
            use_descriptions=not args.no_descriptions,
            use_analysis=not args.no_analysis,
            policy=args.policy,
        )
        print(session.summary())
        if args.transcript:
            print()
            print(session.transcript.render())
        return 0

    if args.command == "experiment":
        names = EXPERIMENTS if args.name == "all" else (args.name,)
        for name in names:
            print(_run_experiment(name, cluster, args.reps, args.seed))
            print()
        return 0

    return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
