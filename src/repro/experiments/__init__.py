"""Reproductions of the paper's evaluation (§5).

One module per artifact:

- :mod:`repro.experiments.fig2` — LLM hallucination vs. RAG extraction;
- :mod:`repro.experiments.fig5` — tuning vs. default and expert baselines;
- :mod:`repro.experiments.fig6` — rule-set interpolation on the benchmarks;
- :mod:`repro.experiments.fig7` — rule-set extrapolation to real apps;
- :mod:`repro.experiments.fig8` — component ablations on MDWorkbench_8K;
- :mod:`repro.experiments.fig9` — model comparison on IOR_16M;
- :mod:`repro.experiments.cost` — token/cost/latency analysis (§5.7);
- :mod:`repro.experiments.casestudy` — the Figure 10 tuning timeline;
- :mod:`repro.experiments.extraction_report` — the offline pipeline output.

All are deterministic given (seed, reps) and return dataclasses with a
``render()`` for human-readable output; the benchmark harness asserts each
one's paper-shape expectations.
"""

from repro.experiments.harness import Measurement, measure_config, run_sessions
from repro.experiments import fig2, fig5, fig6, fig7, fig8, fig9
from repro.experiments import autotuner_cost, casestudy, cost, extraction_report, userspace

__all__ = [
    "Measurement",
    "measure_config",
    "run_sessions",
    "fig2",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "cost",
    "casestudy",
    "extraction_report",
    "userspace",
    "autotuner_cost",
]
