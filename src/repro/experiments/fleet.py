"""Mixed-tenant fleet scenario: many tenants, shared knowledge, one pool.

The ROADMAP's north-star scenario in miniature: for every backend the
matrix schedules a data-heavy tenant, a metadata tenant, a mixed tenant and
a drifting-schedule tenant, all concurrently through the
:class:`~repro.service.scheduler.FleetScheduler`.  The report shows each
tenant's mean tuning speedup (their sessions still match the
single-operator path bit for bit — scheduling changes *when* work runs,
never *what* it produces), the fleet-wide replay-merged rule journal, and
the aggregate session throughput the pool sustained.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.backends import list_backends
from repro.cluster.hardware import ClusterSpec
from repro.service import FleetResult, FleetScheduler, TenantSpec

#: The full matrix covers every registered backend.
BACKENDS = tuple(list_backends())

#: Per-backend tenant archetypes: (suffix, workloads-or-schedule).
ARCHETYPES = (
    ("data", ("IOR_16M", "MACSio_16M")),
    ("meta", ("MDWorkbench_2K", "MDWorkbench_8K")),
    ("mixed", ("IO500", "IOR_64K")),
    ("drift", "regime_flip"),
)


def default_tenants(
    backends: tuple[str, ...] = BACKENDS, seed: int = 0
) -> list[TenantSpec]:
    """The mixed-tenant matrix: every archetype on every backend.

    Tenant seeds are distinct and strictly ordered, so the fleet journal's
    seed-order replay gives each tenant a stable position in the merged
    knowledge regardless of scheduling.
    """
    tenants = []
    for b_index, backend in enumerate(backends):
        for a_index, (suffix, work) in enumerate(ARCHETYPES):
            spec_kwargs = (
                {"schedule": work} if isinstance(work, str) else {"workloads": work}
            )
            tenants.append(
                TenantSpec(
                    tenant_id=f"{backend}-{suffix}",
                    backend=backend,
                    seed=seed * 1000 + b_index * 100 + a_index,
                    **spec_kwargs,
                )
            )
    return tenants


@dataclass
class FleetReport:
    """The fleet result plus the experiment's headline checks."""

    result: FleetResult
    tenants: list[TenantSpec] = field(default_factory=list)

    @property
    def improving_tenants(self) -> int:
        return sum(1 for t in self.result.tenants if t.mean_speedup > 1.0)

    def render(self) -> str:
        lines = [
            "Fleet scenario: mixed tenants per backend "
            f"({len(self.result.tenants)} tenants sharing offline artifacts "
            "and the run cache)"
        ]
        lines.append(self.result.render())
        lines.append(
            f"  {self.improving_tenants}/{len(self.result.tenants)} tenants "
            "improve on their defaults"
        )
        return "\n".join(lines)


def run(
    cluster: ClusterSpec | None = None,
    seed: int = 0,
    backends: tuple[str, ...] = BACKENDS,
    max_workers: int | None = None,
    tenants: list[TenantSpec] | None = None,
    shards: int = 1,
) -> FleetReport:
    """Run the mixed-tenant matrix.

    ``cluster`` is accepted for signature parity with the figure
    experiments (its backend selects a single-backend matrix); the
    scheduler builds each tenant's testbed itself.  ``shards`` spreads
    the tenants across that many worker groups — the report is
    byte-identical at any shard count.
    """
    if cluster is not None:
        backends = (cluster.backend_name,)
    specs = tenants if tenants is not None else default_tenants(backends, seed=seed)
    scheduler = FleetScheduler(
        specs, seed=seed, max_workers=max_workers, shards=shards
    )
    return FleetReport(result=scheduler.run(), tenants=specs)
