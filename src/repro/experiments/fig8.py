"""Figure 8: component ablations on MDWorkbench_8K.

- *No Descriptions*: the RAG-generated parameter descriptions are removed
  (valid ranges are kept, as the paper notes they are required to avoid
  outright failures); the agent falls back to parametric beliefs and their
  misconceptions.
- *No Analysis*: the Analysis Agent is removed entirely — no I/O report and
  no follow-up answers; the agent tunes from its generic workload prior.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.hardware import ClusterSpec
from repro.experiments.harness import DEFAULT_REPS, shared_extraction
from repro.experiments.parallel import run_sessions
from repro.experiments.stats import mean_ci90

WORKLOAD = "MDWorkbench_8K"


@dataclass
class AblationOutcome:
    label: str
    best_speedups: list[float] = field(default_factory=list)

    @property
    def mean_speedup(self) -> float:
        return mean_ci90(self.best_speedups)[0]

    @property
    def ci90(self) -> float:
        return mean_ci90(self.best_speedups)[1]

    def render(self) -> str:
        return (
            f"{self.label:16s} best speedup {self.mean_speedup:.2f}x "
            f"+/- {self.ci90:.2f}"
        )


@dataclass
class Fig8Result:
    full: AblationOutcome
    no_descriptions: AblationOutcome
    no_analysis: AblationOutcome

    def render(self) -> str:
        return "\n".join(
            [
                f"Figure 8 — ablations on {WORKLOAD}:",
                "  " + self.full.render(),
                "  " + self.no_descriptions.render(),
                "  " + self.no_analysis.render(),
            ]
        )


def run(
    cluster: ClusterSpec,
    reps: int = DEFAULT_REPS,
    seed: int = 0,
    max_workers: int | None = None,
) -> Fig8Result:
    extraction = shared_extraction(cluster)

    def outcome(label: str, **kwargs) -> AblationOutcome:
        sessions = run_sessions(
            cluster,
            WORKLOAD,
            reps=reps,
            seed=seed,
            extraction=extraction,
            max_workers=max_workers,
            **kwargs,
        )
        return AblationOutcome(
            label=label, best_speedups=[s.best_speedup for s in sessions]
        )

    return Fig8Result(
        full=outcome("full"),
        no_descriptions=outcome("no descriptions", use_descriptions=False),
        no_analysis=outcome("no analysis", use_analysis=False),
    )
