"""§5.7 Cost and latency analysis.

Measures real token usage of a complete tuning run per agent, prompt-cache
hit rates, the dollar cost under each model's pricing, and the LLM latency
overhead relative to application runtime.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.hardware import ClusterSpec
from repro.core.engine import Stellar
from repro.experiments.harness import shared_extraction
from repro.llm.profiles import get_profile
from repro.llm.tokens import TokenUsage
from repro.workloads import get_workload

WORKLOAD = "MDWorkbench_8K"


@dataclass
class CostReport:
    workload: str
    tuning_usage: TokenUsage
    analysis_usage: TokenUsage
    llm_latency_seconds: float
    application_seconds: float
    cost_usd_by_model: dict[str, float] = field(default_factory=dict)

    @property
    def tuning_cache_rate(self) -> float:
        return self.tuning_usage.cache_hit_rate

    @property
    def analysis_cache_rate(self) -> float:
        return self.analysis_usage.cache_hit_rate

    @property
    def latency_fraction(self) -> float:
        total = self.llm_latency_seconds + self.application_seconds
        return self.llm_latency_seconds / total if total else 0.0

    def render(self) -> str:
        lines = [
            f"Cost & latency analysis (§5.7) for one tuning run of {self.workload}:",
            (
                f"  Tuning Agent:   {self.tuning_usage.input_tokens:,} input / "
                f"{self.tuning_usage.output_tokens:,} output tokens "
                f"({self.tuning_cache_rate:.0%} of input served from cache)"
            ),
            (
                f"  Analysis Agent: {self.analysis_usage.input_tokens:,} input / "
                f"{self.analysis_usage.output_tokens:,} output tokens "
                f"({self.analysis_cache_rate:.0%} cached)"
            ),
            (
                f"  LLM latency: {self.llm_latency_seconds:.1f}s vs application "
                f"executions {self.application_seconds:.1f}s "
                f"({self.latency_fraction:.1%} of end-to-end time)"
            ),
        ]
        for model, cost in sorted(self.cost_usd_by_model.items()):
            lines.append(f"  API cost if billed as {model}: ${cost:.4f}")
        return "\n".join(lines)


def run(cluster: ClusterSpec, seed: int = 0, workload: str = WORKLOAD) -> CostReport:
    extraction = shared_extraction(cluster)
    engine = Stellar(
        cluster=cluster, model="claude-3.7-sonnet", extraction=extraction, seed=seed
    )
    session = engine.tune(get_workload(workload))
    tuning = session.usage.get("tuning", TokenUsage())
    analysis = session.usage.get("analysis", TokenUsage())
    app_seconds = session.initial_seconds + sum(a.seconds for a in session.attempts)
    costs = {}
    for model in ("claude-3.7-sonnet", "gpt-4o", "llama-3.1-70b"):
        profile = get_profile(model)
        total = tuning + analysis
        costs[model] = profile.cost_usd(
            total.input_tokens, total.output_tokens, total.cached_input_tokens
        )
    return CostReport(
        workload=workload,
        tuning_usage=tuning,
        analysis_usage=analysis,
        llm_latency_seconds=session.llm_latency,
        application_seconds=app_seconds,
        cost_usd_by_model=costs,
    )
