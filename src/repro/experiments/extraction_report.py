"""§4.2: the offline RAG extraction pipeline's output, as a report.

Shows the rough filter, sufficiency filter, binary exclusion, impact
selection, and the final 13 parameters with dependent ranges.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.hardware import ClusterSpec
from repro.llm.client import LLMClient
from repro.rag.extraction import ExtractionResult, ParameterExtractor


@dataclass
class ExtractionReport:
    result: ExtractionResult
    usage_input_tokens: int
    usage_output_tokens: int

    def render(self) -> str:
        r = self.result
        lines = [
            "Offline RAG-based parameter extraction:",
            f"  selected ({len(r.selected)}):",
        ]
        for p in r.selected:
            lines.append(
                f"    {p.name:36s} range {p.min_expr} .. {p.max_expr} "
                f"(default {p.default})"
            )
        lines.append(f"  filtered as binary trade-offs: {sorted(r.filtered_binary)}")
        lines.append(
            f"  filtered for insufficient documentation: "
            f"{sorted(r.filtered_insufficient)}"
        )
        lines.append(f"  filtered as low impact: {sorted(r.filtered_low_impact)}")
        lines.append(
            f"  extraction LLM usage: {self.usage_input_tokens:,} in / "
            f"{self.usage_output_tokens:,} out tokens"
        )
        return "\n".join(lines)


def run(cluster: ClusterSpec, seed: int = 0, model: str = "gpt-4o") -> ExtractionReport:
    client = LLMClient(model, seed=seed)
    result = ParameterExtractor(cluster, client).run()
    usage = client.ledger.agent("extraction")
    return ExtractionReport(
        result=result,
        usage_input_tokens=usage.input_tokens,
        usage_output_tokens=usage.output_tokens,
    )
