"""Figure 10: a granular case study of one MDWorkbench_8K tuning run.

Renders the full timeline: initial execution, the Analysis Agent's report,
the Tuning Agent's follow-up questions, each configuration with its
rationale and measured outcome, the end decision, and a generated rule.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.hardware import ClusterSpec
from repro.core.engine import Stellar
from repro.core.session import TuningSession
from repro.experiments.harness import shared_extraction
from repro.workloads import get_workload

WORKLOAD = "MDWorkbench_8K"


@dataclass
class CaseStudy:
    session: TuningSession

    @property
    def first_attempt_speedup(self) -> float:
        return self.session.attempts[0].speedup if self.session.attempts else 0.0

    def render(self) -> str:
        session = self.session
        lines = [f"Figure 10 — case study: tuning {session.workload}", ""]
        lines.append(session.transcript.render())
        lines.append("")
        if session.rules_json:
            rule = session.rules_json[0]
            lines.append("Example generated rule:")
            lines.append(f"  Parameter: {rule['parameter']}")
            lines.append(f"  Rule: {rule['rule_description']}")
            lines.append(f"  Tuning context: {rule['tuning_context']}")
        return "\n".join(lines)


def run(cluster: ClusterSpec, seed: int = 3) -> CaseStudy:
    extraction = shared_extraction(cluster)
    engine = Stellar(
        cluster=cluster, model="claude-3.7-sonnet", extraction=extraction, seed=seed
    )
    session = engine.tune(get_workload(WORKLOAD))
    return CaseStudy(session=session)
