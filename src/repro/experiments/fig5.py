"""Figure 5: STELLAR vs. default and human expert on the five benchmarks.

Bars are mean wall time over eight repetitions with 90% confidence
intervals; STELLAR bars use the best configuration found by a fresh (no
rule set) tuning run capped at five attempts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial

from repro.baselines import expert_updates
from repro.cluster.hardware import ClusterSpec
from repro.experiments.harness import (
    DEFAULT_REPS,
    Measurement,
    measure_config,
    run_sessions,
    shared_extraction,
)
from repro.experiments.parallel import map_workloads
from repro.rag.extraction import ExtractionResult
from repro.workloads.registry import BENCHMARKS


@dataclass
class WorkloadComparison:
    workload: str
    default: Measurement
    expert: Measurement
    stellar: Measurement
    attempts_used: list[int] = field(default_factory=list)

    @property
    def stellar_speedup(self) -> float:
        return self.default.mean / self.stellar.mean

    @property
    def expert_speedup(self) -> float:
        return self.default.mean / self.expert.mean

    def render(self) -> str:
        return (
            f"{self.workload:16s} default={self.default.mean:8.2f}s "
            f"expert={self.expert.mean:8.2f}s ({self.expert_speedup:4.2f}x) "
            f"stellar={self.stellar.mean:8.2f}s ({self.stellar_speedup:4.2f}x) "
            f"attempts={sum(self.attempts_used) / len(self.attempts_used):.1f}"
        )


@dataclass
class Fig5Result:
    comparisons: list[WorkloadComparison] = field(default_factory=list)

    def get(self, workload: str) -> WorkloadComparison:
        return next(c for c in self.comparisons if c.workload == workload)

    def render(self) -> str:
        lines = ["Figure 5 — tuning performance vs default and expert (wall time):"]
        lines += [c.render() for c in self.comparisons]
        return "\n".join(lines)


def _one_workload(
    name: str,
    cluster: ClusterSpec,
    reps: int,
    seed: int,
    extraction: ExtractionResult,
) -> WorkloadComparison:
    default = measure_config(cluster, name, {}, "default", reps=reps, seed=seed)
    expert = measure_config(
        cluster,
        name,
        expert_updates(name, cluster.backend),
        "expert",
        reps=reps,
        seed=seed + 1,
    )
    sessions = run_sessions(
        cluster, name, reps=reps, seed=seed, extraction=extraction
    )
    stellar = Measurement(label="stellar", times=[s.best_seconds for s in sessions])
    return WorkloadComparison(
        workload=name,
        default=default,
        expert=expert,
        stellar=stellar,
        attempts_used=[len(s.attempts) for s in sessions],
    )


def run(
    cluster: ClusterSpec,
    reps: int = DEFAULT_REPS,
    seed: int = 0,
    workloads: list[str] | None = None,
    max_workers: int | None = None,
) -> Fig5Result:
    extraction = shared_extraction(cluster)
    body = partial(
        _one_workload, cluster=cluster, reps=reps, seed=seed, extraction=extraction
    )
    return Fig5Result(
        comparisons=map_workloads(body, workloads or BENCHMARKS, max_workers)
    )
