"""Figure 9: different LLMs as the Tuning Agent on IOR_16M.

Any tool-calling model can drive STELLAR; Claude-3.7-Sonnet, GPT-4o and the
much smaller Llama-3.1-70B all reach similar near-optimal configurations
within five iterations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.hardware import ClusterSpec
from repro.experiments.harness import DEFAULT_REPS, shared_extraction
from repro.experiments.parallel import run_sessions
from repro.experiments.stats import mean_ci90

WORKLOAD = "IOR_16M"
MODELS = ("claude-3.7-sonnet", "gpt-4o", "llama-3.1-70b")


@dataclass
class ModelOutcome:
    model: str
    best_speedups: list[float] = field(default_factory=list)
    attempts: list[int] = field(default_factory=list)

    @property
    def mean_speedup(self) -> float:
        return mean_ci90(self.best_speedups)[0]

    @property
    def mean_attempts(self) -> float:
        return sum(self.attempts) / len(self.attempts)

    def render(self) -> str:
        return (
            f"{self.model:20s} best speedup {self.mean_speedup:.2f}x "
            f"(mean attempts {self.mean_attempts:.1f})"
        )


@dataclass
class Fig9Result:
    outcomes: list[ModelOutcome] = field(default_factory=list)

    def get(self, model: str) -> ModelOutcome:
        return next(o for o in self.outcomes if o.model == model)

    def render(self) -> str:
        lines = [f"Figure 9 — tuning {WORKLOAD} with different LLMs:"]
        lines += ["  " + o.render() for o in self.outcomes]
        return "\n".join(lines)


def run(
    cluster: ClusterSpec,
    reps: int = DEFAULT_REPS,
    seed: int = 0,
    max_workers: int | None = None,
) -> Fig9Result:
    extraction = shared_extraction(cluster)
    result = Fig9Result()
    for model in MODELS:
        sessions = run_sessions(
            cluster,
            WORKLOAD,
            reps=reps,
            seed=seed,
            model=model,
            extraction=extraction,
            max_attempts=5,
            max_workers=max_workers,
        )
        result.outcomes.append(
            ModelOutcome(
                model=model,
                best_speedups=[s.best_speedup for s in sessions],
                attempts=[len(s.attempts) for s in sessions],
            )
        )
    return result
