"""Policy-ranking experiment: agent architectures as a measurable axis.

For every registered agent policy the experiment runs the mixed-tenant
matrix (the fleet scenario's archetypes — data, metadata, mixed, drifting —
on every backend) through its own :class:`~repro.service.FleetScheduler`
arm.  Arms share tenant ids and seeds, so each (backend × workload-queue ×
schedule) cell compares the *same* tuning problem across policies —
apples-to-apples rankings by mean speedup, tie-broken by probe-run and
token frugality (a policy that reaches the same speedup with fewer real
executions or cheaper prompts wins the tie).

The report is deterministic for a fixed seed (no wall-clock figures), so
CI can assert its summary lines byte-for-byte across worker counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.agents.policies import list_policies
from repro.cluster.hardware import ClusterSpec
from repro.experiments.fleet import ARCHETYPES, BACKENDS, default_tenants
from repro.service import FleetScheduler


@dataclass
class PolicyRow:
    """One policy's outcome in one cell."""

    policy: str
    mean_speedup: float
    executions: int
    input_tokens: int


@dataclass
class PolicyCell:
    """One (backend, archetype) cell with its ranked policy rows."""

    backend: str
    archetype: str
    queue: str
    rows: list[PolicyRow] = field(default_factory=list)

    def render(self) -> str:
        lines = [f"-- backend={self.backend} cell={self.archetype} ({self.queue}) --"]
        for rank, row in enumerate(self.rows, 1):
            lines.append(
                f"  {rank}. {row.policy:16s} mean speedup "
                f"{row.mean_speedup:.2f}x | {row.executions} runs | "
                f"{row.input_tokens} tok in"
            )
        return "\n".join(lines)


@dataclass
class PolicyReport:
    """Ranked cells plus per-policy improvement tallies."""

    cells: list[PolicyCell] = field(default_factory=list)
    policies: list[str] = field(default_factory=list)

    def wins(self, policy: str) -> int:
        """Cells in which ``policy`` improves on the defaults."""
        return sum(
            1
            for cell in self.cells
            for row in cell.rows
            if row.policy == policy and row.mean_speedup > 1.0
        )

    @property
    def sweeping_policies(self) -> int:
        return sum(
            1 for policy in self.policies if self.wins(policy) == len(self.cells)
        )

    def render(self) -> str:
        lines = [
            "Policy ranking: agent architectures over the mixed-tenant "
            f"matrix ({len(self.policies)} policies x {len(self.cells)} cells)"
        ]
        lines.extend(cell.render() for cell in self.cells)
        for policy in self.policies:
            lines.append(
                f"  policy {policy}: improves on defaults in "
                f"{self.wins(policy)}/{len(self.cells)} cells"
            )
        lines.append(
            f"  {self.sweeping_policies}/{len(self.policies)} policies "
            "improve on defaults in every cell"
        )
        return "\n".join(lines)


def run(
    cluster: ClusterSpec | None = None,
    seed: int = 0,
    backends: tuple[str, ...] = BACKENDS,
    max_workers: int | None = None,
    policies: tuple[str, ...] | None = None,
) -> PolicyReport:
    """Rank every registered policy over the mixed-tenant matrix.

    ``cluster`` is accepted for signature parity with the figure
    experiments (its backend selects a single-backend matrix).
    """
    if cluster is not None:
        backends = (cluster.backend_name,)
    names = list(policies) if policies is not None else list_policies()
    arms = {}
    for policy in names:
        specs = [
            replace(spec, policy=policy)
            for spec in default_tenants(backends, seed=seed)
        ]
        scheduler = FleetScheduler(specs, seed=seed, max_workers=max_workers)
        arms[policy] = scheduler.run()

    cells = []
    for backend in backends:
        for suffix, work in ARCHETYPES:
            tenant_id = f"{backend}-{suffix}"
            rows = []
            for policy in names:
                tenant = arms[policy].get(tenant_id)
                usage = tenant.total_usage()
                rows.append(
                    PolicyRow(
                        policy=policy,
                        mean_speedup=tenant.mean_speedup,
                        executions=tenant.executions,
                        input_tokens=usage.input_tokens,
                    )
                )
            rows.sort(
                key=lambda r: (
                    -r.mean_speedup,
                    r.executions,
                    r.input_tokens,
                    r.policy,
                )
            )
            queue = work if isinstance(work, str) else "+".join(work)
            cells.append(
                PolicyCell(
                    backend=backend, archetype=suffix, queue=queue, rows=rows
                )
            )
    return PolicyReport(cells=cells, policies=names)
