"""Figure 7: rule-set extrapolation to previously unseen applications.

The rule set accumulated from the five *benchmarks* only is applied when
tuning the real applications (AMReX, MACSio) — testing whether knowledge
transfers to unseen workloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.hardware import ClusterSpec
from repro.experiments.fig6 import SeriesComparison
from repro.experiments.harness import (
    DEFAULT_REPS,
    accumulate_rules,
    mean_series,
    run_sessions,
    shared_extraction,
)
from repro.workloads.registry import BENCHMARKS, REAL_APPS


@dataclass
class Fig7Result:
    comparisons: list[SeriesComparison] = field(default_factory=list)
    rule_count: int = 0

    def get(self, workload: str) -> SeriesComparison:
        return next(c for c in self.comparisons if c.workload == workload)

    def render(self) -> str:
        lines = [
            "Figure 7 — rule-set extrapolation to unseen real applications "
            f"(rules learned from benchmarks only; {self.rule_count} rules):"
        ]
        lines += [c.render() for c in self.comparisons]
        return "\n".join(lines)


def run(
    cluster: ClusterSpec,
    reps: int = DEFAULT_REPS,
    seed: int = 0,
    apps: list[str] | None = None,
) -> Fig7Result:
    extraction = shared_extraction(cluster)
    rule_engine = accumulate_rules(
        cluster, BENCHMARKS, seed=seed, extraction=extraction
    )
    result = Fig7Result(rule_count=len(rule_engine.rule_set))
    for name in apps or REAL_APPS:
        without = run_sessions(
            cluster, name, reps=reps, seed=seed, extraction=extraction
        )
        with_rules = run_sessions(
            cluster,
            name,
            reps=reps,
            seed=seed + 500,
            extraction=extraction,
            rule_engine=rule_engine,
        )
        result.comparisons.append(
            SeriesComparison(
                workload=name,
                without_rules=mean_series(without),
                with_rules=mean_series(with_rules),
                attempts_without=sum(len(s.attempts) for s in without) / len(without),
                attempts_with=sum(len(s.attempts) for s in with_rules)
                / len(with_rules),
            )
        )
    return result
