"""Figure 7: rule-set extrapolation to previously unseen applications.

The rule set accumulated from the five *benchmarks* only is applied when
tuning the real applications (AMReX, MACSio) — testing whether knowledge
transfers to unseen workloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial

from repro.cluster.hardware import ClusterSpec
from repro.experiments.fig6 import SeriesComparison, compare_with_rules
from repro.experiments.harness import (
    DEFAULT_REPS,
    accumulate_rules,
    shared_extraction,
)
from repro.experiments.parallel import map_workloads
from repro.workloads.registry import BENCHMARKS, REAL_APPS


@dataclass
class Fig7Result:
    comparisons: list[SeriesComparison] = field(default_factory=list)
    rule_count: int = 0

    def get(self, workload: str) -> SeriesComparison:
        return next(c for c in self.comparisons if c.workload == workload)

    def render(self) -> str:
        lines = [
            "Figure 7 — rule-set extrapolation to unseen real applications "
            f"(rules learned from benchmarks only; {self.rule_count} rules):"
        ]
        lines += [c.render() for c in self.comparisons]
        return "\n".join(lines)


def run(
    cluster: ClusterSpec,
    reps: int = DEFAULT_REPS,
    seed: int = 0,
    apps: list[str] | None = None,
    max_workers: int | None = None,
) -> Fig7Result:
    extraction = shared_extraction(cluster)
    rule_engine = accumulate_rules(
        cluster, BENCHMARKS, seed=seed, extraction=extraction
    )
    body = partial(
        compare_with_rules,
        cluster=cluster,
        reps=reps,
        seed=seed,
        extraction=extraction,
        rule_set=rule_engine.rule_set,
    )
    return Fig7Result(
        rule_count=len(rule_engine.rule_set),
        comparisons=map_workloads(body, apps or REAL_APPS, max_workers),
    )
