"""Extension experiment: user-accessible tuning (paper §5.6).

The paper's production-deployment direction: most ``/proc`` parameters need
root, but file layout (``lfs setstripe``) is user-settable.  This experiment
tunes each workload with STELLAR restricted to user-accessible parameters
and compares against full-surface tuning — quantifying how much of the win
survives without privileges (most of it for shared-file data workloads,
none of it for metadata storms whose levers are all root-only).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.hardware import ClusterSpec
from repro.experiments.harness import DEFAULT_REPS, run_sessions, shared_extraction
from repro.experiments.stats import mean_ci90

WORKLOADS = ("IOR_16M", "IOR_64K", "MDWorkbench_8K")


@dataclass
class UserSpaceOutcome:
    workload: str
    full_speedups: list[float] = field(default_factory=list)
    userspace_speedups: list[float] = field(default_factory=list)

    @property
    def full_mean(self) -> float:
        return mean_ci90(self.full_speedups)[0]

    @property
    def userspace_mean(self) -> float:
        return mean_ci90(self.userspace_speedups)[0]

    @property
    def win_retained(self) -> float:
        """Fraction of the full-surface improvement kept without root."""
        full_gain = self.full_mean - 1.0
        user_gain = self.userspace_mean - 1.0
        return user_gain / full_gain if full_gain > 0 else 0.0

    def render(self) -> str:
        return (
            f"{self.workload:16s} full={self.full_mean:4.2f}x "
            f"user-space={self.userspace_mean:4.2f}x "
            f"({self.win_retained:.0%} of the gain retained)"
        )


@dataclass
class UserSpaceResult:
    outcomes: list[UserSpaceOutcome] = field(default_factory=list)

    def get(self, workload: str) -> UserSpaceOutcome:
        return next(o for o in self.outcomes if o.workload == workload)

    def render(self) -> str:
        lines = [
            "User-accessible tuning (§5.6): lfs setstripe layout only, no root:"
        ]
        lines += ["  " + o.render() for o in self.outcomes]
        return "\n".join(lines)


def run(
    cluster: ClusterSpec, reps: int = DEFAULT_REPS, seed: int = 0
) -> UserSpaceResult:
    extraction = shared_extraction(cluster)
    result = UserSpaceResult()
    for name in WORKLOADS:
        full = run_sessions(
            cluster, name, reps=reps, seed=seed, extraction=extraction
        )
        userspace = run_sessions(
            cluster,
            name,
            reps=reps,
            seed=seed + 900,
            extraction=extraction,
            user_accessible_only=True,
        )
        result.outcomes.append(
            UserSpaceOutcome(
                workload=name,
                full_speedups=[s.best_speedup for s in full],
                userspace_speedups=[s.best_speedup for s in userspace],
            )
        )
    return result
