"""Cross-backend rule transfer: does reflected knowledge generalize?

Runs the full tuning loop on two backends (Lustre and the BeeGFS-like
system), accumulates each backend's reflected rule set, and then asks the
question StorageXTuner raises for heterogeneous storage engines: do the
rules STELLAR learns on one file system carry over to another?

Two transfer notions are measured:

- **literal**: the fraction of rules whose parameter name exists on the
  other backend (expected ≈ 0 — the registries are disjoint by design);
- **role-mapped**: rules are translated through the model-role layer
  (parameter → role on the source backend → parameter on the target, with
  unit-scale conversion), applied as a configuration on the target backend,
  and measured against the target's defaults.

A positive role-mapped speedup demonstrates that what the reflection phase
captures is *mechanism* knowledge (stripe wider for shared streams, deepen
metadata concurrency for small-file storms) rather than Lustre trivia —
the property that makes backend-pluggable tuning worthwhile.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.backends import get_backend
from repro.cluster.hardware import ClusterSpec, make_cluster
from repro.experiments.harness import DEFAULT_REPS, Measurement, measure_configs
from repro.rules.model import RuleSet
from repro.sim.cache import RUN_CACHE

WORKLOADS = ("IOR_16M", "MDWorkbench_2K")
BACKENDS = ("lustre", "beegfs")


@dataclass
class TransferRow:
    """Rule transfer from one backend onto another, for one workload."""

    source: str
    target: str
    workload: str
    n_rules: int
    literal_hits: int
    mapped_hits: int
    mapped_updates: dict[str, int]
    default: Measurement | None = None
    transferred: Measurement | None = None

    @property
    def speedup(self) -> float:
        if not self.default or not self.transferred:
            return 1.0
        return self.default.mean / self.transferred.mean


@dataclass
class CrossFsResult:
    tuned_speedups: dict[str, dict[str, float]] = field(default_factory=dict)
    rules: dict[str, RuleSet] = field(default_factory=dict)
    transfers: list[TransferRow] = field(default_factory=list)

    def render(self) -> str:
        lines = ["Cross-backend transfer (tuning on both file systems)"]
        for backend, per_wl in self.tuned_speedups.items():
            rendered = ", ".join(
                f"{wl} {speedup:.2f}x" for wl, speedup in per_wl.items()
            )
            n_rules = len(self.rules[backend].rules)
            lines.append(
                f"  {backend:8s} tuned: {rendered} ({n_rules} rules reflected)"
            )
        lines.append("  rule transfer onto the other backend:")
        for row in self.transfers:
            lines.append(
                f"  {row.source} -> {row.target} [{row.workload}]: "
                f"literal {row.literal_hits}/{row.n_rules}, "
                f"role-mapped {row.mapped_hits}/{row.n_rules}, "
                f"transferred-config speedup {row.speedup:.2f}x"
            )
        return "\n".join(lines)


def workload_class_tag(workload_name: str) -> str:
    """The ground-truth workload-class tag for a catalog workload.

    Derived from the workload's ``traits`` (which agents never see); used to
    select which reflected rules a transferred configuration may apply —
    mirroring how the engine itself matches rules by context tags.
    """
    from repro.workloads import get_workload

    traits = get_workload(workload_name).traits
    intensity = traits.get("io_intensity")
    if intensity == "metadata":
        return "metadata_small_files"
    if intensity == "mixed":
        return "mixed"
    if not traits.get("shared_file", True):
        return "fpp_data"
    if traits.get("pattern") == "random" and traits.get("xfer_size", 1 << 20) < 1 << 20:
        return "shared_random_small"
    return "shared_seq_large"


def map_rule_updates(
    rules: RuleSet,
    source_name: str,
    target_name: str,
    context_tag: str | None = None,
) -> tuple[int, int, dict[str, int]]:
    """Translate a rule set's recommendations between backends.

    ``context_tag`` (a workload-class tag) restricts transfer to rules whose
    recorded tuning context matches the target workload — applying a
    bandwidth-striping rule to a metadata storm is exactly the transplant
    the engine's own rule matching refuses.  Returns
    ``(literal_hits, mapped_hits, updates)`` where ``updates`` is a
    target-backend configuration assembled from the role-translated
    recommendations (best observed speedup wins per parameter).
    """
    source = get_backend(source_name)
    target = get_backend(target_name)
    literal = 0
    mapped = 0
    best: dict[str, tuple[float, int]] = {}
    matching = [
        rule
        for rule in rules.rules
        if context_tag is None or context_tag in rule.context_tags
    ]
    for rule in matching:
        if rule.parameter in target.registry:
            literal += 1
        if rule.recommended_value is None:
            continue
        role = source.role_of.get(rule.parameter)
        entry = target.roles.get(role) if role else None
        if entry is None:
            continue
        mapped += 1
        target_param, target_scale = entry
        _, source_scale = source.roles[role]
        # Convert through the role's canonical unit.  The -1 sentinel
        # ("all targets") is unit-less and crosses as-is.
        value = int(rule.recommended_value)
        if value != -1:
            value = max(1, value * source_scale // target_scale)
        speedup = rule.observed_speedup or 0.0
        current = best.get(target_param)
        if current is None or speedup > current[0]:
            best[target_param] = (speedup, value)
    return literal, mapped, {name: value for name, (_, value) in best.items()}


def _tune_backend(
    cluster: ClusterSpec, workloads, seed: int
) -> tuple[dict[str, float], RuleSet]:
    from repro.core.engine import Stellar
    from repro.experiments.harness import shared_extraction
    from repro.workloads import get_workload

    extraction = shared_extraction(cluster, seed=seed)
    engine = Stellar(
        cluster=cluster,
        model="claude-3.7-sonnet",
        extraction=extraction,
        seed=seed,
    )
    speedups: dict[str, float] = {}
    for name in workloads:
        session = engine.tune_and_accumulate(get_workload(name))
        speedups[name] = session.best_speedup
    return speedups, engine.rule_set


def run(
    cluster: ClusterSpec | None = None,
    reps: int = DEFAULT_REPS,
    seed: int = 0,
    workloads=WORKLOADS,
) -> CrossFsResult:
    """Tune on every backend, then cross-apply each rule set.

    ``cluster`` (if given) serves as the testbed for its own backend —
    tuning and transfer measurements alike — so one result never mixes
    hardware; the other backends get an identically-sized default testbed.

    The whole experiment runs under the process-wide run cache, and each
    (target, workload) row scores its default and transferred
    configurations in one columnar sweep.
    """
    with RUN_CACHE.enabled():
        return _run(cluster, reps, seed, workloads)


def _run(cluster, reps, seed, workloads) -> CrossFsResult:
    result = CrossFsResult()
    clusters: dict[str, ClusterSpec] = {}
    for backend_name in BACKENDS:
        if cluster is not None and cluster.backend_name == backend_name:
            clusters[backend_name] = cluster
        else:
            clusters[backend_name] = make_cluster(seed=seed, backend=backend_name)
        speedups, rules = _tune_backend(clusters[backend_name], workloads, seed)
        result.tuned_speedups[backend_name] = speedups
        result.rules[backend_name] = rules

    for source in BACKENDS:
        targets = [b for b in BACKENDS if b != source]
        for target in targets:
            rules = result.rules[source]
            for workload in workloads:
                tag = workload_class_tag(workload)
                literal, mapped, updates = map_rule_updates(
                    rules, source, target, context_tag=tag
                )
                row = TransferRow(
                    source=source,
                    target=target,
                    workload=workload,
                    n_rules=len(rules.matching_tags([tag])),
                    literal_hits=literal,
                    mapped_hits=mapped,
                    mapped_updates=updates,
                )
                row.default, row.transferred = measure_configs(
                    clusters[target],
                    workload,
                    [{}, updates],
                    ["default", "transferred"],
                    reps=reps,
                    seed=seed,
                )
                result.transfers.append(row)
    return result
