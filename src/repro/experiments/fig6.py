"""Figure 6: rule-set interpolation.

All five benchmarks are tuned once (accumulating the global rule set), then
tuned again with the rule set applied.  Per-iteration speedup series show
the improved first guess and earlier conclusion.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial

from repro.cluster.hardware import ClusterSpec
from repro.experiments.harness import (
    DEFAULT_REPS,
    accumulate_rules,
    mean_series,
    run_sessions,
    shared_extraction,
)
from repro.experiments.parallel import map_workloads
from repro.rag.extraction import ExtractionResult
from repro.rules.model import RuleSet
from repro.workloads.registry import BENCHMARKS


@dataclass
class SeriesComparison:
    workload: str
    without_rules: list[float]
    with_rules: list[float]
    attempts_without: float
    attempts_with: float

    def render(self) -> str:
        wo = " ".join(f"{x:5.2f}" for x in self.without_rules)
        wi = " ".join(f"{x:5.2f}" for x in self.with_rules)
        return (
            f"{self.workload:16s}\n"
            f"    no rules   [{wo}] ({self.attempts_without:.1f} attempts)\n"
            f"    with rules [{wi}] ({self.attempts_with:.1f} attempts)"
        )


@dataclass
class Fig6Result:
    comparisons: list[SeriesComparison] = field(default_factory=list)
    rule_count: int = 0

    def get(self, workload: str) -> SeriesComparison:
        return next(c for c in self.comparisons if c.workload == workload)

    def render(self) -> str:
        lines = [
            "Figure 6 — speedup vs iteration, with and without the global "
            f"rule set ({self.rule_count} rules accumulated):"
        ]
        lines += [c.render() for c in self.comparisons]
        return "\n".join(lines)


def compare_with_rules(
    name: str,
    cluster: ClusterSpec,
    reps: int,
    seed: int,
    extraction: ExtractionResult,
    rule_set: RuleSet,
) -> SeriesComparison:
    """One workload's without/with-rules session pair (fig6 and fig7 body).

    Takes the bare ``rule_set`` (not the engine carrying it) so pool workers
    only ship the rules, not a second copy of cluster + extraction.
    """
    without = run_sessions(
        cluster, name, reps=reps, seed=seed, extraction=extraction
    )
    with_rules = run_sessions(
        cluster,
        name,
        reps=reps,
        seed=seed + 500,
        extraction=extraction,
        rule_set=rule_set,
    )
    return SeriesComparison(
        workload=name,
        without_rules=mean_series(without),
        with_rules=mean_series(with_rules),
        attempts_without=sum(len(s.attempts) for s in without) / len(without),
        attempts_with=sum(len(s.attempts) for s in with_rules) / len(with_rules),
    )


def run(
    cluster: ClusterSpec,
    reps: int = DEFAULT_REPS,
    seed: int = 0,
    workloads: list[str] | None = None,
    max_workers: int | None = None,
) -> Fig6Result:
    extraction = shared_extraction(cluster)
    names = workloads or BENCHMARKS
    rule_engine = accumulate_rules(cluster, names, seed=seed, extraction=extraction)
    body = partial(
        compare_with_rules,
        cluster=cluster,
        reps=reps,
        seed=seed,
        extraction=extraction,
        rule_set=rule_engine.rule_set,
    )
    return Fig6Result(
        rule_count=len(rule_engine.rule_set),
        comparisons=map_workloads(body, names, max_workers),
    )
