"""Chaos sweep: the fleet under injected faults, rate by rate.

For every backend the sweep runs the standard mixed-tenant matrix
(:func:`repro.experiments.fleet.default_tenants`) under a uniform
:class:`~repro.faults.plan.FaultPlan` at each requested rate and reports,
per cell: completion (completed vs quarantined tenants), the faults the
retry machinery absorbed, and tuning quality relative to the fault-free
oracle (the same matrix at rate 0).  Rate 0 *is* the oracle cell — and its
tenant rows are byte-identical to the plain ``stellar fleet`` path, which
the CI chaos smoke asserts.

The rendered report contains no wall-clock lines, so it is byte-identical
across worker counts — the whole report is a determinism fixture.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.backends import list_backends
from repro.cluster.hardware import ClusterSpec
from repro.experiments.fleet import default_tenants
from repro.faults.plan import FaultPlan
from repro.service import FleetResult, FleetScheduler

#: The full sweep covers every registered backend.
BACKENDS = tuple(list_backends())

#: Default fault rates: the oracle plus a gentle-to-rough gradient.
DEFAULT_RATES = (0.0, 0.05, 0.1, 0.2)


@dataclass
class ChaosCell:
    """One (backend, fault rate) fleet run."""

    backend: str
    rate: float
    result: FleetResult

    @property
    def total_tenants(self) -> int:
        return len(self.result.outcomes)

    @property
    def completed_tenants(self) -> int:
        return len(self.result.tenants)

    @property
    def quarantined_tenants(self) -> int:
        return len(self.result.failures)

    @property
    def completion_rate(self) -> float:
        if not self.total_tenants:
            return 1.0
        return self.completed_tenants / self.total_tenants

    @property
    def absorbed_faults(self) -> int:
        """Faults the retry machinery survived, fleet-wide."""
        absorbed = sum(
            count
            for tenant in self.result.tenants
            for session in tenant.sessions
            for count in session.fault_recovery.values()
        )
        absorbed += sum(
            count
            for failure in self.result.failures
            for count in failure.fault_recovery.values()
        )
        return absorbed

    @property
    def mean_speedup(self) -> float:
        """Mean best speedup over completed sessions (1.0 if none)."""
        speedups = [
            session.best_speedup
            for tenant in self.result.tenants
            for session in tenant.sessions
        ]
        if not speedups:
            return 1.0
        return sum(speedups) / len(speedups)

    def render(self) -> str:
        lines = [f"-- backend={self.backend} rate={self.rate:.2f} --"]
        lines.extend(outcome.render_row() for outcome in self.result.outcomes)
        lines.append(
            f"  cell: {self.completed_tenants}/{self.total_tenants} tenant(s) "
            f"completed | {self.absorbed_faults} fault(s) absorbed | "
            f"mean speedup {self.mean_speedup:.2f}x"
        )
        return "\n".join(lines)


@dataclass
class ChaosReport:
    """Every cell of the sweep plus quality-vs-oracle accounting."""

    cells: list[ChaosCell] = field(default_factory=list)
    seed: int = 0

    def oracle(self, backend: str) -> ChaosCell | None:
        """The fault-free cell for ``backend`` (rate exactly 0)."""
        return next(
            (c for c in self.cells if c.backend == backend and c.rate == 0.0),
            None,
        )

    def quality(self, cell: ChaosCell) -> float:
        """Tuning quality relative to the fault-free oracle cell."""
        oracle = self.oracle(cell.backend)
        if oracle is None or oracle.mean_speedup <= 0:
            return 1.0
        return cell.mean_speedup / oracle.mean_speedup

    def render(self) -> str:
        lines = [
            "Chaos sweep: deterministic fault injection over the fleet "
            f"(seed {self.seed})"
        ]
        for cell in self.cells:
            lines.append(cell.render())
        lines.append(
            "  rate table: backend rate completed quarantined absorbed "
            "mean_speedup quality_vs_oracle"
        )
        for cell in self.cells:
            lines.append(
                f"    {cell.backend:8s} {cell.rate:.2f} "
                f"{cell.completed_tenants:9d} {cell.quarantined_tenants:11d} "
                f"{cell.absorbed_faults:8d} {cell.mean_speedup:11.2f}x "
                f"{self.quality(cell):16.2f}x"
            )
        lines.append(
            "  contract: every tenant completed or was quarantined with a "
            "report; no fleet-wide abort path"
        )
        return "\n".join(lines)


def run(
    cluster: ClusterSpec | None = None,
    seed: int = 0,
    backends: tuple[str, ...] = BACKENDS,
    rates: tuple[float, ...] = DEFAULT_RATES,
    max_workers: int | None = None,
) -> ChaosReport:
    """Run the chaos sweep.

    ``cluster`` is accepted for signature parity with the figure
    experiments (its backend selects a single-backend sweep).  Each
    backend uses its own single-backend tenant matrix, so the rate-0
    cell's tenant rows match ``stellar fleet --backend <name>`` byte for
    byte.
    """
    if cluster is not None:
        backends = (cluster.backend_name,)
    cells = []
    for backend in backends:
        tenants = default_tenants((backend,), seed=seed)
        for rate in rates:
            plan = FaultPlan.uniform(rate, seed=seed)
            scheduler = FleetScheduler(
                tenants,
                seed=seed,
                max_workers=max_workers,
                faults=plan,
            )
            cells.append(
                ChaosCell(backend=backend, rate=rate, result=scheduler.run())
            )
    return ChaosReport(cells=cells, seed=seed)
