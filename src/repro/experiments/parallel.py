"""Deterministic parallel experiment harness.

Experiments decompose into *independent* units — repetitions of a tuning
session, per-workload figure rows — whose outcomes depend only on explicit
arguments and explicit seeds, never on execution order.  :func:`pmap` fans
such units over a process pool and returns results in submission order, so
the parallel output is identical, rep for rep, to the sequential loops in
:mod:`repro.experiments.harness` (asserted by ``tests/test_batch.py``).

Worker-count resolution: an explicit ``max_workers`` wins; otherwise the
``REPRO_MAX_WORKERS`` environment variable; otherwise ``os.cpu_count()``.
Whenever the effective count (clamped to the number of units) is 1 the pool
is skipped entirely and the work runs inline — single-core machines and CI
boxes pay zero pickling or fork overhead.

The pool is *warm*: the first ``pmap``/``imap`` call that needs ``n``
workers creates one lazily and every later call with the same effective
count reuses it, so consecutive fleet waves, chaos sweeps and drift cells
stop paying fork + re-import per call.  Workers install the published
shared-memory artifact refs (:mod:`repro.service.artifacts`) in their
initializer, once per process instead of once per job.  A request for a
different worker count (or a broken pool) retires the old executor and
builds a fresh one; :func:`shutdown_pool` retires it explicitly, and an
``atexit`` hook covers interpreter exit.  Correctness never depends on
pool reuse — jobs are pure functions of their arguments, and per-job state
like ``RUN_CACHE`` enablement is entered and exited inside the job body,
so nothing leaks between waves (guarded by ``tests/test_fleet_batch.py``).

Pools live in a *registry* keyed by group name (:data:`DEFAULT_GROUP` for
every classic caller).  A sharded fleet warms one pool per shard
(``"shard-0"``, ``"shard-1"``, ...) and the groups are independent: a
worker-count change or a ``BrokenProcessPool`` in one group retires only
that group's executor, never its siblings' — which is what confines a
crashed shard's blast radius to its own tenants.
"""

from __future__ import annotations

import atexit
import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Iterable, Sequence, TypeVar

from repro.cluster.hardware import ClusterSpec
from repro.core.session import TuningSession
from repro.experiments import harness
from repro.experiments.harness import DEFAULT_REPS

T = TypeVar("T")
R = TypeVar("R")

#: Environment override for the default worker count.
WORKERS_ENV = "REPRO_MAX_WORKERS"


def effective_workers(max_workers: int | None = None, n_items: int | None = None) -> int:
    """Resolve the worker count: explicit arg > env var > cpu count.

    Non-positive counts raise: a zero/negative pool is a config typo, and
    clamping it to 1 would silently serialize what the caller meant to fan
    out — the same ``ValueError`` path as a non-integer ``REPRO_MAX_WORKERS``.
    """
    if max_workers is None:
        env = os.environ.get(WORKERS_ENV, "").strip()
        if env:
            try:
                max_workers = int(env)
            except ValueError:
                raise ValueError(
                    f"{WORKERS_ENV}={env!r} is not an integer worker count"
                ) from None
            if max_workers <= 0:
                raise ValueError(
                    f"{WORKERS_ENV}={env!r} must be a positive worker count"
                )
        else:
            max_workers = os.cpu_count() or 1
    elif max_workers <= 0:
        raise ValueError(
            f"max_workers={max_workers} must be a positive worker count"
        )
    if n_items is not None:
        max_workers = min(max_workers, n_items)
    return max(1, max_workers)


# ---------------------------------------------------------------------------
# The warm persistent pool registry (one executor per named group).
# ---------------------------------------------------------------------------

#: The pool group every classic (un-sharded) caller shares.
DEFAULT_GROUP = ""

_POOLS: dict[str, ProcessPoolExecutor] = {}
_POOL_WORKERS: dict[str, int] = {}


def _init_worker(refs: list) -> None:
    """Worker initializer: install shared artifacts once per process."""
    if refs:
        from repro.service import artifacts

        artifacts.install(refs)


def _published_refs() -> list:
    # Imported lazily: the service layer imports this module at its own
    # import time, so a top-level import here would cycle.
    try:
        from repro.service import artifacts
    except ImportError:  # pragma: no cover - partial-init edge
        return []
    return artifacts.published_refs()


def warm_pool(workers: int, group: str = DEFAULT_GROUP) -> ProcessPoolExecutor:
    """The group's shared executor with ``workers`` workers, created lazily.

    Reused across calls with the same (group, count); a different count for
    the *same* group retires that group's old pool first (two live pools in
    one group would double its resident workers).  Distinct groups coexist —
    one per fleet shard — and never retire each other.  New workers resolve
    the artifact refs published so far in their initializer; refs published
    later still resolve per job.
    """
    pool = _POOLS.get(group)
    if pool is not None and _POOL_WORKERS[group] != workers:
        shutdown_pool(group)
        pool = None
    if pool is None:
        pool = ProcessPoolExecutor(
            max_workers=workers,
            initializer=_init_worker,
            initargs=(_published_refs(),),
        )
        _POOLS[group] = pool
        _POOL_WORKERS[group] = workers
    return pool


def shutdown_pool(group: str | None = None) -> None:
    """Retire one warm pool group — or every group when ``group`` is None.

    No-op for groups that are not live, so callers (and the ``atexit``
    hook) never need to know what was warmed.
    """
    names = list(_POOLS) if group is None else [group]
    for name in names:
        pool = _POOLS.pop(name, None)
        if pool is not None:
            _POOL_WORKERS.pop(name, None)
            pool.shutdown(wait=True, cancel_futures=True)


atexit.register(shutdown_pool)


def pmap(
    fn: Callable[[T], R],
    items: Iterable[T],
    max_workers: int | None = None,
    group: str = DEFAULT_GROUP,
) -> list[R]:
    """Map ``fn`` over ``items`` preserving order, in parallel when it pays.

    ``fn`` and every item must be picklable (``fn`` a module-level function).
    Results arrive in submission order regardless of completion order, which
    is what keeps parallel experiments deterministic.
    """
    items = list(items)
    workers = effective_workers(max_workers, len(items))
    if workers <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    try:
        return list(warm_pool(workers, group).map(fn, items))
    except BrokenProcessPool:
        # A worker died (OOM kill, hard crash): retire the poisoned pool so
        # the group's next call starts clean, then surface the failure.
        shutdown_pool(group)
        raise


def imap(
    fn: Callable[[T], R],
    items: Iterable[T],
    max_workers: int | None = None,
    group: str = DEFAULT_GROUP,
    force_pool: bool = False,
) -> Iterable[R]:
    """Like :func:`pmap`, but yields each result as it becomes *next*.

    Results still arrive strictly in submission order (so consumers stay
    deterministic); the difference is that the caller observes them one by
    one instead of after the whole batch — which is what lets the fleet
    scheduler checkpoint after every completed tenant instead of only at
    the end.

    Pooled work is submitted *eagerly*, at call time rather than at first
    ``next()``: a sharded fleet builds one ``imap`` stream per shard and
    interleaves them, and lazy submission would serialize the shards.
    ``force_pool`` routes even a 1-worker/1-item call through the group's
    pool — how each shard of a multi-shard fleet gets a real process of
    its own instead of running inline in the parent.
    """
    items = list(items)
    workers = effective_workers(max_workers, len(items))
    if not force_pool and (workers <= 1 or len(items) <= 1):
        return (fn(item) for item in items)
    if not items:
        return iter(())

    def stream(results: Iterable[R]) -> Iterable[R]:
        try:
            yield from results
        except BrokenProcessPool:
            shutdown_pool(group)
            raise

    try:
        return stream(warm_pool(workers, group).map(fn, items))
    except BrokenProcessPool:
        shutdown_pool(group)
        raise


# ---------------------------------------------------------------------------
# Parallel tuning sessions (the harness's ``run_sessions`` fanned over reps).
# ---------------------------------------------------------------------------


def run_sessions(
    cluster: ClusterSpec,
    workload_name: str,
    reps: int = DEFAULT_REPS,
    seed: int = 0,
    max_workers: int | None = None,
    **kwargs: Any,
) -> list[TuningSession]:
    """``reps`` independent tuning runs, auto-fanned over a process pool.

    A thin alias of :func:`repro.experiments.harness.run_sessions` whose
    ``max_workers`` defaults to auto-sizing instead of inline — there is one
    wrapper implementation, so the two entry points cannot drift.
    """
    return harness.run_sessions(
        cluster,
        workload_name,
        reps=reps,
        seed=seed,
        max_workers=effective_workers(max_workers, reps),
        **kwargs,
    )


# ---------------------------------------------------------------------------
# Per-workload figure fan-out.
# ---------------------------------------------------------------------------


def map_workloads(
    fn: Callable[[str], R],
    names: Sequence[str],
    max_workers: int | None = None,
) -> list[R]:
    """Fan a per-workload figure body over ``names`` (order preserved).

    Thin alias of :func:`pmap` that documents the common figure shape:
    ``fn`` computes one workload's row (measurements + sessions) and must be
    a module-level function closing over nothing unpicklable.
    """
    return pmap(fn, names, max_workers=max_workers)
