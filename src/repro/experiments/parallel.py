"""Deterministic parallel experiment harness.

Experiments decompose into *independent* units — repetitions of a tuning
session, per-workload figure rows — whose outcomes depend only on explicit
arguments and explicit seeds, never on execution order.  :func:`pmap` fans
such units over a process pool and returns results in submission order, so
the parallel output is identical, rep for rep, to the sequential loops in
:mod:`repro.experiments.harness` (asserted by ``tests/test_batch.py``).

Worker-count resolution: an explicit ``max_workers`` wins; otherwise the
``REPRO_MAX_WORKERS`` environment variable; otherwise ``os.cpu_count()``.
Whenever the effective count (clamped to the number of units) is 1 the pool
is skipped entirely and the work runs inline — single-core machines and CI
boxes pay zero pickling or fork overhead.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Iterable, Sequence, TypeVar

from repro.cluster.hardware import ClusterSpec
from repro.core.session import TuningSession
from repro.experiments import harness
from repro.experiments.harness import DEFAULT_REPS

T = TypeVar("T")
R = TypeVar("R")

#: Environment override for the default worker count.
WORKERS_ENV = "REPRO_MAX_WORKERS"


def effective_workers(max_workers: int | None = None, n_items: int | None = None) -> int:
    """Resolve the worker count: explicit arg > env var > cpu count.

    Non-positive counts raise: a zero/negative pool is a config typo, and
    clamping it to 1 would silently serialize what the caller meant to fan
    out — the same ``ValueError`` path as a non-integer ``REPRO_MAX_WORKERS``.
    """
    if max_workers is None:
        env = os.environ.get(WORKERS_ENV, "").strip()
        if env:
            try:
                max_workers = int(env)
            except ValueError:
                raise ValueError(
                    f"{WORKERS_ENV}={env!r} is not an integer worker count"
                ) from None
            if max_workers <= 0:
                raise ValueError(
                    f"{WORKERS_ENV}={env!r} must be a positive worker count"
                )
        else:
            max_workers = os.cpu_count() or 1
    elif max_workers <= 0:
        raise ValueError(
            f"max_workers={max_workers} must be a positive worker count"
        )
    if n_items is not None:
        max_workers = min(max_workers, n_items)
    return max(1, max_workers)


def pmap(
    fn: Callable[[T], R], items: Iterable[T], max_workers: int | None = None
) -> list[R]:
    """Map ``fn`` over ``items`` preserving order, in parallel when it pays.

    ``fn`` and every item must be picklable (``fn`` a module-level function).
    Results arrive in submission order regardless of completion order, which
    is what keeps parallel experiments deterministic.
    """
    items = list(items)
    workers = effective_workers(max_workers, len(items))
    if workers <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(fn, items))


def imap(
    fn: Callable[[T], R], items: Iterable[T], max_workers: int | None = None
) -> Iterable[R]:
    """Like :func:`pmap`, but yields each result as it becomes *next*.

    Results still arrive strictly in submission order (so consumers stay
    deterministic); the difference is that the caller observes them one by
    one instead of after the whole batch — which is what lets the fleet
    scheduler checkpoint after every completed tenant instead of only at
    the end.
    """
    items = list(items)
    workers = effective_workers(max_workers, len(items))
    if workers <= 1 or len(items) <= 1:
        for item in items:
            yield fn(item)
        return
    with ProcessPoolExecutor(max_workers=workers) as pool:
        yield from pool.map(fn, items)


# ---------------------------------------------------------------------------
# Parallel tuning sessions (the harness's ``run_sessions`` fanned over reps).
# ---------------------------------------------------------------------------


def run_sessions(
    cluster: ClusterSpec,
    workload_name: str,
    reps: int = DEFAULT_REPS,
    seed: int = 0,
    max_workers: int | None = None,
    **kwargs: Any,
) -> list[TuningSession]:
    """``reps`` independent tuning runs, auto-fanned over a process pool.

    A thin alias of :func:`repro.experiments.harness.run_sessions` whose
    ``max_workers`` defaults to auto-sizing instead of inline — there is one
    wrapper implementation, so the two entry points cannot drift.
    """
    return harness.run_sessions(
        cluster,
        workload_name,
        reps=reps,
        seed=seed,
        max_workers=effective_workers(max_workers, reps),
        **kwargs,
    )


# ---------------------------------------------------------------------------
# Per-workload figure fan-out.
# ---------------------------------------------------------------------------


def map_workloads(
    fn: Callable[[str], R],
    names: Sequence[str],
    max_workers: int | None = None,
) -> list[R]:
    """Fan a per-workload figure body over ``names`` (order preserved).

    Thin alias of :func:`pmap` that documents the common figure shape:
    ``fn`` computes one workload's row (measurements + sessions) and must be
    a module-level function closing over nothing unpicklable.
    """
    return pmap(fn, names, max_workers=max_workers)
