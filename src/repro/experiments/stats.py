"""Statistics helpers: means and 90% confidence intervals (paper §5.1)."""

from __future__ import annotations

import math

import numpy as np
from scipy import stats as sps


def mean_ci90(values: list[float]) -> tuple[float, float]:
    """(mean, half-width of the 90% CI) using the t-distribution."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        return float("nan"), float("nan")
    mean = float(arr.mean())
    if arr.size == 1:
        return mean, 0.0
    sem = float(arr.std(ddof=1) / math.sqrt(arr.size))
    half = float(sps.t.ppf(0.95, arr.size - 1) * sem)
    return mean, half
