"""Statistics helpers: means and 90% confidence intervals (paper §5.1).

The 90% two-sided CI needs the one-sided 95% Student-t critical value.  A
table plus the standard large-df expansion replaces ``scipy.stats.t.ppf`` —
importing scipy costs ~0.65 s of interpreter startup, which dominated the
benchmark suite's fixed overhead, and every experiment here has df ≤ 30
where the tabulated values are exact to 4 decimals.
"""

from __future__ import annotations

import math

import numpy as np

#: One-sided 95% critical values of the t-distribution, indexed by df (1-30).
_T95 = (
    6.3138, 2.9200, 2.3534, 2.1318, 2.0150, 1.9432, 1.8946, 1.8595, 1.8331,
    1.8125, 1.7959, 1.7823, 1.7709, 1.7613, 1.7531, 1.7459, 1.7396, 1.7341,
    1.7291, 1.7247, 1.7207, 1.7171, 1.7139, 1.7109, 1.7081, 1.7056, 1.7033,
    1.7011, 1.6991, 1.6973,
)

#: Standard normal 95% quantile (the df → ∞ limit).
_Z95 = 1.6448536269514722


def t95(df: int) -> float:
    """One-sided 95% t critical value for ``df`` degrees of freedom."""
    if df < 1:
        raise ValueError(f"degrees of freedom must be >= 1, got {df}")
    if df <= len(_T95):
        return _T95[df - 1]
    # Cornish-Fisher expansion around the normal quantile; error < 1e-4
    # for df > 30.
    z = _Z95
    return z + (z**3 + z) / (4 * df) + (5 * z**5 + 16 * z**3 + 3 * z) / (96 * df**2)


def mean_ci90(values: list[float]) -> tuple[float, float]:
    """(mean, half-width of the 90% CI) using the t-distribution."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        return float("nan"), float("nan")
    mean = float(arr.mean())
    if arr.size == 1:
        return mean, 0.0
    sem = float(arr.std(ddof=1) / math.sqrt(arr.size))
    half = float(t95(arr.size - 1) * sem)
    return mean, half
