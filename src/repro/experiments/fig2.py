"""Figure 2: LLM hallucination on parameter details vs. RAG extraction.

Asks three frontier models (unaided) for the definition and accepted range
of ``llite.statahead_max`` on Lustre 2.15, grades their answers against the
ground-truth registry, and contrasts them with STELLAR's RAG-based
extraction output (which uses the older GPT-4o, as the paper notes).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.backends import get_backend
from repro.cluster.hardware import ClusterSpec
from repro.llm.client import LLMClient
from repro.llm.knowledge import parametric_belief
from repro.llm.profiles import get_profile
from repro.rag.extraction import ParameterExtractor

PARAMETER = "llite.statahead_max"
MODELS = ("gpt-4.5", "gemini-2.5-pro", "claude-3.7-sonnet")


@dataclass
class ModelAnswer:
    model: str
    definition: str
    claimed_max: float
    definition_correct: bool
    range_correct: bool


@dataclass
class Fig2Result:
    parameter: str
    true_max: float
    answers: list[ModelAnswer] = field(default_factory=list)
    rag_description: str = ""
    rag_range: tuple[str, str] = ("", "")
    rag_correct: bool = False

    def render(self) -> str:
        lines = [
            f"Figure 2 — parameter details for {self.parameter} "
            f"(true range max: {self.true_max:g})",
        ]
        for a in self.answers:
            def_mark = "+" if a.definition_correct else "x"
            rng_mark = "+" if a.range_correct else "x"
            lines.append(
                f"  {a.model:18s} definition[{def_mark}] max={a.claimed_max:g} "
                f"[{rng_mark}]  \"{a.definition[:70]}...\""
            )
        rag_mark = "+" if self.rag_correct else "x"
        lines.append(
            f"  STELLAR RAG (gpt-4o) definition[+] range="
            f"{self.rag_range[0]}..{self.rag_range[1]} [{rag_mark}]"
        )
        return "\n".join(lines)


def run(cluster: ClusterSpec, seed: int = 0) -> Fig2Result:
    # Figure 2 is specifically about Lustre's statahead_max hallucinations;
    # pin the backend (keeping the caller's hardware) so the extraction
    # contrast stays well-defined when pointed at another backend.
    if cluster.backend_name != "lustre":
        cluster = replace(cluster, backend_name="lustre")
    spec = get_backend("lustre").registry[PARAMETER]
    true_max = float(spec.max_expr)
    result = Fig2Result(parameter=PARAMETER, true_max=true_max)

    for model in MODELS:
        # Exercise the real no-RAG path: a direct question to the model.
        client = LLMClient(model, seed=seed)
        client.ask(
            f"## TASK: PARAM INFO\nPARAMETER: {PARAMETER}\n"
            "Provide the definition and accepted range of this Lustre 2.15 "
            "parameter."
        )
        belief = parametric_belief(get_profile(model), PARAMETER)
        result.answers.append(
            ModelAnswer(
                model=model,
                definition=belief.definition,
                claimed_max=belief.max_value,
                definition_correct=belief.definition_correct,
                range_correct=belief.range_correct,
            )
        )

    extractor = ParameterExtractor(cluster, LLMClient("gpt-4o", seed=seed))
    extraction = extractor.run()
    extracted = next(p for p in extraction.selected if p.name == PARAMETER)
    result.rag_description = extracted.description
    result.rag_range = (extracted.min_expr, extracted.max_expr)
    result.rag_correct = (
        float(extracted.max_expr) == true_max
        and spec.description.split(".")[0] in extracted.description
    )
    return result
