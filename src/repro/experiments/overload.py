"""Overload sweep: the tuning service under rising offered load.

For every backend the sweep offers increasing submission bursts to a
:class:`~repro.service.daemon.TuningService` guarded by a deliberately
tight :class:`~repro.service.admission.AdmissionPolicy` and reports, per
cell: how much load was admitted, what was shed (split by cause — the
per-principal rate limit vs global backpressure), how deep admitted
tenants queued (the wall-clock-free latency analogue: queue depth at
admission, in slots), and how the admitted work ended (completed vs
quarantined).

Two invariants the render asserts in prose and CI asserts in bytes:

- **Sheds are deterministic.**  Admission is a pure function of the
  submission sequence, so the shed set is identical at any worker count.
- **No admitted tenant is lost.**  Every admitted submission ends as a
  completed result or a quarantine report; shedding is explicit, never
  silent.

The rendered report contains no wall-clock lines, so it is byte-identical
across worker counts — the whole report is a determinism fixture.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.backends import list_backends
from repro.cluster.hardware import ClusterSpec
from repro.faults.plan import FaultPlan
from repro.service import FleetResult, TenantSpec, TuningService
from repro.service.admission import AdmissionPolicy

#: The full sweep covers every registered backend.
BACKENDS = tuple(list_backends())

#: Offered loads (submissions per burst), small-to-swamped.
DEFAULT_LOADS = (4, 8, 16)

#: The deliberately tight front door the sweep drives load against.
DEFAULT_ADMISSION = AdmissionPolicy(max_pending=6, per_tenant_limit=2, window=12)

#: Principals sharing the service; tenant i belongs to account i mod N.
PRINCIPALS = 3

#: One cheap workload per tenant, cycled by index.
_WORKLOADS = ("IOR_16M", "MDWorkbench_8K", "IOR_64K", "IO500")


def offered_tenants(backend: str, load: int, seed: int) -> list[TenantSpec]:
    """The burst of ``load`` submissions offered to one cell's service.

    Hierarchical ids (``acctN/jobM``) make the rate limit bite per
    account; seeds are strictly increasing in submission order, so the
    drained fleet's canonical order matches submission order.
    """
    return [
        TenantSpec(
            tenant_id=f"{backend[:2]}-acct{i % PRINCIPALS}/job{i:02d}",
            backend=backend,
            workloads=(_WORKLOADS[i % len(_WORKLOADS)],),
            seed=seed * 100_000 + load * 100 + i,
        )
        for i in range(load)
    ]


@dataclass
class OverloadCell:
    """One (backend, offered load) burst against the service."""

    backend: str
    offered: int
    admitted: int
    shed_rate: int
    shed_backpressure: int
    queue_depths: list[int]
    result: FleetResult

    @property
    def shed(self) -> int:
        return self.shed_rate + self.shed_backpressure

    @property
    def completed(self) -> int:
        return len(self.result.tenants)

    @property
    def quarantined(self) -> int:
        return len(self.result.failures)

    @property
    def completion_rate(self) -> float:
        if not self.admitted:
            return 1.0
        return self.completed / self.admitted

    @property
    def mean_queue_depth(self) -> float:
        """Mean queue depth at admission over admitted tenants (slots)."""
        if not self.queue_depths:
            return 0.0
        return sum(self.queue_depths) / len(self.queue_depths)


@dataclass
class OverloadReport:
    """Every cell of the sweep plus the service's loss accounting."""

    cells: list[OverloadCell] = field(default_factory=list)
    seed: int = 0
    rate: float = 0.0

    def render(self) -> str:
        lines = [
            "Overload sweep: admission control under rising offered load "
            f"(seed {self.seed}, fault rate {self.rate:.2f})"
        ]
        lines.append(
            "  load table: backend offered admitted shed(rate) shed(press) "
            "completed quarantined completion queue_depth"
        )
        for cell in self.cells:
            lines.append(
                f"    {cell.backend:8s} {cell.offered:7d} {cell.admitted:8d} "
                f"{cell.shed_rate:10d} {cell.shed_backpressure:11d} "
                f"{cell.completed:9d} {cell.quarantined:11d} "
                f"{cell.completion_rate:10.2f} {cell.mean_queue_depth:11.2f}"
            )
        lines.append(
            "  contract: offered = admitted + shed; every admitted tenant "
            "completed or was quarantined (none lost); sheds are a pure "
            "function of the submission sequence"
        )
        return "\n".join(lines)


def run(
    cluster: ClusterSpec | None = None,
    seed: int = 0,
    backends: tuple[str, ...] = BACKENDS,
    loads: tuple[int, ...] = DEFAULT_LOADS,
    admission: AdmissionPolicy = DEFAULT_ADMISSION,
    rate: float = 0.0,
    max_workers: int | None = None,
    shards: int = 1,
) -> OverloadReport:
    """Run the overload sweep.

    ``cluster`` is accepted for signature parity with the figure
    experiments (its backend selects a single-backend sweep); ``rate``
    arms a uniform fault plan so overload and fault pressure compose.
    Execution is deferred to drain (no auto-pump), so the queue genuinely
    builds up and the backpressure bound genuinely binds.  ``shards``
    spreads drain execution across worker groups; sheds and results are
    invariant to it (hierarchical ids keep each account on one shard).
    """
    if cluster is not None:
        backends = (cluster.backend_name,)
    plan = FaultPlan.uniform(rate, seed=seed) if rate > 0.0 else None
    cells = []
    for backend in backends:
        for load in loads:
            service = TuningService(
                seed=seed,
                max_workers=max_workers,
                faults=plan,
                admission=admission,
                pump_interval=None,
                shards=shards,
            )
            depths = []
            for spec in offered_tenants(backend, load, seed):
                depth = service.admission.pending
                decision = service.submit(spec)
                if decision.accepted:
                    depths.append(depth)
            result = service.drain()
            shed = service.admission.shed()
            shed_rate = sum(1 for d in shed if d.reason.startswith("rate"))
            shed_press = sum(
                1 for d in shed if d.reason.startswith("backpressure")
            )
            admitted = load - len(shed)
            if admitted != len(result.outcomes):  # pragma: no cover
                raise AssertionError(
                    f"admitted tenant lost: {admitted} admitted, "
                    f"{len(result.outcomes)} accounted for"
                )
            cells.append(
                OverloadCell(
                    backend=backend,
                    offered=load,
                    admitted=admitted,
                    shed_rate=shed_rate,
                    shed_backpressure=shed_press,
                    queue_depths=depths,
                    result=result,
                )
            )
    return OverloadReport(cells=cells, seed=seed, rate=rate)
