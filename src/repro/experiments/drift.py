"""Workload drift: static one-shot tuning vs online re-tuning vs oracle.

The scenario the online-tuning literature (IOPathTune, DIAL) attacks and a
static tuner cannot: the workload changes *under* the configuration.  For
every (backend, schedule) cell this experiment compares three strategies on
the same seeded :class:`~repro.workloads.dynamic.Schedule`:

- **static** — the paper's protocol: one tuning run on the first segment's
  workload, configuration frozen for the whole schedule;
- **online** — the same initial tune, then the
  :class:`~repro.agents.online.OnlineController` watches the monitor stream
  and re-tunes (bounded sessions, accumulated rules) when drift leaves the
  hysteresis band; the new configuration applies from the next segment;
- **oracle** — an upper bound: every segment runs under a configuration tuned
  specifically for its workload (clairvoyant per-segment re-tuning with no
  detection lag).

Strategies are decided once (a deterministic decision pass), then their
per-segment configuration sequences are measured with ``reps`` repetitions of
:meth:`Simulator.run_schedule` under shared seeds — so totals differ only
through the configurations, never the noise draws.  Tuning-probe executions
are reported separately (``retunes``, ``tuning_executions``); the headline
totals measure serving time only.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.agents.online import DriftDetector, OnlineController
from repro.backends import list_backends
from repro.cluster.hardware import ClusterSpec, make_cluster
from repro.core.engine import Stellar
from repro.experiments.harness import DEFAULT_REPS, Measurement, shared_extraction
from repro.pfs.config import PfsConfig
from repro.pfs.simulator import Simulator
from repro.sim.cache import RUN_CACHE
from repro.sim.random import RngStreams
from repro.workloads.dynamic import (
    DEFAULT_SEGMENTS,
    SCHEDULE_KINDS,
    Schedule,
    build_schedule,
)

#: The full grid covers every registered backend.
BACKENDS = tuple(list_backends())


@dataclass
class DriftCell:
    """One (backend, schedule) comparison."""

    backend: str
    schedule: Schedule
    static: Measurement
    online: Measurement
    oracle: Measurement
    retunes: int = 0
    retune_segments: list[int] = field(default_factory=list)
    tuning_executions: int = 0

    @property
    def online_speedup(self) -> float:
        return self.static.mean / self.online.mean

    @property
    def oracle_speedup(self) -> float:
        return self.static.mean / self.oracle.mean

    def render(self) -> str:
        return (
            f"  {self.backend:8s} {self.schedule.name:12s} "
            f"static {self.static.mean:7.1f}s | "
            f"online {self.online.mean:7.1f}s ({self.online_speedup:.2f}x, "
            f"{self.retunes} retune(s) at {self.retune_segments}, "
            f"{self.tuning_executions} probe runs) | "
            f"oracle {self.oracle.mean:7.1f}s ({self.oracle_speedup:.2f}x)"
        )


@dataclass
class DriftResult:
    cells: list[DriftCell] = field(default_factory=list)

    def render(self) -> str:
        lines = [
            "Workload drift: static one-shot vs online re-tuning vs "
            "oracle-per-segment (schedule wall time, lower is better)"
        ]
        lines.extend(cell.render() for cell in self.cells)
        online_wins = sum(1 for c in self.cells if c.online_speedup > 1.0)
        lines.append(
            f"  online re-tuning beats the static tune in "
            f"{online_wins}/{len(self.cells)} (backend, schedule) cells"
        )
        return "\n".join(lines)


def _decision_root(seed: int) -> int:
    """Seed space for the online decision pass, disjoint from measurement."""
    return RngStreams(seed).spawn("drift:decision").seed


def _measure(
    sim: Simulator, schedule: Schedule, configs, reps: int, seed: int, label: str
) -> Measurement:
    """``reps`` schedule runs; rep ``r`` replays seed ``rep_seed(seed, r)``."""
    outcome = Measurement(label=label)
    for rep in range(reps):
        runs = sim.run_schedule(schedule, configs, seed=RngStreams.rep_seed(seed, rep))
        outcome.times.append(sum(run.seconds for run in runs))
    return outcome


def run_cell(
    cluster: ClusterSpec,
    schedule: Schedule,
    reps: int = DEFAULT_REPS,
    seed: int = 0,
    band: float = 0.5,
    max_retunes: int = 3,
) -> DriftCell:
    """Compare the three strategies on one backend and one schedule.

    The whole cell runs under the process-wide run cache: the three
    strategies measure the same segments under shared seeds, so wherever
    their configurations coincide (the online arm before its first re-tune
    repeats the static arm, the oracle arm repeats whole tuning sessions)
    the deterministic results are shared instead of re-simulated.  Serving
    measurements go through :meth:`Simulator.run_schedule`, which sweeps
    each workload's distinct per-segment configurations columnar.
    """
    with RUN_CACHE.enabled():
        return _run_cell(cluster, schedule, reps, seed, band, max_retunes)


def _run_cell(
    cluster: ClusterSpec,
    schedule: Schedule,
    reps: int,
    seed: int,
    band: float,
    max_retunes: int,
) -> DriftCell:
    extraction = shared_extraction(cluster, seed=seed)
    sim = Simulator(cluster)
    base = PfsConfig(facts=cluster.config_facts(), backend=cluster.backend)

    def engine() -> Stellar:
        return Stellar(
            cluster=cluster,
            model="claude-3.7-sonnet",
            extraction=extraction,
            seed=seed,
        )

    # -- static: one-shot tune on the first segment, frozen ----------------
    static_session = engine().tune(schedule[0].workload)
    static_config = base.with_updates(static_session.best_config).clipped()

    # -- online: decision pass over the schedule ---------------------------
    controller = OnlineController(
        engine(),
        detector=DriftDetector(band=band),
        max_retunes=max_retunes,
    )
    controller.start(schedule[0].workload)
    decision_root = _decision_root(seed)
    online_configs = []
    for segment in schedule:
        config = controller.config(base)
        online_configs.append(config)
        if segment.index == schedule[-1].index:
            # No segment follows, so a re-tune triggered here could never
            # be applied — don't spend probe runs (or a re-tune slot) on it.
            break
        controller.probe(
            sim,
            segment.index,
            segment.workload,
            config,
            seed=RngStreams.rep_seed(decision_root, segment.index),
        )

    # -- oracle: clairvoyant per-segment tuning ----------------------------
    oracle_engine = engine()
    oracle_by_workload: dict[tuple, PfsConfig] = {}
    oracle_configs = []
    for segment in schedule:
        key = segment.workload.cache_key()
        if key not in oracle_by_workload:
            session = oracle_engine.tune_and_accumulate(segment.workload)
            oracle_by_workload[key] = base.with_updates(session.best_config).clipped()
        oracle_configs.append(oracle_by_workload[key])

    return DriftCell(
        backend=cluster.backend_name,
        schedule=schedule,
        static=_measure(sim, schedule, static_config, reps, seed, "static"),
        online=_measure(sim, schedule, online_configs, reps, seed, "online"),
        oracle=_measure(sim, schedule, oracle_configs, reps, seed, "oracle"),
        retunes=len(controller.retunes),
        retune_segments=[event.segment_index for event in controller.retunes],
        tuning_executions=controller.tuning_executions,
    )


def run(
    cluster: ClusterSpec | None = None,
    reps: int = DEFAULT_REPS,
    seed: int = 0,
    schedules=SCHEDULE_KINDS,
    backends=BACKENDS,
    n_segments: int = DEFAULT_SEGMENTS,
) -> DriftResult:
    """Every (backend, schedule) cell.

    ``cluster`` (if given) serves as the testbed for its own backend; the
    other backends get an identically-sized default testbed — the same
    convention as the cross-backend transfer experiment.
    """
    result = DriftResult()
    for backend_name in backends:
        if cluster is not None and cluster.backend_name == backend_name:
            testbed = cluster
        else:
            testbed = make_cluster(seed=seed, backend=backend_name)
        for kind in schedules:
            schedule = build_schedule(kind, seed=seed, n_segments=n_segments)
            result.cells.append(
                run_cell(testbed, schedule, reps=reps, seed=seed)
            )
    return result
