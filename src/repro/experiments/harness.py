"""Shared experiment machinery: repeated measurements and tuning sessions."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.hardware import ClusterSpec, make_cluster
from repro.core.engine import Stellar
from repro.core.session import TuningSession
from repro.experiments.stats import mean_ci90
from repro.pfs.config import PfsConfig
from repro.pfs.simulator import Simulator
from repro.rag.extraction import ExtractionResult
from repro.workloads import get_workload

#: The paper runs each case eight times.
DEFAULT_REPS = 8

_EXTRACTION_CACHE: dict[int, ExtractionResult] = {}


def shared_extraction(cluster: ClusterSpec, seed: int = 0) -> ExtractionResult:
    """The offline phase is deterministic; share it across experiments."""
    key = seed
    if key not in _EXTRACTION_CACHE:
        _EXTRACTION_CACHE[key] = Stellar.build(cluster, seed=seed).extraction
    return _EXTRACTION_CACHE[key]


@dataclass
class Measurement:
    """Repeated wall-time measurement of one configuration."""

    label: str
    times: list[float] = field(default_factory=list)

    @property
    def mean(self) -> float:
        return mean_ci90(self.times)[0]

    @property
    def ci90(self) -> float:
        return mean_ci90(self.times)[1]

    def render(self) -> str:
        return f"{self.label}: {self.mean:.2f}s +/- {self.ci90:.2f} (90% CI)"


def measure_config(
    cluster: ClusterSpec,
    workload_name: str,
    updates: dict[str, int],
    label: str,
    reps: int = DEFAULT_REPS,
    seed: int = 0,
) -> Measurement:
    """Run one configuration ``reps`` times with hygiene between runs."""
    sim = Simulator(cluster)
    facts = {
        "system_memory_mb": cluster.system_memory_mb,
        "n_ost": cluster.n_ost,
    }
    config = PfsConfig(facts=facts).with_updates(updates).clipped()
    times = []
    for rep in range(reps):
        workload = get_workload(workload_name)
        run = sim.run(workload, config, seed=seed * 5000 + rep)
        times.append(run.seconds)
    return Measurement(label=label, times=times)


def run_sessions(
    cluster: ClusterSpec,
    workload_name: str,
    reps: int = DEFAULT_REPS,
    seed: int = 0,
    model: str = "claude-3.7-sonnet",
    extraction: ExtractionResult | None = None,
    rule_engine: Stellar | None = None,
    **tune_kwargs,
) -> list[TuningSession]:
    """``reps`` independent tuning runs (fresh rules unless an engine with
    accumulated rules is supplied)."""
    if extraction is None:
        extraction = shared_extraction(cluster)
    sessions = []
    for rep in range(reps):
        if rule_engine is not None:
            engine = Stellar(
                cluster=cluster, model=model, extraction=extraction, seed=seed + rep
            )
            engine.rule_set = rule_engine.rule_set
        else:
            engine = Stellar(
                cluster=cluster, model=model, extraction=extraction, seed=seed + rep
            )
        sessions.append(engine.tune(get_workload(workload_name), **tune_kwargs))
    return sessions


def accumulate_rules(
    cluster: ClusterSpec,
    workload_names: list[str],
    seed: int = 0,
    model: str = "claude-3.7-sonnet",
    extraction: ExtractionResult | None = None,
) -> Stellar:
    """Tune each workload once, merging rules into a global set (§5.3)."""
    if extraction is None:
        extraction = shared_extraction(cluster)
    engine = Stellar(cluster=cluster, model=model, extraction=extraction, seed=seed)
    for name in workload_names:
        engine.tune_and_accumulate(get_workload(name))
    return engine


def mean_series(sessions: list[TuningSession], length: int = 6) -> list[float]:
    """Mean speedup per iteration across sessions (padded with last value)."""
    rows = []
    for session in sessions:
        series = session.speedup_series()
        padded = series + [series[-1]] * (length - len(series))
        rows.append(padded[:length])
    return [sum(col) / len(col) for col in zip(*rows)]
