"""Shared experiment machinery: repeated measurements and tuning sessions."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.hardware import ClusterSpec, make_cluster
from repro.core.engine import Stellar
from repro.core.session import TuningSession
from repro.experiments.stats import mean_ci90
from repro.pfs.config import PfsConfig
from repro.pfs.simulator import Simulator
from repro.rag.extraction import ExtractionResult
from repro.workloads import get_workload

#: The paper runs each case eight times.
DEFAULT_REPS = 8

_EXTRACTION_CACHE: dict[tuple[str, int], ExtractionResult] = {}


def shared_extraction(cluster: ClusterSpec, seed: int = 0) -> ExtractionResult:
    """The offline phase is deterministic; share it across experiments."""
    key = (cluster.backend_name, seed)
    if key not in _EXTRACTION_CACHE:
        _EXTRACTION_CACHE[key] = Stellar.build(cluster, seed=seed).extraction
    return _EXTRACTION_CACHE[key]


@dataclass
class Measurement:
    """Repeated wall-time measurement of one configuration."""

    label: str
    times: list[float] = field(default_factory=list)

    @property
    def mean(self) -> float:
        return mean_ci90(self.times)[0]

    @property
    def ci90(self) -> float:
        return mean_ci90(self.times)[1]

    def render(self) -> str:
        return f"{self.label}: {self.mean:.2f}s +/- {self.ci90:.2f} (90% CI)"


def measure_config(
    cluster: ClusterSpec,
    workload_name: str,
    updates: dict[str, int],
    label: str,
    reps: int = DEFAULT_REPS,
    seed: int = 0,
) -> Measurement:
    """Run one configuration ``reps`` times with hygiene between runs.

    All reps share a single model evaluation (the config is identical), with
    per-rep noise seeded via :meth:`RngStreams.rep_seed` — the same
    derivation every repeated-run call site uses.  Implemented over
    :func:`measure_configs`, so results are served from the process-wide run
    cache when an enclosing experiment enabled it.
    """
    return measure_configs(
        cluster, workload_name, [updates], [label], reps=reps, seed=seed
    )[0]


def measure_configs(
    cluster: ClusterSpec,
    workload_name: str,
    updates_list: list[dict[str, int]],
    labels: list[str],
    reps: int = DEFAULT_REPS,
    seed: int = 0,
) -> list[Measurement]:
    """Measure several configurations of one workload in a single sweep.

    The cartesian (config x rep-seed) grid (:func:`repro.sim.batch.grid_items`)
    goes through the columnar sweep engine, so the candidate axis is costed
    in one structure-of-arrays pass; results are bit-identical to calling
    :func:`measure_config` per entry.  Cache enablement is left to the
    *enclosing experiment* (drift cells, crossfs, the oracle search wrap
    themselves in ``RUN_CACHE.enabled()``): strategies re-measuring the same
    (workload, config, seed) cells then share one set of results, while a
    bare measurement — the figure benchmarks time these — always performs a
    fixed amount of work.
    """
    from repro.sim.batch import grid_items
    from repro.sim.random import RngStreams
    from repro.sim.sweep import run_items

    if len(updates_list) != len(labels):
        raise ValueError("updates_list and labels must align")
    sim = Simulator(cluster)
    base = PfsConfig(facts=cluster.config_facts(), backend=cluster.backend)
    configs = [base.with_updates(updates).clipped() for updates in updates_list]
    workload = get_workload(workload_name)
    seeds = [RngStreams.rep_seed(seed, rep) for rep in range(reps)]
    runs = run_items(sim, grid_items(workload, configs, seeds))
    return [
        Measurement(
            label=label,
            times=[run.seconds for run in runs[index * reps : (index + 1) * reps]],
        )
        for index, label in enumerate(labels)
    ]


def one_session(
    cluster: ClusterSpec,
    workload_name: str,
    model: str,
    extraction: ExtractionResult,
    rule_set,
    engine_seed: int,
    tune_kwargs: dict,
) -> TuningSession:
    """One independent tuning run — THE per-rep body.

    Both the sequential loop below and the process-pool fan-out in
    :mod:`repro.experiments.parallel` call this, so the two paths cannot
    drift apart.
    """
    engine = Stellar(
        cluster=cluster, model=model, extraction=extraction, seed=engine_seed
    )
    if rule_set is not None:
        engine.rule_set = rule_set
    return engine.tune(get_workload(workload_name), **tune_kwargs)


def _session_job(args: tuple) -> TuningSession:
    """Picklable adapter: one jobs-tuple -> :func:`one_session`."""
    return one_session(*args)


def run_sessions(
    cluster: ClusterSpec,
    workload_name: str,
    reps: int = DEFAULT_REPS,
    seed: int = 0,
    model: str = "claude-3.7-sonnet",
    extraction: ExtractionResult | None = None,
    rule_engine: Stellar | None = None,
    rule_set=None,
    max_workers: int | None = 1,
    **tune_kwargs,
) -> list[TuningSession]:
    """``reps`` independent tuning runs (fresh rules unless an accumulated
    ``rule_set`` — or an engine carrying one — is supplied).

    Rep ``i`` seeds its engine ``seed + i``.  This is THE sessions wrapper:
    ``max_workers=1`` (the default) runs inline; anything else fans the reps
    over :func:`repro.experiments.parallel.pmap` with identical results
    (``None`` = auto-size from the machine).
    """
    if extraction is None:
        extraction = shared_extraction(cluster)
    if rule_set is None and rule_engine is not None:
        rule_set = rule_engine.rule_set
    jobs = [
        (cluster, workload_name, model, extraction, rule_set, seed + rep, tune_kwargs)
        for rep in range(reps)
    ]
    if max_workers == 1:
        return [one_session(*job) for job in jobs]
    from repro.experiments.parallel import pmap  # import cycle: parallel uses us

    return pmap(_session_job, jobs, max_workers=max_workers)


def accumulate_rules(
    cluster: ClusterSpec,
    workload_names: list[str],
    seed: int = 0,
    model: str = "claude-3.7-sonnet",
    extraction: ExtractionResult | None = None,
) -> Stellar:
    """Tune each workload once, merging rules into a global set (§5.3)."""
    if extraction is None:
        extraction = shared_extraction(cluster)
    engine = Stellar(cluster=cluster, model=model, extraction=extraction, seed=seed)
    for name in workload_names:
        engine.tune_and_accumulate(get_workload(name))
    return engine


def mean_series(sessions: list[TuningSession], length: int = 6) -> list[float]:
    """Mean speedup per iteration across sessions (padded with last value)."""
    rows = []
    for session in sessions:
        series = session.speedup_series()
        padded = series + [series[-1]] * (length - len(series))
        rows.append(padded[:length])
    return [sum(col) / len(col) for col in zip(*rows)]
