"""Extension experiment: the exploration-cost argument, quantified (§3).

The paper argues that search-based autotuners are impractical because they
need hundreds to thousands of application executions.  This table runs an
oracle coordinate-descent search (a generous stand-in: it greedily exploits
the same simulator) next to STELLAR and reports executions-to-result for
both.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.search import OracleSearch
from repro.cluster.hardware import ClusterSpec
from repro.experiments.harness import run_sessions, shared_extraction
from repro.workloads import get_workload

WORKLOADS = ("IOR_64K", "IOR_16M", "MDWorkbench_8K")


@dataclass
class CostRow:
    workload: str
    stellar_speedup: float
    stellar_executions: int
    search_speedup: float
    search_evaluations: int

    @property
    def execution_ratio(self) -> float:
        return self.search_evaluations / max(1, self.stellar_executions)

    def render(self) -> str:
        return (
            f"{self.workload:16s} STELLAR {self.stellar_speedup:4.2f}x in "
            f"{self.stellar_executions} runs | search {self.search_speedup:4.2f}x "
            f"in {self.search_evaluations} runs ({self.execution_ratio:.0f}x more)"
        )


@dataclass
class AutotunerCostResult:
    rows: list[CostRow] = field(default_factory=list)

    def get(self, workload: str) -> CostRow:
        return next(r for r in self.rows if r.workload == workload)

    def render(self) -> str:
        lines = ["Exploration cost: STELLAR vs search-based tuning (§3 argument):"]
        lines += ["  " + r.render() for r in self.rows]
        return "\n".join(lines)


def run(cluster: ClusterSpec, seed: int = 0) -> AutotunerCostResult:
    extraction = shared_extraction(cluster)
    result = AutotunerCostResult()
    for name in WORKLOADS:
        sessions = run_sessions(
            cluster, name, reps=2, seed=seed, extraction=extraction
        )
        stellar_speedup = sum(s.best_speedup for s in sessions) / len(sessions)
        stellar_executions = max(s.executions for s in sessions)
        search = OracleSearch(cluster, seed=seed, max_rounds=1).run(
            get_workload(name)
        )
        result.rows.append(
            CostRow(
                workload=name,
                stellar_speedup=stellar_speedup,
                stellar_executions=stellar_executions,
                search_speedup=search.speedup,
                search_evaluations=search.evaluations,
            )
        )
    return result
