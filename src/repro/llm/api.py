"""Chat/tool-call API types (provider-neutral)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Protocol

from repro.llm.tokens import TokenUsage


@dataclass
class ChatMessage:
    """One conversation turn."""

    role: str  # "system" | "user" | "assistant" | "tool"
    content: str

    def __post_init__(self):
        if self.role not in ("system", "user", "assistant", "tool"):
            raise ValueError(f"invalid role {self.role!r}")


@dataclass(frozen=True)
class ToolSpec:
    """A tool the model may call."""

    name: str
    description: str
    parameters: dict[str, str] = field(default_factory=dict)  # arg -> description

    def render(self) -> str:
        args = ", ".join(f"{k}: {v}" for k, v in self.parameters.items())
        return f"- {self.name}({args}): {self.description}"


@dataclass
class ToolCall:
    """A tool invocation emitted by the model."""

    name: str
    arguments: dict[str, Any] = field(default_factory=dict)


@dataclass
class Completion:
    """Model response: text content and/or tool calls, plus usage."""

    content: str = ""
    tool_calls: list[ToolCall] = field(default_factory=list)
    usage: TokenUsage = field(default_factory=TokenUsage)
    model: str = ""

    @property
    def called(self) -> ToolCall | None:
        return self.tool_calls[0] if self.tool_calls else None


class LLMBackend(Protocol):
    """What a model implementation provides."""

    def complete(
        self,
        messages: list[ChatMessage],
        tools: list[ToolSpec] | None = None,
        session: str = "default",
    ) -> Completion: ...
