"""Corrupted parametric knowledge (the hallucination model).

What an LLM "knows" about a file system's parameters without grounding: a
noisy copy of the ground truth.  The misconception texts, pinned outcomes
and universally-held flaws live on each :class:`PfsBackend`; corruption is
deterministic per (model, parameter) so experiments are reproducible, and
the Lustre backend's override table pins the exact Figure 2 outcomes for
``llite.statahead_max``:

- GPT-4.5 and Gemini-2.5-Pro: flawed definition + wrong maximum;
- Claude-3.7-Sonnet: correct definition but wrong maximum;
- no model recalls the true 0–8192 range unaided.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from repro.backends import find_backend_for_param, get_backend
from repro.backends.base import ParamSpec, PfsBackend
from repro.llm.profiles import ModelProfile

#: Legacy view of the Lustre backend's misconception table (tests use it to
#: enumerate the parameters with plausible-but-wrong definitions).
MISCONCEPTIONS = get_backend("lustre").misconceptions

#: Wrong-but-believable maxima models quote for parameters (Figure 2 style).
_COMMON_WRONG_MAXIMA = [16, 64, 128, 256, 1024, 4096]


@dataclass(frozen=True)
class ParamBelief:
    """What a model believes about one parameter (unaided by retrieval)."""

    name: str
    definition: str
    min_value: float
    max_value: float
    definition_correct: bool
    range_correct: bool

    def render(self) -> str:
        return (
            f"{self.name}: {self.definition} "
            f"Accepted values: {self.min_value:g} to {self.max_value:g}."
        )


def _rng_for(model: str, param: str) -> np.random.Generator:
    digest = hashlib.sha256(f"belief:{model}:{param}".encode()).digest()
    return np.random.default_rng(int.from_bytes(digest[:8], "little"))


def _true_bounds(spec: ParamSpec) -> tuple[float, float]:
    low = spec.min_expr if isinstance(spec.min_expr, (int, float)) else 0.0
    high = spec.max_expr if isinstance(spec.max_expr, (int, float)) else 2.0 * spec.default + 1
    return float(low), float(high)


def parametric_belief(
    profile: ModelProfile, param_name: str, backend: PfsBackend | None = None
) -> ParamBelief:
    """The (possibly hallucinated) unaided belief of ``profile`` about a parameter.

    When ``backend`` is omitted it is resolved from the parameter name —
    the mock model "recognizes" which file system a parameter belongs to,
    exactly like a real model keying off the name in the prompt.
    """
    if backend is None:
        backend = find_backend_for_param(param_name)
    spec = backend.param(param_name)
    rng = _rng_for(profile.name, spec.name)
    true_low, true_high = _true_bounds(spec)

    override = backend.belief_overrides.get((profile.name, spec.name))
    if override is not None:
        definition_ok, wrong_max = override
        definition = (
            spec.description if definition_ok else backend.misconceptions[spec.name]
        )
        return ParamBelief(
            name=spec.name,
            definition=definition,
            min_value=true_low,
            max_value=float(wrong_max),
            definition_correct=definition_ok,
            range_correct=False,
        )

    definition_ok = (
        spec.name not in backend.universal_flaws
        and rng.random() >= profile.p_wrong_definition
    )
    if definition_ok or spec.name not in backend.misconceptions:
        definition = spec.description
        definition_ok = True
    else:
        definition = backend.misconceptions[spec.name]

    range_ok = rng.random() >= profile.p_wrong_range
    if range_ok:
        low, high = true_low, true_high
    else:
        low = true_low
        wrong = [m for m in _COMMON_WRONG_MAXIMA if m != true_high]
        high = float(wrong[int(rng.integers(len(wrong)))])
    return ParamBelief(
        name=spec.name,
        definition=definition,
        min_value=low,
        max_value=high,
        definition_correct=definition_ok,
        range_correct=range_ok,
    )


def believed_direction_is_correct(
    profile: ModelProfile, param_name: str, backend: PfsBackend | None = None
) -> bool:
    """Whether the model's unaided intuition about a parameter's tuning
    direction for a given workload class is trustworthy.

    Tied to the definition belief: a model holding a flawed definition (e.g.
    "stripe count spreads files across OSTs") derives a flawed direction —
    the mechanism behind the paper's No-Descriptions ablation.
    """
    return parametric_belief(profile, param_name, backend).definition_correct
