"""Corrupted parametric knowledge (the hallucination model).

What an LLM "knows" about Lustre parameters without grounding: a noisy copy
of the ground truth.  Corruption is deterministic per (model, parameter) so
experiments are reproducible, and a small override table pins the exact
Figure 2 outcomes for ``llite.statahead_max``:

- GPT-4.5 and Gemini-2.5-Pro: flawed definition + wrong maximum;
- Claude-3.7-Sonnet: correct definition but wrong maximum;
- no model recalls the true 0–8192 range unaided.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from repro.llm.profiles import ModelProfile
from repro.pfs import params as P

#: Plausible-but-wrong definitions per parameter (drawn on definition flaws).
MISCONCEPTIONS: dict[str, str] = {
    "lov.stripe_count": (
        "The number of OSTs used by a directory; setting the parent "
        "directory's stripe count to -1 distributes the files in it more "
        "evenly across all OSTs."
    ),
    "lov.stripe_size": (
        "The block size used by the underlying ldiskfs file system for "
        "each OST object."
    ),
    "llite.statahead_max": (
        "The maximum number of concurrent statahead threads the client "
        "may spawn while listing directories."
    ),
    "osc.max_rpcs_in_flight": (
        "The total number of RPCs a client may send per second to one OST."
    ),
    "osc.max_pages_per_rpc": (
        "The number of pages the OST reads ahead from disk for each RPC."
    ),
    "osc.max_dirty_mb": (
        "The maximum size of a single write call before it bypasses the "
        "page cache and is sent synchronously."
    ),
    "osc.short_io_bytes": (
        "The minimum size of an RPC before compression is applied to the "
        "payload."
    ),
    "llite.max_read_ahead_mb": (
        "The size of the read cache kept on each OSS for recently read data."
    ),
    "llite.max_read_ahead_per_file_mb": (
        "The largest file size eligible for client-side caching."
    ),
    "llite.max_read_ahead_whole_mb": (
        "The amount of data read ahead after every random read."
    ),
    "llite.max_cached_mb": (
        "The maximum memory the MDS uses to cache inode attributes."
    ),
    "mdc.max_rpcs_in_flight": (
        "The number of metadata server threads reserved for this client."
    ),
    "mdc.max_mod_rpcs_in_flight": (
        "The number of retries for failed metadata modifications."
    ),
}

#: Wrong-but-believable maxima models quote for parameters (Figure 2 style).
_COMMON_WRONG_MAXIMA = [16, 64, 128, 256, 1024, 4096]

#: Pinned Figure 2 outcomes: (model, param) -> (definition_correct, max_value)
_FIG2_OVERRIDES: dict[tuple[str, str], tuple[bool, int]] = {
    ("gpt-4.5", "llite.statahead_max"): (False, 64),
    ("gemini-2.5-pro", "llite.statahead_max"): (False, 128),
    ("claude-3.7-sonnet", "llite.statahead_max"): (True, 1024),
}

#: Misconceptions so pervasive in training corpora that every model holds
#: them unaided.  The stripe-count one is the paper's own §5.4 example: the
#: ablated agent claims stripe count "distributes the files more evenly
#: across all OSTs" — a flawed reading of how striping affects a directory's
#: files.
_UNIVERSAL_FLAWS = {"lov.stripe_count"}


@dataclass(frozen=True)
class ParamBelief:
    """What a model believes about one parameter (unaided by retrieval)."""

    name: str
    definition: str
    min_value: float
    max_value: float
    definition_correct: bool
    range_correct: bool

    def render(self) -> str:
        return (
            f"{self.name}: {self.definition} "
            f"Accepted values: {self.min_value:g} to {self.max_value:g}."
        )


def _rng_for(model: str, param: str) -> np.random.Generator:
    digest = hashlib.sha256(f"belief:{model}:{param}".encode()).digest()
    return np.random.default_rng(int.from_bytes(digest[:8], "little"))


def _true_bounds(spec: P.ParamSpec) -> tuple[float, float]:
    low = spec.min_expr if isinstance(spec.min_expr, (int, float)) else 0.0
    high = spec.max_expr if isinstance(spec.max_expr, (int, float)) else 2.0 * spec.default + 1
    return float(low), float(high)


def parametric_belief(profile: ModelProfile, param_name: str) -> ParamBelief:
    """The (possibly hallucinated) unaided belief of ``profile`` about a parameter."""
    spec = P.get(param_name)
    rng = _rng_for(profile.name, spec.name)
    true_low, true_high = _true_bounds(spec)

    override = _FIG2_OVERRIDES.get((profile.name, spec.name))
    if override is not None:
        definition_ok, wrong_max = override
        definition = spec.description if definition_ok else MISCONCEPTIONS[spec.name]
        return ParamBelief(
            name=spec.name,
            definition=definition,
            min_value=true_low,
            max_value=float(wrong_max),
            definition_correct=definition_ok,
            range_correct=False,
        )

    definition_ok = (
        spec.name not in _UNIVERSAL_FLAWS
        and rng.random() >= profile.p_wrong_definition
    )
    if definition_ok or spec.name not in MISCONCEPTIONS:
        definition = spec.description
        definition_ok = True
    else:
        definition = MISCONCEPTIONS[spec.name]

    range_ok = rng.random() >= profile.p_wrong_range
    if range_ok:
        low, high = true_low, true_high
    else:
        low = true_low
        wrong = [m for m in _COMMON_WRONG_MAXIMA if m != true_high]
        high = float(wrong[int(rng.integers(len(wrong)))])
    return ParamBelief(
        name=spec.name,
        definition=definition,
        min_value=low,
        max_value=high,
        definition_correct=definition_ok,
        range_correct=range_ok,
    )


def believed_direction_is_correct(profile: ModelProfile, param_name: str) -> bool:
    """Whether the model's unaided intuition about a parameter's tuning
    direction for a given workload class is trustworthy.

    Tied to the definition belief: a model holding a flawed definition (e.g.
    "stripe count spreads files across OSTs") derives a flawed direction —
    the mechanism behind the paper's No-Descriptions ablation.
    """
    return parametric_belief(profile, param_name).definition_correct
