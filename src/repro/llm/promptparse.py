"""The structured prompt contract between agents and the mock LLM.

Agents assemble prompts from canonical ``## SECTION`` blocks; the mock
backend "attends" to them by parsing the same blocks back out.  Keeping the
builders and parsers in one module makes the contract explicit and testable —
and mirrors how real agent frameworks pin context formats to keep models
grounded.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Any

SECTION_RE = re.compile(r"^## ([A-Z0-9 _:?]+)$", re.MULTILINE)

#: The exact character class of ``SECTION_RE``'s name group.
_NAME_CHARS = frozenset("ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 _:?")

S_HARDWARE = "HARDWARE"
S_PARAMETERS = "PFS TUNABLE PARAMETERS"
S_IO_REPORT = "IO REPORT"
S_RULES = "GLOBAL RULE SET"
S_HISTORY = "TUNING HISTORY"
S_TASK = "TASK"


def split_sections(text: str) -> dict[str, str]:
    """Map section name -> body for every ``## NAME`` block in ``text``.

    Candidate headers are located with ``str.find`` (the backend re-splits
    the full prompt on every completion, so this runs over the whole
    context each turn) and validated against ``SECTION_RE``'s exact name
    charset — the accepted language is identical to running the regex.
    """
    find = text.find
    positions = [0] if text.startswith("## ") else []
    pos = find("\n## ")
    while pos != -1:
        positions.append(pos + 1)
        pos = find("\n## ", pos + 1)
    headers: list[tuple[int, str, int]] = []
    for start in positions:
        eol = find("\n", start)
        if eol == -1:
            eol = len(text)
        name = text[start + 3 : eol]
        if name and all(c in _NAME_CHARS for c in name):
            headers.append((start, name.strip(), eol))
    sections: dict[str, str] = {}
    for i, (start, name, body_start) in enumerate(headers):
        end = headers[i + 1][0] if i + 1 < len(headers) else len(text)
        sections[name] = text[body_start:end].strip()
    return sections


# ---------------------------------------------------------------------------
# Hardware facts
# ---------------------------------------------------------------------------
def build_hardware_section(description: str, facts: dict[str, float]) -> str:
    lines = [f"## {S_HARDWARE}", description.strip(), ""]
    for key, value in sorted(facts.items()):
        lines.append(f"fact {key} = {value:g}")
    return "\n".join(lines)


@lru_cache(maxsize=256)
def _parse_hardware_facts_cached(body: str) -> dict[str, float]:
    facts: dict[str, float] = {}
    for match in re.finditer(r"^fact (\w+) = ([-\d.eE+]+)$", body, re.MULTILINE):
        facts[match.group(1)] = float(match.group(2))
    return facts


def parse_hardware_facts(body: str) -> dict[str, float]:
    # The hardware section is identical on every turn of a session (and
    # across co-tenant sessions on the same cluster), so the regex walk is
    # memoized; callers get a fresh dict they are free to mutate.
    return dict(_parse_hardware_facts_cached(body))


# ---------------------------------------------------------------------------
# Tunable parameter descriptions (output of the offline RAG phase)
# ---------------------------------------------------------------------------
@dataclass
class ParameterInfo:
    """One tunable parameter as presented to the Tuning Agent."""

    name: str
    default: int
    min_expr: str  # number or expression string
    max_expr: str
    description: str = ""  # empty in the No-Descriptions ablation
    unit: str = "count"


def build_parameter_section(params: list[ParameterInfo]) -> str:
    lines = [f"## {S_PARAMETERS}"]
    for p in params:
        lines.append(f"- parameter: {p.name}")
        lines.append(f"  unit: {p.unit}")
        lines.append(f"  default: {p.default}")
        lines.append(f"  range: {p.min_expr} .. {p.max_expr}")
        if p.description:
            lines.append(f"  description: {p.description}")
    return "\n".join(lines)


@lru_cache(maxsize=64)
def parse_parameter_section(body: str) -> list[ParameterInfo]:
    """Parse the tunable-parameter block.

    Memoized: the same parameter section recurs on every turn of a tuning
    loop, and there are only a handful of distinct sections per process
    (ablations toggle descriptions, §5.6 restricts the surface).  Callers
    treat the returned infos as read-only.
    """
    params: list[ParameterInfo] = []
    current: ParameterInfo | None = None
    for raw in body.splitlines():
        line = raw.strip()
        if line.startswith("- parameter:"):
            current = ParameterInfo(
                name=line.split(":", 1)[1].strip(),
                default=0,
                min_expr="0",
                max_expr="0",
            )
            params.append(current)
        elif current is not None and ":" in line:
            key, _, value = line.partition(":")
            key = key.strip()
            value = value.strip()
            if key == "default":
                current.default = int(float(value))
            elif key == "range":
                low, _, high = value.partition("..")
                current.min_expr = low.strip()
                current.max_expr = high.strip()
            elif key == "description":
                current.description = value
            elif key == "unit":
                current.unit = value
    return params


# ---------------------------------------------------------------------------
# I/O report
# ---------------------------------------------------------------------------
@dataclass
class IOReport:
    """The Analysis Agent's distilled view of application I/O behaviour."""

    summary: str = ""
    metrics: dict[str, float] = field(default_factory=dict)
    followups: dict[str, str] = field(default_factory=dict)  # question -> answer

    def get(self, name: str, default: float = 0.0) -> float:
        return self.metrics.get(name, default)

    def has(self, name: str) -> bool:
        return name in self.metrics


def build_io_report_section(report: IOReport) -> str:
    lines = [f"## {S_IO_REPORT}", f"summary: {report.summary}"]
    for key, value in sorted(report.metrics.items()):
        lines.append(f"metric {key} = {value:.12g}")
    for question, answer in report.followups.items():
        lines.append(f"followup {question!r}: {answer}")
    return "\n".join(lines)


@lru_cache(maxsize=256)
def _parse_io_report_cached(body: str) -> IOReport:
    report = IOReport()
    for raw in body.splitlines():
        line = raw.strip()
        if line.startswith("summary:"):
            report.summary = line.split(":", 1)[1].strip()
        elif line.startswith("metric "):
            match = re.match(r"metric (\w+) = ([-\d.eE+]+)", line)
            if match:
                report.metrics[match.group(1)] = float(match.group(2))
        elif line.startswith("followup "):
            match = re.match(r"followup '(.*)': (.*)", line)
            if match:
                report.followups[match.group(1)] = match.group(2)
    return report


def parse_io_report(body: str) -> IOReport:
    # The IO report body repeats verbatim on every tuning turn after the
    # analysis stage produces it.  The cached parse is shared; the returned
    # report is a shallow copy because the tuning loop appends follow-up
    # answers to ``report.followups`` in place.
    cached = _parse_io_report_cached(body)
    return IOReport(
        summary=cached.summary,
        metrics=dict(cached.metrics),
        followups=dict(cached.followups),
    )


# ---------------------------------------------------------------------------
# Rule set (strict JSON structure, §4.4.1)
# ---------------------------------------------------------------------------
def _freeze(obj: Any):
    """A hashable deep-frozen view of a JSON-shaped value (cache keys)."""
    if isinstance(obj, dict):
        return tuple((k, _freeze(v)) for k, v in obj.items())
    if isinstance(obj, list):
        return tuple(_freeze(v) for v in obj)
    return obj


#: ``indent=1`` renders keyed by the frozen payload — rule sets repeat
#: verbatim across turns and co-tenant sessions, and pretty-printed JSON is
#: one of the costlier string builds in the loop.
_DUMPS_CACHE: dict[tuple, str] = {}


def dumps_indented(payload: Any) -> str:
    """``json.dumps(payload, indent=1)``, memoized on content."""
    key = _freeze(payload)
    text = _DUMPS_CACHE.get(key)
    if text is None:
        text = _DUMPS_CACHE[key] = json.dumps(payload, indent=1)
    return text


def build_rules_section(rules_json: list[dict[str, Any]]) -> str:
    return f"## {S_RULES}\n" + dumps_indented(rules_json)


@lru_cache(maxsize=256)
def _parse_rules_cached(body: str) -> list[dict[str, Any]]:
    return json.loads(body)


def parse_rules_section(body: str) -> list[dict[str, Any]]:
    body = body.strip()
    if not body or body == "(empty)":
        return []
    # json.loads of the (identical, per-turn) rule block is memoized; the
    # copy keeps callers free to extend rule dicts or their tag lists.
    return [
        {k: (list(v) if isinstance(v, list) else v) for k, v in rule.items()}
        for rule in _parse_rules_cached(body)
    ]


# ---------------------------------------------------------------------------
# Tuning history
# ---------------------------------------------------------------------------
@dataclass
class AttemptRecord:
    """One configuration trial the Tuning Agent has observed."""

    index: int
    changes: dict[str, int]  # parameter -> value (diff against defaults)
    seconds: float
    speedup: float  # vs the initial (default-config) run
    rationale: str = ""


def build_history_section(initial_seconds: float, attempts: list[AttemptRecord]) -> str:
    lines = [f"## {S_HISTORY}", f"initial run (default configuration): {initial_seconds:.3f}s"]
    for attempt in attempts:
        lines.append(
            f"attempt {attempt.index}: changes {json.dumps(attempt.changes, sort_keys=True)} "
            f"-> runtime {attempt.seconds:.3f}s (speedup {attempt.speedup:.3f}x)"
        )
    return "\n".join(lines)


def parse_history_section(body: str) -> tuple[float, list[AttemptRecord]]:
    initial = 0.0
    attempts: list[AttemptRecord] = []
    for raw in body.splitlines():
        line = raw.strip()
        if line.startswith("initial run"):
            match = re.search(r"([\d.]+)s", line)
            if match:
                initial = float(match.group(1))
        elif line.startswith("attempt "):
            match = re.match(
                r"attempt (\d+): changes (\{.*\}) -> runtime ([\d.]+)s "
                r"\(speedup ([\d.]+)x\)",
                line,
            )
            if match:
                attempts.append(
                    AttemptRecord(
                        index=int(match.group(1)),
                        changes={k: int(v) for k, v in json.loads(match.group(2)).items()},
                        seconds=float(match.group(3)),
                        speedup=float(match.group(4)),
                    )
                )
    return initial, attempts
