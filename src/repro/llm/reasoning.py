"""The Tuning Agent's decision policy (the mock LLM's "reasoning").

Given the parsed prompt context — tunable parameters (with or without
accurate descriptions), the Analysis Agent's I/O report (or none), the
global rule set, hardware facts and the tuning history — decide the next
environment interaction:

- ask the Analysis Agent a follow-up question,
- propose and run a new configuration (with documented rationale), or
- end tuning (with justification), per §4.3.2 of the paper.

The policy is file-system-agnostic: it detects which backend the prompt's
parameters belong to (:func:`repro.backends.detect_backend`) and applies
that backend's :class:`~repro.backends.base.TuningHeuristics` — the target
ladders, secondary refinements, misguided actions and ungrounded traps that
encode what an LLM proposes for that file system.

Grounding semantics: when a parameter's prompt context includes an accurate
description, the engine uses the ground-truth effect direction; when
descriptions are missing (No-Descriptions ablation) it falls back to the
model's corrupted parametric beliefs (:mod:`repro.llm.knowledge`), which is
exactly how hallucinated definitions turn into misguided tuning decisions.
When no I/O report is available (No-Analysis ablation), workload
classification falls back to the model's generic prior — a large sequential
shared-file workload — and the engine tunes readahead and RPC-size style
parameters that do nothing for metadata-bound applications.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.backends import detect_backend
from repro.backends.base import KiB, MiB, PfsBackend
from repro.llm.knowledge import believed_direction_is_correct
from repro.llm.profiles import ModelProfile
from repro.llm.promptparse import AttemptRecord, IOReport, ParameterInfo

#: Improvement (vs best so far) below which returns are "diminishing".
DIMINISHING_RETURNS = 0.05
#: Improvement that encourages a more aggressive step in the same direction.
ENCOURAGING_IMPROVEMENT = 0.08

WORKLOAD_CLASSES = (
    "metadata_small_files",
    "shared_random_small",
    "shared_seq_large",
    "fpp_data",
    "mixed",
)

# ---------------------------------------------------------------------------
# Prompt shapes of the alternative agent policies (ReACT, propose/critic).
#
# The sections below are backend-agnostic by construction: they carry only
# JSON change maps, free-text thoughts and the standard parameter section —
# the mock controller re-detects the backend from parameter names exactly
# like the tuning policy does.  Every policy prompt keeps the stable
# sections (hardware, parameters) first so the provider prompt cache keeps
# hitting on the shared prefix (§5.7).
# ---------------------------------------------------------------------------
S_REACT_TRANSCRIPT = "REACT TRANSCRIPT"
S_PROPOSED = "PROPOSED CONFIGURATION"
S_VETOED = "VETOED PROPOSALS"

REACT_DECIDE_TASK = (
    "## TASK: REACT DECIDE\n"
    "You are operating as a ReACT agent. Review the transcript above and "
    "reply with exactly one token: REASON to think before acting, TOOL to "
    "take an environment action now, or HALT when the final thought has "
    "concluded the run."
)
REACT_THOUGHT_TASK = (
    "## TASK: REACT THOUGHT\n"
    "Write the next thought for the transcript above: one short passage of "
    "reasoning about the tuning state. Prefix a concluding thought with "
    "'FINAL:' followed by the justification for stopping."
)
CRITIC_TASK = (
    "## TASK: CRITIC REVIEW\n"
    "You are the critic of a propose/critic tuning pair. Review the "
    "proposed configuration against the documented parameter ranges and "
    "the grounding of its rationale. Reply APPROVE, VETO: <reason>, or "
    "AMEND followed by a corrected JSON changes object on the next line."
)

#: The tuning policy's speculative noise-exploration rationale opens with
#: this prefix; it is the one proposal class the critic refuses outright.
SPECULATIVE_RATIONALE_PREFIX = "Exploring whether a smaller client cache"


def build_react_transcript_section(lines: list[str]) -> str:
    body = "\n".join(lines) if lines else "(empty)"
    return f"## {S_REACT_TRANSCRIPT}\n{body}"


def parse_react_transcript(body: str) -> list[str]:
    body = body.strip()
    if not body or body == "(empty)":
        return []
    return body.splitlines()


def react_mode(lines: list[str]) -> str:
    """The ReACT turn controller: REASON | TOOL | HALT.

    Deterministic and draw-free: a fresh transcript (or one ending in an
    Observation) earns a thought first; a thought earns an action; a
    concluding ``FINAL:`` thought halts the run.
    """
    last = lines[-1] if lines else ""
    if last.startswith("Thought:"):
        return "HALT" if "FINAL:" in last else "TOOL"
    return "REASON"


def render_react_thought(decision: "Decision") -> str:
    """Verbalize a tuning decision as the transcript's next thought."""
    if decision.kind == "analyze":
        return (
            "I still need information from the trace before proposing: "
            f"{decision.question}"
        )
    if decision.kind == "run":
        return (
            f"{decision.rationale} I will test "
            f"{json.dumps(decision.changes, sort_keys=True)} next."
        )
    return f"FINAL: {decision.reason}"


def build_proposed_section(changes: dict[str, int], rationale: str) -> str:
    return (
        f"## {S_PROPOSED}\n"
        f"changes: {json.dumps(changes, sort_keys=True)}\n"
        f"rationale: {rationale}"
    )


def parse_proposed_section(body: str) -> tuple[dict[str, int], str]:
    changes: dict[str, int] = {}
    rationale = ""
    for line in body.splitlines():
        if line.startswith("changes: "):
            changes = {
                str(name): int(value)
                for name, value in json.loads(line[len("changes: "):]).items()
            }
        elif line.startswith("rationale: "):
            rationale = line[len("rationale: "):]
    return changes, rationale


def build_vetoed_section(vetoed: list[dict[str, int]]) -> str:
    lines = [f"## {S_VETOED}"]
    lines.extend(f"- {json.dumps(changes, sort_keys=True)}" for changes in vetoed)
    return "\n".join(lines)


def parse_vetoed_section(body: str) -> list[dict[str, int]]:
    vetoed = []
    for raw in body.splitlines():
        line = raw.strip()
        if line.startswith("- "):
            vetoed.append(
                {str(k): int(v) for k, v in json.loads(line[2:]).items()}
            )
    return vetoed


def review_proposal(
    changes: dict[str, int], rationale: str, parameters: list[ParameterInfo]
) -> str:
    """The critic's deterministic, draw-free review of one proposal.

    Vetoes the speculative noise exploration (its rationale names no
    mechanism grounded in the I/O report); amends values that escape a
    purely numeric documented range (expression-valued bounds are left to
    the runner's clip, which knows the hardware facts); approves the rest.
    """
    if rationale.startswith(SPECULATIVE_RATIONALE_PREFIX):
        return (
            "VETO: the rationale is speculative — shrinking the client "
            "cache has no mechanism grounded in the I/O report, and the "
            "probe run it would consume is better spent on a documented "
            "lever."
        )
    by_name = {p.name: p for p in parameters}
    amended: dict[str, int] = {}
    for name, value in changes.items():
        info = by_name.get(name)
        if info is None:
            continue
        try:
            low, high = int(float(info.min_expr)), int(float(info.max_expr))
        except ValueError:
            continue
        if low > high or (low == 0 and high == 0):
            continue
        clipped = min(max(value, low), high)
        if clipped != value:
            amended[name] = clipped
    if amended:
        corrected = {**changes, **amended}
        return "AMEND\n" + json.dumps(corrected, sort_keys=True)
    return "APPROVE"


@dataclass
class TuningContext:
    """Everything the policy knows, parsed from the prompt."""

    parameters: list[ParameterInfo]
    report: IOReport | None
    rules: list[dict[str, Any]]
    facts: dict[str, float]
    initial_seconds: float
    attempts: list[AttemptRecord]
    max_attempts: int = 5
    #: Proposals a critic refused this run (propose/critic policy only);
    #: the policy treats them as tried so a veto can never livelock the loop.
    vetoed: list[dict[str, int]] = field(default_factory=list)

    def parameter(self, name: str) -> ParameterInfo | None:
        for p in self.parameters:
            if p.name == name:
                return p
        return None

    def has_descriptions(self) -> bool:
        return any(p.description for p in self.parameters)


@dataclass
class Decision:
    """The policy's chosen environment interaction."""

    kind: str  # "analyze" | "run" | "end"
    question: str = ""
    changes: dict[str, int] = field(default_factory=dict)
    rationale: str = ""
    reason: str = ""


# ---------------------------------------------------------------------------
# Workload classification
# ---------------------------------------------------------------------------
def classify_workload(report: IOReport | None) -> str:
    """Map I/O report metrics to a workload class.

    Without a report (No-Analysis ablation) the generic prior is a large
    sequential shared-file workload.
    """
    if report is None or not report.metrics:
        return "shared_seq_large"
    meta_fraction = report.get("meta_time_fraction")
    xfer = report.get("common_access_size", MiB)
    seq = report.get("seq_fraction", 1.0)
    shared = report.get("shared_file") >= 1.0
    data_bytes = report.get("total_bytes_read") + report.get("total_bytes_written")
    file_count = report.get("file_count", 1)

    if meta_fraction >= 0.6:
        return "metadata_small_files"
    if (
        meta_fraction >= 0.05
        and file_count > 10_000
        and data_bytes > 1 << 30
    ):
        # Substantial data movement plus a very large file population:
        # bandwidth-heavy and metadata-heavy phases coexist (IO500-style).
        return "mixed"
    if shared and seq < 0.5 and xfer < MiB:
        return "shared_random_small"
    if not shared:
        return "fpp_data"
    return "shared_seq_large"


def context_tags(workload_class: str, report: IOReport | None) -> list[str]:
    """Descriptive tags attached to rules and used to match them later.

    For metadata-dominated workloads the access-pattern and transfer-size
    tags are meaningless (they describe tiny payload writes, not the I/O
    that matters), so they are omitted — which prevents rules learned on
    data-heavy workloads from being transplanted onto metadata storms.
    """
    tags = [workload_class]
    if report is None:
        return tags
    if report.get("file_count", 1) > 1000:
        tags.append("many_small_files")
    if workload_class == "metadata_small_files":
        return tags
    if report.get("shared_file") >= 1.0:
        tags.append("shared_file")
    if report.get("seq_fraction", 1.0) < 0.5:
        tags.append("random_access")
    else:
        tags.append("sequential_access")
    xfer = report.get("common_access_size", MiB)
    if xfer >= 4 * MiB:
        tags.append("large_transfers")
    elif xfer <= 256 * KiB:
        tags.append("small_transfers")
    return tags


#: Tags relevant to data-path parameter rules vs. metadata-path rules.
_DATA_RULE_TAGS = {
    "shared_file",
    "random_access",
    "sequential_access",
    "large_transfers",
    "small_transfers",
}
_META_RULE_TAGS = {"many_small_files"}


def rule_tags_for(
    parameter: str, workload_class: str, tags: list[str], backend: PfsBackend
) -> list[str]:
    """Tags attached to a rule about ``parameter``: the workload class plus
    the tag subset relevant to that parameter's domain."""
    relevant = (
        _META_RULE_TAGS
        if parameter in backend.tuning.meta_params
        else _DATA_RULE_TAGS
    )
    return [workload_class] + [t for t in tags if t in relevant]

#: Metrics the Tuning Agent wants before committing to a first config; if the
#: initial report lacks them it asks the Analysis Agent (the minor loop).
_DESIRED_METRICS = [
    ("avg_file_size", "What is the distribution of file sizes accessed by the application?"),
    ("meta_data_op_ratio", "What is the ratio of metadata operations to data operations?"),
]


class TuningPolicy:
    """Deterministic, profile-aware tuning decisions."""

    def __init__(self, profile: ModelProfile, rng: np.random.Generator):
        self.profile = profile
        self.rng = rng

    # -- main entry ------------------------------------------------------
    def decide(self, ctx: TuningContext) -> Decision:
        report = ctx.report
        # The policy infers which file system it is tuning from the
        # parameter names in the prompt (as a real model would).
        backend = detect_backend([p.name for p in ctx.parameters])
        # Minor loop: request missing analysis before the first proposal.
        if report is not None and not ctx.attempts:
            for metric, question in _DESIRED_METRICS:
                if not report.has(metric) and question not in report.followups:
                    return Decision(kind="analyze", question=question)

        workload_class = classify_workload(report)
        if len(ctx.attempts) >= ctx.max_attempts:
            return Decision(
                kind="end",
                reason=(
                    "The configured attempt budget is exhausted; the best "
                    "observed configuration is retained."
                ),
            )

        if not ctx.attempts:
            return self._initial_proposal(ctx, workload_class, backend)
        return self._followup_proposal(ctx, workload_class, backend)

    # -- proposals ---------------------------------------------------------
    def _values_for(
        self, ctx: TuningContext, backend: PfsBackend, ladder, aggressive: bool
    ) -> dict[str, int]:
        """Instantiate a ladder, routing through beliefs when ungrounded."""
        heur = backend.tuning
        grounded = ctx.has_descriptions()
        changes: dict[str, int] = {}
        for name, moderate_fn, aggressive_fn in ladder:
            info = ctx.parameter(name)
            if info is None:
                continue
            fn = aggressive_fn if aggressive else moderate_fn
            if not grounded and not believed_direction_is_correct(
                self.profile, name, backend
            ):
                fn = heur.misguided_actions.get(name, fn)
            value = fn(ctx.report, ctx.facts)
            if value is None:
                continue
            changes[name] = int(value)
        if not grounded:
            # Without accurate descriptions, flawed parametric definitions
            # make additional parameters look relevant to this workload.
            workload_class = classify_workload(ctx.report)
            for name, value in heur.ungrounded_traps.get(workload_class, ()):
                if ctx.parameter(name) is None or name in changes:
                    continue
                if not believed_direction_is_correct(self.profile, name, backend):
                    changes[name] = value
        return changes

    def _initial_proposal(
        self, ctx: TuningContext, workload_class: str, backend: PfsBackend
    ) -> Decision:
        applied_rules = self._matching_rules(ctx, workload_class)
        if applied_rules:
            # One value per parameter: among matching rules (including
            # alternatives) prefer the best-evidenced recommendation.
            best_by_param: dict[str, dict[str, Any]] = {}
            for rule in applied_rules:
                value = rule.get("recommended_value")
                name = rule.get("parameter", "")
                if value is None or ctx.parameter(name) is None:
                    continue
                current = best_by_param.get(name)
                if current is None or (rule.get("observed_speedup") or 0) > (
                    current.get("observed_speedup") or 0
                ):
                    best_by_param[name] = rule
            changes = {
                name: int(rule["recommended_value"])
                for name, rule in best_by_param.items()
            }
            if changes:
                rationale = (
                    f"The I/O report matches the tuning context of "
                    f"{len(applied_rules)} accumulated rule(s) "
                    f"({workload_class}); applying their recommendations "
                    f"directly as the first configuration."
                )
                return Decision(kind="run", changes=changes, rationale=rationale)
        ladder = backend.tuning.ladders[workload_class]
        changes = self._values_for(ctx, backend, ladder, aggressive=False)
        # Less calibrated models occasionally omit a secondary lever from
        # their first proposal (recovered in later iterations).
        if len(changes) > 2 and self.rng.random() < self.profile.reasoning_noise:
            changes.pop(sorted(changes)[-1])
        rationale = self._explain(ctx, workload_class, changes, first=True)
        return Decision(kind="run", changes=changes, rationale=rationale)

    def _followup_proposal(
        self, ctx: TuningContext, workload_class: str, backend: PfsBackend
    ) -> Decision:
        heur = backend.tuning
        attempts = ctx.attempts
        best = max(attempts, key=lambda a: a.speedup)
        last = attempts[-1]
        previous_best = max(
            [a.speedup for a in attempts[:-1]] + [1.0]
        )
        improvement = last.speedup / max(previous_best, 1e-9) - 1.0

        vetoed = [frozenset(v.items()) for v in ctx.vetoed]

        # Occasional suboptimal exploration (model-specific noise).
        if self.rng.random() < self.profile.reasoning_noise:
            noise_param = ctx.parameter(heur.noise_param)
            if noise_param is not None and heur.noise_param not in best.changes:
                changes = dict(best.changes)
                changes[heur.noise_param] = heur.noise_value
                if frozenset(changes.items()) not in vetoed:
                    return Decision(
                        kind="run",
                        changes=changes,
                        rationale=(
                            "Exploring whether a smaller client cache frees "
                            "memory bandwidth for the I/O path."
                        ),
                    )

        tried = [frozenset(a.changes.items()) for a in attempts] + vetoed

        def untried(changes: dict[str, int]) -> bool:
            return bool(changes) and frozenset(changes.items()) not in tried

        if last.speedup < 0.98 * best.speedup:
            # Regression: revert to the best configuration and refine from it.
            candidate = self._next_candidate(
                ctx, workload_class, backend, base=best.changes
            )
            if candidate is not None and untried(candidate):
                return Decision(
                    kind="run",
                    changes=candidate,
                    rationale=(
                        "The last attempt regressed; reverting to the best "
                        "configuration observed so far and refining a "
                        "different dimension."
                    ),
                )
            return Decision(
                kind="end",
                reason=(
                    "The last change regressed performance and no promising "
                    "unexplored dimension remains; keeping the best observed "
                    "configuration."
                ),
            )

        if improvement >= ENCOURAGING_IMPROVEMENT or last.speedup <= 1.02:
            # Clear progress (or nothing gained yet): push the same direction
            # harder, or pivot if already at the aggressive tier.
            aggressive = self._values_for(
                ctx, backend, heur.ladders[workload_class], aggressive=True
            )
            merged = dict(best.changes)
            merged.update(aggressive)
            if untried(merged):
                return Decision(
                    kind="run",
                    changes=merged,
                    rationale=(
                        "Performance improved in the expected direction; "
                        "testing a more aggressive configuration along the "
                        "same parameters."
                    ),
                )

        # Diminishing returns: one secondary refinement, then stop.
        candidate = self._next_candidate(
            ctx, workload_class, backend, base=best.changes
        )
        if candidate is not None and untried(candidate) and improvement >= DIMINISHING_RETURNS:
            return Decision(
                kind="run",
                changes=candidate,
                rationale=(
                    "Gains are tapering; probing one secondary dimension "
                    "before concluding."
                ),
            )
        if best.speedup > 1.02:
            reason = (
                f"Performance has improved {best.speedup:.2f}x over the "
                "default configuration and the most recent changes show "
                "diminishing returns; further tuning is unlikely to help."
            )
        else:
            reason = (
                "No tried configuration outperformed the defaults and the "
                "explored directions are exhausted; retaining the default "
                "configuration."
            )
        return Decision(kind="end", reason=reason)

    def _next_candidate(
        self,
        ctx: TuningContext,
        workload_class: str,
        backend: PfsBackend,
        base: dict[str, int],
    ) -> dict[str, int] | None:
        heur = backend.tuning
        grounded = ctx.has_descriptions()
        for name, fn in heur.secondary.get(workload_class, ()):
            info = ctx.parameter(name)
            if info is None:
                continue
            if not grounded and not believed_direction_is_correct(
                self.profile, name, backend
            ):
                fn = heur.misguided_actions.get(name, fn)
            value = int(fn(ctx.report, ctx.facts))
            if base.get(name) == value:
                continue
            changes = dict(base)
            changes[name] = value
            return changes
        return None

    def _matching_rules(
        self, ctx: TuningContext, workload_class: str
    ) -> list[dict[str, Any]]:
        """Rules whose recorded tuning context matches this workload.

        A match requires the workload-class tag itself, or at least two
        shared descriptive tags — a lone generic tag like ``shared_file``
        is not enough to transplant guidance across behaviour classes.
        """
        tags = set(context_tags(workload_class, ctx.report))
        matched = []
        for rule in ctx.rules:
            rule_tags = set(rule.get("context_tags", []))
            if workload_class in rule_tags or len(rule_tags & tags) >= 2:
                matched.append(rule)
        return matched

    def _explain(
        self,
        ctx: TuningContext,
        workload_class: str,
        changes: dict[str, int],
        first: bool,
    ) -> str:
        narrative = {
            "metadata_small_files": (
                "The I/O report shows metadata operations dominate the run "
                "time across many small files; raising the client metadata "
                "concurrency limits and the statahead window should lift "
                "the per-client operation rate, while the stripe count is "
                "deliberately kept at 1 to avoid per-file object overhead."
            ),
            "shared_random_small": (
                "The application issues small random accesses against a "
                "shared file; striping the file across all OSTs spreads the "
                "per-request overhead, and more RPCs in flight plus inline "
                "short I/O reduce per-request latency."
            ),
            "shared_seq_large": (
                "Large sequential transfers against a shared file are "
                "bandwidth-bound; striping across all OSTs, larger bulk "
                "RPCs and a deeper in-flight window raise aggregate "
                "throughput."
            ),
            "fpp_data": (
                "Each process writes its own file; larger RPCs and deeper "
                "pipelines improve per-stream efficiency while round-robin "
                "file placement already balances the OSTs."
            ),
            "mixed": (
                "The workload mixes bandwidth-heavy and metadata-heavy "
                "phases; the configuration balances striping and RPC sizing "
                "for the data phases with metadata concurrency and "
                "statahead for the file-count-heavy phases."
            ),
        }[workload_class]
        stage = "Initial configuration" if first else "Refined configuration"
        return f"{stage} for a {workload_class.replace('_', ' ')} workload. {narrative}"

    # -- reflection --------------------------------------------------------
    def summarize_rules(self, ctx: TuningContext) -> list[dict[str, Any]]:
        """Distill the tuning run into reusable rules (§4.4)."""
        if not ctx.attempts:
            return []
        backend = detect_backend([p.name for p in ctx.parameters])
        workload_class = classify_workload(ctx.report)
        tags = context_tags(workload_class, ctx.report)
        best = max(ctx.attempts, key=lambda a: a.speedup)
        rules: list[dict[str, Any]] = []
        if best.speedup <= 1.02:
            return rules
        context_text = self._context_text(workload_class, ctx.report)
        for name, value in sorted(best.changes.items()):
            description = self._rule_text(name, value, workload_class, backend)
            rules.append(
                {
                    "parameter": name,
                    "rule_description": description,
                    "tuning_context": context_text,
                    "context_tags": rule_tags_for(name, workload_class, tags, backend),
                    "recommended_value": value,
                    "observed_speedup": round(best.speedup, 3),
                }
            )
        # Negative knowledge: record regressions caused by a single change.
        for attempt in ctx.attempts:
            if attempt.speedup < 0.9:
                for name, value in attempt.changes.items():
                    if best.changes.get(name) == value:
                        continue
                    rules.append(
                        {
                            "parameter": name,
                            "rule_description": (
                                f"Avoid setting {name} to {value} in this "
                                "context; it regressed performance "
                                f"({attempt.speedup:.2f}x)."
                            ),
                            "tuning_context": context_text,
                            "context_tags": rule_tags_for(
                                name, workload_class, tags, backend
                            ),
                            "recommended_value": None,
                            "observed_speedup": round(attempt.speedup, 3),
                        }
                    )
                break
        return rules

    def _context_text(self, workload_class: str, report: IOReport | None) -> str:
        if report is None:
            return workload_class.replace("_", " ")
        bits = [workload_class.replace("_", " ")]
        if report.get("file_count", 1) > 1000:
            bits.append(f"~{int(report.get('file_count'))} files accessed")
        xfer = report.get("common_access_size", 0)
        if xfer:
            bits.append(f"dominant access size ~{_human_bytes(xfer)}")
        if report.get("shared_file") >= 1:
            bits.append("shared-file access")
        meta = report.get("meta_time_fraction", 0)
        if meta >= 0.2:
            bits.append(f"{meta:.0%} of I/O time in metadata operations")
        return "; ".join(bits)

    def _rule_text(
        self, name: str, value: int, workload_class: str, backend: PfsBackend
    ) -> str:
        role = backend.role_of.get(name)
        if role == "stripe_size_bytes":
            return (
                "Choose the stripe size based on the dominant transfer and "
                "file size: large streaming transfers benefit from stripes "
                "at least as large as one transfer, while small-file "
                "workloads should keep the default."
            )
        if role == "stripe_count":
            targets = backend.hardware_terms.get("storage_targets", "OSTs")
            return (
                f"Stripe heavily shared data files across all available "
                f"{targets} to multiply bandwidth and spread lock traffic; "
                "keep the stripe count at 1 for workloads creating many "
                "small files."
            )
        if name in backend.tuning.meta_params:
            return (
                f"For metadata-dominated workloads raise {name} well above "
                "its default so per-client operation concurrency matches "
                "the number of processes per node (observed effective "
                f"value: {value})."
            )
        return (
            f"Set {name} toward {value} for workloads with this I/O "
            "behaviour; the direction was validated by measured speedups "
            "during tuning."
        )


def _human_bytes(n: float) -> str:
    if n >= MiB:
        return f"{n / MiB:g} MiB"
    if n >= KiB:
        return f"{n / KiB:g} KiB"
    return f"{int(n)} B"
