"""Client facade over an LLM backend.

What the agents program against: a ``complete`` call with usage recording,
simulated inference latency accounting, and seeded determinism.  Swapping in
a real provider SDK would only touch this module.
"""

from __future__ import annotations

from repro.llm.api import ChatMessage, Completion, ToolSpec
from repro.llm.backend import MockLLM
from repro.llm.profiles import ModelProfile, get_profile
from repro.llm.tokens import UsageLedger


class LLMClient:
    """One logical API client bound to a model profile and a usage ledger."""

    def __init__(
        self,
        model: str | ModelProfile = "claude-3.7-sonnet",
        seed: int = 0,
        ledger: UsageLedger | None = None,
    ):
        self.profile = model if isinstance(model, ModelProfile) else get_profile(model)
        self.backend = MockLLM(self.profile, seed=seed)
        self.ledger = ledger if ledger is not None else UsageLedger()

    def complete(
        self,
        messages: list[ChatMessage],
        tools: list[ToolSpec] | None = None,
        agent: str = "generic",
        session: str | None = None,
    ) -> Completion:
        """One chat completion; usage is recorded under ``agent``."""
        completion = self.backend.complete(
            messages, tools=tools, session=session or agent
        )
        self.ledger.record(
            agent, completion.usage, latency=self.profile.latency_per_request
        )
        return completion

    def ask(self, prompt: str, agent: str = "generic", session: str | None = None) -> str:
        """Single-turn convenience wrapper."""
        completion = self.complete(
            [ChatMessage(role="user", content=prompt)], agent=agent, session=session
        )
        return completion.content

    def cost_usd(self) -> float:
        """Total API cost of everything this client has done."""
        total = self.ledger.total()
        return self.profile.cost_usd(
            total.input_tokens, total.output_tokens, total.cached_input_tokens
        )
