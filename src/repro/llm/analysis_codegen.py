"""Code generation for the Analysis Agent.

The Analysis Agent is a code-executing agent (OpenInterpreter-style): the
model emits Python that runs against the parsed Darshan frames, reads the
printed output back, and distills an I/O report.  The mock model draws from
calibrated templates — but the *data path is real*: every metric in the
report comes from executing this code against the actual trace frames, so a
different trace genuinely produces a different report.

Templates print ``METRIC name = value`` lines which the model then folds
into the structured report.
"""

from __future__ import annotations

import re

from repro.llm.promptparse import IOReport

BASE_ANALYSIS_CODE = '''
import numpy as np

per_rank = posix[np.asarray(posix["rank"]) >= 0]
bytes_read = per_rank.agg({"POSIX_BYTES_READ": "sum"})["POSIX_BYTES_READ"]
bytes_written = per_rank.agg({"POSIX_BYTES_WRITTEN": "sum"})["POSIX_BYTES_WRITTEN"]
read_time = per_rank.agg({"POSIX_F_READ_TIME": "sum"})["POSIX_F_READ_TIME"]
write_time = per_rank.agg({"POSIX_F_WRITE_TIME": "sum"})["POSIX_F_WRITE_TIME"]
meta_time = per_rank.agg({"POSIX_F_META_TIME": "sum"})["POSIX_F_META_TIME"]
total_time = read_time + write_time + meta_time
reads = per_rank.agg({"POSIX_READS": "sum"})["POSIX_READS"]
writes = per_rank.agg({"POSIX_WRITES": "sum"})["POSIX_WRITES"]
consec = per_rank.agg({"POSIX_CONSEC_READS": "sum"})["POSIX_CONSEC_READS"] + \\
    per_rank.agg({"POSIX_CONSEC_WRITES": "sum"})["POSIX_CONSEC_WRITES"]
shared_rows = posix[np.asarray(posix["rank"]) == -1]
file_count = float(np.round(per_rank.agg({"POSIX_FILE_COUNT": "sum"})["POSIX_FILE_COUNT"]))

# Most common access size, weighted by its observed count.
sizes = np.asarray(per_rank["POSIX_ACCESS1_ACCESS"], dtype=float)
counts = np.asarray(per_rank["POSIX_ACCESS1_COUNT"], dtype=float)
best_size = 0.0
totals = {}
for s, c in zip(sizes, counts):
    if s > 0:
        totals[s] = totals.get(s, 0.0) + c
if totals:
    best_size = max(totals, key=lambda s: totals[s])

print(f"METRIC nprocs = {len(set(per_rank['rank']))}")
print(f"METRIC total_bytes_read = {bytes_read:.0f}")
print(f"METRIC total_bytes_written = {bytes_written:.0f}")
print(f"METRIC meta_time_fraction = {meta_time / total_time if total_time else 0.0:.4f}")
print(f"METRIC seq_fraction = {consec / (reads + writes) if reads + writes else 1.0:.4f}")
print(f"METRIC shared_file = {1 if len(shared_rows) else 0}")
print(f"METRIC file_count = {file_count:.0f}")
print(f"METRIC common_access_size = {best_size:.0f}")
print(f"METRIC read_write_ratio = {reads / writes if writes else float(reads > 0):.4f}")
'''

FILE_SIZE_CODE = '''
import numpy as np

per_rank = posix[np.asarray(posix["rank"]) >= 0]
sizes = np.asarray(per_rank["POSIX_FILE_SIZE"], dtype=float)
weights = np.asarray(per_rank["POSIX_FILE_COUNT"], dtype=float)
mask = weights > 0
if mask.any() and weights[mask].sum() > 0:
    avg = float(np.average(sizes[mask], weights=weights[mask]))
    big = float(sizes[mask].max())
    small = float(sizes[mask].min())
else:
    avg = big = small = 0.0
print(f"METRIC avg_file_size = {avg:g}")
print(f"METRIC max_file_size = {big:g}")
print(f"METRIC min_file_size = {small:g}")
'''

META_RATIO_CODE = '''
import numpy as np

per_rank = posix[np.asarray(posix["rank"]) >= 0]
meta_ops = 0.0
for counter in ("POSIX_OPENS", "POSIX_STATS", "POSIX_UNLINKS", "POSIX_MKDIRS"):
    if counter in per_rank:
        meta_ops += per_rank.agg({counter: "sum"})[counter]
data_ops = per_rank.agg({"POSIX_READS": "sum"})["POSIX_READS"] + \\
    per_rank.agg({"POSIX_WRITES": "sum"})["POSIX_WRITES"]
print(f"METRIC meta_data_op_ratio = {meta_ops / data_ops if data_ops else 99.0:.4f}")
print(f"METRIC total_meta_ops = {meta_ops:g}")
'''

ACCESS_HISTOGRAM_CODE = '''
import numpy as np

per_rank = posix[np.asarray(posix["rank"]) >= 0]
sizes = np.asarray(per_rank["POSIX_ACCESS1_ACCESS"], dtype=float)
counts = np.asarray(per_rank["POSIX_ACCESS1_COUNT"], dtype=float)
buckets = {"lt_64k": 0.0, "64k_1m": 0.0, "1m_16m": 0.0, "ge_16m": 0.0}
for s, c in zip(sizes, counts):
    if s <= 0 or c <= 0:
        continue
    if s < 65536:
        buckets["lt_64k"] += c
    elif s < 1048576:
        buckets["64k_1m"] += c
    elif s < 16777216:
        buckets["1m_16m"] += c
    else:
        buckets["ge_16m"] += c
total = sum(buckets.values())
for name, value in buckets.items():
    share = value / total if total else 0.0
    print(f"METRIC access_share_{name} = {share:.4f}")
'''

RANK_IMBALANCE_CODE = '''
import numpy as np

per_rank = posix[np.asarray(posix["rank"]) >= 0]
grouped = per_rank.groupby("rank", {"POSIX_BYTES_WRITTEN": "sum"})
written = np.asarray(grouped["POSIX_BYTES_WRITTEN"], dtype=float)
if written.size and written.mean() > 0:
    imbalance = float(written.max() / written.mean())
    cv = float(written.std() / written.mean())
else:
    imbalance = 1.0
    cv = 0.0
print(f"METRIC rank_write_imbalance = {imbalance:.4f}")
print(f"METRIC rank_write_cv = {cv:.4f}")
'''

_FOLLOWUP_TEMPLATES: list[tuple[tuple[str, ...], str]] = [
    (("file size", "file sizes", "size distribution"), FILE_SIZE_CODE),
    (("histogram", "access size", "transfer size"), ACCESS_HISTOGRAM_CODE),
    (("imbalance", "variance", "per-rank", "rank"), RANK_IMBALANCE_CODE),
    (("metadata", "ratio", "operations"), META_RATIO_CODE),
]


def code_for_task(task: str) -> str:
    """Code the model writes for an analysis task description."""
    lowered = task.lower()
    for keywords, code in _FOLLOWUP_TEMPLATES:
        if any(k in lowered for k in keywords):
            return code
    return BASE_ANALYSIS_CODE


METRIC_RE = re.compile(r"^METRIC (\w+) = ([-\d.eE+]+)$", re.MULTILINE)


def metrics_from_output(output: str) -> dict[str, float]:
    """Parse ``METRIC`` lines printed by executed analysis code."""
    return {m.group(1): float(m.group(2)) for m in METRIC_RE.finditer(output)}


def report_from_metrics(metrics: dict[str, float], header: str) -> IOReport:
    """Compose the high-level I/O report narrative from measured metrics."""
    meta = metrics.get("meta_time_fraction", 0.0)
    seq = metrics.get("seq_fraction", 1.0)
    shared = metrics.get("shared_file", 0.0) >= 1
    xfer = metrics.get("common_access_size", 0.0)
    files = metrics.get("file_count", 0.0)
    gib = (metrics.get("total_bytes_read", 0) + metrics.get("total_bytes_written", 0)) / 2**30

    bits = []
    if meta >= 0.6:
        bits.append(
            f"the run is heavily metadata-intensive ({meta:.0%} of I/O time "
            f"in metadata operations across ~{int(files)} files)"
        )
    elif meta >= 0.2:
        bits.append(
            f"the run mixes substantial metadata activity ({meta:.0%} of "
            f"I/O time, ~{int(files)} files) with {gib:.1f} GiB of data movement"
        )
    else:
        bits.append(f"the run is data-dominated, moving {gib:.1f} GiB")
    bits.append(
        ("accesses are mostly sequential" if seq >= 0.5 else "accesses are random")
        + (f" with a dominant transfer size of {xfer:g} bytes" if xfer else "")
    )
    bits.append(
        "I/O targets a shared file" if shared else "each process works on its own files"
    )
    summary = f"Based on {header}: " + "; ".join(bits) + "."
    return IOReport(summary=summary, metrics=dict(metrics))
