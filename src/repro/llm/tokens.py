"""Token counting, usage accounting and prompt-cache simulation."""

from __future__ import annotations

from dataclasses import dataclass, field

#: Average characters per token for English/technical text.
CHARS_PER_TOKEN = 4.0

#: Providers cache prompt prefixes at block granularity.
CACHE_BLOCK_TOKENS = 64


def count_tokens(text: str) -> int:
    """Approximate token count (length-based, deterministic)."""
    if not text:
        return 0
    return max(1, round(len(text) / CHARS_PER_TOKEN))


@dataclass
class TokenUsage:
    """Usage for one request (or an accumulated total)."""

    input_tokens: int = 0
    output_tokens: int = 0
    cached_input_tokens: int = 0

    def __add__(self, other: "TokenUsage") -> "TokenUsage":
        return TokenUsage(
            input_tokens=self.input_tokens + other.input_tokens,
            output_tokens=self.output_tokens + other.output_tokens,
            cached_input_tokens=self.cached_input_tokens + other.cached_input_tokens,
        )

    @property
    def cache_hit_rate(self) -> float:
        if self.input_tokens == 0:
            return 0.0
        return self.cached_input_tokens / self.input_tokens


class PromptCache:
    """Prefix cache: repeated conversation prefixes are served from cache.

    Keyed by session; stores the most recent prompt per session and reports
    the shared prefix (in whole cache blocks) of the next prompt as cached —
    the way provider-side prompt caching behaves for append-only agent
    conversations.
    """

    def __init__(self):
        self._last_prompt: dict[str, str] = {}

    def lookup_and_store(self, session: str, prompt: str) -> int:
        """Cached token count for this prompt; records it for next time."""
        previous = self._last_prompt.get(session, "")
        shared = _common_prefix_len(previous, prompt)
        self._last_prompt[session] = prompt
        cached_tokens = count_tokens(prompt[:shared])
        return (cached_tokens // CACHE_BLOCK_TOKENS) * CACHE_BLOCK_TOKENS

    def reset(self, session: str | None = None) -> None:
        if session is None:
            self._last_prompt.clear()
        else:
            self._last_prompt.pop(session, None)


def _common_prefix_len(a: str, b: str) -> int:
    # Agent conversations are append-only, so the previous prompt is almost
    # always a literal prefix of the next one — one startswith beats the
    # binary search on that fast path.
    if len(a) <= len(b):
        if b.startswith(a):
            return len(a)
    elif a.startswith(b):
        return len(b)
    limit = min(len(a), len(b))
    low, high = 0, limit
    while low < high:
        mid = (low + high + 1) // 2
        if a[:mid] == b[:mid]:
            low = mid
        else:
            high = mid - 1
    return low


#: Ledger key under which retried/timed-out request waste accumulates.
RETRY_AGENT = "llm_retries"


@dataclass
class UsageLedger:
    """Aggregates usage per logical agent (tuning, analysis, extraction).

    Failed request attempts (injected transients, timeouts, malformed
    responses) are counted apart from successful traffic: their wasted
    tokens accumulate under the :data:`RETRY_AGENT` key and ``retries``
    counts the attempts, so a degraded session's overhead is visible in
    cost accounting without polluting any real agent's numbers.
    """

    per_agent: dict[str, TokenUsage] = field(default_factory=dict)
    requests: int = 0
    wall_latency: float = 0.0
    retries: int = 0

    def record(self, agent: str, usage: TokenUsage, latency: float = 0.0) -> None:
        current = self.per_agent.setdefault(agent, TokenUsage())
        self.per_agent[agent] = current + usage
        self.requests += 1
        self.wall_latency += latency

    def record_retry(self, usage: TokenUsage, latency: float = 0.0) -> None:
        """One failed/abandoned request attempt: wasted tokens + wall time."""
        current = self.per_agent.setdefault(RETRY_AGENT, TokenUsage())
        self.per_agent[RETRY_AGENT] = current + usage
        self.retries += 1
        self.wall_latency += latency

    def total(self) -> TokenUsage:
        out = TokenUsage()
        for usage in self.per_agent.values():
            out = out + usage
        return out

    def agent(self, name: str) -> TokenUsage:
        return self.per_agent.get(name, TokenUsage())

    def summary(self) -> str:
        lines = []
        for name, usage in sorted(self.per_agent.items()):
            lines.append(
                f"{name}: {usage.input_tokens} in / {usage.output_tokens} out "
                f"({usage.cache_hit_rate:.0%} cache hits)"
            )
        total = self.total()
        lines.append(
            f"total: {total.input_tokens} in / {total.output_tokens} out "
            f"across {self.requests} requests, {self.wall_latency:.1f}s LLM latency"
        )
        if self.retries:
            wasted = self.agent(RETRY_AGENT)
            lines.append(
                f"retries: {self.retries} failed attempt(s) wasted "
                f"{wasted.input_tokens} in / {wasted.output_tokens} out"
            )
        return "\n".join(lines)
