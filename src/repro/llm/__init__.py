"""Mock LLM substrate.

A deterministic stand-in for the commercial LLM APIs the paper uses.  The
design goal is *behavioural* fidelity on the axes the evaluation depends on:

- **Grounding beats parametric recall** — the backend answers from whatever
  structured context is present in the prompt; when information is missing
  it falls back to a per-model *corrupted* knowledge base (hallucinated
  parameter definitions and ranges, Figure 2).
- **Tool calling** — the Tuning Agent's three environment interactions are
  modeled as real tool calls with JSON arguments.
- **Cost accounting** — every request is token-counted, with a prompt-cache
  model that reproduces the paper's 85–90% cache-hit observation for
  iterative agent loops (§5.7).
- **Model profiles** — Claude-3.7-Sonnet, GPT-4o, GPT-4.5, Gemini-2.5-Pro
  and Llama-3.1-70B differ in hallucination rates, reasoning noise, price
  and latency (Figures 2 and 9).
"""

from repro.llm.api import ChatMessage, Completion, ToolCall, ToolSpec
from repro.llm.client import LLMClient
from repro.llm.profiles import MODEL_PROFILES, ModelProfile, get_profile
from repro.llm.tokens import PromptCache, TokenUsage, UsageLedger, count_tokens

__all__ = [
    "ChatMessage",
    "Completion",
    "ToolCall",
    "ToolSpec",
    "LLMClient",
    "ModelProfile",
    "MODEL_PROFILES",
    "get_profile",
    "TokenUsage",
    "UsageLedger",
    "PromptCache",
    "count_tokens",
]
