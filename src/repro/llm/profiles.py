"""Model capability profiles.

Rates are calibrated to reproduce the paper's observations: Figure 2 (all
three frontier models hallucinate parameter ranges; two also hallucinate
definitions) and Figure 9 (all evaluated models tune successfully, with the
smaller open model needing slightly noisier exploration).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ModelProfile:
    """Behavioural and cost parameters for one model."""

    name: str
    vendor: str
    context_window: int
    # Parametric-knowledge hallucination rates (when answering WITHOUT
    # grounding context in the prompt).
    p_wrong_definition: float
    p_wrong_range: float
    # Probability per tuning iteration of a suboptimal exploration step.
    reasoning_noise: float
    # USD per million tokens (approximate early-2025 list prices).
    usd_per_mtok_in: float
    usd_per_mtok_out: float
    # Seconds of inference latency per request (per §5.7: a few seconds).
    latency_per_request: float = 2.5

    def cost_usd(self, input_tokens: int, output_tokens: int, cached_tokens: int = 0) -> float:
        """API cost with cached input billed at a 90% discount."""
        fresh = input_tokens - cached_tokens
        return (
            fresh * self.usd_per_mtok_in
            + cached_tokens * self.usd_per_mtok_in * 0.1
            + output_tokens * self.usd_per_mtok_out
        ) / 1e6


MODEL_PROFILES: dict[str, ModelProfile] = {
    "claude-3.7-sonnet": ModelProfile(
        name="claude-3.7-sonnet",
        vendor="anthropic",
        context_window=200_000,
        p_wrong_definition=0.20,
        p_wrong_range=0.55,
        reasoning_noise=0.05,
        usd_per_mtok_in=3.0,
        usd_per_mtok_out=15.0,
        latency_per_request=2.8,
    ),
    "gpt-4o": ModelProfile(
        name="gpt-4o",
        vendor="openai",
        context_window=128_000,
        p_wrong_definition=0.30,
        p_wrong_range=0.60,
        reasoning_noise=0.08,
        usd_per_mtok_in=2.5,
        usd_per_mtok_out=10.0,
        latency_per_request=2.2,
    ),
    "gpt-4.5": ModelProfile(
        name="gpt-4.5",
        vendor="openai",
        context_window=128_000,
        p_wrong_definition=0.35,
        p_wrong_range=0.65,
        reasoning_noise=0.06,
        usd_per_mtok_in=75.0,
        usd_per_mtok_out=150.0,
        latency_per_request=4.0,
    ),
    "gemini-2.5-pro": ModelProfile(
        name="gemini-2.5-pro",
        vendor="google",
        context_window=1_000_000,
        p_wrong_definition=0.35,
        p_wrong_range=0.60,
        reasoning_noise=0.07,
        usd_per_mtok_in=1.25,
        usd_per_mtok_out=10.0,
        latency_per_request=2.6,
    ),
    "llama-3.1-70b": ModelProfile(
        name="llama-3.1-70b",
        vendor="meta",
        context_window=128_000,
        p_wrong_definition=0.45,
        p_wrong_range=0.75,
        reasoning_noise=0.15,
        usd_per_mtok_in=0.9,
        usd_per_mtok_out=0.9,
        latency_per_request=1.8,
    ),
}


def get_profile(name: str) -> ModelProfile:
    try:
        return MODEL_PROFILES[name]
    except KeyError:
        raise KeyError(
            f"unknown model {name!r}; available: {sorted(MODEL_PROFILES)}"
        ) from None
