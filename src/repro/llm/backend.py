"""The MockLLM backend.

Dispatches on the task structure of the incoming conversation:

- tool-calling conversations (the Tuning Agent's loop) run the
  :class:`~repro.llm.reasoning.TuningPolicy` over the parsed prompt context;
- ``## TASK: ANALYZE IO`` / ``FOLLOWUP ANALYSIS`` conversations follow the
  code-execute-summarize state machine of a code-executing agent;
- ``## TASK: JUDGE DOCUMENTATION`` / ``DESCRIBE PARAMETER`` / ``JUDGE
  IMPACT`` implement the offline extraction judgments — answering from the
  retrieved chunks when they contain the documentation, and falling back to
  (possibly hallucinated) parametric beliefs when they do not;
- ``## TASK: PARAM INFO`` answers directly from parametric knowledge (the
  Figure 2 no-RAG baseline);
- ``## TASK: SUMMARIZE RULES`` / ``MERGE RULES`` produce and synthesize the
  strict-JSON rule sets.

Every request is token-accounted against the session prompt cache.
"""

from __future__ import annotations

import json
import re

import numpy as np

from repro.llm import analysis_codegen as codegen
from repro.llm import promptparse as pp
from repro.llm.api import ChatMessage, Completion, ToolCall, ToolSpec
from repro.llm.knowledge import parametric_belief
from repro.llm.profiles import ModelProfile
from repro.llm.reasoning import (
    S_PROPOSED,
    S_REACT_TRANSCRIPT,
    S_VETOED,
    Decision,
    TuningContext,
    TuningPolicy,
    parse_proposed_section,
    parse_react_transcript,
    parse_vetoed_section,
    react_mode,
    render_react_thought,
    review_proposal,
)
from repro.llm.tokens import PromptCache, TokenUsage, count_tokens
from repro.rules.merge import merge_rule_sets
from repro.rules.model import RuleSet
from repro.sim.random import RngStreams


class MockLLM:
    """Deterministic model backend for one profile."""

    def __init__(self, profile: ModelProfile, seed: int = 0):
        self.profile = profile
        # Different models must not share random draws for the same seed.
        self.rng_streams = RngStreams(seed).spawn(f"model:{profile.name}")
        self.cache = PromptCache()

    # ------------------------------------------------------------------
    def complete(
        self,
        messages: list[ChatMessage],
        tools: list[ToolSpec] | None = None,
        session: str = "default",
    ) -> Completion:
        prompt = self._render_prompt(messages, tools)
        cached = self.cache.lookup_and_store(session, prompt)
        content = ""
        tool_calls: list[ToolCall] = []

        full_text = "\n".join(m.content for m in messages)
        last_user = next(
            (m.content for m in reversed(messages) if m.role in ("user", "tool")),
            "",
        )

        if tools:
            decision = self._tuning_decision(full_text)
            tool_calls = [self._decision_to_call(decision)]
            content = decision.rationale or decision.reason
        elif "## TASK: SUMMARIZE RULES" in last_user or "## TASK: MERGE RULES" in last_user:
            content = self._rules_task(full_text, last_user)
        elif "## TASK: JUDGE DOCUMENTATION" in last_user:
            content = self._judge_documentation(last_user)
        elif "## TASK: DESCRIBE PARAMETER" in last_user:
            content = self._describe_parameter(last_user)
        elif "## TASK: JUDGE IMPACT" in last_user:
            content = self._judge_impact(last_user)
        elif "## TASK: PARAM INFO" in last_user:
            content = self._param_info(last_user)
        elif "## TASK: REACT DECIDE" in last_user:
            content = react_mode(
                parse_react_transcript(
                    pp.split_sections(last_user).get(S_REACT_TRANSCRIPT, "")
                )
            )
        elif "## TASK: REACT THOUGHT" in last_user:
            content = self._react_thought(full_text)
        elif "## TASK: CRITIC REVIEW" in last_user:
            content = self._critic_review(full_text)
        elif "## TASK: ANALYZE IO" in full_text or "## TASK: FOLLOWUP ANALYSIS" in full_text:
            content = self._analysis_turn(messages, full_text)
        else:
            content = (
                "I can help with parallel file system tuning tasks; please "
                "provide a structured task section."
            )

        output_text = content + "".join(
            json.dumps({"tool": c.name, "arguments": c.arguments}) for c in tool_calls
        )
        usage = TokenUsage(
            input_tokens=count_tokens(prompt),
            output_tokens=count_tokens(output_text),
            cached_input_tokens=min(cached, count_tokens(prompt)),
        )
        return Completion(
            content=content, tool_calls=tool_calls, usage=usage, model=self.profile.name
        )

    # ------------------------------------------------------------------
    def _render_prompt(
        self, messages: list[ChatMessage], tools: list[ToolSpec] | None
    ) -> str:
        # Tools are rendered after the conversation so that tool-bearing and
        # tool-free requests in the same session share a cacheable prefix.
        parts = [f"[{m.role}]\n{m.content}" for m in messages]
        if tools:
            parts.append("AVAILABLE TOOLS:\n" + "\n".join(t.render() for t in tools))
        return "\n\n".join(parts)

    # -- tuning ----------------------------------------------------------
    def _parse_tuning_context(self, full_text: str) -> TuningContext:
        """The full tuning context shared by every agent-policy task."""
        sections = pp.split_sections(full_text)
        parameters = pp.parse_parameter_section(sections.get(pp.S_PARAMETERS, ""))
        report = None
        if pp.S_IO_REPORT in sections:
            report = pp.parse_io_report(sections[pp.S_IO_REPORT])
        rules = (
            pp.parse_rules_section(sections[pp.S_RULES])
            if pp.S_RULES in sections
            else []
        )
        facts = pp.parse_hardware_facts(sections.get(pp.S_HARDWARE, ""))
        initial, attempts = pp.parse_history_section(sections.get(pp.S_HISTORY, ""))
        max_attempts = 5
        match = re.search(r"at most (\d+) configurations", full_text)
        if match:
            max_attempts = int(match.group(1))
        vetoed = (
            parse_vetoed_section(sections[S_VETOED])
            if S_VETOED in sections
            else []
        )
        return TuningContext(
            parameters=parameters,
            report=report,
            rules=rules,
            facts=facts,
            initial_seconds=initial,
            attempts=attempts,
            max_attempts=max_attempts,
            vetoed=vetoed,
        )

    def _tuning_decision(self, full_text: str) -> Decision:
        ctx = self._parse_tuning_context(full_text)
        policy = TuningPolicy(self.profile, self.rng_streams.stream("tuning"))
        return policy.decide(ctx)

    def _react_thought(self, full_text: str) -> str:
        # Thought turns draw from their own stream: a policy that thinks
        # between actions must not perturb the act decisions other policies
        # (and the parity fixtures) take from the "tuning" stream.
        ctx = self._parse_tuning_context(full_text)
        policy = TuningPolicy(self.profile, self.rng_streams.stream("react"))
        return render_react_thought(policy.decide(ctx))

    def _critic_review(self, full_text: str) -> str:
        sections = pp.split_sections(full_text)
        parameters = pp.parse_parameter_section(sections.get(pp.S_PARAMETERS, ""))
        changes, rationale = parse_proposed_section(sections.get(S_PROPOSED, ""))
        return review_proposal(changes, rationale, parameters)

    @staticmethod
    def _decision_to_call(decision: Decision) -> ToolCall:
        if decision.kind == "analyze":
            return ToolCall("analysis_question", {"question": decision.question})
        if decision.kind == "run":
            return ToolCall(
                "run_configuration",
                {"changes": decision.changes, "rationale": decision.rationale},
            )
        return ToolCall("end_tuning", {"reason": decision.reason})

    # -- rules -------------------------------------------------------------
    def _rules_task(self, full_text: str, last_user: str) -> str:
        sections = pp.split_sections(full_text)
        if "## TASK: MERGE RULES" in last_user:
            existing = RuleSet.from_json(
                pp.parse_rules_section(sections.get(pp.S_RULES, "[]"))
            )
            new_body = _tail_after(last_user, "NEW RULES:")
            new = RuleSet.loads(new_body) if new_body.strip() else RuleSet()
            merged = merge_rule_sets(existing, new)
            return merged.dumps()
        parameters = pp.parse_parameter_section(sections.get(pp.S_PARAMETERS, ""))
        report = (
            pp.parse_io_report(sections[pp.S_IO_REPORT])
            if pp.S_IO_REPORT in sections
            else None
        )
        initial, attempts = pp.parse_history_section(sections.get(pp.S_HISTORY, ""))
        ctx = TuningContext(
            parameters=parameters,
            report=report,
            rules=[],
            facts=pp.parse_hardware_facts(sections.get(pp.S_HARDWARE, "")),
            initial_seconds=initial,
            attempts=attempts,
        )
        policy = TuningPolicy(self.profile, self.rng_streams.stream("reflection"))
        return json.dumps(policy.summarize_rules(ctx), indent=1)

    # -- extraction judgments ----------------------------------------------
    def _judge_documentation(self, task_text: str) -> str:
        param = _named_parameter(task_text)
        chunks = _tail_after(task_text, "RETRIEVED CONTEXT:")
        base = param.rsplit(".", 1)[-1]
        body = _parameter_section_body(chunks, base, param)
        section_present = bool(body) and f"Parameter name: {param}" in body
        has_range = section_present and "Valid range:" in body
        if section_present and has_range:
            return (
                f"SUFFICIENT: the documentation defines {param} and states "
                "its valid range."
            )
        if section_present:
            return (
                f"INSUFFICIENT: {param} is mentioned but no valid range is "
                "documented."
            )
        return f"INSUFFICIENT: the retrieved context does not document {param}."

    def _describe_parameter(self, task_text: str) -> str:
        param = _named_parameter(task_text)
        chunks = _tail_after(task_text, "RETRIEVED CONTEXT:")
        base = param.rsplit(".", 1)[-1]
        body = _parameter_section_body(chunks, base, param)
        if body and "Definition:" in body:
            definition = " ".join(_line_after(body, "Definition:").split())
            perf = " ".join(_line_after(body, "Performance notes:").split())
            range_match = re.search(
                r"Valid range: (.+?) \.\. (.+?)\. Default: (\d+)\.", body
            )
            unit_match = re.search(r"Unit: (\w+)\.", body)
            if range_match:
                low = _strip_expression(range_match.group(1))
                high = _strip_expression(range_match.group(2))
                default = range_match.group(3)
            else:
                low, high, default = "0", "0", "0"
            description = definition + (f" {perf}" if perf else "")
            binary = "yes" if (low == "0" and high == "1") else "no"
            return (
                f"grounded: yes\n"
                f"parameter: {param}\n"
                f"unit: {unit_match.group(1) if unit_match else 'count'}\n"
                f"default: {default}\n"
                f"range: {low} .. {high}\n"
                f"binary: {binary}\n"
                f"description: {description}"
            )
        # No grounding available: answer from (possibly hallucinated)
        # parametric knowledge.
        belief = parametric_belief(self.profile, param)
        return (
            f"grounded: no\n"
            f"parameter: {param}\n"
            f"unit: count\n"
            f"default: 0\n"
            f"range: {belief.min_value:g} .. {belief.max_value:g}\n"
            f"binary: no\n"
            f"description: {belief.definition}"
        )

    _POSITIVE_IMPACT = (
        "throughput",
        "bandwidth",
        "concurrency",
        "latency",
        "readahead",
        "prefetch",
        "operation rate",
        "creation and deletion",
        "metadata-intensive",
        "pipelin",
        "coalesce",
        "re-read",
        "into one rpc",
        "directly",
        "amortize",
        "lever",
    )
    _NEGATIVE_IMPACT = (
        "memory usage",
        "housekeeping",
        "testing",
        "availability",
        "fault handling",
        "accounting",
        "not a performance",
        "keep-alive",
    )

    def _judge_impact(self, task_text: str) -> str:
        param = _named_parameter(task_text)
        description = _tail_after(task_text, "DESCRIPTION:").lower()
        positive = sum(k in description for k in self._POSITIVE_IMPACT)
        negative = sum(k in description for k in self._NEGATIVE_IMPACT)
        if positive > negative and positive > 0:
            return (
                f"SIGNIFICANT: the documented behaviour of {param} directly "
                "influences I/O performance "
                f"({positive} performance-related aspects identified)."
            )
        return (
            f"MINOR: {param} primarily concerns resource management or "
            "testing rather than I/O performance."
        )

    def _param_info(self, task_text: str) -> str:
        belief = parametric_belief(self.profile, _named_parameter(task_text))
        return belief.render()

    # -- analysis state machine ---------------------------------------------
    def _analysis_turn(self, messages: list[ChatMessage], full_text: str) -> str:
        last = messages[-1].content
        if "EXECUTION OUTPUT:" in last:
            output = _tail_after(last, "EXECUTION OUTPUT:")
            metrics = codegen.metrics_from_output(output)
            if not metrics:
                # The code failed (or printed nothing usable): try again
                # rather than fabricating a report from thin air.
                if "## TASK: FOLLOWUP ANALYSIS" in full_text:
                    return (
                        "ANALYSIS FAILED: execution produced no metrics "
                        f"({output.strip()[:120]})"
                    )
                return f"```python\n{codegen.BASE_ANALYSIS_CODE}\n```"
            if "## TASK: FOLLOWUP ANALYSIS" in full_text:
                lines = [
                    f"ANSWER metric={name} value={value:g}"
                    for name, value in metrics.items()
                ]
                lines.append(
                    "These values were computed directly from the Darshan "
                    "counter dataframes."
                )
                return "\n".join(lines)
            header_match = re.search(r"header: (.+)", full_text)
            header = header_match.group(1) if header_match else "the trace"
            report = codegen.report_from_metrics(metrics, header)
            return "REPORT READY\n" + pp.build_io_report_section(report)
        if "## TASK: FOLLOWUP ANALYSIS" in full_text:
            question_match = re.search(r"QUESTION: (.+)", full_text)
            question = question_match.group(1) if question_match else ""
            code = codegen.code_for_task(question)
        else:
            code = codegen.BASE_ANALYSIS_CODE
        return f"```python\n{code}\n```"


# ---------------------------------------------------------------------------
def _named_parameter(text: str) -> str:
    match = re.search(r"PARAMETER: ([\w.]+)", text)
    if not match:
        raise ValueError("task text names no PARAMETER")
    return match.group(1)


def _tail_after(text: str, marker: str) -> str:
    index = text.find(marker)
    return text[index + len(marker):] if index >= 0 else ""


def _parameter_section_body(chunks: str, basename: str, fullname: str | None = None) -> str:
    """The section body for a parameter; disambiguates shared basenames
    (osc. and mdc. both expose max_rpcs_in_flight) via the full dotted name."""
    marker = f"=== The {basename} parameter ==="
    start = 0
    fallback = ""
    while True:
        start = chunks.find(marker, start)
        if start < 0:
            return fallback
        rest = chunks[start + len(marker):]
        end = rest.find("=== The ")
        body = rest[:end] if end >= 0 else rest
        if fullname is None or f"Parameter name: {fullname}" in body:
            return body
        if not fallback:
            fallback = body
        start += len(marker)


_FIELD_BOUNDARY = r"(?=Performance notes:|Valid range:|Refer to|Default:|===|$)"


def _line_after(body: str, marker: str) -> str:
    # Chunking collapses newlines, so fields are delimited by the next known
    # marker rather than by end-of-line.
    match = re.search(re.escape(marker) + r"\s*(.+?)" + _FIELD_BOUNDARY, body, re.DOTALL)
    return match.group(1).strip() if match else ""


def _strip_expression(token: str) -> str:
    token = token.strip()
    match = re.match(r"\(expression: (.+)\)", token)
    return match.group(1) if match else token
