"""Minimal columnar dataframe substrate (pandas stand-in).

The paper preprocesses Darshan logs into pandas ``DataFrame`` objects that the
Analysis Agent inspects with generated code.  pandas is not available in this
environment, so :class:`repro.frame.Frame` provides the (small) subset of the
API the agent needs: column access, boolean filtering, group-by aggregation,
describe-style summaries and CSV round-trips — all NumPy-backed.
"""

from repro.frame.frame import Frame
from repro.frame.ops import concat, merge_columns

__all__ = ["Frame", "concat", "merge_columns"]
