"""Frame combinators used by the Darshan parser and the Analysis Agent."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.frame.frame import Frame


def concat(frames: Sequence[Frame]) -> Frame:
    """Stack frames vertically; columns are the union, missing values NaN/None."""
    frames = [f for f in frames if len(f) > 0]
    if not frames:
        return Frame()
    names: list[str] = []
    for frame in frames:
        for name in frame.columns:
            if name not in names:
                names.append(name)
    data = {}
    for name in names:
        chunks = []
        for frame in frames:
            if name in frame:
                chunks.append(np.asarray(frame[name], dtype=object))
            else:
                chunks.append(np.full(len(frame), None, dtype=object))
        merged = np.concatenate(chunks)
        # Re-densify to numeric dtype when every element is a number.
        if all(isinstance(v, (int, float, np.integer, np.floating)) for v in merged):
            merged = np.asarray([float(v) for v in merged])
        data[name] = merged
    return Frame(data)


def merge_columns(left: Frame, right: Frame, on: str) -> Frame:
    """Inner join on a single key column (small-table nested join)."""
    left_keys = left[on]
    right_keys = right[on]
    right_index: dict[object, int] = {}
    for i, key in enumerate(right_keys):
        right_index.setdefault(key if not isinstance(key, np.generic) else key.item(), i)
    rows = []
    right_records = right.to_records()
    for row in left.to_records():
        key = row[on]
        j = right_index.get(key)
        if j is None:
            continue
        merged = dict(row)
        for name, value in right_records[j].items():
            if name != on:
                merged[name] = value
        rows.append(merged)
    return Frame.from_records(rows)
