"""The :class:`Frame` columnar table.

A ``Frame`` is an ordered mapping of column name -> 1-D :class:`numpy.ndarray`,
all of equal length.  String columns are stored as object arrays.  The API is
deliberately a small, predictable subset of pandas: the Analysis Agent's
generated code runs against it inside a sandbox, so every operation must be
side-effect free and raise clear errors.
"""

from __future__ import annotations

import io
from typing import Any, Callable, Iterable, Mapping, Sequence

import numpy as np

_AGGS: dict[str, Callable[[np.ndarray], Any]] = {
    "sum": lambda a: a.sum(),
    "mean": lambda a: a.mean(),
    "min": lambda a: a.min(),
    "max": lambda a: a.max(),
    "std": lambda a: a.std(ddof=0),
    "median": lambda a: np.median(a),
    "count": lambda a: a.size,
    "first": lambda a: a[0],
    "last": lambda a: a[-1],
    "nunique": lambda a: np.unique(a).size,
}


def _as_column(values: Any, length: int | None = None) -> np.ndarray:
    """Coerce ``values`` to a 1-D column array, broadcasting scalars."""
    if isinstance(values, np.ndarray):
        arr = values
    elif np.isscalar(values) or values is None:
        if length is None:
            raise ValueError("cannot broadcast a scalar without a known length")
        arr = np.full(length, values)
    else:
        values = list(values)
        if values and isinstance(values[0], str):
            arr = np.array(values, dtype=object)
        else:
            arr = np.asarray(values)
    if arr.ndim != 1:
        raise ValueError(f"columns must be 1-D, got shape {arr.shape}")
    if length is not None and arr.shape[0] != length:
        raise ValueError(f"column length {arr.shape[0]} != frame length {length}")
    return arr


class Frame:
    """An immutable-length, mutable-content columnar table.

    Parameters
    ----------
    data:
        Mapping of column name to column values (arrays, sequences, or
        scalars broadcast to the frame length).
    """

    def __init__(self, data: Mapping[str, Any] | None = None):
        self._columns: dict[str, np.ndarray] = {}
        if data:
            length: int | None = None
            for name, values in data.items():
                if length is None and not (np.isscalar(values) or values is None):
                    candidate = _as_column(values)
                    length = candidate.shape[0]
            for name, values in data.items():
                self._columns[name] = _as_column(values, length)

    # -- basic protocol -------------------------------------------------
    @property
    def columns(self) -> list[str]:
        """Column names in insertion order."""
        return list(self._columns)

    def __len__(self) -> int:
        if not self._columns:
            return 0
        return next(iter(self._columns.values())).shape[0]

    @property
    def shape(self) -> tuple[int, int]:
        return (len(self), len(self._columns))

    def __contains__(self, name: object) -> bool:
        return name in self._columns

    def __getitem__(self, key):
        """``frame[col]`` -> column; ``frame[mask]`` -> filtered Frame."""
        if isinstance(key, str):
            try:
                return self._columns[key]
            except KeyError:
                raise KeyError(
                    f"no column {key!r}; available: {sorted(self._columns)}"
                ) from None
        if isinstance(key, (list, tuple)) and all(isinstance(k, str) for k in key):
            return Frame({k: self._columns[k] for k in key})
        mask = np.asarray(key)
        if mask.dtype == bool:
            if mask.shape[0] != len(self):
                raise ValueError("boolean mask length mismatch")
            return Frame({n: c[mask] for n, c in self._columns.items()})
        return Frame({n: c[mask] for n, c in self._columns.items()})

    def __setitem__(self, name: str, values: Any) -> None:
        length = len(self) if self._columns else None
        self._columns[name] = _as_column(values, length)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Frame):
            return NotImplemented
        if self.columns != other.columns or len(self) != len(other):
            return False
        return all(
            np.array_equal(self._columns[c], other._columns[c]) for c in self.columns
        )

    __hash__ = None  # mutable container

    # -- construction helpers -------------------------------------------
    @classmethod
    def from_records(cls, records: Iterable[Mapping[str, Any]]) -> "Frame":
        """Build a Frame from an iterable of dict rows (union of keys)."""
        rows = list(records)
        if not rows:
            return cls()
        names: list[str] = []
        for row in rows:
            for key in row:
                if key not in names:
                    names.append(key)
        data = {n: [row.get(n) for row in rows] for n in names}
        return cls(data)

    def to_records(self) -> list[dict[str, Any]]:
        """Materialize rows as dicts (python scalars where possible)."""
        out = []
        for i in range(len(self)):
            row = {}
            for name, col in self._columns.items():
                value = col[i]
                if isinstance(value, np.generic):
                    value = value.item()
                row[name] = value
            out.append(row)
        return out

    def copy(self) -> "Frame":
        return Frame({n: c.copy() for n, c in self._columns.items()})

    # -- transformation --------------------------------------------------
    def filter(self, predicate: Callable[[dict[str, Any]], bool]) -> "Frame":
        """Row filter by a per-row dict predicate (slow path, convenience)."""
        mask = np.fromiter(
            (bool(predicate(row)) for row in self.to_records()),
            dtype=bool,
            count=len(self),
        )
        return self[mask]

    def sort_values(self, by: str, ascending: bool = True) -> "Frame":
        order = np.argsort(self._columns[by], kind="stable")
        if not ascending:
            order = order[::-1]
        return self[order]

    def head(self, n: int = 5) -> "Frame":
        return self[np.arange(min(n, len(self)))]

    def rename(self, mapping: Mapping[str, str]) -> "Frame":
        return Frame({mapping.get(n, n): c for n, c in self._columns.items()})

    def drop(self, names: Sequence[str]) -> "Frame":
        gone = set(names)
        return Frame({n: c for n, c in self._columns.items() if n not in gone})

    # -- aggregation -----------------------------------------------------
    def agg(self, spec: Mapping[str, str]) -> dict[str, Any]:
        """Aggregate columns: ``{"bytes": "sum", "time": "max"}``."""
        out: dict[str, Any] = {}
        for name, how in spec.items():
            col = self._columns[name]
            try:
                fn = _AGGS[how]
            except KeyError:
                raise ValueError(f"unknown aggregation {how!r}") from None
            if col.size == 0:
                out[name] = 0 if how in ("sum", "count") else float("nan")
            else:
                value = fn(col)
                out[name] = value.item() if isinstance(value, np.generic) else value
        return out

    def groupby(self, by: str | Sequence[str], spec: Mapping[str, str]) -> "Frame":
        """Group rows by key column(s) and aggregate the rest per ``spec``.

        Returns a new Frame with one row per distinct key, key columns first.
        """
        keys = [by] if isinstance(by, str) else list(by)
        if not keys:
            raise ValueError("groupby requires at least one key column")
        if len(self) == 0:
            return Frame({k: np.array([]) for k in keys})
        # Build a composite key via lexicographic encoding of per-key codes.
        codes = np.zeros(len(self), dtype=np.int64)
        uniques_per_key: list[np.ndarray] = []
        for key in keys:
            uniq, inv = np.unique(self._columns[key], return_inverse=True)
            uniques_per_key.append(uniq)
            codes = codes * (uniq.size + 1) + inv
        group_codes, first_idx, inv = np.unique(
            codes, return_index=True, return_inverse=True
        )
        order = np.argsort(inv, kind="stable")
        boundaries = np.searchsorted(inv[order], np.arange(group_codes.size))
        data: dict[str, Any] = {}
        for key in keys:
            data[key] = self._columns[key][first_idx]
        for name, how in spec.items():
            col = self._columns[name]
            fn = _AGGS.get(how)
            if fn is None:
                raise ValueError(f"unknown aggregation {how!r}")
            values = []
            for g in range(group_codes.size):
                start = boundaries[g]
                stop = boundaries[g + 1] if g + 1 < group_codes.size else len(self)
                values.append(fn(col[order[start:stop]]))
            out_name = name if name not in keys else f"{name}_{how}"
            data[out_name] = values
        return Frame(data)

    def describe(self, column: str) -> dict[str, float]:
        """Summary statistics for one numeric column."""
        col = np.asarray(self._columns[column], dtype=float)
        if col.size == 0:
            return {k: float("nan") for k in ("count", "mean", "std", "min", "p25", "p50", "p75", "max")}
        return {
            "count": float(col.size),
            "mean": float(col.mean()),
            "std": float(col.std(ddof=0)),
            "min": float(col.min()),
            "p25": float(np.percentile(col, 25)),
            "p50": float(np.percentile(col, 50)),
            "p75": float(np.percentile(col, 75)),
            "max": float(col.max()),
        }

    # -- serialization ----------------------------------------------------
    def to_csv(self) -> str:
        """Serialize to a simple CSV string (no quoting of commas needed)."""
        buf = io.StringIO()
        buf.write(",".join(self.columns) + "\n")
        for row in self.to_records():
            buf.write(",".join(str(row[c]) for c in self.columns) + "\n")
        return buf.getvalue()

    @classmethod
    def from_csv(cls, text: str) -> "Frame":
        """Parse the output of :meth:`to_csv` (numbers auto-coerced)."""
        lines = [line for line in text.splitlines() if line.strip()]
        if not lines:
            return cls()
        names = lines[0].split(",")
        raw: dict[str, list[str]] = {n: [] for n in names}
        for line in lines[1:]:
            parts = line.split(",")
            if len(parts) != len(names):
                raise ValueError(f"malformed CSV row: {line!r}")
            for name, part in zip(names, parts):
                raw[name].append(part)
        data: dict[str, Any] = {}
        for name, parts in raw.items():
            data[name] = _coerce_strings(parts)
        return cls(data)

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return f"Frame(rows={len(self)}, columns={self.columns})"


def _coerce_strings(parts: list[str]) -> Any:
    """Best-effort typed parse of a string column: int, then float, else str."""
    try:
        return [int(p) for p in parts]
    except ValueError:
        pass
    try:
        return [float(p) for p in parts]
    except ValueError:
        return parts
