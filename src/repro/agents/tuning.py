"""The Tuning Agent (§4.3.2): the primary controller of the tuning loop.

Each turn, the agent assembles its full context — tunable parameters,
hardware, the global rule set, the I/O report and the tuning history — and
asks the model for its next environment interaction via three tools:

- ``analysis_question`` — delegate a specific question to the Analysis Agent
  (the minor loop);
- ``run_configuration`` — apply a configuration and rerun the application,
  observing real performance feedback;
- ``end_tuning`` — conclude, with justification, when further tuning is not
  expected to help.

Prompt sections are ordered stable-first so the provider prompt cache hits
on the shared prefix every turn (§5.7).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Protocol

from repro.agents.analysis import AnalysisAgent
from repro.agents.transcript import Transcript
from repro.faults.retry import FaultBudgetExhausted
from repro.llm import promptparse as pp
from repro.llm.api import ChatMessage, ToolSpec
from repro.llm.client import LLMClient

TOOLS = [
    ToolSpec(
        name="analysis_question",
        description=(
            "Ask the Analysis Agent to run additional analysis over the "
            "application's Darshan trace."
        ),
        parameters={"question": "the specific analysis question"},
    ),
    ToolSpec(
        name="run_configuration",
        description=(
            "Apply a set of parameter values and rerun the target "
            "application to measure performance."
        ),
        parameters={
            "changes": "mapping of parameter name to value",
            "rationale": "documented reasoning for each value",
        },
    ),
    ToolSpec(
        name="end_tuning",
        description=(
            "Conclude the tuning process; only when further tuning is not "
            "expected to deliver additional gains."
        ),
        parameters={"reason": "justification for stopping"},
    ),
]

def system_prompt(fs_family: str = "Lustre") -> str:
    """The Tuning Agent's system prompt, naming the target file system."""
    return (
        f"You are the Tuning Agent of STELLAR, an autonomous tuner for a "
        f"{fs_family} parallel file system. Generate high-quality "
        "configurations, observe measured performance, and reflect on the "
        "outcomes. When generating a configuration, document the rationale "
        "behind each value. Finalize the process only when you believe "
        "further tuning would not elicit further performance gains, and "
        "justify the decision."
    )


class ReflectionFormatError(ValueError):
    """The model's Reflect & Summarize payload was not the strict JSON the
    protocol demands; the message names the agent and session so a fleet
    operator can locate the offending run without replaying it."""


class ConfigurationRunnerLike(Protocol):
    """What the Tuning Agent needs from the environment."""

    initial_seconds: float

    def measure(self, changes: dict[str, int]) -> tuple[float, dict[str, int]]:
        """Run with changes applied; returns (seconds, applied_changes)."""
        ...


@dataclass
class TuningLoopResult:
    """Raw outcome of the agent loop.

    ``degradations`` records graceful fallbacks under injected faults —
    a probe whose retry budget ran dry abandons that attempt (the agent
    keeps its last-good configuration) instead of killing the session.
    """

    attempts: list[pp.AttemptRecord] = field(default_factory=list)
    end_reason: str = ""
    rules_json: list[dict] = field(default_factory=list)
    followups: dict[str, str] = field(default_factory=dict)
    degradations: list[str] = field(default_factory=list)


class TuningAgent:
    """Drives the trial-and-error loop for one application.

    Subclasses (the alternative agent policies in
    :mod:`repro.agents.policies`) reuse the prompt assembly
    (:meth:`_sections`), the tool dispatch (:meth:`_dispatch`) and the
    Reflect & Summarize step; only the turn-taking strategy differs.
    """

    #: Safety-valve headroom beyond ``max_attempts`` tool turns; policies
    #: that spend turns on non-attempt work (e.g. critic vetoes) raise it.
    EXTRA_TURNS = 6

    def __init__(
        self,
        client: LLMClient,
        parameters: list[pp.ParameterInfo],
        hardware_description: str,
        facts: dict[str, float],
        runner: ConfigurationRunnerLike,
        report: pp.IOReport | None,
        analysis_agent: AnalysisAgent | None = None,
        rules_json: list[dict] | None = None,
        max_attempts: int = 5,
        transcript: Transcript | None = None,
        session: str = "tuning",
        fs_family: str = "Lustre",
    ):
        self.client = client
        self._system = system_prompt(fs_family)
        self.parameters = parameters
        self.hardware_description = hardware_description
        self.facts = facts
        self.runner = runner
        self.report = report
        self.analysis_agent = analysis_agent
        self.rules_json = list(rules_json or [])
        self.max_attempts = max_attempts
        self.transcript = transcript if transcript is not None else Transcript()
        self.session = session
        # The hardware, parameter and rules sections never change within a
        # run; build each once instead of on every model turn (the rules
        # section in particular re-serializes the whole rule set as JSON).
        self._static_sections = [
            pp.build_hardware_section(self.hardware_description, self.facts),
            pp.build_parameter_section(self.parameters),
        ]
        self._rules_section = pp.build_rules_section(self.rules_json)

    # ------------------------------------------------------------------
    def run_loop(self) -> TuningLoopResult:
        result = TuningLoopResult()
        # Safety valve: tool turns are bounded by attempts + a few
        # analysis/ending turns.
        for _ in range(self.max_attempts + self.EXTRA_TURNS):
            completion = self.client.complete(
                self._messages(result),
                tools=TOOLS,
                agent="tuning",
                session=self.session,
            )
            call = completion.called
            if call is None:
                result.end_reason = "model returned no tool call"
                break
            if self._dispatch(call, result):
                break
        if not result.end_reason and result.degradations:
            result.end_reason = (
                "tuning degraded: probe failures consumed the turn budget"
            )
        result.rules_json = self._reflect(result)
        return result

    # ------------------------------------------------------------------
    def _dispatch(self, call, result: TuningLoopResult) -> bool:
        """Route one tool call; returns True when the loop should end.

        An unknown tool name is absorbed as a degradation (structured
        transcript event, loop continues) rather than killing the session —
        the same contract probe failures follow under injected faults.
        """
        if call.name == "analysis_question":
            self._handle_analysis(call.arguments.get("question", ""), result)
        elif call.name == "run_configuration":
            self._handle_run(call.arguments, result)
        elif call.name == "end_tuning":
            result.end_reason = call.arguments.get("reason", "")
            self.transcript.add("end_tuning", result.end_reason)
            return True
        else:
            self.transcript.add(
                "unknown_tool",
                f"model called unknown tool {call.name!r}; turn skipped",
                tool=call.name,
            )
            result.degradations.append(
                f"llm.tool: unknown tool {call.name!r} skipped"
            )
        return False

    def _handle_analysis(self, question: str, result: TuningLoopResult) -> None:
        if self.analysis_agent is None or self.report is None:
            answer = "analysis unavailable"
            if self.report is not None:
                self.report.followups[question] = answer
            result.followups[question] = answer
            self.transcript.add("followup", f"Q: {question} -> unavailable")
            return
        answer, metrics = self.analysis_agent.answer(question)
        self.report.followups[question] = answer
        self.report.metrics.update(metrics)
        result.followups[question] = answer

    def _handle_run(self, arguments: dict, result: TuningLoopResult) -> None:
        requested = {
            str(name): int(value)
            for name, value in dict(arguments.get("changes", {})).items()
        }
        rationale = str(arguments.get("rationale", ""))
        try:
            seconds, applied = self.runner.measure(requested)
        except FaultBudgetExhausted as exc:
            # Graceful degradation: abandon this attempt, keep the
            # last-good configuration, and let the loop continue.
            self.transcript.add(
                "probe_failed",
                f"probe failed after {exc.attempts} attempt(s) ({exc.site}); "
                "keeping last-good configuration",
                changes=requested,
            )
            result.degradations.append(
                f"probe.run: attempt with {sorted(requested)} abandoned"
            )
            return
        speedup = self.runner.initial_seconds / seconds if seconds > 0 else 0.0
        attempt = pp.AttemptRecord(
            index=len(result.attempts) + 1,
            changes=applied,
            seconds=seconds,
            speedup=speedup,
            rationale=rationale,
        )
        result.attempts.append(attempt)
        self.transcript.add(
            "config",
            f"attempt {attempt.index}: {applied} -> {seconds:.2f}s "
            f"({speedup:.2f}x)",
            rationale=rationale,
            changes=applied,
            seconds=seconds,
            speedup=speedup,
        )

    # ------------------------------------------------------------------
    def _sections(self, result: TuningLoopResult) -> list[str]:
        """The prompt sections of one tool turn, stable-prefix first."""
        sections = [*self._static_sections, self._rules_section]
        if self.report is not None:
            sections.append(pp.build_io_report_section(self.report))
        sections.append(
            pp.build_history_section(self.runner.initial_seconds, result.attempts)
        )
        sections.append(
            f"You may try at most {self.max_attempts} configurations. "
            "Choose your next action."
        )
        return sections

    def _messages(self, result: TuningLoopResult) -> list[ChatMessage]:
        return [
            ChatMessage(role="system", content=self._system),
            ChatMessage(role="user", content="\n\n".join(self._sections(result))),
        ]

    def _reflect(self, result: TuningLoopResult) -> list[dict]:
        """Reflect & Summarize: distill the run into rules (§4.4)."""
        if not result.attempts:
            return []
        sections = list(self._static_sections)
        if self.report is not None:
            sections.append(pp.build_io_report_section(self.report))
        sections.append(
            pp.build_history_section(self.runner.initial_seconds, result.attempts)
        )
        sections.append(
            "## TASK: SUMMARIZE RULES\n"
            "Summarize what was learned during this tuning run as a strict "
            "JSON rule set (a list of objects with parameter, "
            "rule_description and tuning_context). Exclude the application "
            "name; make recommendations general rather than specific."
        )
        content = self.client.complete(
            [
                ChatMessage(role="system", content=self._system),
                ChatMessage(role="user", content="\n\n".join(sections)),
            ],
            agent="tuning",
            session=self.session,
        ).content
        try:
            rules = json.loads(content)
        except json.JSONDecodeError as exc:
            raise ReflectionFormatError(
                f"agent 'tuning' (session {self.session!r}) returned a "
                f"Reflect & Summarize payload that is not valid JSON at "
                f"line {exc.lineno} column {exc.colno}: {exc.msg}"
            ) from exc
        self.transcript.add(
            "reflection", f"distilled {len(rules)} rule(s)", rules=rules
        )
        return rules
