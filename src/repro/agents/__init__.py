"""The STELLAR agents (§4.3).

- :class:`~repro.agents.analysis.AnalysisAgent` — a code-executing agent
  (OpenInterpreter-style) that writes and runs Python against the parsed
  Darshan frames to produce the I/O Report and answer follow-up questions.
- :class:`~repro.agents.tuning.TuningAgent` — the primary controller of the
  trial-and-error loop, interacting with the environment through three tool
  calls: request more analysis, run a new configuration, or end tuning.
- :mod:`~repro.agents.reflection` — the Reflect & Summarize step that
  distills each run into rules and merges them into the global rule set.
- :mod:`~repro.agents.sandbox` — the restricted Python executor behind the
  Analysis Agent.
- :mod:`~repro.agents.transcript` — structured event capture for case-study
  rendering (paper Figure 10).
- :mod:`~repro.agents.online` — the online loop for dynamic workloads: drift
  detection over the monitor stream plus bounded re-tuning sessions
  (imported directly, not re-exported here, to keep the package import
  light — it pulls in the whole engine).
"""

from repro.agents.analysis import AnalysisAgent
from repro.agents.sandbox import SandboxError, run_in_sandbox
from repro.agents.transcript import Transcript, TranscriptEvent
from repro.agents.tuning import TuningAgent

__all__ = [
    "AnalysisAgent",
    "TuningAgent",
    "Transcript",
    "TranscriptEvent",
    "run_in_sandbox",
    "SandboxError",
]
