"""Online re-tuning under workload drift.

The paper's STELLAR tunes a static workload once.  This module closes the
loop for time-varying workloads: a :class:`DriftDetector` watches the
simulated monitor stream — the client-observable per-segment signals a real
deployment would scrape (wall time, aggregate data throughput, metadata-op
rate) — and an :class:`OnlineController` triggers **bounded** re-tuning
sessions through the existing engine when the stream leaves a hysteresis
band around its reference.

Design constraints:

- **Hysteresis, not thresholding.** Run-to-run noise and small drifts stay
  inside the do-nothing band; only a sustained regime change (signal moving
  more than ``band`` relative to the reference) triggers a session, and the
  reference is re-based after every re-tune so the detector never chases its
  own configuration changes.
- **Bounded sessions.** At most ``max_retunes`` re-tuning sessions per
  schedule, each capped at ``retune_attempts`` configurations — an online
  tuner that spends more time probing than serving is worse than a static
  one.
- **Reuse the reflection machinery.** Re-tuning goes through
  :meth:`Stellar.tune_and_accumulate`, so rules distilled from earlier
  segments seed later sessions (a re-tune into a previously-seen regime
  applies its accumulated rules as the first configuration).
- **Import-graph rule.** This module never reads configuration values by
  parameter name; any config introspection goes through roles
  (``config.role(...)``).  Parameter names appear only opaquely, inside the
  update dicts the engine's sessions return.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.engine import Stellar
from repro.core.session import TuningSession
from repro.pfs.simulator import RunResult
from repro.workloads.base import Workload

#: Rates below this (bytes/s or ops/s) are treated as "idle" — keeps the
#: log-domain signals finite for segments that move no data or no metadata.
RATE_FLOOR = 1.0


@dataclass(frozen=True)
class MonitorSample:
    """One segment's client-observable monitor readings."""

    seconds: float
    data_rate: float  # aggregate bytes/s (read + write)
    meta_rate: float  # metadata ops/s

    @classmethod
    def from_run(cls, run: RunResult) -> "MonitorSample":
        seconds = max(run.seconds, 1e-9)
        return cls(
            seconds=seconds,
            data_rate=(run.bytes_read + run.bytes_written) / seconds,
            meta_rate=run.mds_ops / seconds,
        )

    def signals(self) -> tuple[float, float]:
        """The drift signals, in the log domain (so deviations are relative)."""
        return (
            math.log(self.data_rate + RATE_FLOOR),
            math.log(self.meta_rate + RATE_FLOOR),
        )


@dataclass
class DriftDetector:
    """Hysteresis-banded drift detection over the monitor stream.

    The first sample observed (or the first after :meth:`rebase`) becomes the
    reference; subsequent samples are compared signal-by-signal in the log
    domain.  Drift fires only when some signal moved more than ``band``
    (fractional change) from the reference — anything inside the band is the
    do-nothing zone.
    """

    band: float = 0.5
    _reference: MonitorSample | None = field(default=None, repr=False)

    def rebase(self, sample: MonitorSample | None = None) -> None:
        """Forget the reference; the next observed sample becomes it."""
        self._reference = sample

    @property
    def reference(self) -> MonitorSample | None:
        return self._reference

    def deviation(self, sample: MonitorSample) -> float:
        """Largest per-signal |log-ratio| vs the reference (0 when unset)."""
        if self._reference is None:
            return 0.0
        return max(
            abs(observed - reference)
            for observed, reference in zip(sample.signals(), self._reference.signals())
        )

    def observe(self, sample: MonitorSample) -> bool:
        """Feed one sample; ``True`` when it drifted outside the band."""
        if self._reference is None:
            self._reference = sample
            return False
        return self.deviation(sample) > math.log1p(self.band)


@dataclass
class RetuneEvent:
    """One triggered re-tuning session."""

    segment_index: int
    deviation: float
    session: TuningSession


class OnlineController:
    """Drives bounded re-tuning of a drifting schedule.

    Usage (one decision pass over a schedule)::

        controller = OnlineController(engine)
        controller.start(schedule[0].workload)       # initial one-shot tune
        for segment in schedule:
            run = sim.run(segment.workload, controller.config(base), ...)
            controller.observe(segment.index, run, segment.workload)

    ``updates`` always holds the parameter updates currently in force; a
    re-tune triggered by segment *i*'s sample takes effect from segment
    *i + 1* (the drifted segment already ran — online tuning pays one segment
    of pain per regime change, which the drift experiment measures honestly).
    """

    def __init__(
        self,
        engine: Stellar,
        detector: DriftDetector | None = None,
        max_retunes: int = 3,
        initial_attempts: int = 5,
        retune_attempts: int = 3,
    ):
        self.engine = engine
        self.detector = detector if detector is not None else DriftDetector()
        self.max_retunes = max_retunes
        self.initial_attempts = initial_attempts
        self.retune_attempts = retune_attempts
        self.updates: dict[str, int] = {}
        self.sessions: list[TuningSession] = []
        self.retunes: list[RetuneEvent] = []
        self.samples: list[MonitorSample] = []

    # ------------------------------------------------------------------
    def start(self, workload: Workload) -> dict[str, int]:
        """The initial one-shot tune (identical to the static strategy)."""
        session = self.engine.tune_and_accumulate(
            workload, max_attempts=self.initial_attempts
        )
        self.sessions.append(session)
        self.updates = dict(session.best_config)
        self.detector.rebase()
        return dict(self.updates)

    def config(self, base):
        """The currently-in-force configuration on top of ``base`` defaults."""
        return base.with_updates(self.updates).clipped()

    @property
    def tuning_executions(self) -> int:
        """Application executions spent inside tuning sessions (probe cost)."""
        return sum(session.executions for session in self.sessions)

    # ------------------------------------------------------------------
    def probe(self, sim, index: int, workload: Workload, config, seed: int) -> RunResult:
        """Serve one segment under ``config`` and feed its monitor sample.

        The controller owns probe execution so every consumer measures the
        stream the same way: through ``Simulator.run``, which shares
        deterministic results via the process-wide run cache when an
        enclosing experiment enabled it.  Returns the probe run; the drift
        decision recorded (if any) applies from the next segment.
        """
        run = sim.run(workload, config, seed=seed)
        self.observe(index, run, workload)
        return run

    def observe(self, index: int, run: RunResult, workload: Workload) -> bool:
        """Feed one completed segment; ``True`` when a re-tune fired.

        The re-tuned updates apply from the *next* segment onward.
        """
        sample = MonitorSample.from_run(run)
        self.samples.append(sample)
        if not self.detector.observe(sample):
            return False
        if len(self.retunes) >= self.max_retunes:
            return False
        # observe() left the reference in place on drift, so the deviation
        # recorded with the event is exactly the one that tripped the band.
        deviation = self.detector.deviation(sample)
        session = self.engine.tune_and_accumulate(
            workload, max_attempts=self.retune_attempts
        )
        self.sessions.append(session)
        self.updates = dict(session.best_config)
        self.retunes.append(
            RetuneEvent(segment_index=index, deviation=deviation, session=session)
        )
        # The configuration just changed; measure the new regime fresh instead
        # of comparing it against pre-tune throughput.
        self.detector.rebase()
        return True
