"""Restricted Python executor for the Analysis Agent.

Executes model-generated analysis code against the parsed Darshan frames
with a captured stdout and a restricted import surface (numpy, math,
statistics only).  Dangerous builtins are removed; errors are surfaced as
:class:`SandboxError` so the agent can report execution failures back to the
model.

Output capture binds a buffer-backed ``print`` into the sandbox builtins
rather than redirecting ``sys.stdout``: redirection swaps a *process-global*
and the fleet's batched tenant groups execute analysis code from concurrent
threads — a global redirect would interleave captures across tenants (and
can strand ``sys.stdout`` on a dead buffer when scopes unwind out of
order).  The sandbox blocks ``sys`` imports, so the injected ``print`` is
the only way generated code can emit output.
"""

from __future__ import annotations

import builtins
import functools
import io
import math
import statistics
from functools import lru_cache

import numpy

_ALLOWED_IMPORTS = {"numpy": numpy, "math": math, "statistics": statistics, "np": numpy}

_BLOCKED_BUILTINS = {
    "open",
    "exec",
    "eval",
    "compile",
    "input",
    "breakpoint",
    "exit",
    "quit",
    "globals",
    "locals",
    "vars",
    "memoryview",
    "__import__",
}


class SandboxError(RuntimeError):
    """Raised when generated code fails or violates the sandbox policy."""


def _restricted_import(name, globals=None, locals=None, fromlist=(), level=0):
    root = name.split(".")[0]
    if root not in _ALLOWED_IMPORTS:
        raise SandboxError(f"import of {name!r} is not allowed in the sandbox")
    return _ALLOWED_IMPORTS[root]


def _safe_builtins() -> dict:
    # Copied per execution (each sandbox owns its builtins dict) from a
    # template computed once at import.
    safe = dict(_SAFE_BUILTINS_TEMPLATE)
    safe["__import__"] = _restricted_import
    return safe


_SAFE_BUILTINS_TEMPLATE = {
    name: getattr(builtins, name)
    for name in dir(builtins)
    if not name.startswith("_") and name not in _BLOCKED_BUILTINS
}


@lru_cache(maxsize=256)
def _compile_analysis(code: str):
    """Code objects are immutable — reuse them across identical snippets
    (the codegen emits the same analysis programs for every session)."""
    return compile(code, "<analysis>", "exec")


def run_in_sandbox(code: str, namespace: dict | None = None, max_output: int = 20_000) -> str:
    """Execute ``code``; returns captured stdout (truncated to ``max_output``)."""
    safe = _safe_builtins()
    buffer = io.StringIO()
    safe["print"] = functools.partial(print, file=buffer)
    scope: dict = {"__builtins__": safe}
    if namespace:
        scope.update(namespace)
    try:
        exec(_compile_analysis(code), scope)  # noqa: S102
    except SandboxError:
        raise
    except Exception as exc:  # surface model-code bugs to the agent
        raise SandboxError(f"{type(exc).__name__}: {exc}") from exc
    output = buffer.getvalue()
    if len(output) > max_output:
        output = output[:max_output] + "\n...[truncated]"
    return output
