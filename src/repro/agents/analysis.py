"""The Analysis Agent (§4.3.1).

A code-executing agent: given the parsed Darshan frames (and their column
descriptions) it asks the model for analysis code, executes it in the
sandbox, feeds the printed output back, and repeats until the model declares
the report ready.  A secondary entry point answers specific follow-up
questions from the Tuning Agent the same way.
"""

from __future__ import annotations

import re

from repro.agents.sandbox import SandboxError, run_in_sandbox
from repro.agents.transcript import Transcript
from repro.darshan.parser import ParsedLog
from repro.llm.api import ChatMessage
from repro.llm.client import LLMClient
from repro.llm.promptparse import IOReport, parse_io_report, split_sections, S_IO_REPORT

CODE_BLOCK_RE = re.compile(r"```python\n(.*?)```", re.DOTALL)

_SYSTEM = (
    "You are the Analysis Agent of an autonomous parallel file system "
    "tuner. You are given pandas-like dataframes holding Darshan counters "
    "(variables: posix, mpiio when present) plus column description dicts "
    "(posix_columns, mpiio_columns) and the log header string (header). "
    "Write Python to inspect them, then summarize the application's I/O "
    "behaviour, highlighting anything useful for tuning file system "
    "parameters."
)

MAX_CODE_ROUNDS = 4


class AnalysisAgent:
    """Runs analyses over one parsed Darshan log."""

    def __init__(
        self,
        client: LLMClient,
        parsed: ParsedLog,
        transcript: Transcript | None = None,
        session: str = "analysis",
    ):
        self.client = client
        self.parsed = parsed
        self.transcript = transcript if transcript is not None else Transcript()
        self.session = session
        self._namespace = parsed.namespace()

    # ------------------------------------------------------------------
    def initial_report(self) -> IOReport:
        """Produce the high-level I/O Report for the Tuning Agent."""
        task = (
            "## TASK: ANALYZE IO\n"
            f"header: {self.parsed.header}\n"
            "Available variables: "
            + ", ".join(sorted(self._namespace))
            + "\nColumn descriptions:\n"
            + self._describe_columns()
            + "\nData preview (first rows of each module frame):\n"
            + self._preview_frames()
            + "\nProvide a high-level summary of the application's I/O "
            "behaviour with quantitative metrics."
        )
        content = self._run_conversation(task)
        report = self._parse_report(content)
        self.transcript.add(
            "io_report", report.summary, metrics=dict(report.metrics)
        )
        return report

    def answer(self, question: str) -> tuple[str, dict[str, float]]:
        """Answer a Tuning Agent follow-up; returns (text, new metrics)."""
        task = (
            "## TASK: FOLLOWUP ANALYSIS\n"
            f"header: {self.parsed.header}\n"
            f"QUESTION: {question}\n"
            "Available variables: "
            + ", ".join(sorted(self._namespace))
        )
        content = self._run_conversation(task)
        metrics = {}
        for match in re.finditer(r"ANSWER metric=(\w+) value=([-\d.eE+]+)", content):
            metrics[match.group(1)] = float(match.group(2))
        answer_text = "; ".join(
            f"{name} = {value:g}" for name, value in metrics.items()
        ) or content.strip().splitlines()[0]
        self.transcript.add("followup", f"Q: {question} -> {answer_text}", metrics=metrics)
        return answer_text, metrics

    # ------------------------------------------------------------------
    def _run_conversation(self, task: str) -> str:
        messages = [
            ChatMessage(role="system", content=_SYSTEM),
            ChatMessage(role="user", content=task),
        ]
        for _ in range(MAX_CODE_ROUNDS):
            completion = self.client.complete(
                messages, agent="analysis", session=self.session
            )
            code_match = CODE_BLOCK_RE.search(completion.content)
            if code_match is None:
                return completion.content
            code = code_match.group(1)
            try:
                output = run_in_sandbox(code, self._namespace)
                status = "ok"
            except SandboxError as exc:
                output = f"ERROR: {exc}"
                status = "error"
            self.transcript.add(
                "analysis_code",
                f"executed {len(code.splitlines())} lines ({status})",
                output=output[:500],
            )
            messages.append(ChatMessage(role="assistant", content=completion.content))
            messages.append(
                ChatMessage(role="user", content=f"EXECUTION OUTPUT:\n{output}")
            )
        raise RuntimeError("Analysis Agent did not converge to a report")

    def _parse_report(self, content: str) -> IOReport:
        sections = split_sections(content)
        if S_IO_REPORT in sections:
            return parse_io_report(sections[S_IO_REPORT])
        raise RuntimeError(f"model produced no IO report: {content[:200]}")

    def _describe_columns(self) -> str:
        lines = []
        for module, columns in self.parsed.descriptions.items():
            for name, description in columns.items():
                lines.append(f"{module}.{name}: {description}")
        return "\n".join(lines)

    def _preview_frames(self, rows: int = 8) -> str:
        parts = []
        for module, frame in self.parsed.frames.items():
            parts.append(f"{module} ({len(frame)} records):")
            parts.append(frame.head(rows).to_csv())
        return "\n".join(parts)
