"""The default policy: the paper's reflection loop, verbatim.

One tool turn per model call — the agent assembles its full context and the
model answers with ``analysis_question`` / ``run_configuration`` /
``end_tuning`` — followed by Reflect & Summarize.  The policy constructs
the :class:`~repro.agents.tuning.TuningAgent` from its context with exactly
the former ``AgentLoopStage`` arguments, so sessions and transcripts are
byte-identical to the pre-refactor loop (guarded by the parity suites in
``tests/test_pipeline.py`` and ``tests/test_policies.py``).
"""

from __future__ import annotations

from repro.agents.policies.base import PolicyContext
from repro.agents.tuning import TuningAgent, TuningLoopResult


class ReflectionPolicy:
    """Today's loop behind the protocol; subclasses swap the agent class."""

    name = "reflection"
    agent_class: type[TuningAgent] = TuningAgent

    def agent(self, ctx: PolicyContext) -> TuningAgent:
        return self.agent_class(
            client=ctx.client,
            parameters=ctx.parameters,
            hardware_description=ctx.hardware_description,
            facts=ctx.facts,
            runner=ctx.runner,
            report=ctx.report,
            analysis_agent=ctx.analysis_agent,
            rules_json=ctx.rules_json,
            max_attempts=ctx.max_attempts,
            transcript=ctx.transcript,
            session=ctx.session,
            fs_family=ctx.fs_family,
        )

    def run(self, ctx: PolicyContext) -> TuningLoopResult:
        return self.agent(ctx).run_loop()
