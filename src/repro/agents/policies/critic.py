"""The propose/critic policy: a second model pass gates every probe run.

The proposer's turn is exactly the default tool turn; when it drafts a
``run_configuration`` the critic reviews the proposal (against the same
hardware and parameter sections, for the shared prompt-cache prefix)
before the probe spends a real execution:

- **APPROVE** — the run proceeds unchanged;
- **VETO: <reason>** — the proposal is recorded in a ``VETOED PROPOSALS``
  prompt section (the proposer treats it as tried, so vetoes can never
  livelock the loop) and the turn ends without a probe run;
- **AMEND** + corrected JSON — the run proceeds with the critic's values.

Vetoes park evaluations the default policy would have spent on speculative
exploration; they never change probe seeds or operand order — attempts
still derive their seeds from the execution count alone.
"""

from __future__ import annotations

import json

from repro.agents.policies.reflection import ReflectionPolicy
from repro.agents.tuning import TuningAgent, TuningLoopResult
from repro.llm.api import ChatMessage, ToolCall
from repro.llm.reasoning import (
    CRITIC_TASK,
    build_proposed_section,
    build_vetoed_section,
)


class ProposeCriticAgent(TuningAgent):
    """The default loop with a critic between proposal and probe."""

    #: Vetoed turns consume no attempt, so the loop needs extra headroom.
    EXTRA_TURNS = 10

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._vetoed: list[dict[str, int]] = []

    def _sections(self, result: TuningLoopResult) -> list[str]:
        sections = super()._sections(result)
        if self._vetoed:
            # Before the closing instruction, after the (stable) history —
            # the cacheable prefix is untouched.
            sections.insert(len(sections) - 1, build_vetoed_section(self._vetoed))
        return sections

    def _dispatch(self, call: ToolCall, result: TuningLoopResult) -> bool:
        if call.name == "run_configuration":
            reviewed = self._review(call)
            if reviewed is None:
                return False
            call = reviewed
        return super()._dispatch(call, result)

    def _review(self, call: ToolCall) -> ToolCall | None:
        """The critic's verdict; ``None`` means the proposal was vetoed."""
        requested = {
            str(name): int(value)
            for name, value in dict(call.arguments.get("changes", {})).items()
        }
        rationale = str(call.arguments.get("rationale", ""))
        sections = [
            *self._static_sections,
            build_proposed_section(requested, rationale),
            CRITIC_TASK,
        ]
        verdict = self.client.complete(
            [
                ChatMessage(role="system", content=self._system),
                ChatMessage(role="user", content="\n\n".join(sections)),
            ],
            agent="critic",
            session=self.session,
        ).content.strip()
        if verdict.startswith("VETO"):
            reason = verdict.partition(":")[2].strip()
            self._vetoed.append(requested)
            self.transcript.add(
                "critic_veto",
                f"critic vetoed {json.dumps(requested, sort_keys=True)}: "
                f"{reason}",
                changes=requested,
                reason=reason,
            )
            return None
        if verdict.startswith("AMEND"):
            amended = {
                str(name): int(value)
                for name, value in json.loads(
                    verdict.partition("\n")[2]
                ).items()
            }
            self.transcript.add(
                "critic_amend",
                f"critic amended {json.dumps(requested, sort_keys=True)} -> "
                f"{json.dumps(amended, sort_keys=True)}",
                proposed=requested,
                amended=amended,
            )
            return ToolCall(
                "run_configuration",
                {"changes": amended, "rationale": rationale},
            )
        return call


class ProposeCriticPolicy(ReflectionPolicy):
    name = "propose_critic"
    agent_class = ProposeCriticAgent
