"""The ReACT policy: explicit REASON | TOOL | HALT decide-then-act turns.

Each cycle the agent first asks the model which *mode* comes next over a
compact running transcript of Thought / Action / Observation lines, then
either writes a thought (a reasoning-only model turn) or takes a real tool
turn through the shared dispatch.  A concluding ``FINAL:`` thought halts
the run with that justification.

Determinism contract: thought turns draw from the model's dedicated
``react`` stream while act turns use the same ``tuning`` stream (and the
exact tool-turn prompt) as the default policy — thinking between actions
never perturbs when probes run, their seeds, or their operand order.
"""

from __future__ import annotations

import json

from repro.agents.policies.reflection import ReflectionPolicy
from repro.agents.tuning import TOOLS, TuningAgent, TuningLoopResult
from repro.llm.api import ChatMessage, ToolCall
from repro.llm.reasoning import (
    REACT_DECIDE_TASK,
    REACT_THOUGHT_TASK,
    build_react_transcript_section,
)


class ReACTAgent(TuningAgent):
    """Drives the decide-then-act loop for one application."""

    def run_loop(self) -> TuningLoopResult:
        result = TuningLoopResult()
        lines: list[str] = []
        # Each attempt costs at most a decide/thought/decide/act quartet;
        # the budget also bounds a runaway REASON chain.
        for _ in range(4 * self.max_attempts + 16):
            mode = self._decide_mode(lines)
            if mode == "HALT":
                result.end_reason = self._final_reason(lines)
                self.transcript.add("end_tuning", result.end_reason)
                break
            if mode == "REASON":
                thought = self._think(lines, result)
                lines.append(f"Thought: {thought}")
                self.transcript.add("react_thought", thought)
                continue
            completion = self.client.complete(
                self._messages(result),
                tools=TOOLS,
                agent="tuning",
                session=self.session,
            )
            call = completion.called
            if call is None:
                result.end_reason = "model returned no tool call"
                break
            attempts_before = len(result.attempts)
            if self._dispatch(call, result):
                break
            lines.append(f"Action: {call.name}")
            lines.append(
                f"Observation: {self._observe(call, result, attempts_before)}"
            )
        if not result.end_reason and result.degradations:
            result.end_reason = (
                "tuning degraded: probe failures consumed the turn budget"
            )
        result.rules_json = self._reflect(result)
        return result

    # ------------------------------------------------------------------
    def _decide_mode(self, lines: list[str]) -> str:
        sections = [
            *self._static_sections,
            build_react_transcript_section(lines),
            REACT_DECIDE_TASK,
        ]
        content = self.client.complete(
            [
                ChatMessage(role="system", content=self._system),
                ChatMessage(role="user", content="\n\n".join(sections)),
            ],
            agent="tuning",
            session=self.session,
        ).content
        token = content.strip().split()[0].upper() if content.strip() else ""
        return token if token in ("REASON", "TOOL", "HALT") else "TOOL"

    def _think(self, lines: list[str], result: TuningLoopResult) -> str:
        # The thought sees the full tuning context (minus the tool-turn
        # closing instruction) plus the running ReACT transcript.
        sections = self._sections(result)[:-1]
        sections.append(
            f"You may try at most {self.max_attempts} configurations."
        )
        sections.append(build_react_transcript_section(lines))
        sections.append(REACT_THOUGHT_TASK)
        return self.client.complete(
            [
                ChatMessage(role="system", content=self._system),
                ChatMessage(role="user", content="\n\n".join(sections)),
            ],
            agent="tuning",
            session=self.session,
        ).content.strip()

    def _final_reason(self, lines: list[str]) -> str:
        for line in reversed(lines):
            if line.startswith("Thought: FINAL:"):
                return line[len("Thought: FINAL:"):].strip()
        return "the agent concluded the run"

    def _observe(
        self, call: ToolCall, result: TuningLoopResult, attempts_before: int
    ) -> str:
        if call.name == "run_configuration":
            if len(result.attempts) > attempts_before:
                attempt = result.attempts[-1]
                return (
                    f"attempt {attempt.index}: "
                    f"{json.dumps(attempt.changes, sort_keys=True)} -> "
                    f"{attempt.seconds:.2f}s ({attempt.speedup:.2f}x)"
                )
            return "the probe failed; the attempt was abandoned"
        if call.name == "analysis_question":
            question = call.arguments.get("question", "")
            return f"analysis recorded an answer for {question!r}"
        return f"unknown tool {call.name!r} was skipped"


class ReACTPolicy(ReflectionPolicy):
    name = "react"
    agent_class = ReACTAgent
