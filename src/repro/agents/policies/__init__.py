"""Pluggable agent policies: turn-taking strategies for the tuning loop.

Importing the package registers the built-in policies; registration order
is the presentation order everywhere (CLI choices, the ranking experiment,
the bench's per-policy figures).
"""

from repro.agents.policies.base import (
    AgentPolicy,
    PolicyContext,
    get_policy,
    list_policies,
    register_policy,
    resolve_policy,
)
from repro.agents.policies.critic import ProposeCriticAgent, ProposeCriticPolicy
from repro.agents.policies.react import ReACTAgent, ReACTPolicy
from repro.agents.policies.reflection import ReflectionPolicy

REFLECTION = register_policy(ReflectionPolicy())
REACT = register_policy(ReACTPolicy())
PROPOSE_CRITIC = register_policy(ProposeCriticPolicy())

__all__ = [
    "AgentPolicy",
    "PolicyContext",
    "ProposeCriticAgent",
    "ProposeCriticPolicy",
    "ReACTAgent",
    "ReACTPolicy",
    "ReflectionPolicy",
    "get_policy",
    "list_policies",
    "register_policy",
    "resolve_policy",
]
