"""The :class:`AgentPolicy` protocol and its registry.

A policy owns ONE turn-taking strategy for the tuning loop — which agent
talks when, how proposals become probe runs, and when the session ends —
over the narrow :class:`PolicyContext` seam.  Everything else (prompt
section builders, the probe, the analysis minor loop, fault absorption,
Reflect & Summarize) is shared machinery from :mod:`repro.agents.tuning`.

Import-graph rules (mirrored in ROADMAP "Architecture: agent policies"):
policies live in the agents layer, read cluster configuration only through
the facts and parameter infos already in their context, and hold no
backend-specific parameter tables — backend detection happens inside the
model (:func:`repro.backends.detect_backend`), exactly as for the default
loop.  ``core``/``service`` depend on this package, never the reverse.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

from repro.agents.analysis import AnalysisAgent
from repro.agents.transcript import Transcript
from repro.agents.tuning import ConfigurationRunnerLike, TuningLoopResult
from repro.llm.client import LLMClient
from repro.llm.promptparse import IOReport, ParameterInfo


@dataclass
class PolicyContext:
    """Everything one turn-taking strategy needs for one tuning run.

    Field-for-field the former :class:`~repro.agents.tuning.TuningAgent`
    constructor surface, so the default policy reconstructs the
    pre-refactor loop byte for byte.
    """

    client: LLMClient
    parameters: list[ParameterInfo]
    hardware_description: str
    facts: dict[str, float]
    runner: ConfigurationRunnerLike
    report: IOReport | None
    analysis_agent: AnalysisAgent | None = None
    rules_json: list[dict] = field(default_factory=list)
    max_attempts: int = 5
    transcript: Transcript | None = None
    session: str = "tuning"
    fs_family: str = "Lustre"


@runtime_checkable
class AgentPolicy(Protocol):
    """One turn-taking strategy over a :class:`PolicyContext`."""

    name: str

    def run(self, ctx: PolicyContext) -> TuningLoopResult: ...


#: Registration order is presentation order (CLI choices, experiments).
_REGISTRY: dict[str, AgentPolicy] = {}


def register_policy(policy: AgentPolicy) -> AgentPolicy:
    if policy.name in _REGISTRY:
        raise ValueError(f"agent policy {policy.name!r} is already registered")
    _REGISTRY[policy.name] = policy
    return policy


def list_policies() -> list[str]:
    """Registered policy names, in registration order."""
    return list(_REGISTRY)


def get_policy(name: str) -> AgentPolicy:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown agent policy {name!r}; registered: "
            f"{', '.join(_REGISTRY)}"
        ) from None


def resolve_policy(policy: "AgentPolicy | str | None") -> AgentPolicy:
    """``None`` -> the default (reflection), a name -> its registration,
    an instance -> itself."""
    if policy is None:
        return _REGISTRY["reflection"]
    if isinstance(policy, str):
        return get_policy(policy)
    return policy
