"""Structured transcripts of agent activity (case-study rendering)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass
class TranscriptEvent:
    """One step of a tuning run."""

    kind: str  # e.g. "initial_run", "io_report", "followup", "config", ...
    detail: str
    payload: dict[str, Any] = field(default_factory=dict)


@dataclass
class Transcript:
    """Ordered event log for one tuning run."""

    events: list[TranscriptEvent] = field(default_factory=list)

    def add(self, kind: str, detail: str, **payload: Any) -> None:
        self.events.append(TranscriptEvent(kind=kind, detail=detail, payload=payload))

    def of_kind(self, kind: str) -> list[TranscriptEvent]:
        return [e for e in self.events if e.kind == kind]

    def render(self) -> str:
        """Human-readable timeline (Figure 10 style)."""
        lines = []
        for i, event in enumerate(self.events, 1):
            lines.append(f"[{i:02d}] {event.kind}: {event.detail}")
        return "\n".join(lines)
