"""Rule set synthesis through the model (§4.4.2).

After a run's rules are generated, the Tuning Agent is asked to *augment*
the existing global rule set rather than regenerate it; the model resolves
contradictions and marks alternatives.  (The mock model implements the
merge with :func:`repro.rules.merge.merge_rule_sets` — the same semantics
the prompt instructs a real model to follow.)
"""

from __future__ import annotations

import json

from repro.llm import promptparse as pp
from repro.llm.client import LLMClient


def merge_rules_via_llm(
    client: LLMClient,
    existing: list[dict],
    new: list[dict],
    session: str = "rules-merge",
    agent: str = "tuning",
) -> list[dict]:
    """Ask the model to merge ``new`` rules into the ``existing`` global set.

    Usage is recorded on the client's ledger under ``agent`` — the engine
    passes ``rules_merge`` so the merge step shows up as its own line in
    session accounting instead of vanishing into a throwaway client.
    """
    if not existing:
        return list(new)
    if not new:
        return list(existing)
    prompt = (
        pp.build_rules_section(existing)
        + "\n\n## TASK: MERGE RULES\n"
        "Augment the global rule set above with the new rules below. If a "
        "new rule directly contradicts an existing rule for the same "
        "parameter and tuning context, remove both. If two rules offer only "
        "slightly different guidance, keep both marked as alternatives. "
        "Drop alternatives whose guidance produced a negative outcome.\n"
        "NEW RULES:\n" + json.dumps(new)
    )
    content = client.ask(prompt, agent=agent, session=session)
    return json.loads(content)
