"""Token-window chunking with overlap (LlamaIndex-style defaults)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.llm.tokens import count_tokens

DEFAULT_CHUNK_TOKENS = 1024
DEFAULT_OVERLAP_TOKENS = 20


@dataclass(frozen=True)
class Chunk:
    """One retrievable slice of a document."""

    chunk_id: int
    text: str
    start_word: int


def chunk_text(
    text: str,
    chunk_tokens: int = DEFAULT_CHUNK_TOKENS,
    overlap_tokens: int = DEFAULT_OVERLAP_TOKENS,
) -> list[Chunk]:
    """Split ``text`` into overlapping word windows of ~``chunk_tokens``.

    Word boundaries keep chunks readable; the token budget is enforced via
    the same token estimator used for usage accounting, so chunk sizes line
    up with what the embedding model would see.
    """
    if chunk_tokens < 8:
        raise ValueError("chunk_tokens too small")
    if overlap_tokens >= chunk_tokens:
        raise ValueError("overlap must be smaller than the chunk size")
    words = text.split()
    if not words:
        return []
    # Convert token budgets to word counts using the corpus-wide ratio.
    tokens_per_word = max(count_tokens(text) / len(words), 0.25)
    words_per_chunk = max(8, int(chunk_tokens / tokens_per_word))
    overlap_words = max(1, int(overlap_tokens / tokens_per_word))

    chunks: list[Chunk] = []
    start = 0
    chunk_id = 0
    while start < len(words):
        window = words[start : start + words_per_chunk]
        chunks.append(Chunk(chunk_id=chunk_id, text=" ".join(window), start_word=start))
        chunk_id += 1
        if start + words_per_chunk >= len(words):
            break
        start += words_per_chunk - overlap_words
    return chunks
