"""RAG-based parameter extraction (§4.2.2).

The offline pipeline:

1. Walk the ``/proc`` tree and keep writable parameters (rough filter).
2. For each candidate, query the vector index with *"How do I use the
   parameter X?"* and retrieve the top-K chunks.
3. Ask the LLM whether the retrieved documentation is **sufficient** to
   define the parameter's purpose and valid range; drop insufficient ones
   (under-documented parameters are assumed unimportant).
4. Ask the LLM to **describe** the parameter — purpose, intended I/O impact,
   valid range, with dependent ranges emitted in the expression syntax that
   the online tuner evaluates against live system values.
5. Exclude **binary** parameters (user trade-offs, not tuning decisions).
6. Ask the LLM to judge each remaining parameter's performance **impact**
   from its description, keeping only the significant ones.

For our Lustre model the result is 13 parameters.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.cluster.hardware import ClusterSpec
from repro.corpus import render_manual
from repro.llm.client import LLMClient
from repro.llm.promptparse import ParameterInfo
from repro.pfs.proctree import build_proc_tree, writable_parameter_names
from repro.rag.index import VectorIndex

TOP_K = 20


@dataclass
class ExtractedParameter:
    """The offline phase's output for one parameter."""

    name: str
    description: str
    default: int
    min_expr: str
    max_expr: str
    unit: str = "count"
    binary: bool = False
    grounded: bool = True
    impact_judgment: str = ""

    def to_info(self, include_description: bool = True) -> ParameterInfo:
        return ParameterInfo(
            name=self.name,
            default=self.default,
            min_expr=self.min_expr,
            max_expr=self.max_expr,
            description=self.description if include_description else "",
            unit=self.unit,
        )


@dataclass
class ExtractionResult:
    """Everything the offline phase produced, including filter provenance."""

    selected: list[ExtractedParameter] = field(default_factory=list)
    filtered_insufficient: list[str] = field(default_factory=list)
    filtered_binary: list[str] = field(default_factory=list)
    filtered_low_impact: list[str] = field(default_factory=list)

    @property
    def selected_names(self) -> list[str]:
        return [p.name for p in self.selected]


class ParameterExtractor:
    """Runs the offline extraction pipeline."""

    def __init__(self, cluster: ClusterSpec, client: LLMClient, manual: str | None = None):
        self.cluster = cluster
        self.client = client
        self.manual = (
            manual if manual is not None else render_manual(backend=cluster.backend)
        )
        self.index = VectorIndex.from_documents([self.manual])

    # ------------------------------------------------------------------
    def retrieve(self, parameter: str, top_k: int = TOP_K) -> str:
        """Top-K chunks for a parameter query, in document order."""
        hits = self.index.query(f"How do I use the parameter {parameter}?", top_k=top_k)
        ordered = sorted(hits, key=lambda h: h.chunk.chunk_id)
        return "\n".join(h.chunk.text for h in ordered)

    def run(self, candidates: list[str] | None = None) -> ExtractionResult:
        """Run the pipeline.

        ``candidates`` overrides the default ``/proc`` rough filter — used
        when the storage system exposes tunables via configuration files
        (DAOS-style, §4.2.2) instead of a parameter tree.
        """
        result = ExtractionResult()
        if candidates is None:
            candidates = writable_parameter_names(build_proc_tree(self.cluster))
        for name in candidates:
            context = self.retrieve(name)
            verdict = self.client.ask(
                "## TASK: JUDGE DOCUMENTATION\n"
                f"PARAMETER: {name}\n"
                "Does the retrieved documentation define this parameter's "
                "purpose and its valid range?\n"
                f"RETRIEVED CONTEXT:\n{context}",
                agent="extraction",
                session=f"extract:{name}",
            )
            if not verdict.startswith("SUFFICIENT"):
                result.filtered_insufficient.append(name)
                continue
            described = self.client.ask(
                "## TASK: DESCRIBE PARAMETER\n"
                f"PARAMETER: {name}\n"
                "Describe the parameter's purpose, its intended impact on "
                "I/O, and its valid range. Use the dependent expression "
                "syntax for ranges that depend on other parameters or "
                "hardware facts.\n"
                f"RETRIEVED CONTEXT:\n{context}",
                agent="extraction",
                session=f"extract:{name}",
            )
            extracted = _parse_described(described)
            if extracted is None:
                result.filtered_insufficient.append(name)
                continue
            if extracted.binary:
                result.filtered_binary.append(name)
                continue
            impact = self.client.ask(
                "## TASK: JUDGE IMPACT\n"
                f"PARAMETER: {name}\n"
                "Is this parameter likely to have a significant impact on "
                "I/O performance? Answer with documented reasoning.\n"
                f"DESCRIPTION:\n{extracted.description}",
                agent="extraction",
                session=f"extract:{name}",
            )
            if not impact.startswith("SIGNIFICANT"):
                result.filtered_low_impact.append(name)
                continue
            extracted.impact_judgment = impact
            result.selected.append(extracted)
        return result


def _parse_described(text: str) -> ExtractedParameter | None:
    fields: dict[str, str] = {}
    for line in text.splitlines():
        key, _, value = line.partition(":")
        fields[key.strip()] = value.strip()
    if "parameter" not in fields or "range" not in fields:
        return None
    low, _, high = fields["range"].partition("..")
    return ExtractedParameter(
        name=fields["parameter"],
        description=fields.get("description", ""),
        default=int(float(fields.get("default", "0"))),
        min_expr=low.strip(),
        max_expr=high.strip(),
        unit=fields.get("unit", "count"),
        binary=fields.get("binary", "no") == "yes",
        grounded=fields.get("grounded", "yes") == "yes",
    )
