"""Hashed lexical embeddings.

A deterministic stand-in for ``text-embedding-3-large``: words and character
trigrams are hashed into a fixed-dimension vector with sublinear TF
weighting, then L2-normalized so cosine similarity is a dot product.  On a
technical manual this reliably ranks the chunk documenting a parameter first
for queries naming that parameter — the property the extraction pipeline
needs.
"""

from __future__ import annotations

import hashlib
import re

import numpy as np

EMBEDDING_DIM = 256

_WORD_RE = re.compile(r"[a-z0-9_.]+")


def _bucket(token: str, salt: str) -> int:
    digest = hashlib.md5(f"{salt}:{token}".encode()).digest()
    return int.from_bytes(digest[:4], "little") % EMBEDDING_DIM


def _sign(token: str, salt: str) -> float:
    digest = hashlib.md5(f"sign:{salt}:{token}".encode()).digest()
    return 1.0 if digest[0] % 2 == 0 else -1.0


def tokenize_words(text: str) -> list[str]:
    return _WORD_RE.findall(text.lower())


def embed_text(text: str) -> np.ndarray:
    """Embed ``text`` into a unit vector of :data:`EMBEDDING_DIM` floats."""
    vec = np.zeros(EMBEDDING_DIM, dtype=np.float64)
    words = tokenize_words(text)
    if not words:
        return vec
    counts: dict[str, int] = {}
    for word in words:
        counts[word] = counts.get(word, 0) + 1
    for word, count in counts.items():
        weight = 1.0 + np.log(count)
        vec[_bucket(word, "w")] += _sign(word, "w") * weight
        # Character trigrams catch morphology (e.g. "statahead" in queries
        # matching "statahead_max" in text).
        padded = f"#{word}#"
        for i in range(len(padded) - 2):
            tri = padded[i : i + 3]
            vec[_bucket(tri, "t")] += _sign(tri, "t") * 0.3 * weight
    norm = np.linalg.norm(vec)
    if norm > 0:
        vec /= norm
    return vec


def cosine_similarity(a: np.ndarray, b: np.ndarray) -> float:
    return float(np.dot(a, b))
