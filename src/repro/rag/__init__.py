"""Retrieval-augmented generation substrate.

Mirrors the paper's offline pipeline: the manual is chunked
(:mod:`~repro.rag.chunking`, default 1024 tokens / 20 overlap), embedded
(:mod:`~repro.rag.embeddings` — hashed lexical embeddings standing in for
``text-embedding-3-large``), indexed (:mod:`~repro.rag.index`) and queried
per parameter by the extraction pipeline (:mod:`~repro.rag.extraction`),
which asks an LLM to judge documentation sufficiency, generate accurate
descriptions with dependent-range expressions, exclude binary parameters and
select the high-impact subset — 13 parameters for our Lustre model.
"""

from repro.rag.chunking import Chunk, chunk_text
from repro.rag.embeddings import embed_text
from repro.rag.extraction import ExtractedParameter, ParameterExtractor
from repro.rag.index import VectorIndex

__all__ = [
    "Chunk",
    "chunk_text",
    "embed_text",
    "VectorIndex",
    "ExtractedParameter",
    "ParameterExtractor",
]
