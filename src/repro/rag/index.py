"""The queryable vector index over manual chunks."""

from __future__ import annotations

import json
from dataclasses import dataclass

import numpy as np

from repro.rag.chunking import Chunk, chunk_text
from repro.rag.embeddings import embed_text


@dataclass
class Retrieval:
    """One query hit."""

    chunk: Chunk
    score: float


class VectorIndex:
    """Embedded chunk store with top-K cosine retrieval."""

    def __init__(self):
        self._chunks: list[Chunk] = []
        self._matrix: np.ndarray | None = None

    @classmethod
    def from_documents(
        cls, documents: list[str], chunk_tokens: int = 1024, overlap_tokens: int = 20
    ) -> "VectorIndex":
        index = cls()
        for document in documents:
            index.add_chunks(chunk_text(document, chunk_tokens, overlap_tokens))
        return index

    def add_chunks(self, chunks: list[Chunk]) -> None:
        if not chunks:
            return
        # Re-id so chunk ids stay unique across documents.
        base = len(self._chunks)
        renumbered = [
            Chunk(chunk_id=base + i, text=c.text, start_word=c.start_word)
            for i, c in enumerate(chunks)
        ]
        vectors = np.stack([embed_text(c.text) for c in renumbered])
        self._chunks.extend(renumbered)
        if self._matrix is None:
            self._matrix = vectors
        else:
            self._matrix = np.vstack([self._matrix, vectors])

    def __len__(self) -> int:
        return len(self._chunks)

    def query(self, text: str, top_k: int = 20) -> list[Retrieval]:
        """Top-K most similar chunks for a query string."""
        if not self._chunks:
            return []
        if top_k < 1:
            raise ValueError("top_k must be >= 1")
        query_vec = embed_text(text)
        scores = self._matrix @ query_vec
        k = min(top_k, len(self._chunks))
        order = np.argpartition(-scores, k - 1)[:k]
        order = order[np.argsort(-scores[order])]
        return [Retrieval(chunk=self._chunks[i], score=float(scores[i])) for i in order]

    # -- persistence -------------------------------------------------------
    def dumps(self) -> str:
        """Serialize chunks (vectors are recomputed on load — deterministic)."""
        return json.dumps(
            [
                {"chunk_id": c.chunk_id, "text": c.text, "start_word": c.start_word}
                for c in self._chunks
            ]
        )

    @classmethod
    def loads(cls, payload: str) -> "VectorIndex":
        index = cls()
        raw = json.loads(payload)
        index.add_chunks(
            [
                Chunk(chunk_id=r["chunk_id"], text=r["text"], start_word=r["start_word"])
                for r in raw
            ]
        )
        return index
