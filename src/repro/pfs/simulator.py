"""The simulator facade: run a workload under a configuration.

``Simulator.run`` compiles the workload to phases, costs each with the
analytic model, applies seeded run-to-run noise, and returns a
:class:`RunResult` carrying everything downstream consumers need (total wall
time, per-phase breakdown, and the phase objects the Darshan tracer reads).

Run hygiene (the paper's between-run protocol: delete data files, drop client
caches, remount, wait for sync) maps to every ``run`` starting from a fresh
:class:`~repro.pfs.model.RunState` — see :mod:`repro.core.hygiene` for the
orchestration-level record of those steps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

from repro.cluster.hardware import ClusterSpec
from repro.cluster.mpi import MpiJob
from repro.pfs.config import PfsConfig
from repro.pfs.model import AnalyticModel, RunState
from repro.pfs.phases import Phase, PhaseResult
from repro.sim.cache import RUN_CACHE
from repro.sim.random import RngStreams

#: Multiplicative lognormal sigma applied per phase and per run.
PHASE_NOISE_SIGMA = 0.02
RUN_NOISE_SIGMA = 0.025

#: Memoized noise factors keyed by ``(seed, workload name, n_phases)``.
#: A run's noise is a pure function of that key — the streams are named
#: ``phase:i``/``run`` under ``spawn:run:<workload>`` and never depend on the
#: configuration — so one cache serves the scalar, batch and sweep engines
#: (the sweep bulk-seeds misses and stores them here).  Reads and writes are
#: single dict ops, safe under the GIL for the fleet broker's threads; the
#: size cap stops inserts rather than evicting, keeping behavior
#: deterministic.
_NOISE_CACHE: dict[tuple[int, str, int], tuple[tuple[float, ...], float]] = {}
_NOISE_CACHE_MAX = 1 << 15


def run_noise(
    seed: int, workload_name: str, n_phases: int
) -> tuple[tuple[float, ...], float]:
    """``([phase factors...], run factor)`` for one simulated run.

    Bit-identical to drawing ``lognormal_noise("phase:i")`` per phase and
    ``lognormal_noise("run")`` from ``RngStreams(seed).spawn(f"run:{name}")``
    — which is exactly how cache misses are computed.
    """
    key = (seed, workload_name, n_phases)
    noise = _NOISE_CACHE.get(key)
    if noise is None:
        rng = RngStreams(seed).spawn(f"run:{workload_name}")
        noise = (
            tuple(
                rng.lognormal_noise(f"phase:{index}", PHASE_NOISE_SIGMA)
                for index in range(n_phases)
            ),
            rng.lognormal_noise("run", RUN_NOISE_SIGMA),
        )
        if len(_NOISE_CACHE) < _NOISE_CACHE_MAX:
            _NOISE_CACHE[key] = noise
    return noise


class WorkloadLike(Protocol):
    """What the simulator needs from a workload object."""

    name: str
    n_ranks: int

    def compile(self, cluster: ClusterSpec) -> list[Phase]: ...

    def cache_key(self) -> tuple: ...


@dataclass
class RunResult:
    """Outcome of one application execution on the simulated cluster."""

    workload: str
    config: PfsConfig
    seconds: float
    phases: list[PhaseResult] = field(default_factory=list)
    seed: int = 0

    @property
    def bytes_written(self) -> int:
        return sum(p.bytes_written for p in self.phases)

    @property
    def bytes_read(self) -> int:
        return sum(p.bytes_read for p in self.phases)

    @property
    def mds_ops(self) -> int:
        return sum(p.mds_ops for p in self.phases)

    def phase_summary(self) -> str:
        lines = []
        for result in self.phases:
            lines.append(
                f"{result.phase.name}: {result.seconds:.3f}s "
                f"(bottleneck: {result.bottleneck})"
            )
        return "\n".join(lines)


def bind_run_config(cluster: ClusterSpec, config: PfsConfig) -> PfsConfig:
    """Per-run copy of ``config`` bound to ``cluster``'s facts, not yet
    validated.

    The sweep engine validates many bound copies columnar in one pass; every
    other caller goes through :func:`prepare_run_config`, which validates
    immediately.  Any new injected fact or backend guard belongs here so the
    sequential, batch and sweep paths stay bit-identical.
    """
    if config.backend.name != cluster.backend_name:
        raise ValueError(
            f"config targets backend {config.backend.name!r} but the "
            f"cluster runs {cluster.backend_name!r}"
        )
    config = config.copy()
    config.facts.setdefault("n_ost", cluster.n_ost)
    config.facts["system_memory_mb"] = cluster.system_memory_mb
    return config


def prepare_run_config(cluster: ClusterSpec, config: PfsConfig) -> PfsConfig:
    """Validated per-run copy of ``config`` bound to ``cluster``'s facts.

    The single setup path shared by :meth:`Simulator.run` and the batch
    engine — the two must stay bit-identical (see ``tests/test_batch.py``).
    """
    config = bind_run_config(cluster, config)
    config.validate()
    return config


class Simulator:
    """Runs workloads against the modeled cluster."""

    def __init__(self, cluster: ClusterSpec):
        self.cluster = cluster

    def run(self, workload: WorkloadLike, config: PfsConfig, seed: int = 0) -> RunResult:
        """Execute one (simulated) application run.

        The configuration is validated first; out-of-range values raise, as a
        real ``lctl set_param`` would fail — callers that want real-system
        clipping semantics should pass ``config.clipped()``.

        When the :data:`~repro.sim.cache.RUN_CACHE` is enabled, the
        (deterministic) result is served from and stored into it; cached
        results are shared objects and immutable to consumers.
        """
        cache_key = None
        if RUN_CACHE.active:
            cache_key = RUN_CACHE.key(self.cluster, workload, config, seed)
            cached = RUN_CACHE.get(cache_key)
            if cached is not None:
                return cached
        config = prepare_run_config(self.cluster, config)

        job = MpiJob.launch(workload.name, workload.n_ranks, self.cluster)
        model = AnalyticModel(self.cluster, config)
        state = RunState()
        phases = workload.compile(self.cluster)
        phase_noise, run_factor = run_noise(seed, workload.name, len(phases))

        results: list[PhaseResult] = []
        total = 0.0
        for phase, noise in zip(phases, phase_noise):
            result = model.evaluate(phase, job, state)
            result.seconds *= noise
            results.append(result)
            total += result.seconds
        total *= run_factor
        result = RunResult(
            workload=workload.name,
            config=config,
            seconds=total,
            phases=results,
            seed=seed,
        )
        if cache_key is not None:
            RUN_CACHE.put(cache_key, result)
        return result

    def run_batch(self, items) -> list[RunResult]:
        """Evaluate many ``(workload, config, seed)`` tuples in one pass.

        Runs sharing a (workload, config) pair are costed once by the model
        with only per-seed noise re-applied; results are bit-identical to
        sequential :meth:`run` calls with the same seeds.  See
        :mod:`repro.sim.batch`.
        """
        from repro.sim.batch import run_batch

        return run_batch(self, items)

    def run_sweep(
        self, workload: WorkloadLike, configs, seeds
    ) -> list[RunResult]:
        """Evaluate aligned ``(config, seed)`` pairs of one workload through
        the columnar sweep engine.

        Bit-identical to :meth:`run_batch` on ``sweep_items(workload,
        configs, seeds)`` — the candidate-grid fast path.  See
        :mod:`repro.sim.sweep`.
        """
        from repro.sim.sweep import run_sweep

        return run_sweep(self, workload, configs, seeds)

    def run_schedule(
        self, schedule, configs, seed: int = 0
    ) -> list[RunResult]:
        """Execute a time-segmented schedule: segment ``i`` under config ``i``.

        ``schedule`` is a :class:`~repro.workloads.dynamic.Schedule` (or any
        iterable of segments/workloads); ``configs`` is one configuration for
        the whole schedule or a per-segment sequence.  Segment ``i`` runs with
        ``RngStreams.rep_seed(seed, i)`` and results come back in schedule
        order — bit-identical to sequential per-segment :meth:`run` calls
        (guarded per backend by ``tests/test_dynamic.py``).  Segments route
        through the workload-grouped columnar sweep, so a schedule measuring
        many distinct per-segment configurations (the drift experiment's
        oracle arm) shares one structure-of-arrays evaluation per workload.
        """
        from repro.sim.batch import schedule_items
        from repro.sim.sweep import run_items

        return run_items(self, schedule_items(schedule, configs, seed=seed))

    def run_repetitions(
        self, workload: WorkloadLike, config: PfsConfig, n: int, seed: int = 0
    ) -> list[RunResult]:
        """The paper's eight-repetition protocol (fresh hygiene per run).

        Rep seeds come from :meth:`RngStreams.rep_seed`; the batch path keeps
        results identical to ``n`` sequential :meth:`run` calls.
        """
        from repro.sim.batch import repetition_items

        return self.run_batch(repetition_items(workload, config, n, seed=seed))
