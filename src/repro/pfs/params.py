"""Legacy module-level view of the **Lustre** parameter registry.

The ground-truth tables moved to :mod:`repro.backends.lustre` when the
backend layer was extracted; this module remains as a thin, Lustre-bound
compatibility shim for tests and examples.  Library code must not import it
— resolve the active backend through :func:`repro.backends.get_backend`
(usually via ``ClusterSpec.backend``) instead, so the same code path serves
every registered file system.
"""

from __future__ import annotations

from repro.backends import get_backend
from repro.backends.base import KiB, MiB, PAGE_SIZE, ParamSpec

__all__ = [
    "KiB",
    "MiB",
    "PAGE_SIZE",
    "ParamSpec",
    "REGISTRY",
    "defaults",
    "high_impact_parameter_names",
    "writable_specs",
    "get",
]

_LUSTRE = get_backend("lustre")

REGISTRY: dict[str, ParamSpec] = _LUSTRE.registry


def defaults() -> dict[str, int]:
    """Default value for every writable parameter."""
    return _LUSTRE.defaults()


def high_impact_parameter_names() -> list[str]:
    """The 13 parameters STELLAR is expected to select for tuning."""
    return _LUSTRE.selected_parameter_names()


def writable_specs() -> list[ParamSpec]:
    return _LUSTRE.writable_specs()


def get(name: str) -> ParamSpec:
    """Lookup by full dotted name or unique basename."""
    return _LUSTRE.param(name)
