"""Ground-truth registry of Lustre-like tunable parameters.

Every other subsystem derives from this registry:

- the synthetic operations manual renders each parameter's documentation from
  ``description`` + ``perf_note`` (withheld or truncated for parameters whose
  ``doc`` quality is ``partial``/``none``, which is what makes the RAG
  sufficiency filter meaningful);
- the ``/proc`` tree instantiates one file per parameter per device;
- :class:`repro.pfs.config.PfsConfig` validates values against the static and
  dependent ranges;
- the performance model reads the high-impact parameters;
- the mock LLM's *corrupted* parametric knowledge is a noisy copy of these
  specs (hallucinated ranges/definitions — paper Figure 2).

The registry mirrors Lustre 2.15 semantics: names, defaults and ranges follow
the real system where the paper cites them (e.g. ``llite.statahead_max``
default 32, range 0–8192).
"""

from __future__ import annotations

from dataclasses import dataclass, field

KiB = 1024
MiB = 1024 * KiB
PAGE_SIZE = 4096


@dataclass(frozen=True)
class ParamSpec:
    """One tunable (or non-tunable) parameter."""

    name: str  # dotted, e.g. "osc.max_rpcs_in_flight"
    ptype: str  # "int" | "bool"
    default: int
    min_expr: float | str | None = None
    max_expr: float | str | None = None
    unit: str = "count"
    writable: bool = True
    binary: bool = False
    impact: str = "high"  # "high" | "medium" | "low" | "none" (ground truth)
    doc: str = "full"  # manual coverage: "full" | "partial" | "none"
    per_device: bool = False  # instantiated once per OST/MDT device
    # Settable without root (lfs setstripe on a user-owned directory); the
    # §5.6 user-space tuning mode restricts STELLAR to these.
    user_settable: bool = False
    description: str = ""
    perf_note: str = ""
    selected: bool = False  # expected member of STELLAR's final 13

    @property
    def subsystem(self) -> str:
        return self.name.split(".", 1)[0]

    @property
    def basename(self) -> str:
        return self.name.rsplit(".", 1)[-1]


def _p(**kwargs) -> ParamSpec:
    return ParamSpec(**kwargs)


# ---------------------------------------------------------------------------
# The 13 high-impact runtime-tunable parameters STELLAR selects for Lustre.
# ---------------------------------------------------------------------------
_SELECTED = [
    _p(
        name="lov.stripe_size",
        ptype="int",
        default=1 * MiB,
        min_expr=64 * KiB,
        max_expr=4 * 1024 * MiB,
        unit="bytes",
        impact="high",
        per_device=False,
        selected=True,
        user_settable=True,
        description=(
            "The number of bytes stored on each OST object before moving to "
            "the next OST in a file's layout. Applies to files created after "
            "the setting is changed on their parent directory."
        ),
        perf_note=(
            "Directly shapes I/O throughput: stripe size should generally "
            "match or exceed the application's transfer size so each RPC "
            "stays within one stripe object; very small stripes fragment "
            "large transfers across servers, while very large stripes can "
            "reduce parallelism for medium files."
        ),
    ),
    _p(
        name="lov.stripe_count",
        ptype="int",
        default=1,
        min_expr=-1,
        max_expr="n_ost",
        unit="count",
        impact="high",
        selected=True,
        user_settable=True,
        description=(
            "The number of Object Storage Targets (OSTs) across which a file "
            "will be striped. A value of -1 stripes across all available "
            "OSTs. The layout is fixed when the file is created."
        ),
        perf_note=(
            "The primary lever for aggregate bandwidth on shared files: "
            "striping a large shared file across more OSTs multiplies "
            "available disk and network bandwidth and reduces extent lock "
            "contention. For workloads creating many small files, stripe "
            "counts above 1 add per-file object allocation overhead on "
            "every create and unlink, slowing metadata-intensive jobs."
        ),
    ),
    _p(
        name="osc.max_rpcs_in_flight",
        ptype="int",
        default=8,
        min_expr=1,
        max_expr=256,
        unit="count",
        impact="high",
        per_device=True,
        selected=True,
        description=(
            "The maximum number of concurrent bulk RPCs an object storage "
            "client (OSC) keeps in flight to a single OST."
        ),
        perf_note=(
            "Controls data-path concurrency and therefore directly "
            "influences both latency hiding and achievable bandwidth; "
            "increase it when many processes per node target the same OST "
            "or when the bandwidth-delay product exceeds the in-flight "
            "window."
        ),
    ),
    _p(
        name="osc.max_pages_per_rpc",
        ptype="int",
        default=256,
        min_expr=1,
        max_expr=4096,
        unit="pages",
        impact="high",
        per_device=True,
        selected=True,
        description=(
            "The maximum number of 4 KiB pages aggregated into a single bulk "
            "RPC (256 pages = 1 MiB; 4096 pages = 16 MiB)."
        ),
        perf_note=(
            "Larger RPCs amortize per-RPC CPU, network and disk-request "
            "overhead and directly improve large sequential I/O throughput; "
            "small random requests cannot be aggregated and see little "
            "benefit."
        ),
    ),
    _p(
        name="osc.max_dirty_mb",
        ptype="int",
        default=32,
        min_expr=1,
        max_expr=2047,
        unit="MiB",
        impact="high",
        per_device=True,
        selected=True,
        description=(
            "The amount of dirty (unwritten) client page-cache data allowed "
            "per OSC device before writers are throttled."
        ),
        perf_note=(
            "Governs write-back aggregation and pipelining: enough dirty "
            "headroom lets the client coalesce writes into full-size RPCs "
            "and keep the pipe to the OST full; too little serializes "
            "writers behind cache flushes."
        ),
    ),
    _p(
        name="osc.short_io_bytes",
        ptype="int",
        default=16 * KiB,
        min_expr=0,
        max_expr=64 * KiB,
        unit="bytes",
        impact="medium",
        per_device=True,
        selected=True,
        description=(
            "Requests at or below this size are sent inline in the RPC "
            "request/reply (short I/O) instead of using a separate bulk "
            "transfer handshake. 0 disables short I/O."
        ),
        perf_note=(
            "Reduces per-request latency for small random reads and writes "
            "by skipping the bulk DMA setup round-trip; irrelevant for "
            "large transfers."
        ),
    ),
    _p(
        name="llite.max_read_ahead_mb",
        ptype="int",
        default=64,
        min_expr=0,
        max_expr="system_memory_mb / 2",
        unit="MiB",
        impact="high",
        selected=True,
        description=(
            "The maximum amount of data, per client mount, that may be "
            "prefetched by the readahead engine across all files."
        ),
        perf_note=(
            "Determines how far sequential reads can run ahead of the "
            "application, hiding network and disk latency; raising it helps "
            "streaming reads from many files at once, while random readers "
            "gain nothing."
        ),
    ),
    _p(
        name="llite.max_read_ahead_per_file_mb",
        ptype="int",
        default=32,
        min_expr=0,
        max_expr="llite.max_read_ahead_mb / 2",
        unit="MiB",
        impact="high",
        selected=True,
        description=(
            "The maximum readahead window for a single file. Its value may "
            "be at most half of llite.max_read_ahead_mb."
        ),
        perf_note=(
            "Caps per-stream prefetch depth: large sequential reads of a "
            "single big file need this window to cover the bandwidth-delay "
            "product to the OSTs."
        ),
    ),
    _p(
        name="llite.max_read_ahead_whole_mb",
        ptype="int",
        default=2,
        min_expr=0,
        max_expr="llite.max_read_ahead_per_file_mb",
        unit="MiB",
        impact="medium",
        selected=True,
        description=(
            "Files smaller than this size are read in their entirety on "
            "first access rather than page by page."
        ),
        perf_note=(
            "Turns many small reads of a small file into one RPC; useful "
            "when applications scan small-to-medium files front to back."
        ),
    ),
    _p(
        name="llite.max_cached_mb",
        ptype="int",
        default=147456,  # 3/4 of 196 GiB client RAM, in MiB
        min_expr=32,
        max_expr="system_memory_mb",
        unit="MiB",
        impact="medium",
        selected=True,
        description=(
            "The maximum amount of file data cached in the client page "
            "cache for this mount (default: three quarters of RAM)."
        ),
        perf_note=(
            "Bounds how much previously read or written data can be served "
            "from client memory on re-access; shrinking it forces re-reads "
            "over the network."
        ),
    ),
    _p(
        name="llite.statahead_max",
        ptype="int",
        default=32,
        min_expr=0,
        max_expr=8192,
        unit="count",
        impact="high",
        selected=True,
        description=(
            "The maximum number of files for which attributes are "
            "prefetched asynchronously by the statahead thread when a "
            "process traverses a directory (e.g. readdir followed by stat). "
            "Setting it to 0 disables statahead."
        ),
        perf_note=(
            "Pipelines metadata attribute fetches during directory scans, "
            "hiding per-stat round-trip latency; directly accelerates "
            "metadata-intensive workloads that stat many files in readdir "
            "order."
        ),
    ),
    _p(
        name="mdc.max_rpcs_in_flight",
        ptype="int",
        default=8,
        min_expr=2,  # must stay above max_mod_rpcs_in_flight's minimum of 1
        max_expr=256,
        unit="count",
        per_device=True,
        impact="high",
        selected=True,
        description=(
            "The maximum number of concurrent metadata RPCs a client keeps "
            "in flight to a single MDT."
        ),
        perf_note=(
            "Caps metadata concurrency per client node; when more processes "
            "than this issue metadata operations simultaneously, requests "
            "queue on the client and metadata operation rates drop."
        ),
    ),
    _p(
        name="mdc.max_mod_rpcs_in_flight",
        ptype="int",
        default=7,
        min_expr=1,
        max_expr="mdc.max_rpcs_in_flight - 1",
        unit="count",
        per_device=True,
        impact="high",
        selected=True,
        description=(
            "The maximum number of concurrent *modifying* metadata RPCs "
            "(create, unlink, rename, setattr) in flight to a single MDT. "
            "Must be strictly less than mdc.max_rpcs_in_flight."
        ),
        perf_note=(
            "Bounds file creation and deletion concurrency per client; "
            "workloads that create or remove many files in parallel are "
            "directly limited by this value."
        ),
    ),
]

# ---------------------------------------------------------------------------
# Binary parameters: significant performance impact but represent user
# trade-offs (data integrity, semantics) — excluded from tuning by design.
# ---------------------------------------------------------------------------
_BINARY = [
    _p(
        name="osc.checksums",
        ptype="bool",
        default=1,
        min_expr=0,
        max_expr=1,
        unit="flag",
        binary=True,
        impact="high",
        per_device=True,
        description=(
            "Enables in-memory checksums of bulk data at the osc layer to "
            "detect corruption between client and OST."
        ),
        perf_note=(
            "Checksumming costs CPU per transferred byte and measurably "
            "reduces large-transfer throughput, but disabling it risks "
            "undetected data corruption; configure per data-integrity "
            "requirements rather than for performance."
        ),
    ),
    _p(
        name="llite.checksums",
        ptype="bool",
        default=1,
        min_expr=0,
        max_expr=1,
        unit="flag",
        binary=True,
        impact="high",
        description=(
            "Enables checksums at the llite layer for data read into or "
            "written from the client page cache."
        ),
        perf_note=(
            "Like osc checksums, a data-integrity trade-off: it consumes "
            "client CPU per byte and should follow integrity policy, not "
            "performance goals."
        ),
    ),
    _p(
        name="llite.fast_read",
        ptype="bool",
        default=1,
        min_expr=0,
        max_expr=1,
        unit="flag",
        binary=True,
        impact="medium",
        description=(
            "Allows reads to be served directly from the page cache without "
            "taking the distributed lock when the pages are already cached."
        ),
        perf_note=(
            "A correctness/performance trade-off for concurrent writers; "
            "leave enabled unless strict lock semantics are required."
        ),
    ),
    _p(
        name="llite.statahead_agl",
        ptype="bool",
        default=1,
        min_expr=0,
        max_expr=1,
        unit="flag",
        binary=True,
        impact="low",
        description=(
            "Enables asynchronous glimpse locks (AGL) so statahead can also "
            "prefetch file sizes from OSTs."
        ),
        perf_note="Complements statahead for ls -l style scans.",
    ),
    _p(
        name="osc.grant_shrink",
        ptype="bool",
        default=1,
        min_expr=0,
        max_expr=1,
        unit="flag",
        binary=True,
        impact="low",
        doc="partial",
        description=(
            "Allows the client to return unused grant (preallocated write "
            "space) to OSTs when idle."
        ),
        perf_note="Affects grant accounting, not steady-state throughput.",
    ),
]

# ---------------------------------------------------------------------------
# Writable but low/no-impact or under-documented parameters: the extraction
# pipeline must filter these out.
# ---------------------------------------------------------------------------
_FILTERED = [
    _p(
        name="ldlm.lru_size",
        ptype="int",
        default=0,
        min_expr=0,
        max_expr=1 << 20,
        unit="count",
        impact="low",
        description=(
            "The number of client-side locks kept in the LRU cached locks "
            "queue; 0 enables dynamic sizing."
        ),
        perf_note=(
            "Primarily affects client memory usage rather than directly "
            "impacting I/O performance; oversizing it wastes memory."
        ),
    ),
    _p(
        name="ldlm.lru_max_age",
        ptype="int",
        default=3900,
        min_expr=1,
        max_expr=36000,
        unit="seconds",
        impact="low",
        doc="partial",
        description="Maximum age of an unused lock before cancellation.",
        perf_note="A memory/lock housekeeping setting.",
    ),
    _p(
        name="osc.idle_timeout",
        ptype="int",
        default=20,
        min_expr=0,
        max_expr=3600,
        unit="seconds",
        impact="low",
        doc="partial",
        per_device=True,
        description="Seconds of inactivity before an idle OSC connection is closed.",
        perf_note="A connection housekeeping setting.",
    ),
    _p(
        name="osc.resend_count",
        ptype="int",
        default=4,
        min_expr=0,
        max_expr=10,
        unit="count",
        impact="low",
        doc="partial",
        per_device=True,
        description="How many times a failed request is resent before erroring.",
        perf_note="Matters for fault handling, not steady-state performance.",
    ),
    _p(
        name="mdc.ping_interval",
        ptype="int",
        default=25,
        min_expr=1,
        max_expr=600,
        unit="seconds",
        impact="none",
        doc="none",
        per_device=True,
        description="Interval between keep-alive pings to the MDT.",
        perf_note="",
    ),
    _p(
        name="nrs.delay_min",
        ptype="int",
        default=5,
        min_expr=0,
        max_expr=3600,
        unit="seconds",
        impact="none",
        description=(
            "Minimum artificial delay injected by the NRS delay policy."
        ),
        perf_note=(
            "The delay policy simulates high server load scenarios for "
            "testing; it is relevant to experimentation but not directly "
            "connected to I/O performance tuning."
        ),
    ),
    _p(
        name="nrs.delay_max",
        ptype="int",
        default=10,
        min_expr=0,
        max_expr=3600,
        unit="seconds",
        impact="none",
        description="Maximum artificial delay injected by the NRS delay policy.",
        perf_note=(
            "Used together with nrs.delay_min to simulate loaded servers "
            "during testing; not a performance tuning control."
        ),
    ),
    _p(
        name="nrs.delay_pct",
        ptype="int",
        default=100,
        min_expr=0,
        max_expr=100,
        unit="count",
        impact="none",
        description="Percentage of requests subjected to the NRS delay policy.",
        perf_note="Testing aid; not a performance tuning control.",
    ),
    _p(
        name="llite.lazystatfs",
        ptype="bool",
        default=1,
        min_expr=0,
        max_expr=1,
        unit="flag",
        binary=True,
        impact="low",
        doc="partial",
        description="Allows statfs to return without waiting for unreachable OSTs.",
        perf_note="Availability behaviour, not throughput.",
    ),
    _p(
        name="llite.xattr_cache",
        ptype="bool",
        default=1,
        min_expr=0,
        max_expr=1,
        unit="flag",
        binary=True,
        impact="low",
        doc="partial",
        description="Caches extended attributes on the client.",
        perf_note="Minor metadata effect for xattr-heavy workloads only.",
    ),
]

# ---------------------------------------------------------------------------
# Read-only informational entries (exist in /proc but are not writable).
# ---------------------------------------------------------------------------
_READONLY = [
    _p(name="lov.version", ptype="int", default=2155, writable=False, impact="none", doc="none"),
    _p(name="llite.blocksize", ptype="int", default=4096, writable=False, impact="none", doc="none"),
    _p(name="osc.kbytestotal", ptype="int", default=0, writable=False, impact="none", doc="none", per_device=True),
    _p(name="osc.kbytesfree", ptype="int", default=0, writable=False, impact="none", doc="none", per_device=True),
    _p(name="osc.stats", ptype="int", default=0, writable=False, impact="none", doc="none", per_device=True),
    _p(name="mdc.uuid", ptype="int", default=0, writable=False, impact="none", doc="none", per_device=True),
    _p(name="mdc.stats", ptype="int", default=0, writable=False, impact="none", doc="none", per_device=True),
    _p(name="llite.stats", ptype="int", default=0, writable=False, impact="none", doc="none"),
    _p(name="mds.num_exports", ptype="int", default=11, writable=False, impact="none", doc="none"),
]

REGISTRY: dict[str, ParamSpec] = {
    spec.name: spec for spec in (_SELECTED + _BINARY + _FILTERED + _READONLY)
}


def defaults() -> dict[str, int]:
    """Default value for every writable parameter."""
    return {s.name: s.default for s in REGISTRY.values() if s.writable}


def high_impact_parameter_names() -> list[str]:
    """The 13 parameters STELLAR is expected to select for tuning."""
    return [s.name for s in REGISTRY.values() if s.selected]


def writable_specs() -> list[ParamSpec]:
    return [s for s in REGISTRY.values() if s.writable]


def get(name: str) -> ParamSpec:
    """Lookup by full dotted name or unique basename."""
    if name in REGISTRY:
        return REGISTRY[name]
    matches = [s for s in REGISTRY.values() if s.basename == name]
    if len(matches) == 1:
        return matches[0]
    if not matches:
        raise KeyError(f"unknown parameter {name!r}")
    raise KeyError(f"ambiguous parameter basename {name!r}: {[m.name for m in matches]}")
