"""Validated parallel file system configuration.

A :class:`PfsConfig` holds a value for every writable parameter.  Validation
enforces type, static bounds, and *dependent* bounds (expressions evaluated
against the rest of the configuration plus hardware facts).  ``clipped``
returns the nearest valid configuration — the behaviour of a real admin tool
that refuses out-of-range writes — and is what the Configuration Runner
applies when an LLM proposes an invalid value.

Caching invariants
------------------
Bounds resolution is the simulator's hot path (every ``run`` validates every
parameter), so the config memoizes two things:

- the evaluation *env* (``{name: float(value)} ∪ facts``) is built once and
  updated in place on ``__setitem__``;
- resolved ``bounds`` are cached per parameter.  Parameter writes invalidate
  **dependency-aware**: the backend precomputes which parameters' range
  expressions reference each written name
  (:attr:`~repro.backends.base.PfsBackend.bounds_dependents`), so touching
  one knob — what coordinate descent and the tuning engine do — keeps every
  unrelated resolved range cached.  The map stays conservative: ambiguous
  basenames edge every match and unknown expression references fall back to
  wholesale invalidation.  *Facts* mutations still invalidate wholesale
  (env keys may appear or vanish).

All mutation funnels through ``__setitem__`` / ``_set_raw`` and the
observing ``facts`` dict (:class:`_Facts`), which bump ``_version`` — code
must never write ``_values`` directly from outside this module.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping

from repro.backends import get_backend, resolve_backend
from repro.backends.base import PfsBackend
from repro.pfs.expressions import ExpressionError, compile_expression


@dataclass(frozen=True)
class Violation:
    """One invalid parameter setting."""

    name: str
    value: int
    reason: str


#: Resolved bounds shared across config *copies*, keyed by
#: ``(cache_key(), parameter)`` — content identity, so a mutated copy can
#: never be served a stale range.  Insert-capped instead of evicting.
_SHARED_BOUNDS: dict[tuple, tuple[float, float]] = {}
_SHARED_BOUNDS_MAX = 1 << 15


class _Facts(dict):
    """A facts dict that invalidates its owning config's caches on mutation."""

    __slots__ = ("_owner",)

    def __init__(self, owner: "PfsConfig", *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._owner = owner

    def _touch(self) -> None:
        self._owner._invalidate()

    def __setitem__(self, key, value):
        super().__setitem__(key, value)
        self._touch()

    def __delitem__(self, key):
        super().__delitem__(key)
        self._touch()

    def setdefault(self, key, default=None):
        if key in self:
            return self[key]
        super().__setitem__(key, default)
        self._touch()
        return default

    def update(self, *args, **kwargs):
        super().update(*args, **kwargs)
        self._touch()

    def pop(self, key, *default):
        # A miss with a default is a no-op read; invalidating the owner's
        # bounds cache for it would throw away every resolved range.
        present = key in self
        out = super().pop(key, *default)
        if present:
            self._touch()
        return out

    def popitem(self):
        out = super().popitem()
        self._touch()
        return out

    def __ior__(self, other):
        super().update(other)
        self._touch()
        return self

    def clear(self):
        super().clear()
        self._touch()


class PfsConfig:
    """A complete assignment of writable parameters."""

    def __init__(
        self,
        values: Mapping[str, int] | None = None,
        facts: Mapping[str, float] | None = None,
        backend: PfsBackend | str | None = None,
    ):
        self.backend: PfsBackend = resolve_backend(backend)
        self._values: dict[str, int] = self.backend.defaults()
        self.facts: dict[str, float] = _Facts(
            self, facts or {"system_memory_mb": 196 * 1024, "n_ost": 5}
        )
        self._env_cache: dict[str, float] | None = None
        self._bounds_cache: dict[str, tuple[float, float]] = {}
        self._cache_key: tuple | None = None
        if values:
            for name, value in values.items():
                self[name] = value

    # -- mapping protocol -------------------------------------------------
    def __getitem__(self, name: str) -> int:
        spec = self.backend.param(name)
        return self._values[spec.name]

    def __setitem__(self, name: str, value) -> None:
        spec = self.backend.param(name)
        if not spec.writable:
            raise PermissionError(f"parameter {spec.name} is read-only")
        self._set_raw(spec.name, int(value))

    def role(self, role_name: str, default: int | None = None) -> int:
        """Value of the parameter filling a model role, in the role's unit.

        The analytic model is written against roles (``dirty_bytes``,
        ``data_rpcs_in_flight``, …); each backend maps them to its own
        parameters with a unit scale.  ``default`` serves roles a backend
        legitimately omits (see ``MODEL_ROLES``).
        """
        entry = self.backend.roles.get(role_name)
        if entry is None:
            if default is None:
                raise KeyError(
                    f"backend {self.backend.name!r} maps no parameter to "
                    f"role {role_name!r}"
                )
            return default
        name, scale = entry
        return self._values[name] * scale

    def _set_raw(self, name: str, value: int) -> None:
        """Write a resolved parameter name, keeping caches coherent."""
        self._values[name] = value
        self._cache_key = None
        if self._bounds_cache:
            dependents = self.backend.bounds_dependents.get(name)
            if dependents is None:
                self._bounds_cache.clear()
            else:
                for dependent in dependents:
                    self._bounds_cache.pop(dependent, None)
        if self._env_cache is not None:
            self._env_cache[name] = float(value)

    def _invalidate(self) -> None:
        """Drop caches after a facts mutation (env keys may appear/vanish)."""
        self._env_cache = None
        self._bounds_cache.clear()
        self._cache_key = None

    def __contains__(self, name: str) -> bool:
        return name in self.backend

    def __iter__(self) -> Iterator[str]:
        return iter(self._values)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PfsConfig):
            return NotImplemented
        return self._values == other._values

    __hash__ = None

    def __getstate__(self) -> dict:
        # Caches are rebuilt lazily; ``facts`` crosses as a plain dict so the
        # observer's owner cycle never hits the pickle machinery half-built.
        # The backend is a process-wide singleton and crosses by name.
        return {
            "values": dict(self._values),
            "facts": dict(self.facts),
            "backend": self.backend.name,
        }

    def __setstate__(self, state: dict) -> None:
        self.backend = get_backend(state.get("backend"))
        self._values = state["values"]
        self.facts = _Facts(self, state["facts"])
        self._env_cache = None
        self._bounds_cache = {}
        self._cache_key = None

    def as_dict(self) -> dict[str, int]:
        return dict(self._values)

    def copy(self) -> "PfsConfig":
        new = PfsConfig.__new__(PfsConfig)
        new.backend = self.backend
        new._values = dict(self._values)
        new.facts = _Facts(new, self.facts)
        new._env_cache = None
        new._bounds_cache = {}
        new._cache_key = self._cache_key
        return new

    def with_updates(self, updates: Mapping[str, int]) -> "PfsConfig":
        new = self.copy()
        for name, value in updates.items():
            new[name] = value
        return new

    def diff(self, other: "PfsConfig") -> dict[str, tuple[int, int]]:
        """Parameters whose values differ: name -> (self value, other value)."""
        out = {}
        for name, value in self._values.items():
            if other._values.get(name) != value:
                out[name] = (value, other._values.get(name))
        return out

    def cache_key(self) -> tuple:
        """Hashable identity of (backend, values, facts) — for batch dedup.

        Memoized: the batch/sweep engines and the run cache key every item,
        so the sort is paid once per distinct mutation state (the memo drops
        on ``__setitem__`` and facts mutation like the other caches).
        """
        key = self._cache_key
        if key is None:
            key = (
                self.backend.name,
                tuple(sorted(self._values.items())),
                tuple(sorted(self.facts.items())),
            )
            self._cache_key = key
        return key

    # -- validation --------------------------------------------------------
    def _env(self) -> dict[str, float]:
        env = self._env_cache
        if env is None:
            env = {name: float(v) for name, v in self._values.items()}
            env.update(self.facts)
            self._env_cache = env
        return env

    def bounds(self, name: str) -> tuple[float, float]:
        """Resolved (min, max) for a parameter under current values/facts."""
        spec = self.backend.param(name)
        cached = self._bounds_cache.get(spec.name)
        if cached is not None:
            return cached
        # Every run copies its config (``bind_run_config``), so the
        # per-instance memo alone re-resolves identical (values, facts)
        # envs hundreds of times per session; the module-level map keyed by
        # the config's content identity carries bounds across copies.
        # Errors are never cached — a broken expression raises every time.
        key = (self.cache_key(), spec.name)
        cached = _SHARED_BOUNDS.get(key)
        if cached is None:
            env = self._env()
            low = _resolve(spec.min_expr, env, default=float("-inf"))
            high = _resolve(spec.max_expr, env, default=float("inf"))
            cached = (low, high)
            if len(_SHARED_BOUNDS) < _SHARED_BOUNDS_MAX:
                _SHARED_BOUNDS[key] = cached
        self._bounds_cache[spec.name] = cached
        return cached

    def violations(self) -> list[Violation]:
        """All out-of-range settings in dependency-stable order."""
        out: list[Violation] = []
        for name, value in self._values.items():
            spec = self.backend.registry[name]
            try:
                low, high = self.bounds(name)
            except ExpressionError as exc:
                out.append(Violation(name, value, f"range expression error: {exc}"))
                continue
            if spec.ptype == "bool" and value not in (0, 1):
                out.append(Violation(name, value, "boolean parameter accepts 0 or 1"))
            elif value < low:
                out.append(Violation(name, value, f"below minimum {low:g}"))
            elif value > high:
                out.append(Violation(name, value, f"above maximum {high:g}"))
        return out

    def validate(self) -> None:
        """Raise ``ValueError`` listing every violation, if any."""
        problems = self.violations()
        if problems:
            lines = ", ".join(f"{v.name}={v.value} ({v.reason})" for v in problems)
            raise ValueError(f"invalid configuration: {lines}")

    def clipped(self) -> "PfsConfig":
        """Nearest valid configuration (iterate because bounds are dependent)."""
        new = self.copy()
        for _ in range(4):  # dependent bounds converge in <= chain depth passes
            changed = False
            for name in list(new._values):
                low, high = new.bounds(name)
                value = new._values[name]
                clipped_value = int(min(max(value, low), high))
                if clipped_value != value:
                    new._set_raw(name, clipped_value)
                    changed = True
            if not changed:
                break
        return new

    # -- convenience -------------------------------------------------------
    @classmethod
    def default(
        cls,
        facts: Mapping[str, float] | None = None,
        backend: PfsBackend | str | None = None,
    ) -> "PfsConfig":
        return cls(facts=facts, backend=backend)

    def summarize(self, only_nondefault: bool = True) -> str:
        """Human/agent readable summary, optionally only non-default values."""
        base = self.backend.defaults()
        lines = []
        for name, value in sorted(self._values.items()):
            if only_nondefault and base.get(name) == value:
                continue
            lines.append(f"{name} = {value}")
        return "\n".join(lines) if lines else "(all defaults)"

    def __repr__(self) -> str:  # pragma: no cover
        return f"PfsConfig({self.summarize(only_nondefault=True)!r})"


def _resolve(expr: float | str | None, env: Mapping[str, float], default: float) -> float:
    if expr is None:
        return default
    if isinstance(expr, (int, float)):
        return float(expr)
    return compile_expression(expr)(env)
