"""Validated parallel file system configuration.

A :class:`PfsConfig` holds a value for every writable parameter.  Validation
enforces type, static bounds, and *dependent* bounds (expressions evaluated
against the rest of the configuration plus hardware facts).  ``clipped``
returns the nearest valid configuration — the behaviour of a real admin tool
that refuses out-of-range writes — and is what the Configuration Runner
applies when an LLM proposes an invalid value.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Mapping

from repro.pfs import params as P
from repro.pfs.expressions import ExpressionError, evaluate


@dataclass(frozen=True)
class Violation:
    """One invalid parameter setting."""

    name: str
    value: int
    reason: str


class PfsConfig:
    """A complete assignment of writable parameters."""

    def __init__(self, values: Mapping[str, int] | None = None, facts: Mapping[str, float] | None = None):
        self._values: dict[str, int] = P.defaults()
        self.facts: dict[str, float] = dict(facts or {"system_memory_mb": 196 * 1024, "n_ost": 5})
        if values:
            for name, value in values.items():
                self[name] = value

    # -- mapping protocol -------------------------------------------------
    def __getitem__(self, name: str) -> int:
        spec = P.get(name)
        return self._values[spec.name]

    def __setitem__(self, name: str, value) -> None:
        spec = P.get(name)
        if not spec.writable:
            raise PermissionError(f"parameter {spec.name} is read-only")
        self._values[spec.name] = int(value)

    def __contains__(self, name: str) -> bool:
        try:
            P.get(name)
            return True
        except KeyError:
            return False

    def __iter__(self) -> Iterator[str]:
        return iter(self._values)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PfsConfig):
            return NotImplemented
        return self._values == other._values

    __hash__ = None

    def as_dict(self) -> dict[str, int]:
        return dict(self._values)

    def copy(self) -> "PfsConfig":
        return PfsConfig(self._values, self.facts)

    def with_updates(self, updates: Mapping[str, int]) -> "PfsConfig":
        new = self.copy()
        for name, value in updates.items():
            new[name] = value
        return new

    def diff(self, other: "PfsConfig") -> dict[str, tuple[int, int]]:
        """Parameters whose values differ: name -> (self value, other value)."""
        out = {}
        for name, value in self._values.items():
            if other._values.get(name) != value:
                out[name] = (value, other._values.get(name))
        return out

    # -- validation --------------------------------------------------------
    def _env(self) -> dict[str, float]:
        env = {name: float(v) for name, v in self._values.items()}
        env.update(self.facts)
        return env

    def bounds(self, name: str) -> tuple[float, float]:
        """Resolved (min, max) for a parameter under current values/facts."""
        spec = P.get(name)
        env = self._env()
        low = _resolve(spec.min_expr, env, default=float("-inf"))
        high = _resolve(spec.max_expr, env, default=float("inf"))
        return low, high

    def violations(self) -> list[Violation]:
        """All out-of-range settings in dependency-stable order."""
        out: list[Violation] = []
        for name, value in self._values.items():
            spec = P.REGISTRY[name]
            try:
                low, high = self.bounds(name)
            except ExpressionError as exc:
                out.append(Violation(name, value, f"range expression error: {exc}"))
                continue
            if spec.ptype == "bool" and value not in (0, 1):
                out.append(Violation(name, value, "boolean parameter accepts 0 or 1"))
            elif value < low:
                out.append(Violation(name, value, f"below minimum {low:g}"))
            elif value > high:
                out.append(Violation(name, value, f"above maximum {high:g}"))
        return out

    def validate(self) -> None:
        """Raise ``ValueError`` listing every violation, if any."""
        problems = self.violations()
        if problems:
            lines = ", ".join(f"{v.name}={v.value} ({v.reason})" for v in problems)
            raise ValueError(f"invalid configuration: {lines}")

    def clipped(self) -> "PfsConfig":
        """Nearest valid configuration (iterate because bounds are dependent)."""
        new = self.copy()
        for _ in range(4):  # dependent bounds converge in <= chain depth passes
            changed = False
            for name in list(new._values):
                low, high = new.bounds(name)
                value = new._values[name]
                clipped_value = int(min(max(value, low), high))
                if clipped_value != value:
                    new._values[name] = clipped_value
                    changed = True
            if not changed:
                break
        return new

    # -- convenience -------------------------------------------------------
    @classmethod
    def default(cls, facts: Mapping[str, float] | None = None) -> "PfsConfig":
        return cls(facts=facts)

    def summarize(self, only_nondefault: bool = True) -> str:
        """Human/agent readable summary, optionally only non-default values."""
        base = P.defaults()
        lines = []
        for name, value in sorted(self._values.items()):
            if only_nondefault and base.get(name) == value:
                continue
            lines.append(f"{name} = {value}")
        return "\n".join(lines) if lines else "(all defaults)"

    def __repr__(self) -> str:  # pragma: no cover
        return f"PfsConfig({self.summarize(only_nondefault=True)!r})"


def _resolve(expr: float | str | None, env: Mapping[str, float], default: float) -> float:
    if expr is None:
        return default
    if isinstance(expr, (int, float)):
        return float(expr)
    return evaluate(expr, env)
