"""Phase-analytic performance model.

Each phase is costed with a bottleneck analysis: compute the demand placed on
every resource (OST disks, server NICs, client NICs, client CPU, MDS thread
pool, MDS journal, per-directory locks) plus latency-limited pipeline bounds
derived from the in-flight windows (``max_rpcs_in_flight``, dirty cache,
readahead windows, statahead slots).  The phase time is the maximum bound
plus one pipeline-fill round trip.

The model is closed-form and vectorized, so full paper-scale workloads
(hundreds of thousands of files, tens of GiB) cost microseconds to evaluate —
which is what lets the experiment harness run hundreds of tuning runs.  The
event kernel in :mod:`repro.pfs.eventmodel` cross-validates it on micro-cases.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.hardware import ClusterSpec
from repro.cluster.mpi import MpiJob
from repro.pfs import locks
from repro.pfs.config import PfsConfig
from repro.pfs.costs import (
    CLIENT_MEM_BW,
    JOURNAL_COST,
    MDS_SERVICE_TIME,
    PDIROPS_CONCURRENCY,
    CostModel,
)
from repro.pfs.phases import (
    MODIFYING_OPS,
    DataPhase,
    MetaPhase,
    Phase,
    PhaseResult,
)
from repro.pfs.striping import resolve_stripe_count


@dataclass
class RunState:
    """Per-run client-side state threaded across phases."""

    written_bytes_per_client: dict[str, int] = field(default_factory=dict)

    def record_write(self, fileset_name: str, bytes_per_client: int) -> None:
        self.written_bytes_per_client[fileset_name] = (
            self.written_bytes_per_client.get(fileset_name, 0) + bytes_per_client
        )

    def cached_bytes(self, fileset_name: str) -> int:
        return self.written_bytes_per_client.get(fileset_name, 0)

    def remount(self) -> None:
        """Drop all client caches (run hygiene)."""
        self.written_bytes_per_client.clear()


class AnalyticModel:
    """Costs phases for one (cluster, config) pair."""

    def __init__(self, cluster: ClusterSpec, config: PfsConfig):
        self.cluster = cluster
        self.config = config
        self.costs = CostModel(cluster, config)

    # ------------------------------------------------------------------
    def evaluate(self, phase: Phase, job: MpiJob, state: RunState) -> PhaseResult:
        if isinstance(phase, DataPhase):
            return self._eval_data(phase, job, state)
        if isinstance(phase, MetaPhase):
            return self._eval_meta(phase, job, state)
        raise TypeError(f"unknown phase type {type(phase).__name__}")

    # ------------------------------------------------------------------
    def _layout(self) -> tuple[int, int]:
        k = resolve_stripe_count(
            int(self.config.role("stripe_count")), self.cluster.n_ost
        )
        stripe_size = int(self.config.role("stripe_size_bytes"))
        return k, stripe_size

    def _eval_data(self, phase: DataPhase, job: MpiJob, state: RunState) -> PhaseResult:
        cluster, costs, config = self.cluster, self.costs, self.config
        n_ranks = job.n_ranks
        n_clients = cluster.n_clients
        ranks_pc = max(1, -(-n_ranks // n_clients))
        k, stripe_size = self._layout()
        fs = phase.fileset

        total_bytes = phase.bytes_per_rank * n_ranks
        eff_rpc = costs.effective_rpc_size(phase.xfer_size, phase.pattern, stripe_size)
        rpcs_per_rank = -(-phase.bytes_per_rank // eff_rpc)
        total_rpcs = rpcs_per_rank * n_ranks

        # Cache-served re-reads: the rank reads back data it wrote earlier in
        # this run and the working set fits in the client page cache.
        if phase.io == "read" and phase.reuse:
            cached = state.cached_bytes(fs.name)
            limit = int(config.role("cached_bytes"))
            per_client = phase.bytes_per_rank * ranks_pc
            if cached >= per_client and per_client <= limit:
                seconds = per_client / CLIENT_MEM_BW + phase.ops_per_rank * 2e-6
                return PhaseResult(
                    phase=phase,
                    seconds=seconds,
                    bottleneck="client_cache",
                    bounds={"client_cache": seconds},
                    bytes_read=total_bytes,
                )

        # --- stripe object spreading -----------------------------------
        if fs.shared:
            used_osts = min(k * fs.n_files, cluster.n_ost)
            imbalance = 1.0
        else:
            objects = fs.n_files * k
            used_osts = min(objects, cluster.n_ost)
            per_ost = objects / cluster.n_ost
            imbalance = (-(-objects // cluster.n_ost)) / per_ost if per_ost >= 1 else 1.0
        worst_bytes = total_bytes / used_osts * imbalance
        worst_rpcs = total_rpcs / used_osts * imbalance

        active_ranks = (
            min(n_ranks, phase.concurrent_writers)
            if phase.concurrent_writers is not None
            else n_ranks
        )
        writers = locks.writers_per_object(
            active_ranks if fs.shared else 1, k, phase.pattern, fs.shared
        )
        lock_lat = locks.lock_penalty(writers, phase.pattern) if phase.io == "write" else 0.0
        lock_srv = locks.server_lock_cost(writers, phase.pattern) if phase.io == "write" else 0.0

        short = costs.uses_short_io(eff_rpc)
        overhead = costs.disk_overhead(phase.pattern, short)

        bounds: dict[str, float] = {}
        bounds["ost_disk"] = worst_bytes / costs.disk_bw + worst_rpcs * (overhead + lock_srv)
        bounds["server_nic"] = worst_bytes / costs.server_nic
        bounds["client_nic"] = phase.bytes_per_rank * ranks_pc / costs.client_nic
        per_rank_cpu = rpcs_per_rank * (
            costs.client_cpu_per_rpc + costs.checksum_time(eff_rpc)
        )
        bounds["client_cpu"] = per_rank_cpu * ranks_pc / costs.cores

        # --- latency-limited pipeline bound ------------------------------
        rtt = costs.rpc_round_trip(eff_rpc, phase.pattern, lock_lat)
        q = int(config.role("data_rpcs_in_flight"))
        if phase.io == "write":
            dirty = int(config.role("dirty_bytes"))
            flow_window = min(q * eff_rpc, dirty)
        else:
            flow_window = min(q * eff_rpc, self._read_window(phase, ranks_pc, used_osts))
        flow_rate = flow_window / rtt
        agg_rate = n_clients * used_osts * flow_rate
        if phase.concurrent_writers is not None:
            per_writer_window = min(q * eff_rpc, flow_window)
            per_writer = min(
                per_writer_window / rtt,
                used_osts * costs.disk_bw / max(1, phase.concurrent_writers),
            )
            agg_rate = min(agg_rate, phase.concurrent_writers * per_writer)
        bounds["pipeline"] = total_bytes / agg_rate if agg_rate > 0 else float("inf")

        seconds = max(bounds.values()) + rtt
        bottleneck = max(bounds, key=lambda name: bounds[name])

        if phase.io == "write":
            state.record_write(fs.name, phase.bytes_per_rank * ranks_pc)

        return PhaseResult(
            phase=phase,
            seconds=seconds,
            bottleneck=bottleneck,
            bounds=bounds,
            bytes_read=total_bytes if phase.io == "read" else 0,
            bytes_written=total_bytes if phase.io == "write" else 0,
            rpcs=total_rpcs,
        )

    def _read_window(self, phase: DataPhase, ranks_pc: int, used_osts: int) -> float:
        """Outstanding read bytes per (client, OST) flow from readahead."""
        config = self.config
        fs = phase.fileset
        if phase.pattern == "random":
            # Readahead detects random access and stays out of the way: each
            # rank has one synchronous request outstanding.
            client_window = ranks_pc * phase.xfer_size
            return client_window / used_osts
        per_file = int(config.role("read_ahead_file_bytes"))
        whole = int(config.role("read_ahead_whole_bytes"))
        if fs.file_size <= whole:
            per_file = max(per_file, fs.file_size)
        global_cap = int(config.role("read_ahead_total_bytes"))
        if fs.shared:
            # Ranks on a client share the per-file window of the shared file.
            client_window = max(
                ranks_pc * phase.xfer_size, min(per_file, global_cap)
            )
        else:
            active_files = max(1, ranks_pc)
            per_rank = max(
                phase.xfer_size, min(per_file, global_cap / active_files)
            )
            client_window = ranks_pc * per_rank
        return client_window / used_osts

    # ------------------------------------------------------------------
    def _eval_meta(self, phase: MetaPhase, job: MpiJob, state: RunState) -> PhaseResult:
        cluster, costs, config = self.cluster, self.costs, self.config
        n_ranks = job.n_ranks
        n_clients = cluster.n_clients
        ranks_pc = max(1, -(-n_ranks // n_clients))
        k, _ = self._layout()
        fs = phase.fileset

        n_files_total = phase.files_per_rank * n_ranks
        mds_ops_per_file = phase.mds_rpcs_per_file
        total_mds_ops = n_files_total * mds_ops_per_file

        service_per_file = sum(
            costs.mds_service_time(op, k)
            for op in phase.cycle
            if op in MDS_SERVICE_TIME
        )
        mod_ops_per_file = sum(1 for op in phase.cycle if op in MODIFYING_OPS)

        bounds: dict[str, float] = {}
        bounds["mds_cpu"] = (
            n_files_total * service_per_file / cluster.mds_service_threads
        )
        bounds["mds_journal"] = n_files_total * mod_ops_per_file * JOURNAL_COST

        if mod_ops_per_file:
            n_dirs = 1 if fs.shared_dir else max(1, fs.n_dirs)
            ops_busiest_dir = n_files_total * mod_ops_per_file / n_dirs
            avg_mod_service = (
                sum(
                    costs.mds_service_time(op, k)
                    for op in phase.cycle
                    if op in MODIFYING_OPS
                )
                / mod_ops_per_file
            )
            bounds["dir_serialization"] = (
                ops_busiest_dir * avg_mod_service / PDIROPS_CONCURRENCY
            )

        # --- client concurrency bound ------------------------------------
        cycle_rt = costs.meta_cycle_round_trip(phase.cycle, k, phase.data_bytes)
        q_mdc = int(config.role("meta_rpcs_in_flight"))
        q_mod = int(config.role("meta_mod_rpcs_in_flight", q_mdc))
        q_eff = min(q_mdc, q_mod) if phase.is_modifying else q_mdc
        per_rank_conc = 1.0
        if phase.scan_order and set(phase.cycle) == {"stat"}:
            per_rank_conc = costs.statahead_slots_per_rank()
        conc_client = min(float(q_eff), ranks_pc * per_rank_conc)

        rate_total = n_clients * conc_client / cycle_rt  # files/s, unloaded
        utilization = min(
            rate_total * service_per_file / cluster.mds_service_threads, 1.0
        )
        avg_service = service_per_file / max(1, mds_ops_per_file)
        wait = costs.mds_wait(utilization, avg_service)
        cycle_loaded = cycle_rt + mds_ops_per_file * wait
        rate_total = n_clients * conc_client / cycle_loaded
        bounds["client_concurrency"] = n_files_total / rate_total

        # Small-file payloads that persist hit the OSTs as small writes.
        if phase.data_persists and phase.data_bytes > 0:
            data_total = n_files_total * phase.data_bytes
            per_ost_files = n_files_total / cluster.n_ost
            bounds["ost_small_io"] = per_ost_files * 8e-5 + (
                data_total / cluster.n_ost / costs.disk_bw
            )

        seconds = max(bounds.values()) + cycle_loaded
        bottleneck = max(bounds, key=lambda name: bounds[name])

        wrote = "write_small" in phase.cycle
        read = "read_small" in phase.cycle
        if wrote:
            state.record_write(fs.name, phase.files_per_rank * phase.data_bytes * ranks_pc)
        return PhaseResult(
            phase=phase,
            seconds=seconds,
            bottleneck=bottleneck,
            bounds=bounds,
            bytes_written=n_files_total * phase.data_bytes if wrote else 0,
            bytes_read=n_files_total * phase.data_bytes if read else 0,
            mds_ops=total_mds_ops,
        )
