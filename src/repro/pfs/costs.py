"""Cost primitives shared by the analytic model and the event micro-models.

Every timing constant in the PFS model lives here, derived from the cluster
hardware spec and the active configuration.  Default calibration targets
Lustre 2.15 on 10 Gbps TCP hardware of the paper's CloudLab class: data RPC
round-trips of a few hundred microseconds, metadata RPC round trips of
~200 us over TCP, HDD-array OSTs with ~0.4 ms random-request overhead.
Other backends adjust the per-RPC fields through ``cost_overrides``, and
all configuration reads go through model *roles* (``config.role``) so the
model never names a backend's parameters directly.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

from repro.backends.base import PAGE_SIZE
from repro.cluster.hardware import ClusterSpec
from repro.pfs.config import PfsConfig

#: MDS service time per operation type (seconds of one service thread).
MDS_SERVICE_TIME = {
    "create": 280e-6,
    "open": 130e-6,
    "close": 50e-6,
    "stat": 60e-6,
    "unlink": 260e-6,
    "mkdir": 320e-6,
}

#: Extra MDS work per additional stripe object on create/unlink.
STRIPE_OBJECT_COST = {
    "create": 110e-6,
    "unlink": 80e-6,
}

#: Serialized journal commit cost per modifying op (group-commit amortized).
JOURNAL_COST = 8e-6

#: Concurrent modifying ops allowed inside one directory (pdirops).
PDIROPS_CONCURRENCY = 8

#: Client-side CPU per metadata op (syscall + llite + ptlrpc).
CLIENT_META_CPU = 15e-6

#: Client page-cache copy bandwidth (memcpy-bound small I/O).
CLIENT_MEM_BW = 8e9

#: Checksum computation bandwidth per side when checksums are enabled.
CHECKSUM_BW = 3.5e9

#: Statahead pipelining: async prefetch slots contributed per rank is
#: ``1 + min(statahead_max, STATAHEAD_WINDOW_CAP) / STATAHEAD_SLOT_DIVISOR``.
STATAHEAD_SLOT_DIVISOR = 8
STATAHEAD_WINDOW_CAP = 256


@dataclass
class CostModel:
    """All derived constants for one (cluster, config) pair."""

    cluster: ClusterSpec
    config: PfsConfig

    # fixed per-RPC components (seconds)
    client_cpu_per_rpc: float = 20e-6
    bulk_handshake: float = 60e-6
    short_io_handshake: float = 15e-6
    data_rtt: float = 60e-6
    meta_rtt: float = 200e-6
    disk_overhead_seq: float = 1.0e-4
    disk_overhead_random: float = 4.0e-4
    disk_overhead_short: float = 2.5e-4

    def __post_init__(self):
        for name, value in self.config.backend.cost_overrides.items():
            if name not in OVERRIDABLE_COST_FIELDS:
                raise AttributeError(
                    f"backend {self.config.backend.name!r} overrides unknown "
                    f"cost field {name!r}; overridable: "
                    f"{sorted(OVERRIDABLE_COST_FIELDS)}"
                )
            setattr(self, name, value)
        client = self.cluster.client_nodes[0]
        server = self.cluster.oss_nodes[0]
        self.client_nic = client.nic_bandwidth
        self.server_nic = server.nic_bandwidth
        self.disk_bw = server.disk_bandwidth
        self.cores = client.cores
        self.checksums = bool(self.config.role("checksums", 0))

    # -- data path -------------------------------------------------------
    def rpc_bytes_cap(self) -> int:
        """Largest possible bulk RPC under the current configuration."""
        return int(self.config.role("rpc_cap_bytes"))

    def effective_rpc_size(self, xfer: int, pattern: str, stripe_size: int) -> int:
        """Bytes per bulk RPC after client-side aggregation/fragmentation.

        Sequential dirty pages coalesce up to the RPC cap (never across a
        stripe boundary); random I/O cannot be coalesced, so each call maps
        to its own RPC (split if it exceeds the cap or the stripe).
        """
        cap = min(self.rpc_bytes_cap(), stripe_size)
        if pattern == "seq":
            dirty = int(self.config.role("dirty_bytes"))
            return max(PAGE_SIZE, min(cap, max(xfer, dirty)))
        return max(1, min(xfer, cap))

    def uses_short_io(self, rpc_size: int) -> bool:
        # Backends without an inline fast path map no short_io role: the
        # threshold is then 0 and no request qualifies.
        return rpc_size <= int(self.config.role("short_io_bytes", 0))

    def disk_overhead(self, pattern: str, short_io: bool) -> float:
        if pattern == "seq":
            return self.disk_overhead_seq
        return self.disk_overhead_short if short_io else self.disk_overhead_random

    def checksum_time(self, nbytes: int) -> float:
        return nbytes / CHECKSUM_BW if self.checksums else 0.0

    def rpc_round_trip(
        self,
        rpc_size: int,
        pattern: str,
        lock_penalty: float = 0.0,
    ) -> float:
        """Unloaded latency of one bulk RPC, client syscall to completion."""
        short = self.uses_short_io(rpc_size)
        handshake = self.short_io_handshake if short else self.bulk_handshake
        wire = rpc_size / self.client_nic + rpc_size / self.server_nic
        disk = rpc_size / self.disk_bw + self.disk_overhead(pattern, short)
        return (
            self.client_cpu_per_rpc
            + self.checksum_time(rpc_size) * 2  # client + server side
            + handshake
            + self.data_rtt
            + wire
            + disk
            + lock_penalty
        )

    # -- metadata path ----------------------------------------------------
    def mds_service_time(self, op: str, stripe_count: int) -> float:
        base = MDS_SERVICE_TIME[op]
        extra = STRIPE_OBJECT_COST.get(op, 0.0) * max(0, stripe_count - 1)
        return base + extra

    def meta_cycle_round_trip(self, cycle: tuple[str, ...], stripe_count: int, data_bytes: int) -> float:
        """Serial latency of one per-file op cycle as seen by a rank."""
        total = 0.0
        for op in cycle:
            if op in MDS_SERVICE_TIME:
                total += (
                    self.mds_service_time(op, stripe_count)
                    + self.meta_rtt
                    + CLIENT_META_CPU
                )
            elif op in ("write_small", "read_small"):
                total += 5e-6 + data_bytes / CLIENT_MEM_BW
        return total

    def statahead_slots_per_rank(self) -> float:
        """Async attribute-prefetch slots a scanning rank contributes."""
        statahead = int(self.config.role("statahead_count", 0))
        if statahead <= 0:
            return 1.0
        return 1.0 + min(statahead, STATAHEAD_WINDOW_CAP) / STATAHEAD_SLOT_DIVISOR

    def mds_wait(self, utilization: float, service: float) -> float:
        """Approximate M/M/c queueing delay at the MDS thread pool.

        Utilization is capped below saturation: past that point throughput is
        governed by the MDS-capacity *demand* bound, not by ever-growing
        waits (waits at saturation throttle arrivals to capacity; they do not
        push throughput below capacity).  The cap keeps the client-side rate
        monotone in the concurrency limits.
        """
        threads = self.cluster.mds_service_threads
        rho = min(max(utilization, 0.0), 0.90)
        return (rho ** 8 / (1.0 - rho)) * service / threads * 4.0


#: Timing fields a backend's ``cost_overrides`` may replace (computed once —
#: CostModel construction sits in the costing hot path).
OVERRIDABLE_COST_FIELDS = frozenset(
    f.name for f in fields(CostModel) if f.name not in ("cluster", "config")
)
