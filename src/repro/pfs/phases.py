"""Phase representation of workloads.

Benchmarks like IOR, MDWorkbench and IO500 proceed in *phases*: homogeneous
groups of operations executed by every rank between barriers (write phase,
read phase, stat phase, ...).  Workload generators compile to a list of
phases; the analytic performance model costs each phase under a given
configuration.

Two phase kinds cover all workloads in the paper:

- :class:`DataPhase` — bulk reads/writes against large files.
- :class:`MetaPhase` — per-file metadata op cycles (create/stat/open/unlink,
  optionally with small client-cached payloads) against many small files.
"""

from __future__ import annotations

from dataclasses import dataclass, field

VALID_META_OPS = {
    "create",
    "open",
    "close",
    "stat",
    "unlink",
    "mkdir",
    "write_small",
    "read_small",
}

MODIFYING_OPS = {"create", "unlink", "mkdir"}

MDS_OPS = {"create", "open", "close", "stat", "unlink", "mkdir"}


@dataclass(frozen=True)
class FileSet:
    """A population of files accessed by a phase."""

    name: str
    n_files: int
    file_size: int  # bytes per file once fully written
    shared: bool  # True: all ranks share each file; False: file-per-process
    n_dirs: int = 1  # directories holding the files
    shared_dir: bool = False  # all ranks create in the same directory

    def __post_init__(self):
        if self.n_files < 1 or self.file_size < 0 or self.n_dirs < 1:
            raise ValueError(f"invalid fileset {self}")


@dataclass(frozen=True)
class DataPhase:
    """Bulk data movement phase."""

    name: str
    fileset: FileSet
    io: str  # "write" | "read"
    xfer_size: int  # bytes per I/O call
    bytes_per_rank: int
    pattern: str = "seq"  # "seq" | "random"
    reuse: bool = False  # reads target data this rank wrote earlier in the run
    concurrent_writers: int | None = None  # MIF/baton group cap (None = all)
    interface: str = "mpiio"  # "posix" | "mpiio" (Darshan module attribution)

    def __post_init__(self):
        if self.io not in ("write", "read"):
            raise ValueError(f"invalid io {self.io!r}")
        if self.pattern not in ("seq", "random"):
            raise ValueError(f"invalid pattern {self.pattern!r}")
        if self.xfer_size < 1 or self.bytes_per_rank < 0:
            raise ValueError("sizes must be positive")
        if self.concurrent_writers is not None and self.concurrent_writers < 1:
            raise ValueError("concurrent_writers must be >= 1")

    @property
    def total_bytes(self) -> int:
        """Set by the model at evaluation (needs rank count); per-rank here."""
        return self.bytes_per_rank

    @property
    def ops_per_rank(self) -> int:
        return -(-self.bytes_per_rank // self.xfer_size)


@dataclass(frozen=True)
class MetaPhase:
    """A per-file cycle of metadata ops executed serially by the owning rank.

    ``cycle`` lists the operations applied to each file in turn, e.g.
    ``("create", "write_small", "close")`` for a small-file creation storm.
    ``write_small``/``read_small`` move ``data_bytes`` through the client
    page cache; whether the data ever reaches the OSTs is controlled by
    ``data_persists`` (MDWorkbench unlinks files while still dirty, which
    cancels write-back entirely — real Lustre behaviour).
    """

    name: str
    fileset: FileSet
    cycle: tuple[str, ...]
    files_per_rank: int
    data_bytes: int = 0
    data_persists: bool = False
    scan_order: bool = False  # readdir-ordered scan (statahead eligible)

    def __post_init__(self):
        bad = [op for op in self.cycle if op not in VALID_META_OPS]
        if bad:
            raise ValueError(f"unknown meta ops {bad}")
        if self.files_per_rank < 1:
            raise ValueError("files_per_rank must be >= 1")

    @property
    def mds_rpcs_per_file(self) -> int:
        return sum(1 for op in self.cycle if op in MDS_OPS)

    @property
    def is_modifying(self) -> bool:
        return any(op in MODIFYING_OPS for op in self.cycle)


Phase = DataPhase | MetaPhase


@dataclass
class PhaseResult:
    """Outcome of costing one phase."""

    phase: Phase
    seconds: float
    bottleneck: str  # which bound determined the time
    bounds: dict[str, float] = field(default_factory=dict)
    bytes_read: int = 0
    bytes_written: int = 0
    mds_ops: int = 0
    rpcs: int = 0

    def __post_init__(self):
        if self.seconds < 0:
            raise ValueError("negative phase time")
