"""File striping (layout) math.

A file's layout maps byte offsets round-robin across ``stripe_count`` OST
objects in units of ``stripe_size``.  The performance model needs, for a byte
range, how many bytes land on each OST and how many distinct stripe objects a
rank touches (lock-contention input).  All functions are vectorized.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Layout:
    """The layout of one file."""

    stripe_size: int
    stripe_count: int  # resolved (never -1)
    ost_offset: int = 0  # first OST index (round-robin start)

    def __post_init__(self):
        if self.stripe_size < 1:
            raise ValueError("stripe_size must be >= 1")
        if self.stripe_count < 1:
            raise ValueError("stripe_count must be resolved to >= 1")


def resolve_stripe_count(requested: int, n_ost: int) -> int:
    """Resolve a user stripe_count (-1 = all OSTs) against the OST pool."""
    if requested == -1:
        return n_ost
    if requested < 1:
        raise ValueError(f"invalid stripe_count {requested}")
    return min(requested, n_ost)


def ost_of_offset(layout: Layout, offset: int, n_ost: int) -> int:
    """Which OST index stores the byte at ``offset``."""
    stripe_index = (offset // layout.stripe_size) % layout.stripe_count
    return (layout.ost_offset + stripe_index) % n_ost


def bytes_per_ost(layout: Layout, offset: int, length: int, n_ost: int) -> np.ndarray:
    """Bytes of ``[offset, offset+length)`` stored on each OST (len ``n_ost``)."""
    out = np.zeros(n_ost, dtype=np.int64)
    if length <= 0:
        return out
    size = layout.stripe_size
    count = layout.stripe_count
    first_stripe = offset // size
    last_stripe = (offset + length - 1) // size
    n_stripes = last_stripe - first_stripe + 1
    if n_stripes >= 4 * count:
        # Fast path: full cycles dominate; distribute evenly then fix edges.
        per_object = np.zeros(count, dtype=np.int64)
        full_start = (first_stripe + 1) * size
        full_end = last_stripe * size
        head = full_start - offset
        tail = offset + length - full_end
        per_object[first_stripe % count] += head
        per_object[last_stripe % count] += tail
        n_full = last_stripe - first_stripe - 1
        base, extra = divmod(n_full, count)
        per_object += base * size
        if extra:
            start = (first_stripe + 1) % count
            idx = (start + np.arange(extra)) % count
            np.add.at(per_object, idx, size)
    else:
        stripes = np.arange(first_stripe, last_stripe + 1)
        starts = np.maximum(stripes * size, offset)
        ends = np.minimum((stripes + 1) * size, offset + length)
        lengths = ends - starts
        per_object = np.zeros(count, dtype=np.int64)
        np.add.at(per_object, stripes % count, lengths)
    ost_idx = (layout.ost_offset + np.arange(count)) % n_ost
    np.add.at(out, ost_idx, per_object)
    return out


def objects_touched(layout: Layout, offset: int, length: int) -> int:
    """Number of distinct stripe objects covered by a byte range."""
    if length <= 0:
        return 0
    first = offset // layout.stripe_size
    last = (offset + length - 1) // layout.stripe_size
    return int(min(last - first + 1, layout.stripe_count))


def round_robin_start(file_index: int, n_ost: int) -> int:
    """OST offset assigned to the ``file_index``-th created file (QOS RR)."""
    return file_index % n_ost
