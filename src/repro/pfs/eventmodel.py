"""Event-driven micro-models for cross-validating the analytic model.

These simulate individual RPC streams through the event kernel using the
*same* cost primitives (:class:`~repro.pfs.costs.CostModel`) as the analytic
model.  Tests compare both on small homogeneous cases: the analytic
bottleneck analysis should match event-driven makespans within a modest
tolerance, which guards against either model drifting.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.hardware import ClusterSpec
from repro.pfs.config import PfsConfig
from repro.pfs.costs import CostModel
from repro.sim.engine import Engine
from repro.sim.resources import BandwidthLink, FifoServer, TokenPool


@dataclass
class StreamSpec:
    """One client streaming ``n_rpcs`` bulk RPCs of ``rpc_size`` to one OST."""

    n_rpcs: int
    rpc_size: int
    pattern: str = "seq"


def simulate_stream(
    cluster: ClusterSpec, config: PfsConfig, spec: StreamSpec
) -> float:
    """Event-driven makespan of a single (client, OST) RPC stream.

    Models: client CPU + handshake as a fixed pre-wire delay, the client NIC
    and server NIC as serializing bandwidth links, the OST disk as a FIFO
    server with per-request overhead, and ``max_rpcs_in_flight`` as a token
    pool.  Completion of the last RPC ends the stream.
    """
    costs = CostModel(cluster, config)
    engine = Engine()
    q = int(config.role("data_rpcs_in_flight"))
    tokens = TokenPool(q, name="rpcs_in_flight")
    client_nic = BandwidthLink(
        engine, costs.client_nic, latency=costs.data_rtt / 2, name="client_nic"
    )
    server_nic = BandwidthLink(engine, costs.server_nic, latency=0.0, name="server_nic")
    disk = FifoServer(engine, servers=1, name="ost_disk")

    short = costs.uses_short_io(spec.rpc_size)
    handshake = costs.short_io_handshake if short else costs.bulk_handshake
    prep = costs.client_cpu_per_rpc + costs.checksum_time(spec.rpc_size) * 2 + handshake
    disk_time = spec.rpc_size / costs.disk_bw + costs.disk_overhead(spec.pattern, short)

    finished_at = {"time": 0.0}

    def issue_one():
        def start():
            def after_prep():
                def after_client_wire():
                    def after_server_wire():
                        def after_disk():
                            finished_at["time"] = engine.now
                            tokens.release()

                        disk.submit(disk_time, after_disk)

                    server_nic.transfer(spec.rpc_size, after_server_wire)

                client_nic.transfer(spec.rpc_size, after_client_wire)

            engine.schedule(prep, after_prep)

        tokens.acquire(start)

    for _ in range(spec.n_rpcs):
        issue_one()
    engine.run()
    return finished_at["time"]


@dataclass
class MetaStreamSpec:
    """``n_ranks`` synchronous clients each performing ``files`` op-cycles."""

    files: int
    n_ranks: int
    cycle: tuple[str, ...] = ("create", "close")
    stripe_count: int = 1


def simulate_meta_stream(
    cluster: ClusterSpec, config: PfsConfig, spec: MetaStreamSpec
) -> float:
    """Event-driven makespan of one client node's metadata op stream.

    Ranks are synchronous (one outstanding cycle each); the per-client
    ``mdc.max_rpcs_in_flight`` / ``max_mod_rpcs_in_flight`` token pool gates
    RPC issue; the MDS thread pool serves ops.  Mirrors the analytic
    client-concurrency bound for a single client.
    """
    from repro.pfs.costs import CLIENT_META_CPU, MDS_SERVICE_TIME

    costs = CostModel(cluster, config)
    engine = Engine()
    mds = FifoServer(engine, servers=cluster.mds_service_threads, name="mds")
    modifying = any(op in ("create", "unlink", "mkdir") for op in spec.cycle)
    q = int(config.role("meta_rpcs_in_flight"))
    if modifying:
        q = min(q, int(config.role("meta_mod_rpcs_in_flight", q)))
    tokens = TokenPool(q, name="mdc_rpcs")
    finished = {"time": 0.0}

    def run_rank(files_left: int):
        if files_left == 0:
            return

        ops = [op for op in spec.cycle if op in MDS_SERVICE_TIME]

        def next_op(index: int):
            if index >= len(ops):
                finished["time"] = engine.now
                run_rank(files_left - 1)
                return
            service = costs.mds_service_time(ops[index], spec.stripe_count)

            def issue():
                def after_rtt():
                    def after_service():
                        tokens.release()
                        engine.schedule(
                            costs.meta_rtt / 2 + CLIENT_META_CPU,
                            lambda: next_op(index + 1),
                        )

                    mds.submit(service, after_service)

                engine.schedule(costs.meta_rtt / 2, after_rtt)

            tokens.acquire(issue)

        next_op(0)

    for _ in range(spec.n_ranks):
        run_rank(spec.files)
    engine.run()
    return finished["time"]


def analytic_meta_stream_estimate(
    cluster: ClusterSpec, config: PfsConfig, spec: MetaStreamSpec
) -> float:
    """Analytic counterpart of :func:`simulate_meta_stream` (one client)."""
    from repro.pfs.costs import MDS_SERVICE_TIME

    costs = CostModel(cluster, config)
    cycle_rt = costs.meta_cycle_round_trip(spec.cycle, spec.stripe_count, 0)
    modifying = any(op in ("create", "unlink", "mkdir") for op in spec.cycle)
    q = int(config.role("meta_rpcs_in_flight"))
    if modifying:
        q = min(q, int(config.role("meta_mod_rpcs_in_flight", q)))
    conc = min(q, spec.n_ranks)
    client_bound = spec.files * spec.n_ranks * cycle_rt / conc
    service_per_file = sum(
        costs.mds_service_time(op, spec.stripe_count)
        for op in spec.cycle
        if op in MDS_SERVICE_TIME
    )
    mds_bound = (
        spec.files * spec.n_ranks * service_per_file / cluster.mds_service_threads
    )
    return max(client_bound, mds_bound) + cycle_rt


def analytic_stream_estimate(
    cluster: ClusterSpec, config: PfsConfig, spec: StreamSpec
) -> float:
    """Analytic bound for the same single stream (mirrors the phase model)."""
    costs = CostModel(cluster, config)
    total_bytes = spec.n_rpcs * spec.rpc_size
    short = costs.uses_short_io(spec.rpc_size)
    overhead = costs.disk_overhead(spec.pattern, short)
    bounds = {
        "ost_disk": total_bytes / costs.disk_bw + spec.n_rpcs * overhead,
        "client_nic": total_bytes / costs.client_nic,
        "server_nic": total_bytes / costs.server_nic,
    }
    rtt = costs.rpc_round_trip(spec.rpc_size, spec.pattern)
    q = int(config.role("data_rpcs_in_flight"))
    window = q * spec.rpc_size
    bounds["pipeline"] = total_bytes / (window / rtt)
    return max(bounds.values()) + rtt
