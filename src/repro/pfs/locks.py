"""LDLM-style extent lock contention model.

Lustre serializes conflicting writes to a stripe object with distributed
extent locks.  Many writers on few objects cause lock grant/revoke traffic
that adds latency to every RPC and CPU load on the OST — the reason striping
a heavily shared file across more OSTs helps beyond raw bandwidth.

The model is deliberately first-order: a per-RPC latency penalty growing
logarithmically with the number of conflicting writers per stripe object,
much larger for random/strided access (interleaved extents revoke constantly)
than for segmented sequential access (adjacent disjoint extents).
"""

from __future__ import annotations

import math

#: Per-RPC penalty coefficients (seconds per doubling of conflicting writers).
LOCK_BASE_SEQ = 4e-6
LOCK_BASE_RANDOM = 30e-6

#: Fraction of the client-visible penalty that also lands on the OST as work.
SERVER_SHARE = 0.5


def writers_per_object(
    n_ranks: int, stripe_count: int, pattern: str, shared: bool
) -> float:
    """Expected number of ranks with active extents on one stripe object."""
    if not shared or n_ranks <= 1:
        return 1.0
    if pattern == "seq":
        # Segmented layout: each rank's contiguous region covers a subset of
        # objects; ranks per object shrinks as stripes spread the regions.
        return max(1.0, n_ranks / max(1, stripe_count))
    # Random/strided access interleaves every rank across every object.
    return float(n_ranks)


def lock_penalty(writers: float, pattern: str) -> float:
    """Client-visible extra latency per RPC due to lock conflicts."""
    if writers <= 1.0:
        return 0.0
    base = LOCK_BASE_SEQ if pattern == "seq" else LOCK_BASE_RANDOM
    return base * math.log2(writers)


def server_lock_cost(writers: float, pattern: str) -> float:
    """Portion of the conflict cost consumed on the OST per RPC."""
    return SERVER_SHARE * lock_penalty(writers, pattern)
