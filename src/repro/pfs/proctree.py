"""A ``/proc``-style view of the tunable parameter surface.

Parallel file systems expose parameters as files (Lustre under
``/proc/fs/lustre`` and ``/sys/fs/lustre``, the BeeGFS client module under
its own procfs root) with one instance per device (each OSC has its own
``max_rpcs_in_flight`` file, etc.).  STELLAR's offline phase walks this tree
and keeps only *writable* entries as extraction candidates — the "rough
filter" of §4.2.2.  This module materializes that tree from the cluster's
backend registry so the raw parameter count is realistic (hundreds of
files) while the distinct tunable surface stays the registry's.

:class:`ProcView` maps the tree onto a live :class:`PfsConfig`, giving
tests and tooling the read/write semantics of the real parameter files
(reads reflect the configuration, writes to read-only entries fail).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.backends.base import ParamSpec, PfsBackend
from repro.cluster.hardware import ClusterSpec
from repro.pfs.config import PfsConfig


@dataclass(frozen=True)
class ProcEntry:
    """One file in the parameter tree."""

    path: str  # e.g. /proc/fs/lustre/osc/testfs-OST0002-osc/max_rpcs_in_flight
    param: str  # dotted registry name
    device: str  # device instance, "" for singletons
    writable: bool


def build_proc_tree(cluster: ClusterSpec, fsname: str = "testfs") -> list[ProcEntry]:
    """Materialize the parameter tree for a mounted file system."""
    backend = cluster.backend
    entries: list[ProcEntry] = []
    for spec in backend.registry.values():
        devices = _devices_for(spec, backend, cluster, fsname)
        for device in devices:
            subsystem = spec.subsystem
            if device:
                path = f"{backend.proc_root}/{subsystem}/{device}/{spec.basename}"
            else:
                path = f"{backend.proc_root}/{subsystem}/{fsname}/{spec.basename}"
            entries.append(
                ProcEntry(path=path, param=spec.name, device=device, writable=spec.writable)
            )
    return entries


def _devices_for(
    spec: ParamSpec, backend: PfsBackend, cluster: ClusterSpec, fsname: str
) -> list[str]:
    if not spec.per_device:
        return [""]
    namer = backend.device_namers.get(spec.subsystem)
    if namer is None:
        return [""]
    return namer(cluster, fsname)


def writable_parameter_names(entries: list[ProcEntry]) -> list[str]:
    """Distinct registry names of writable entries (the rough filter)."""
    seen: list[str] = []
    for entry in entries:
        if entry.writable and entry.param not in seen:
            seen.append(entry.param)
    return seen


class ProcView:
    """Read/write access to the parameter tree backed by a configuration.

    Mirrors admin-tool semantics: every device instance of a parameter
    reads the same configured value, a write updates the configuration for
    all instances, and writes to read-only files raise ``PermissionError``
    (as the real ``/proc`` would return ``EACCES``).
    """

    def __init__(self, cluster: ClusterSpec, config: PfsConfig, fsname: str = "testfs"):
        if config.backend.name != cluster.backend_name:
            raise ValueError(
                f"config targets backend {config.backend.name!r} but the "
                f"cluster runs {cluster.backend_name!r}"
            )
        self.config = config
        self.entries = build_proc_tree(cluster, fsname=fsname)
        self._by_path = {entry.path: entry for entry in self.entries}

    def _entry(self, path: str) -> ProcEntry:
        try:
            return self._by_path[path]
        except KeyError:
            raise FileNotFoundError(path) from None

    def read(self, path: str) -> int:
        entry = self._entry(path)
        if entry.writable:
            return self.config[entry.param]
        # Read-only informational entries report their registry default.
        return self.config.backend.registry[entry.param].default

    def write(self, path: str, value: int) -> None:
        entry = self._entry(path)
        if not entry.writable:
            raise PermissionError(f"{path} is read-only")
        self.config[entry.param] = value
