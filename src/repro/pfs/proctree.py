"""A ``/proc``-style view of the tunable parameter surface.

Lustre exposes parameters as files under ``/proc/fs/lustre`` and
``/sys/fs/lustre`` with one instance per device (each OSC has its own
``max_rpcs_in_flight`` file, etc.).  STELLAR's offline phase walks this tree
and keeps only *writable* entries as extraction candidates — the "rough
filter" of §4.2.2.  This module materializes that tree from the registry so
the raw parameter count is realistic (hundreds of files) while the distinct
tunable surface stays the registry's.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.hardware import ClusterSpec
from repro.pfs import params as P


@dataclass(frozen=True)
class ProcEntry:
    """One file in the parameter tree."""

    path: str  # e.g. /proc/fs/lustre/osc/testfs-OST0002-osc/max_rpcs_in_flight
    param: str  # dotted registry name
    device: str  # device instance, "" for singletons
    writable: bool


def build_proc_tree(cluster: ClusterSpec, fsname: str = "testfs") -> list[ProcEntry]:
    """Materialize the parameter tree for a mounted file system."""
    entries: list[ProcEntry] = []
    for spec in P.REGISTRY.values():
        devices = _devices_for(spec, cluster, fsname)
        for device in devices:
            subsystem = spec.subsystem
            if device:
                path = f"/proc/fs/lustre/{subsystem}/{device}/{spec.basename}"
            else:
                path = f"/proc/fs/lustre/{subsystem}/{fsname}/{spec.basename}"
            entries.append(
                ProcEntry(path=path, param=spec.name, device=device, writable=spec.writable)
            )
    return entries


def _devices_for(spec: P.ParamSpec, cluster: ClusterSpec, fsname: str) -> list[str]:
    if not spec.per_device:
        return [""]
    if spec.subsystem == "osc":
        return [f"{fsname}-OST{i:04x}-osc" for i in range(cluster.n_ost)]
    if spec.subsystem == "mdc":
        return [f"{fsname}-MDT0000-mdc"]
    return [""]


def writable_parameter_names(entries: list[ProcEntry]) -> list[str]:
    """Distinct registry names of writable entries (the rough filter)."""
    seen: list[str] = []
    for entry in entries:
        if entry.writable and entry.param not in seen:
            seen.append(entry.param)
    return seen
