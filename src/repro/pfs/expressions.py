"""Safe arithmetic expression language for dependent parameter ranges.

Lustre parameter bounds frequently depend on other parameters or on hardware
facts — e.g. ``max_read_ahead_per_file_mb`` may be at most half of
``max_read_ahead_mb``, which itself is capped at half of client memory.  The
paper instructs the extraction LLM to emit such bounds using a *dependent
expression* syntax evaluated against live system values during tuning.

Grammar: numbers, identifiers (parameter basenames or system facts such as
``system_memory_mb`` / ``n_ost``), ``+ - * / //``, unary minus, parentheses,
and ``min(...)`` / ``max(...)``.  Implemented by whitelisting Python ``ast``
nodes — anything outside the grammar raises :class:`ExpressionError`.
"""

from __future__ import annotations

import ast
from typing import Mapping


class ExpressionError(ValueError):
    """Raised for syntax errors, unknown names, or disallowed constructs."""


_ALLOWED_CALLS = {"min": min, "max": max}

_BINOPS = {
    ast.Add: lambda a, b: a + b,
    ast.Sub: lambda a, b: a - b,
    ast.Mult: lambda a, b: a * b,
    ast.Div: lambda a, b: a / b,
    ast.FloorDiv: lambda a, b: a // b,
}


def evaluate(expression: str, env: Mapping[str, float]) -> float:
    """Evaluate ``expression`` against ``env``; returns a float.

    ``env`` maps identifiers to numeric values.  Identifiers may be dotted
    parameter names (``osc.max_rpcs_in_flight``) — written in expressions with
    dots replaced by nothing special; both the full dotted name and the
    basename are accepted lookups.
    """
    try:
        tree = ast.parse(expression, mode="eval")
    except SyntaxError as exc:
        raise ExpressionError(f"bad expression {expression!r}: {exc}") from None
    return _eval_node(tree.body, env, expression)


def _lookup(name: str, env: Mapping[str, float], expression: str) -> float:
    if name in env:
        return float(env[name])
    # Allow basename lookups for dotted env keys.
    for key, value in env.items():
        if key.rsplit(".", 1)[-1] == name:
            return float(value)
    raise ExpressionError(f"unknown identifier {name!r} in {expression!r}")


def _eval_node(node: ast.AST, env: Mapping[str, float], expression: str) -> float:
    if isinstance(node, ast.Constant):
        if isinstance(node.value, (int, float)) and not isinstance(node.value, bool):
            return float(node.value)
        raise ExpressionError(f"non-numeric constant in {expression!r}")
    if isinstance(node, ast.Name):
        return _lookup(node.id, env, expression)
    if isinstance(node, ast.Attribute):
        # Dotted names parse as attribute access: rebuild the dotted string.
        parts: list[str] = []
        current: ast.AST = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            raise ExpressionError(f"unsupported attribute base in {expression!r}")
        parts.append(current.id)
        dotted = ".".join(reversed(parts))
        return _lookup(dotted, env, expression)
    if isinstance(node, ast.BinOp):
        op = _BINOPS.get(type(node.op))
        if op is None:
            raise ExpressionError(f"operator not allowed in {expression!r}")
        left = _eval_node(node.left, env, expression)
        right = _eval_node(node.right, env, expression)
        if isinstance(node.op, (ast.Div, ast.FloorDiv)) and right == 0:
            raise ExpressionError(f"division by zero in {expression!r}")
        return float(op(left, right))
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        return -_eval_node(node.operand, env, expression)
    if isinstance(node, ast.Call):
        if not isinstance(node.func, ast.Name) or node.func.id not in _ALLOWED_CALLS:
            raise ExpressionError(f"only min()/max() calls allowed in {expression!r}")
        if node.keywords:
            raise ExpressionError(f"keyword arguments not allowed in {expression!r}")
        args = [_eval_node(a, env, expression) for a in node.args]
        if not args:
            raise ExpressionError(f"empty call in {expression!r}")
        return float(_ALLOWED_CALLS[node.func.id](*args))
    raise ExpressionError(
        f"disallowed syntax {type(node).__name__} in {expression!r}"
    )


def referenced_names(expression: str) -> set[str]:
    """Identifiers an expression depends on (for dependency ordering)."""
    try:
        tree = ast.parse(expression, mode="eval")
    except SyntaxError as exc:
        raise ExpressionError(f"bad expression {expression!r}: {exc}") from None
    names: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Name) and node.id not in _ALLOWED_CALLS:
            names.add(node.id)
        elif isinstance(node, ast.Attribute):
            parts: list[str] = []
            current: ast.AST = node
            while isinstance(current, ast.Attribute):
                parts.append(current.attr)
                current = current.value
            if isinstance(current, ast.Name):
                parts.append(current.id)
                names.add(".".join(reversed(parts)))
    # Attribute traversal above also records bare bases via ast.walk; keep
    # only the longest dotted forms plus standalone names.
    cleaned = {
        n
        for n in names
        if not any(other != n and other.startswith(n + ".") for other in names)
    }
    return cleaned
