"""Safe arithmetic expression language for dependent parameter ranges.

Lustre parameter bounds frequently depend on other parameters or on hardware
facts — e.g. ``max_read_ahead_per_file_mb`` may be at most half of
``max_read_ahead_mb``, which itself is capped at half of client memory.  The
paper instructs the extraction LLM to emit such bounds using a *dependent
expression* syntax evaluated against live system values during tuning.

Grammar: numbers, identifiers (parameter basenames or system facts such as
``system_memory_mb`` / ``n_ost``), ``+ - * / //``, unary minus, parentheses,
and ``min(...)`` / ``max(...)``.  Implemented by whitelisting Python ``ast``
nodes — anything outside the grammar raises :class:`ExpressionError`.

Expressions are compiled once per distinct source string: :func:`compile_expression`
parses the AST a single time and returns a closure tree, so the hot tuning
path (every ``PfsConfig.bounds`` call) pays only dict lookups and float
arithmetic, never ``ast.parse``.  Parse-time errors (syntax, disallowed
constructs) surface at compile time; value-dependent errors (unknown
identifiers, division by zero) surface at evaluation time, exactly as the
uncompiled evaluator raised them.
"""

from __future__ import annotations

import ast
from functools import lru_cache
from typing import Callable, Mapping


class ExpressionError(ValueError):
    """Raised for syntax errors, unknown names, or disallowed constructs."""


_ALLOWED_CALLS = {"min": min, "max": max}

_BINOPS = {
    ast.Add: lambda a, b: a + b,
    ast.Sub: lambda a, b: a - b,
    ast.Mult: lambda a, b: a * b,
    ast.Div: lambda a, b: a / b,
    ast.FloorDiv: lambda a, b: a // b,
}


def evaluate(expression: str, env: Mapping[str, float]) -> float:
    """Evaluate ``expression`` against ``env``; returns a float.

    ``env`` maps identifiers to numeric values.  Identifiers may be dotted
    parameter names (``osc.max_rpcs_in_flight``) — written in expressions with
    dots replaced by nothing special; both the full dotted name and the
    basename are accepted lookups.
    """
    return compile_expression(expression)(env)


@lru_cache(maxsize=None)
def compile_expression(expression: str) -> Callable[[Mapping[str, float]], float]:
    """Parse ``expression`` once and return a reusable evaluator closure.

    The cache is keyed by the source string, so every caller sharing a range
    expression (all :class:`~repro.pfs.config.PfsConfig` instances) shares one
    compiled form.  Compilation raises :class:`ExpressionError` for syntax
    errors and disallowed constructs; the returned closure raises it for
    unknown identifiers and division by zero, matching the one-shot evaluator.
    """
    try:
        tree = ast.parse(expression, mode="eval")
    except SyntaxError as exc:
        raise ExpressionError(f"bad expression {expression!r}: {exc}") from None
    return _compile_node(tree.body, expression)


def _compile_node(
    node: ast.AST, expression: str
) -> Callable[[Mapping[str, float]], float]:
    if isinstance(node, ast.Constant):
        if isinstance(node.value, (int, float)) and not isinstance(node.value, bool):
            value = float(node.value)
            return lambda env: value
        raise ExpressionError(f"non-numeric constant in {expression!r}")
    if isinstance(node, ast.Name):
        name = node.id
        return lambda env: _lookup(name, env, expression)
    if isinstance(node, ast.Attribute):
        dotted = _dotted_name(node, expression)
        return lambda env: _lookup(dotted, env, expression)
    if isinstance(node, ast.BinOp):
        op = _BINOPS.get(type(node.op))
        if op is None:
            raise ExpressionError(f"operator not allowed in {expression!r}")
        left = _compile_node(node.left, expression)
        right = _compile_node(node.right, expression)
        if isinstance(node.op, (ast.Div, ast.FloorDiv)):

            def divide(env: Mapping[str, float]) -> float:
                denominator = right(env)
                if denominator == 0:
                    raise ExpressionError(f"division by zero in {expression!r}")
                return float(op(left(env), denominator))

            return divide
        return lambda env: float(op(left(env), right(env)))
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        operand = _compile_node(node.operand, expression)
        return lambda env: -operand(env)
    if isinstance(node, ast.Call):
        if not isinstance(node.func, ast.Name) or node.func.id not in _ALLOWED_CALLS:
            raise ExpressionError(f"only min()/max() calls allowed in {expression!r}")
        if node.keywords:
            raise ExpressionError(f"keyword arguments not allowed in {expression!r}")
        if not node.args:
            raise ExpressionError(f"empty call in {expression!r}")
        call = _ALLOWED_CALLS[node.func.id]
        args = [_compile_node(a, expression) for a in node.args]
        return lambda env: float(call(*(a(env) for a in args)))
    raise ExpressionError(
        f"disallowed syntax {type(node).__name__} in {expression!r}"
    )


def _dotted_name(node: ast.Attribute, expression: str) -> str:
    parts: list[str] = []
    current: ast.AST = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        raise ExpressionError(f"unsupported attribute base in {expression!r}")
    parts.append(current.id)
    return ".".join(reversed(parts))


def _lookup(name: str, env: Mapping[str, float], expression: str) -> float:
    if name in env:
        return float(env[name])
    # Allow basename lookups for dotted env keys.
    for key, value in env.items():
        if key.rsplit(".", 1)[-1] == name:
            return float(value)
    raise ExpressionError(f"unknown identifier {name!r} in {expression!r}")


@lru_cache(maxsize=None)
def compile_expression_vector(expression: str):
    """Columnar twin of :func:`compile_expression`.

    Returns an evaluator that accepts an env mapping identifiers to *numpy
    arrays* (one element per candidate configuration) and evaluates the
    expression elementwise.  Every scalar operation maps to exactly one
    elementwise numpy operation with the same operand order, so results are
    bit-identical to evaluating the scalar form per candidate — IEEE-754
    float64 arithmetic is the same in both.  Used by the sweep engine's
    columnar validation fast path; any :class:`ExpressionError` there falls
    back to the scalar evaluator, which re-raises with the exact per-config
    message.
    """
    import numpy as np

    try:
        tree = ast.parse(expression, mode="eval")
    except SyntaxError as exc:
        raise ExpressionError(f"bad expression {expression!r}: {exc}") from None
    return _compile_node_vector(tree.body, expression, np)


def _compile_node_vector(node: ast.AST, expression: str, np):
    if isinstance(node, ast.Constant):
        if isinstance(node.value, (int, float)) and not isinstance(node.value, bool):
            value = float(node.value)
            return lambda env: value
        raise ExpressionError(f"non-numeric constant in {expression!r}")
    if isinstance(node, ast.Name):
        name = node.id
        return lambda env: _lookup_vector(name, env, expression)
    if isinstance(node, ast.Attribute):
        dotted = _dotted_name(node, expression)
        return lambda env: _lookup_vector(dotted, env, expression)
    if isinstance(node, ast.BinOp):
        op_type = type(node.op)
        if op_type not in _BINOPS:
            raise ExpressionError(f"operator not allowed in {expression!r}")
        left = _compile_node_vector(node.left, expression, np)
        right = _compile_node_vector(node.right, expression, np)
        if op_type is ast.Div or op_type is ast.FloorDiv:
            divide_op = (
                np.true_divide if op_type is ast.Div else np.floor_divide
            )

            def divide(env):
                denominator = right(env)
                if np.any(denominator == 0):
                    raise ExpressionError(f"division by zero in {expression!r}")
                return divide_op(left(env), denominator)

            return divide
        op = {ast.Add: np.add, ast.Sub: np.subtract, ast.Mult: np.multiply}[op_type]
        return lambda env: op(left(env), right(env))
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        operand = _compile_node_vector(node.operand, expression, np)
        return lambda env: np.negative(operand(env))
    if isinstance(node, ast.Call):
        if not isinstance(node.func, ast.Name) or node.func.id not in _ALLOWED_CALLS:
            raise ExpressionError(f"only min()/max() calls allowed in {expression!r}")
        if node.keywords:
            raise ExpressionError(f"keyword arguments not allowed in {expression!r}")
        if not node.args:
            raise ExpressionError(f"empty call in {expression!r}")
        pairwise = np.minimum if node.func.id == "min" else np.maximum
        args = [_compile_node_vector(a, expression, np) for a in node.args]

        def call(env):
            result = args[0](env)
            for arg in args[1:]:
                result = pairwise(result, arg(env))
            return result

        return call
    raise ExpressionError(
        f"disallowed syntax {type(node).__name__} in {expression!r}"
    )


def _lookup_vector(name: str, env, expression: str):
    if name in env:
        return env[name]
    # Basename fallback in env insertion order, mirroring ``_lookup``.
    for key, value in env.items():
        if key.rsplit(".", 1)[-1] == name:
            return value
    raise ExpressionError(f"unknown identifier {name!r} in {expression!r}")


def referenced_names(expression: str) -> set[str]:
    """Identifiers an expression depends on (for dependency ordering)."""
    try:
        tree = ast.parse(expression, mode="eval")
    except SyntaxError as exc:
        raise ExpressionError(f"bad expression {expression!r}: {exc}") from None
    names: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Name) and node.id not in _ALLOWED_CALLS:
            names.add(node.id)
        elif isinstance(node, ast.Attribute):
            parts: list[str] = []
            current: ast.AST = node
            while isinstance(current, ast.Attribute):
                parts.append(current.attr)
                current = current.value
            if isinstance(current, ast.Name):
                parts.append(current.id)
                names.add(".".join(reversed(parts)))
    # Attribute traversal above also records bare bases via ast.walk; keep
    # only the longest dotted forms plus standalone names.
    cleaned = {
        n
        for n in names
        if not any(other != n and other.startswith(n + ".") for other in names)
    }
    return cleaned
