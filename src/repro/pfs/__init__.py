"""Parallel file system performance simulator.

The PFS model has two faces:

1. A **configuration surface** owned by the active backend
   (:mod:`repro.backends`): a parameter registry with defaults, valid ranges
   (including dependent ranges expressed in a small expression language), a
   ``/proc``-style tree of writable files (:mod:`repro.pfs.proctree`) and a
   validated :class:`~repro.pfs.config.PfsConfig`.

2. A **performance model**: workloads compile to phases
   (:mod:`repro.pfs.phases`) which the analytic model (:mod:`repro.pfs.model`)
   costs using shared RPC/disk/network primitives (:mod:`repro.pfs.costs`),
   striping math (:mod:`repro.pfs.striping`) and an LDLM-style lock contention
   model (:mod:`repro.pfs.locks`).  The model reads configuration only
   through backend-mapped *roles*, so any registered backend plugs in.
   :class:`~repro.pfs.simulator.Simulator` ties it together and produces
   per-phase timings plus the I/O records the Darshan tracer consumes.
"""

from repro.pfs.config import PfsConfig
from repro.pfs.simulator import RunResult, Simulator

__all__ = [
    "PfsConfig",
    "REGISTRY",
    "ParamSpec",
    "high_impact_parameter_names",
    "Simulator",
    "RunResult",
]

_LEGACY_LUSTRE_NAMES = ("REGISTRY", "ParamSpec", "high_impact_parameter_names")


def __getattr__(name: str):
    # Legacy Lustre-bound re-exports, resolved lazily (PEP 562) so library
    # code paths never touch the repro.pfs.params shim.
    if name in _LEGACY_LUSTRE_NAMES:
        from repro.pfs import params

        return getattr(params, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
