"""Lustre-like parallel file system performance simulator.

The PFS model has two faces:

1. A **configuration surface** mirroring Lustre 2.15: a parameter registry
   (:mod:`repro.pfs.params`) with defaults, valid ranges (including dependent
   ranges expressed in a small expression language), a ``/proc``-style tree of
   writable files (:mod:`repro.pfs.proctree`) and a validated
   :class:`~repro.pfs.config.PfsConfig`.

2. A **performance model**: workloads compile to phases
   (:mod:`repro.pfs.phases`) which the analytic model (:mod:`repro.pfs.model`)
   costs using shared RPC/disk/network primitives (:mod:`repro.pfs.costs`),
   striping math (:mod:`repro.pfs.striping`) and an LDLM-style lock contention
   model (:mod:`repro.pfs.locks`).  :class:`~repro.pfs.simulator.Simulator`
   ties it together and produces per-phase timings plus the I/O records the
   Darshan tracer consumes.
"""

from repro.pfs.config import PfsConfig
from repro.pfs.params import REGISTRY, ParamSpec, high_impact_parameter_names
from repro.pfs.simulator import RunResult, Simulator

__all__ = [
    "PfsConfig",
    "REGISTRY",
    "ParamSpec",
    "high_impact_parameter_names",
    "Simulator",
    "RunResult",
]
