"""Config-file parameter surface (DAOS-style).

§4.2.2 notes the ``/proc`` rough filter "may not always be necessary because
some storage systems directly expose tunable parameters via configuration
files (e.g., DAOS)".  This module renders and parses such a surface: a
YAML-ish server/client config whose ``tunable:`` entries are the extraction
candidates, exercising the alternative front end of the offline pipeline.
"""

from __future__ import annotations

import re

from repro.backends import resolve_backend
from repro.backends.base import PfsBackend

_HEADER = """\
# testfs agent/client configuration (simulated, DAOS-style)
# Entries marked 'tunable' may be changed at runtime by the storage engine.
name: testfs
access_points: [mds0]
provider: ofi+tcp
"""


def render_config_file(backend: PfsBackend | str | None = None) -> str:
    """The configuration file listing every runtime-tunable parameter."""
    backend = resolve_backend(backend)
    lines = [_HEADER, "tunables:"]
    for spec in sorted(backend.registry.values(), key=lambda s: s.name):
        if not spec.writable:
            continue
        lines.append(f"  - param: {spec.name}    # tunable, default={spec.default}")
    return "\n".join(lines) + "\n"


_PARAM_RE = re.compile(r"^\s*- param: ([\w.]+)\s*#\s*tunable", re.MULTILINE)


def tunable_parameter_names(text: str) -> list[str]:
    """Extraction candidates declared by a configuration file."""
    return _PARAM_RE.findall(text)
