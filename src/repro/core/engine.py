"""The STELLAR engine: offline extraction + online agentic tuning (§4.1).

``Stellar.build`` runs the offline phase once (RAG over the manual,
producing the filtered tunable-parameter list with accurate descriptions
and dependent ranges).  ``tune`` executes one complete Tuning Run by
driving the staged session pipeline (:mod:`repro.core.pipeline`):

1. initial instrumented execution of the target application (Darshan log);
2. the Analysis Agent distills the log into the I/O Report;
3. the Tuning Agent iterates: optional follow-up analyses, configuration
   proposals executed on the real (simulated) system, feedback, and an
   autonomous end decision — at most ``max_attempts`` configurations;
4. Reflect & Summarize distills rules, which ``accumulate`` appends to the
   versioned rule journal used by subsequent runs.

The ablation switches mirror §5.4: ``use_descriptions=False`` removes the
RAG-generated parameter descriptions (keeping ranges), ``use_analysis=False``
removes the Analysis Agent entirely; ``use_rules`` gates the global rule set.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.agents.reflection import merge_rules_via_llm
from repro.cluster.hardware import ClusterSpec
from repro.core.pipeline import SESSION_PIPELINE, SessionState
from repro.core.runner import EvaluationBroker
from repro.core.session import TuningSession
from repro.faults.llm import ResilientLLMClient
from repro.faults.plan import FaultPlan
from repro.faults.retry import RetryPolicy
from repro.llm.client import LLMClient
from repro.llm.tokens import TokenUsage, UsageLedger
from repro.rag.extraction import ExtractionResult, ParameterExtractor
from repro.rules.model import RuleSet
from repro.rules.store import RuleJournal
from repro.sim.random import RngStreams
from repro.workloads.base import Workload


@dataclass
class Stellar:
    """The assembled tuning engine."""

    cluster: ClusterSpec
    model: str
    extraction: ExtractionResult
    seed: int = 0
    analysis_model: str | None = None  # defaults to gpt-4o like the paper
    faults: FaultPlan | None = None
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    #: Optional batching seam for probe evaluations (the fleet broker).
    broker: "EvaluationBroker | None" = None
    #: Default turn-taking strategy for every run this engine drives: a
    #: registered policy name or ``None`` for the reflection loop;
    #: ``tune(policy=...)`` overrides it per run.
    policy: str | None = None

    def __post_init__(self):
        self.journal = RuleJournal()
        self._run_counter = 0

    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        cluster: ClusterSpec,
        model: str = "claude-3.7-sonnet",
        seed: int = 0,
        extraction_model: str = "gpt-4o",
        extraction: ExtractionResult | None = None,
        faults: FaultPlan | None = None,
        retry: RetryPolicy | None = None,
    ) -> "Stellar":
        """Run (or reuse) the offline phase and assemble the engine."""
        if extraction is None:
            client = LLMClient(extraction_model, seed=seed)
            extraction = ParameterExtractor(cluster, client).run()
        return cls(
            cluster=cluster,
            model=model,
            extraction=extraction,
            seed=seed,
            faults=faults,
            retry=retry if retry is not None else RetryPolicy(),
        )

    # ------------------------------------------------------------------
    @property
    def rule_set(self) -> RuleSet:
        """The merged view of the rule journal (the global rule set)."""
        return self.journal.current

    @rule_set.setter
    def rule_set(self, value: RuleSet) -> None:
        # Adopting a flat rule set replaces the journal with one baseline
        # entry — the compatibility path for persisted snapshots and the
        # experiment harness's ``engine.rule_set = ...`` idiom.
        self.journal = RuleJournal.seeded(value, seed=self.seed)

    # ------------------------------------------------------------------
    def tune(
        self,
        workload: Workload,
        max_attempts: int = 5,
        use_rules: bool = True,
        use_descriptions: bool = True,
        use_analysis: bool = True,
        user_accessible_only: bool = False,
        seed: int | None = None,
        policy: str | None = None,
    ) -> TuningSession:
        """One complete Tuning Run for ``workload``.

        ``user_accessible_only`` restricts the tunable surface to parameters
        a user can set without root privileges (``lfs setstripe`` layout
        settings) — the paper's §5.6 deployment direction for production
        systems where ``/proc`` parameters are off limits.  ``policy``
        selects the agent's turn-taking strategy for this run (a name from
        :func:`repro.agents.policies.list_policies`); ``None`` falls back to
        the engine default, then to the reflection loop.
        """
        self._run_counter += 1
        run_seed = (
            RngStreams.rep_seed(self.seed, self._run_counter)
            if seed is None
            else seed
        )
        state = SessionState(
            cluster=self.cluster,
            workload=workload,
            model=self.model,
            analysis_model=self.analysis_model or "gpt-4o",
            extraction=self.extraction,
            run_seed=run_seed,
            rules_json=self.rule_set.to_json() if use_rules else [],
            max_attempts=max_attempts,
            use_descriptions=use_descriptions,
            use_analysis=use_analysis,
            user_accessible_only=user_accessible_only,
            faults=self.faults,
            retry=self.retry,
            broker=self.broker,
            policy=policy if policy is not None else self.policy,
        )
        return SESSION_PIPELINE.run(state).session

    # ------------------------------------------------------------------
    def accumulate(self, session: TuningSession) -> None:
        """Append a run's rules to the journal (LLM-mediated merge).

        The merge step's token usage lands in ``session.usage`` under the
        ``rules_merge`` agent, so session accounting covers the whole
        lifecycle of the run's knowledge, not just its generation.
        """
        if not session.rules_json:
            return
        ledger = UsageLedger()
        basis_version = self.journal.version
        if self.faults is not None:
            client = ResilientLLMClient(
                self.model,
                seed=self.seed,
                ledger=ledger,
                faults=self.faults,
                retry=self.retry,
            )
            # The merge's fault-draw key must differ per merge and per
            # engine, or every merge in the fleet would fail in lockstep.
            merge_session = f"rules-merge:{self.seed}:{basis_version}"
        else:
            client = LLMClient(self.model, seed=self.seed, ledger=ledger)
            merge_session = "rules-merge"
        merged = merge_rules_via_llm(
            client,
            self.rule_set.to_json(),
            session.rules_json,
            session=merge_session,
            agent="rules_merge",
        )
        self.journal.append(
            session.rules_json,
            seed=self.seed,
            snapshot=merged,
            basis_version=basis_version,
        )
        for agent, usage in ledger.per_agent.items():
            session.usage[agent] = session.usage.get(agent, TokenUsage()) + usage
        session.llm_latency += ledger.wall_latency
        for site, count in getattr(client, "fault_counts", {}).items():
            session.fault_recovery[site] = (
                session.fault_recovery.get(site, 0) + count
            )

    def tune_and_accumulate(self, workload: Workload, **kwargs) -> TuningSession:
        session = self.tune(workload, **kwargs)
        self.accumulate(session)
        return session

    def fresh_copy(self) -> "Stellar":
        """An engine sharing the offline extraction but with empty rules."""
        clone = replace(self)
        clone.journal = RuleJournal()
        clone._run_counter = 0
        return clone
