"""The STELLAR engine: offline extraction + online agentic tuning (§4.1).

``Stellar.build`` runs the offline phase once (RAG over the manual,
producing the filtered tunable-parameter list with accurate descriptions
and dependent ranges).  ``tune`` executes one complete Tuning Run:

1. initial instrumented execution of the target application (Darshan log);
2. the Analysis Agent distills the log into the I/O Report;
3. the Tuning Agent iterates: optional follow-up analyses, configuration
   proposals executed on the real (simulated) system, feedback, and an
   autonomous end decision — at most ``max_attempts`` configurations;
4. Reflect & Summarize distills rules, which ``accumulate`` merges into the
   global rule set used by subsequent runs.

The ablation switches mirror §5.4: ``use_descriptions=False`` removes the
RAG-generated parameter descriptions (keeping ranges), ``use_analysis=False``
removes the Analysis Agent entirely; ``use_rules`` gates the global rule set.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.agents.analysis import AnalysisAgent
from repro.agents.reflection import merge_rules_via_llm
from repro.agents.transcript import Transcript
from repro.agents.tuning import TuningAgent
from repro.cluster.hardware import ClusterSpec
from repro.core.runner import ConfigurationRunner
from repro.core.session import TuningSession
from repro.corpus import render_hardware_doc
from repro.darshan import parse_log
from repro.llm.client import LLMClient
from repro.llm.tokens import UsageLedger
from repro.rag.extraction import ExtractionResult, ParameterExtractor
from repro.rules.model import RuleSet
from repro.workloads.base import Workload


@dataclass
class Stellar:
    """The assembled tuning engine."""

    cluster: ClusterSpec
    model: str
    extraction: ExtractionResult
    seed: int = 0
    analysis_model: str | None = None  # defaults to gpt-4o like the paper

    def __post_init__(self):
        self.rule_set = RuleSet()
        self._run_counter = 0

    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        cluster: ClusterSpec,
        model: str = "claude-3.7-sonnet",
        seed: int = 0,
        extraction_model: str = "gpt-4o",
        extraction: ExtractionResult | None = None,
    ) -> "Stellar":
        """Run (or reuse) the offline phase and assemble the engine."""
        if extraction is None:
            client = LLMClient(extraction_model, seed=seed)
            extraction = ParameterExtractor(cluster, client).run()
        return cls(cluster=cluster, model=model, extraction=extraction, seed=seed)

    # ------------------------------------------------------------------
    def tune(
        self,
        workload: Workload,
        max_attempts: int = 5,
        use_rules: bool = True,
        use_descriptions: bool = True,
        use_analysis: bool = True,
        user_accessible_only: bool = False,
        seed: int | None = None,
    ) -> TuningSession:
        """One complete Tuning Run for ``workload``.

        ``user_accessible_only`` restricts the tunable surface to parameters
        a user can set without root privileges (``lfs setstripe`` layout
        settings) — the paper's §5.6 deployment direction for production
        systems where ``/proc`` parameters are off limits.
        """
        self._run_counter += 1
        run_seed = self.seed * 100 + self._run_counter if seed is None else seed
        ledger = UsageLedger()
        tuning_client = LLMClient(self.model, seed=run_seed, ledger=ledger)
        analysis_client = LLMClient(
            self.analysis_model or "gpt-4o", seed=run_seed, ledger=ledger
        )
        transcript = Transcript()

        runner = ConfigurationRunner(self.cluster, workload, seed=run_seed)
        initial_run, darshan_log = runner.initial_execution()
        transcript.add(
            "initial_run",
            f"{workload.name} under defaults: {initial_run.seconds:.2f}s",
            seconds=initial_run.seconds,
        )

        report = None
        analysis_agent = None
        if use_analysis:
            parsed = parse_log(darshan_log)
            analysis_agent = AnalysisAgent(
                analysis_client,
                parsed,
                transcript=transcript,
                session=f"analysis:{workload.name}:{run_seed}",
            )
            report = analysis_agent.initial_report()

        selected = self.extraction.selected
        if user_accessible_only:
            registry = self.cluster.backend.registry
            selected = [
                p for p in selected if registry[p.name].user_settable
            ]
        parameters = [
            p.to_info(include_description=use_descriptions) for p in selected
        ]
        facts = {
            name: float(value) for name, value in self.cluster.config_facts().items()
        }
        facts["n_clients"] = float(self.cluster.n_clients)
        agent = TuningAgent(
            client=tuning_client,
            parameters=parameters,
            hardware_description=render_hardware_doc(self.cluster),
            facts=facts,
            runner=runner,
            report=report,
            analysis_agent=analysis_agent,
            rules_json=self.rule_set.to_json() if use_rules else [],
            max_attempts=max_attempts,
            transcript=transcript,
            session=f"tuning:{workload.name}:{run_seed}",
            fs_family=self.cluster.backend.fs_family,
        )
        loop = agent.run_loop()
        return TuningSession(
            workload=workload.name,
            model=self.model,
            initial_seconds=runner.initial_seconds,
            attempts=loop.attempts,
            end_reason=loop.end_reason,
            rules_json=loop.rules_json,
            transcript=transcript,
            executions=runner.execution_count,
            usage=dict(ledger.per_agent),
            llm_latency=ledger.wall_latency,
        )

    # ------------------------------------------------------------------
    def accumulate(self, session: TuningSession) -> None:
        """Merge a run's rules into the global rule set (LLM-mediated)."""
        if not session.rules_json:
            return
        client = LLMClient(self.model, seed=self.seed)
        merged = merge_rules_via_llm(
            client, self.rule_set.to_json(), session.rules_json
        )
        self.rule_set = RuleSet.from_json(merged)

    def tune_and_accumulate(self, workload: Workload, **kwargs) -> TuningSession:
        session = self.tune(workload, **kwargs)
        self.accumulate(session)
        return session

    def fresh_copy(self) -> "Stellar":
        """An engine sharing the offline extraction but with empty rules."""
        clone = replace(self)
        clone.rule_set = RuleSet()
        clone._run_counter = 0
        return clone
