"""Tuning session records."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.agents.transcript import Transcript
from repro.llm.promptparse import AttemptRecord
from repro.llm.tokens import TokenUsage


@dataclass
class TuningSession:
    """Everything one STELLAR Tuning Run produced.

    ``degradations`` lists the graceful fallbacks the run took under
    injected faults (truncated Darshan coverage, abandoned probe
    attempts); ``fault_recovery`` counts the faults absorbed per site.
    Both stay empty on a fault-free run, so unfaulted sessions serialize
    byte-identically to the pre-fault format.
    """

    workload: str
    model: str
    initial_seconds: float
    attempts: list[AttemptRecord] = field(default_factory=list)
    end_reason: str = ""
    rules_json: list[dict] = field(default_factory=list)
    transcript: Transcript = field(default_factory=Transcript)
    executions: int = 0
    usage: dict[str, TokenUsage] = field(default_factory=dict)
    llm_latency: float = 0.0
    degradations: list[str] = field(default_factory=list)
    fault_recovery: dict[str, int] = field(default_factory=dict)

    @property
    def degraded(self) -> bool:
        """Whether the run fell back anywhere instead of failing."""
        return bool(self.degradations)

    @property
    def best_attempt(self) -> AttemptRecord | None:
        improving = [a for a in self.attempts if a.speedup > 1.0]
        pool = improving or self.attempts
        return max(pool, key=lambda a: a.speedup) if pool else None

    @property
    def best_config(self) -> dict[str, int]:
        best = self.best_attempt
        if best is None or best.speedup <= 1.0:
            return {}
        return dict(best.changes)

    @property
    def best_speedup(self) -> float:
        best = self.best_attempt
        return max(best.speedup, 1.0) if best else 1.0

    @property
    def best_seconds(self) -> float:
        best = self.best_attempt
        if best is None or best.speedup <= 1.0:
            return self.initial_seconds
        return best.seconds

    def speedup_series(self) -> list[float]:
        """Speedup per iteration, iteration 0 being the initial run."""
        return [1.0] + [a.speedup for a in self.attempts]

    def summary(self) -> str:
        lines = [
            f"Tuning run: {self.workload} with {self.model}",
            f"initial runtime: {self.initial_seconds:.2f}s",
        ]
        for attempt in self.attempts:
            lines.append(
                f"  attempt {attempt.index}: {attempt.seconds:.2f}s "
                f"({attempt.speedup:.2f}x) changes={attempt.changes}"
            )
        lines.append(f"best speedup: {self.best_speedup:.2f}x")
        lines.append(f"end reason: {self.end_reason}")
        lines.append(f"application executions: {self.executions}")
        if self.degraded:
            lines.append(f"degradations: {'; '.join(self.degradations)}")
        return "\n".join(lines)
