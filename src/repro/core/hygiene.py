"""Between-run hygiene (§5.1).

The paper's protocol between tuning runs: (1) delete all data files and
directories, (2) clear all client-side caches, (3) remount the file system
on every client, (4) wait for queued sync changes to complete.  In the
simulated cluster these map to resetting the run state; the record of steps
is kept so experiment logs show the protocol was followed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

HYGIENE_STEPS = (
    "delete all data files and directories",
    "clear all client-side caches",
    "remount the file system on all client nodes",
    "wait until queued sync changes are completed",
)


@dataclass
class HygieneLog:
    """Record of hygiene executions."""

    executions: int = 0
    steps: tuple[str, ...] = HYGIENE_STEPS
    history: list[str] = field(default_factory=list)

    def run(self, context: str = "") -> None:
        """Perform (record) one full hygiene pass."""
        self.executions += 1
        self.history.append(context or f"hygiene pass {self.executions}")
