"""The Configuration Runner tool.

Applies a proposed configuration, runs the target application on the
(simulated) cluster with full between-run hygiene, and returns measured wall
time.  Out-of-range proposals are clipped to the nearest valid values — the
behaviour of ``lctl set_param`` refusing invalid writes and the admin tool
falling back — and the applied values are what the agent sees in its
history.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

from repro.cluster.hardware import ClusterSpec
from repro.core.hygiene import HygieneLog
from repro.darshan import DarshanLog, trace_run, truncate_log
from repro.faults.plan import FaultPlan
from repro.faults.retry import RetryPolicy, TransientFault
from repro.pfs.config import PfsConfig
from repro.pfs.simulator import RunResult, Simulator
from repro.workloads.base import Workload


class EvaluationBroker(Protocol):
    """A batching seam for simulated probe runs.

    ``evaluate`` must return exactly what
    ``Simulator(cluster).run(workload, config, seed=seed)`` would — the
    fleet broker satisfies this bit-for-bit by routing through the columnar
    sweep engine.  The runner only ever submits through this seam when one
    is provided; everything else (seeding, hygiene, fault arming) is
    identical between the direct and brokered paths.
    """

    def evaluate(
        self,
        cluster: ClusterSpec,
        workload: Workload,
        config: PfsConfig,
        seed: int,
    ) -> RunResult: ...


@dataclass
class Execution:
    """One application execution performed by the runner."""

    changes: dict[str, int]
    seconds: float
    run: RunResult


class ConfigurationRunner:
    """Runs one workload under proposed configurations."""

    def __init__(
        self,
        cluster: ClusterSpec,
        workload: Workload,
        seed: int = 0,
        base_config: PfsConfig | None = None,
        faults: FaultPlan | None = None,
        retry: RetryPolicy | None = None,
        broker: EvaluationBroker | None = None,
    ):
        self.cluster = cluster
        self.workload = workload
        self.seed = seed
        self.base_config = (
            base_config.copy()
            if base_config is not None
            else PfsConfig(facts=cluster.config_facts(), backend=cluster.backend)
        )
        self.hygiene = HygieneLog()
        self.executions: list[Execution] = []
        self.initial_seconds: float = 0.0
        self.initial_run: RunResult | None = None
        self.faults = faults
        self.retry = retry if retry is not None else RetryPolicy()
        self.broker = broker
        #: Absorbed probe faults (feeds the session's recovery record).
        self.fault_counts: dict[str, int] = {}

    # ------------------------------------------------------------------
    def initial_execution(self) -> tuple[RunResult, DarshanLog]:
        """The instrumented first run under the current defaults."""
        self.hygiene.run("before initial execution")
        run = self._run_once()
        self.initial_seconds = run.seconds
        self.initial_run = run
        self.executions.append(Execution(changes={}, seconds=run.seconds, run=run))
        log = trace_run(run, n_ranks=self.workload.n_ranks)
        if self.faults is not None:
            key = f"darshan:{self.seed}:{self.workload.name}"
            if self.faults.should_fire("darshan.truncate", key):
                # Lose between half and ~all of the tail ranks; rank 0 and
                # the shared reduction records always survive.
                keep = self.faults.fraction("darshan.truncate", f"{key}:keep")
                log = truncate_log(log, keep_ranks=int(log.nprocs * 0.5 * keep) + 1)
                self.fault_counts["darshan.truncate"] = (
                    self.fault_counts.get("darshan.truncate", 0) + 1
                )
        return run, log

    def measure(self, changes: dict[str, int]) -> tuple[float, dict[str, int]]:
        """Run with ``changes`` applied on top of defaults (clipped valid)."""
        if self.initial_run is None:
            raise RuntimeError("call initial_execution() before measure()")
        self.hygiene.run(f"before attempt {len(self.executions)}")
        config = self.base_config.with_updates(changes).clipped()
        applied = {
            name: config[name]
            for name in changes
            if name in config
        }
        run = self._run_once(config)
        self.executions.append(Execution(changes=applied, seconds=run.seconds, run=run))
        return run.seconds, applied

    def _run_once(self, config: PfsConfig | None = None) -> RunResult:
        """One probe run, retried through the fault plane when armed.

        The run seed is fixed before any attempt, so retries re-measure
        the *same* experiment, and an abandoned probe consumes no
        execution slot — later attempts draw the seeds they would have
        drawn in an unfaulted run.
        """
        config = config if config is not None else self.base_config
        run_seed = self._next_seed()
        if self.faults is None or not self.faults.active:
            return self._evaluate(config, run_seed)
        key = f"probe:{self.seed}:{len(self.executions)}"

        def attempt(n: int) -> RunResult:
            if self.faults.should_fire("probe.run", f"{key}:a{n}"):
                raise TransientFault("probe.run", key=f"{key}:a{n}")
            return self._evaluate(config, run_seed)

        def record(fault: TransientFault, n: int, delay: float) -> None:
            self.fault_counts["probe.run"] = self.fault_counts.get("probe.run", 0) + 1

        return self.retry.execute(
            attempt, site="probe.run", key=key, plan=self.faults, record=record
        )

    def _evaluate(self, config: PfsConfig, run_seed: int) -> RunResult:
        """One simulated run — direct, or through the batching seam."""
        if self.broker is not None:
            return self.broker.evaluate(self.cluster, self.workload, config, run_seed)
        return Simulator(self.cluster).run(self.workload, config, seed=run_seed)

    def _next_seed(self) -> int:
        return self.seed * 1000 + len(self.executions)

    @property
    def execution_count(self) -> int:
        return len(self.executions)
