"""The Configuration Runner tool.

Applies a proposed configuration, runs the target application on the
(simulated) cluster with full between-run hygiene, and returns measured wall
time.  Out-of-range proposals are clipped to the nearest valid values — the
behaviour of ``lctl set_param`` refusing invalid writes and the admin tool
falling back — and the applied values are what the agent sees in its
history.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.hardware import ClusterSpec
from repro.core.hygiene import HygieneLog
from repro.darshan import DarshanLog, trace_run
from repro.pfs.config import PfsConfig
from repro.pfs.simulator import RunResult, Simulator
from repro.workloads.base import Workload


@dataclass
class Execution:
    """One application execution performed by the runner."""

    changes: dict[str, int]
    seconds: float
    run: RunResult


class ConfigurationRunner:
    """Runs one workload under proposed configurations."""

    def __init__(
        self,
        cluster: ClusterSpec,
        workload: Workload,
        seed: int = 0,
        base_config: PfsConfig | None = None,
    ):
        self.cluster = cluster
        self.workload = workload
        self.seed = seed
        self.base_config = (
            base_config.copy()
            if base_config is not None
            else PfsConfig(facts=cluster.config_facts(), backend=cluster.backend)
        )
        self.hygiene = HygieneLog()
        self.executions: list[Execution] = []
        self.initial_seconds: float = 0.0
        self.initial_run: RunResult | None = None

    # ------------------------------------------------------------------
    def initial_execution(self) -> tuple[RunResult, DarshanLog]:
        """The instrumented first run under the current defaults."""
        self.hygiene.run("before initial execution")
        sim = Simulator(self.cluster)
        run = sim.run(self.workload, self.base_config, seed=self._next_seed())
        self.initial_seconds = run.seconds
        self.initial_run = run
        self.executions.append(Execution(changes={}, seconds=run.seconds, run=run))
        log = trace_run(run, n_ranks=self.workload.n_ranks)
        return run, log

    def measure(self, changes: dict[str, int]) -> tuple[float, dict[str, int]]:
        """Run with ``changes`` applied on top of defaults (clipped valid)."""
        if self.initial_run is None:
            raise RuntimeError("call initial_execution() before measure()")
        self.hygiene.run(f"before attempt {len(self.executions)}")
        config = self.base_config.with_updates(changes).clipped()
        applied = {
            name: config[name]
            for name in changes
            if name in config
        }
        sim = Simulator(self.cluster)
        run = sim.run(self.workload, config, seed=self._next_seed())
        self.executions.append(Execution(changes=applied, seconds=run.seconds, run=run))
        return run.seconds, applied

    def _next_seed(self) -> int:
        return self.seed * 1000 + len(self.executions)

    @property
    def execution_count(self) -> int:
        return len(self.executions)
