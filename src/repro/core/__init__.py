"""The STELLAR engine (the paper's primary contribution).

Orchestrates the offline RAG extraction phase and the online agentic tuning
loop over the simulated cluster, accumulating the global rule set across
tuning runs.
"""

from repro.core.engine import Stellar
from repro.core.pipeline import SESSION_PIPELINE, SessionPipeline, SessionState
from repro.core.runner import ConfigurationRunner
from repro.core.session import TuningSession

__all__ = [
    "Stellar",
    "ConfigurationRunner",
    "TuningSession",
    "SessionPipeline",
    "SessionState",
    "SESSION_PIPELINE",
]
