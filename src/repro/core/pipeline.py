"""The staged session pipeline: one Tuning Run as explicit stages.

``Stellar.tune`` used to be one monolithic method; it is now a
:class:`SessionPipeline` — an ordered list of small stage objects, each
taking and returning a :class:`SessionState`.  The decomposition is purely
structural: driving the default stages over a state produces byte-identical
transcripts and sessions to the former inline body (guarded by
``tests/test_pipeline.py`` for every registered backend).

Stages, in order:

1. :class:`ClientSetupStage` — usage ledger, model clients, transcript;
2. :class:`InitialExecutionStage` — runner + instrumented first run with
   Darshan capture;
3. :class:`AnalysisStage` — the Analysis Agent's initial I/O Report
   (skipped under the ``use_analysis=False`` ablation);
4. :class:`ParameterSelectionStage` — tunable surface and hardware facts;
5. :class:`AgentLoopStage` — the Tuning Agent's trial-and-error loop;
6. :class:`SessionAssemblyStage` — the :class:`TuningSession` record.

The contract that keeps stages composable (and the service layer sane):
stages communicate ONLY through :class:`SessionState` fields, never through
module globals, and they read cluster configuration only through facts and
roles (``cluster.config_facts()`` / ``config.role(...)``), never by
backend-specific parameter name.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

from repro.agents.analysis import AnalysisAgent
from repro.agents.policies import AgentPolicy, PolicyContext, resolve_policy
from repro.agents.transcript import Transcript
from repro.agents.tuning import TuningLoopResult
from repro.cluster.hardware import ClusterSpec
from repro.core.runner import ConfigurationRunner, EvaluationBroker
from repro.core.session import TuningSession
from repro.corpus import render_hardware_doc
from repro.darshan import DarshanLog, parse_log
from repro.faults.llm import ResilientLLMClient
from repro.faults.plan import FaultPlan
from repro.faults.retry import RetryPolicy
from repro.llm.client import LLMClient
from repro.llm.promptparse import IOReport, ParameterInfo
from repro.llm.tokens import UsageLedger
from repro.pfs.simulator import RunResult
from repro.rag.extraction import ExtractionResult
from repro.workloads.base import Workload


@dataclass
class SessionState:
    """Everything one Tuning Run reads and produces, stage by stage.

    The first block is the request (filled by the engine before the pipeline
    starts); the rest is populated by the stages in order.  A field is only
    ever written by one stage, so the dataclass doubles as the pipeline's
    dependency graph.
    """

    # -- request (engine-provided) -------------------------------------
    cluster: ClusterSpec
    workload: Workload
    model: str
    analysis_model: str
    extraction: ExtractionResult
    run_seed: int
    rules_json: list[dict] = field(default_factory=list)
    max_attempts: int = 5
    use_descriptions: bool = True
    use_analysis: bool = True
    user_accessible_only: bool = False
    faults: FaultPlan | None = None
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    #: Batching seam for probe evaluations (the fleet broker); ``None``
    #: keeps the runner on the direct ``Simulator.run`` path.
    broker: EvaluationBroker | None = None
    #: Turn-taking strategy for the agent loop: a registered policy name,
    #: an :class:`AgentPolicy` instance, or ``None`` for the default
    #: reflection loop.
    policy: "AgentPolicy | str | None" = None

    # -- ClientSetupStage ----------------------------------------------
    ledger: UsageLedger | None = None
    tuning_client: LLMClient | None = None
    analysis_client: LLMClient | None = None
    transcript: Transcript | None = None

    # -- InitialExecutionStage -----------------------------------------
    runner: ConfigurationRunner | None = None
    initial_run: RunResult | None = None
    darshan_log: DarshanLog | None = None

    # -- AnalysisStage --------------------------------------------------
    analysis_agent: AnalysisAgent | None = None
    report: IOReport | None = None

    # -- ParameterSelectionStage ---------------------------------------
    parameters: list[ParameterInfo] = field(default_factory=list)
    facts: dict[str, float] = field(default_factory=dict)

    # -- AgentLoopStage -------------------------------------------------
    loop: TuningLoopResult | None = None

    # -- any stage (graceful fallbacks under injected faults) -----------
    degradations: list[str] = field(default_factory=list)

    # -- SessionAssemblyStage -------------------------------------------
    session: TuningSession | None = None


class SessionStage(Protocol):
    """One step of a Tuning Run; mutates and returns the state."""

    name: str

    def run(self, state: SessionState) -> SessionState: ...


class ClientSetupStage:
    """Usage ledger, the two model clients and the transcript.

    Both clients share one ledger so the session's usage accounting spans
    every agent; each client owns an independent RNG stream derived from the
    run seed, so stage order never perturbs model draws.
    """

    name = "clients"

    def run(self, state: SessionState) -> SessionState:
        state.ledger = UsageLedger()
        if state.faults is not None:
            # Any plan — even the inert one — routes through the resilient
            # client, so the zero-fault parity suite exercises the exact
            # code path faulted runs use.
            state.tuning_client = ResilientLLMClient(
                state.model,
                seed=state.run_seed,
                ledger=state.ledger,
                faults=state.faults,
                retry=state.retry,
            )
            state.analysis_client = ResilientLLMClient(
                state.analysis_model,
                seed=state.run_seed,
                ledger=state.ledger,
                faults=state.faults,
                retry=state.retry,
            )
        else:
            state.tuning_client = LLMClient(
                state.model, seed=state.run_seed, ledger=state.ledger
            )
            state.analysis_client = LLMClient(
                state.analysis_model, seed=state.run_seed, ledger=state.ledger
            )
        state.transcript = Transcript()
        return state


class InitialExecutionStage:
    """Instrumented first execution under defaults, with Darshan capture."""

    name = "initial_execution"

    def run(self, state: SessionState) -> SessionState:
        state.runner = ConfigurationRunner(
            state.cluster,
            state.workload,
            seed=state.run_seed,
            faults=state.faults,
            retry=state.retry,
            broker=state.broker,
        )
        state.initial_run, state.darshan_log = state.runner.initial_execution()
        state.transcript.add(
            "initial_run",
            f"{state.workload.name} under defaults: "
            f"{state.initial_run.seconds:.2f}s",
            seconds=state.initial_run.seconds,
        )
        if state.darshan_log.lost_ranks:
            kept = state.darshan_log.nprocs - state.darshan_log.lost_ranks
            state.transcript.add(
                "darshan_coverage",
                f"darshan capture truncated: {kept}/{state.darshan_log.nprocs} "
                f"rank(s) survive ({state.darshan_log.coverage:.0%} coverage); "
                "analysis proceeds over surviving ranks",
                coverage=state.darshan_log.coverage,
            )
            state.degradations.append(
                f"darshan.truncate: {kept}/{state.darshan_log.nprocs} ranks"
            )
        return state


class AnalysisStage:
    """The Analysis Agent distills the Darshan log into the I/O Report."""

    name = "analysis"

    def run(self, state: SessionState) -> SessionState:
        if not state.use_analysis:
            return state
        parsed = parse_log(state.darshan_log)
        state.analysis_agent = AnalysisAgent(
            state.analysis_client,
            parsed,
            transcript=state.transcript,
            session=f"analysis:{state.workload.name}:{state.run_seed}",
        )
        state.report = state.analysis_agent.initial_report()
        return state


class ParameterSelectionStage:
    """The tunable surface and the hardware facts the agent reasons over."""

    name = "parameters"

    def run(self, state: SessionState) -> SessionState:
        selected = state.extraction.selected
        if state.user_accessible_only:
            registry = state.cluster.backend.registry
            selected = [p for p in selected if registry[p.name].user_settable]
        state.parameters = [
            p.to_info(include_description=state.use_descriptions) for p in selected
        ]
        facts = {
            name: float(value)
            for name, value in state.cluster.config_facts().items()
        }
        facts["n_clients"] = float(state.cluster.n_clients)
        state.facts = facts
        return state


class AgentLoopStage:
    """The agent loop, behind the policy seam.

    The state's policy (default: reflection) receives the same context the
    stage used to hand :class:`~repro.agents.tuning.TuningAgent` directly —
    field for field, in the same order — so the default policy reproduces
    the pre-refactor loop byte for byte while alternative policies swap
    only the turn-taking strategy.
    """

    name = "agent_loop"

    def run(self, state: SessionState) -> SessionState:
        policy = resolve_policy(state.policy)
        ctx = PolicyContext(
            client=state.tuning_client,
            parameters=state.parameters,
            hardware_description=render_hardware_doc(state.cluster),
            facts=state.facts,
            runner=state.runner,
            report=state.report,
            analysis_agent=state.analysis_agent,
            rules_json=state.rules_json,
            max_attempts=state.max_attempts,
            transcript=state.transcript,
            session=f"tuning:{state.workload.name}:{state.run_seed}",
            fs_family=state.cluster.backend.fs_family,
        )
        state.loop = policy.run(ctx)
        return state


class SessionAssemblyStage:
    """Assemble the :class:`TuningSession` record from the run's artifacts."""

    name = "assemble"

    def run(self, state: SessionState) -> SessionState:
        fault_recovery: dict[str, int] = {}
        for source in (state.tuning_client, state.analysis_client, state.runner):
            for site, count in getattr(source, "fault_counts", {}).items():
                fault_recovery[site] = fault_recovery.get(site, 0) + count
        state.session = TuningSession(
            workload=state.workload.name,
            model=state.model,
            initial_seconds=state.runner.initial_seconds,
            attempts=state.loop.attempts,
            end_reason=state.loop.end_reason,
            rules_json=state.loop.rules_json,
            transcript=state.transcript,
            executions=state.runner.execution_count,
            usage=dict(state.ledger.per_agent),
            llm_latency=state.ledger.wall_latency,
            degradations=[*state.degradations, *state.loop.degradations],
            fault_recovery=dict(sorted(fault_recovery.items())),
        )
        return state


@dataclass(frozen=True)
class SessionPipeline:
    """An ordered, immutable sequence of session stages."""

    stages: tuple[SessionStage, ...]

    def run(self, state: SessionState) -> SessionState:
        for stage in self.stages:
            state = stage.run(state)
        return state

    @classmethod
    def default(cls) -> "SessionPipeline":
        return cls(
            stages=(
                ClientSetupStage(),
                InitialExecutionStage(),
                AnalysisStage(),
                ParameterSelectionStage(),
                AgentLoopStage(),
                SessionAssemblyStage(),
            )
        )


#: The canonical pipeline ``Stellar.tune`` drives.  Stages are stateless, so
#: one shared instance serves every engine in the process.
SESSION_PIPELINE = SessionPipeline.default()
