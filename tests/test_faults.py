"""The deterministic fault-injection plane and the resilience machinery.

The contracts, from the inside out:

- :class:`FaultPlan` draws are stateless hashes — identical across
  instances, pickling, call order and worker counts;
- :class:`RetryPolicy` backs off deterministically and raises a structured
  :class:`FaultBudgetExhausted` when the budget runs dry;
- the zero-fault plan is **byte-identical** to running without the plane
  at all (sessions, transcripts, fleet results — both backends);
- a fixed ``(seed, fault plan)`` reproduces sessions, retry counts and
  quarantine reports exactly, invariant to worker count;
- graceful degradation: truncated Darshan capture analyzes surviving
  ranks with a coverage flag; a probe that exhausts its budget abandons
  the attempt, never the session;
- the fleet quarantines an exhausted tenant while every other tenant
  completes, and checkpoints let a killed fleet resume without re-running
  completed tenants.
"""

import json
import pickle

import pytest

from repro import Stellar, get_workload, make_cluster
from repro.agents.tuning import TuningAgent, TuningLoopResult
from repro.backends import list_backends
from repro.darshan import trace_run, truncate_log
from repro.faults import (
    FAULT_SITES,
    FaultBudgetExhausted,
    FaultPlan,
    ResilientLLMClient,
    RetryPolicy,
    TransientFault,
)
from repro.llm.api import ChatMessage
from repro.llm.client import LLMClient
from repro.llm.tokens import RETRY_AGENT, UsageLedger
from repro.rules.store import session_from_dict, session_to_dict
from repro.service import FleetScheduler, TenantSpec
from repro.service.scheduler import run_tenant
from tests.test_fleet import SMALL_FLEET, fleet_fingerprint


class TestFaultPlan:
    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultPlan(rates={"llm.rickroll": 0.1})

    def test_rate_bounds_enforced(self):
        with pytest.raises(ValueError, match="lie in"):
            FaultPlan(rates={"llm.transient": 1.5})

    def test_draws_are_stateless_and_instance_independent(self):
        a = FaultPlan.uniform(0.3, seed=7)
        b = FaultPlan.uniform(0.3, seed=7)
        keys = [f"op:{i}" for i in range(50)]
        # Interleave and reorder: every draw depends only on (site, key).
        forward = [a.should_fire("probe.run", k) for k in keys]
        backward = [b.should_fire("probe.run", k) for k in reversed(keys)]
        assert forward == list(reversed(backward))

    def test_seed_changes_draws(self):
        keys = [f"op:{i}" for i in range(200)]
        a = [FaultPlan.uniform(0.5, seed=1).should_fire("llm.timeout", k) for k in keys]
        b = [FaultPlan.uniform(0.5, seed=2).should_fire("llm.timeout", k) for k in keys]
        assert a != b

    def test_rate_is_respected_statistically(self):
        plan = FaultPlan.uniform(0.2, seed=0)
        fired = sum(
            plan.should_fire("llm.transient", f"k:{i}") for i in range(2000)
        )
        assert 300 < fired < 500  # ~400 expected

    def test_zero_plan_is_inert(self):
        plan = FaultPlan.none(seed=3)
        assert not plan.active
        assert not any(
            plan.should_fire(site, "anything") for site in FAULT_SITES
        )

    def test_pickle_round_trip_preserves_draws(self):
        plan = FaultPlan.uniform(0.4, seed=11)
        clone = pickle.loads(pickle.dumps(plan))
        keys = [f"op:{i}" for i in range(100)]
        for site in FAULT_SITES:
            assert [plan.fraction(site, k) for k in keys] == [
                clone.fraction(site, k) for k in keys
            ]

    def test_describe_names_armed_sites(self):
        assert "inert" in FaultPlan.none().describe()
        assert "probe.run=0.1" in FaultPlan(
            rates={"probe.run": 0.1}
        ).describe()


class TestRetryPolicy:
    def test_backoff_is_deterministic_and_exponential(self):
        policy = RetryPolicy(base_backoff=1.0, backoff_factor=2.0, jitter=0.1)
        plan = FaultPlan.uniform(0.5, seed=0)
        first = [policy.backoff(plan, "op", n) for n in range(4)]
        second = [policy.backoff(plan, "op", n) for n in range(4)]
        assert first == second
        for n, delay in enumerate(first):
            assert 0.9 * 2**n <= delay <= 1.1 * 2**n

    def test_succeeds_after_transient_failures(self):
        attempts = []

        def flaky(n):
            attempts.append(n)
            if n < 2:
                raise TransientFault("probe.run", key=f"op:a{n}")
            return "ok"

        recorded = []
        policy = RetryPolicy(max_retries=4)
        out = policy.execute(
            flaky,
            site="probe.run",
            key="op",
            plan=FaultPlan.none(),
            record=lambda fault, n, delay: recorded.append((fault.site, n)),
        )
        assert out == "ok"
        assert attempts == [0, 1, 2]
        assert recorded == [("probe.run", 0), ("probe.run", 1)]

    def test_exhaustion_is_structured(self):
        def always(n):
            raise TransientFault("llm.timeout", key=f"op:a{n}")

        policy = RetryPolicy(max_retries=2)
        with pytest.raises(FaultBudgetExhausted) as exc_info:
            policy.execute(always, site="llm", key="op", plan=FaultPlan.none())
        exc = exc_info.value
        assert exc.site == "llm.timeout"
        assert exc.attempts == 3  # max_retries + 1
        assert exc.backoff_spent > 0

    def test_timeout_budget_trips_early(self):
        def always(n):
            raise TransientFault("probe.run")

        policy = RetryPolicy(max_retries=50, base_backoff=10.0, timeout_budget=25.0)
        with pytest.raises(FaultBudgetExhausted) as exc_info:
            policy.execute(always, site="probe.run", key="op", plan=FaultPlan.none())
        assert exc_info.value.attempts < 51

    def test_exhaustion_excludes_unspent_final_backoff(self):
        """The delay before a retry that never runs is never charged.

        With ``max_retries=2`` the operation gets attempts 0, 1, 2; only
        the delays *between* attempts (after 0 and after 1) are waited, so
        ``backoff_spent`` and the recorded ledger delays must cover exactly
        those two — the backoff the third attempt would have preceded is
        pure fiction.
        """

        def always(n):
            raise TransientFault("llm.transient", key=f"op:a{n}")

        plan = FaultPlan.none()
        policy = RetryPolicy(max_retries=2)
        recorded = []
        with pytest.raises(FaultBudgetExhausted) as exc_info:
            policy.execute(
                always,
                site="llm",
                key="op",
                plan=plan,
                record=lambda fault, n, delay: recorded.append((n, delay)),
            )
        waited = [policy.backoff(plan, "op", n) for n in range(2)]
        assert exc_info.value.backoff_spent == pytest.approx(sum(waited))
        # Every attempt is recorded once; the exhausting attempt charges
        # zero delay because its backoff is never waited.
        assert [n for n, _ in recorded] == [0, 1, 2]
        assert recorded[0][1] == pytest.approx(waited[0])
        assert recorded[1][1] == pytest.approx(waited[1])
        assert recorded[2][1] == 0.0

    def test_fail_fast_sites_exhaust_immediately(self):
        def always(n):
            raise TransientFault("llm.transient", key="op")

        policy = RetryPolicy(max_retries=4).with_fail_fast({"llm.transient"})
        recorded = []
        with pytest.raises(FaultBudgetExhausted) as exc_info:
            policy.execute(
                always,
                site="llm",
                key="op",
                plan=FaultPlan.none(),
                record=lambda fault, n, delay: recorded.append((n, delay)),
            )
        exc = exc_info.value
        assert exc.fail_fast
        assert exc.attempts == 1
        assert exc.backoff_spent == 0.0
        assert recorded == [(0, 0.0)]
        # Other sites still retry normally under the same policy.
        attempts = []

        def flaky(n):
            attempts.append(n)
            if n < 2:
                raise TransientFault("probe.run", key="op")
            return "ok"

        assert (
            policy.execute(flaky, site="probe.run", key="op", plan=FaultPlan.none())
            == "ok"
        )
        assert attempts == [0, 1, 2]

    def test_with_deadline_caps_timeout_budget(self):
        policy = RetryPolicy(timeout_budget=120.0)
        assert policy.with_deadline(None) is policy
        assert policy.with_deadline(30.0).timeout_budget == 30.0
        # A generous deadline never loosens the policy.
        assert policy.with_deadline(500.0).timeout_budget == 120.0


class TestResilientClient:
    def _ask(self, client):
        return client.complete(
            [ChatMessage(role="user", content="## TASK: MERGE RULES\n[]")],
            agent="tuning",
            session="s",
        )

    def test_inert_plan_matches_plain_client_byte_for_byte(self):
        plain_ledger, res_ledger = UsageLedger(), UsageLedger()
        plain = LLMClient("claude-3.7-sonnet", seed=5, ledger=plain_ledger)
        resilient = ResilientLLMClient(
            "claude-3.7-sonnet", seed=5, ledger=res_ledger, faults=FaultPlan.none()
        )
        a, b = self._ask(plain), self._ask(resilient)
        assert a.content == b.content
        assert a.usage == b.usage
        assert plain_ledger == res_ledger

    def test_faulted_success_returns_unfaulted_completion(self):
        """Absorbed faults change accounting, never the model's answer."""
        plain = LLMClient("claude-3.7-sonnet", seed=5)
        # High enough to fault some attempts, low enough to finish.
        resilient = ResilientLLMClient(
            "claude-3.7-sonnet",
            seed=5,
            faults=FaultPlan.uniform(0.4, seed=1),
            retry=RetryPolicy(max_retries=30, timeout_budget=1e9),
        )
        assert self._ask(plain).content == self._ask(resilient).content

    def test_retries_charged_separately(self):
        ledger = UsageLedger()
        client = ResilientLLMClient(
            "claude-3.7-sonnet",
            seed=5,
            ledger=ledger,
            faults=FaultPlan.uniform(0.4, seed=1),
            retry=RetryPolicy(max_retries=30, timeout_budget=1e9),
        )
        for i in range(10):
            client.complete(
                [ChatMessage(role="user", content=f"## TASK: MERGE RULES\n[{i}]")],
                agent="tuning",
                session="s",
            )
        assert ledger.retries > 0
        assert ledger.per_agent[RETRY_AGENT].input_tokens > 0
        assert sum(client.fault_counts.values()) == ledger.retries
        # Successful traffic is accounted exactly as the plain client would.
        assert ledger.per_agent["tuning"].input_tokens > 0

    def test_exhaustion_propagates(self):
        client = ResilientLLMClient(
            "claude-3.7-sonnet",
            seed=5,
            faults=FaultPlan(rates={"llm.transient": 1.0}),
            retry=RetryPolicy(max_retries=2),
        )
        with pytest.raises(FaultBudgetExhausted):
            self._ask(client)


@pytest.fixture(scope="module")
def lustre_cluster():
    return make_cluster(seed=0, backend="lustre")


class TestZeroFaultParity:
    @pytest.mark.parametrize("backend", list_backends())
    def test_sessions_byte_identical_to_pre_fault_path(self, backend):
        from repro.experiments.harness import shared_extraction

        cluster = make_cluster(seed=0, backend=backend)
        extraction = shared_extraction(cluster, seed=0)
        plain = Stellar.build(cluster, seed=0, extraction=extraction)
        armed = Stellar.build(
            cluster, seed=0, extraction=extraction, faults=FaultPlan.none()
        )
        for name in ("IOR_16M", "MDWorkbench_8K"):
            a = plain.tune_and_accumulate(get_workload(name))
            b = armed.tune_and_accumulate(get_workload(name))
            assert json.dumps(session_to_dict(a)) == json.dumps(session_to_dict(b))
            assert a.transcript.render() == b.transcript.render()
        assert plain.journal.to_json() == armed.journal.to_json()

    def test_zero_fault_fleet_matches_plain_fleet(self):
        baseline = FleetScheduler(SMALL_FLEET, seed=0, max_workers=1).run()
        armed = FleetScheduler(
            SMALL_FLEET, seed=0, max_workers=1, faults=FaultPlan.uniform(0.0)
        ).run()
        assert not armed.failures
        assert fleet_fingerprint(armed) == fleet_fingerprint(baseline)
        assert armed.render().splitlines()[:-1] == baseline.render().splitlines()[:-1]


class TestFaultedDeterminism:
    PLAN = FaultPlan.uniform(0.15, seed=9)

    def test_fixed_plan_reproduces_sessions_and_retry_counts(self, lustre_cluster):
        def one():
            engine = Stellar.build(
                lustre_cluster, seed=3, faults=self.PLAN
            )
            session = engine.tune_and_accumulate(get_workload("IOR_16M"))
            return session

        a, b = one(), one()
        assert json.dumps(session_to_dict(a)) == json.dumps(session_to_dict(b))
        assert a.fault_recovery == b.fault_recovery

    def test_faulted_fleet_worker_count_invariant(self):
        plan = FaultPlan.uniform(0.3, seed=2)

        def fingerprint(workers):
            result = FleetScheduler(
                SMALL_FLEET, seed=0, max_workers=workers, faults=plan
            ).run()
            return json.dumps(
                {
                    "fleet": fleet_fingerprint(result),
                    "failures": [f.to_dict() for f in result.failures],
                    "order": [o.tenant_id for o in result.outcomes],
                }
            )

        assert fingerprint(1) == fingerprint(4)


class TestGracefulDegradation:
    def test_truncate_log_keeps_rank0_and_shared_records(self, lustre_cluster):
        from repro.pfs.config import PfsConfig
        from repro.pfs.simulator import Simulator

        workload = get_workload("IOR_16M")
        config = PfsConfig(
            facts=lustre_cluster.config_facts(), backend=lustre_cluster.backend
        )
        run = Simulator(lustre_cluster).run(workload, config, seed=0)
        log = trace_run(run, n_ranks=workload.n_ranks)
        nprocs = log.nprocs
        truncated = truncate_log(log, keep_ranks=3)
        assert truncated.lost_ranks == nprocs - 3
        assert 0 < truncated.coverage < 1
        ranks = {r.rank for r in truncated.records}
        assert 0 in ranks and ranks <= {-1, 0, 1, 2}
        assert "TRUNCATED" in truncated.header_text()
        # The marker survives the text round trip.
        reloaded = type(truncated).loads(truncated.dumps())
        assert reloaded.lost_ranks == truncated.lost_ranks

    def test_truncated_capture_degrades_session_not_crashes(self, lustre_cluster):
        plan = FaultPlan(seed=0, rates={"darshan.truncate": 1.0})
        engine = Stellar.build(lustre_cluster, seed=0, faults=plan)
        session = engine.tune(get_workload("IOR_16M"))
        assert session.degraded
        assert any("darshan.truncate" in d for d in session.degradations)
        assert session.fault_recovery.get("darshan.truncate") == 1
        events = session.transcript.of_kind("darshan_coverage")
        assert events and "coverage" in events[0].detail
        # The run still tunes over the surviving ranks.
        assert session.attempts

    def test_probe_exhaustion_abandons_attempt_not_session(self):
        class ExhaustedRunner:
            initial_seconds = 10.0

            def measure(self, changes):
                raise FaultBudgetExhausted(
                    site="probe.run", key="probe:0:1", attempts=5
                )

        agent = TuningAgent.__new__(TuningAgent)
        agent.runner = ExhaustedRunner()
        from repro.agents.transcript import Transcript

        agent.transcript = Transcript()
        result = TuningLoopResult()
        agent._handle_run({"changes": {"osc.max_pages_per_rpc": 1024}}, result)
        assert not result.attempts
        assert result.degradations and "probe.run" in result.degradations[0]
        assert agent.transcript.of_kind("probe_failed")


class TestSessionRoundTrip:
    def test_session_dict_round_trip(self, lustre_cluster):
        engine = Stellar.build(
            lustre_cluster, seed=0, faults=FaultPlan.uniform(0.2, seed=4)
        )
        session = engine.tune_and_accumulate(get_workload("IOR_16M"))
        raw = session_to_dict(session)
        assert session_to_dict(session_from_dict(raw)) == raw
        restored = session_from_dict(raw)
        assert restored.transcript.render() == session.transcript.render()


BAD_TENANT = TenantSpec("saboteur", workloads=("IOR_16M",), seed=99, max_attempts=5)


class TestFleetQuarantine:
    @pytest.fixture(scope="class")
    def hostile_result(self):
        """The small fleet under a plan harsh enough to quarantine."""
        return FleetScheduler(
            SMALL_FLEET, seed=0, max_workers=1, faults=FaultPlan.uniform(0.5, seed=0)
        ).run()

    def test_no_fleet_wide_abort(self, hostile_result):
        assert len(hostile_result.outcomes) == len(SMALL_FLEET)
        assert [o.tenant_id for o in hostile_result.outcomes] == [
            s.tenant_id for s in SMALL_FLEET
        ]

    def test_quarantine_reports_are_structured(self, hostile_result):
        assert hostile_result.failures  # 0.5 per site is lethal
        for failure in hostile_result.failures:
            assert failure.site in set(FAULT_SITES) | {"exception"}
            assert failure.error
            assert failure.attempts >= 1
            assert "QUARANTINED" in failure.render_row()
            assert failure.to_dict()["tenant_id"] == failure.tenant_id

    def test_merged_journal_excludes_quarantined(self, hostile_result):
        quarantined_seeds = {f.spec.seed for f in hostile_result.failures}
        for entry in hostile_result.journal.entries:
            assert entry.origin[0] not in quarantined_seeds

    def test_render_includes_quarantine_lines(self, hostile_result):
        render = hostile_result.render()
        assert "quarantined:" in render
        assert "aggregate:" in render.splitlines()[-1]

    def test_single_tenant_quarantine_spares_others(self):
        """N-1 of N tenants finish when one tenant exhausts its budget."""
        baseline = FleetScheduler(SMALL_FLEET, seed=0, max_workers=1).run()
        # Arm a plan only the saboteur can trip: probe.run certain-death is
        # survivable for nobody, so give only the saboteur a poisoned spec
        # instead — an unknown workload raises inside its job.
        poisoned = TenantSpec("saboteur", workloads=("NO_SUCH_WORKLOAD",), seed=99)
        fleet = [*SMALL_FLEET[:2], poisoned, *SMALL_FLEET[2:]]
        result = FleetScheduler(fleet, seed=0, max_workers=1).run()
        assert [o.tenant_id for o in result.outcomes] == [
            s.tenant_id for s in fleet
        ]
        assert len(result.tenants) == len(SMALL_FLEET)
        failure = result.failure("saboteur")
        assert failure.site == "exception"
        assert failure.completed_sessions == 0
        # Every surviving tenant matches the saboteur-free fleet bit for bit.
        for spec in SMALL_FLEET:
            a = [session_to_dict(s) for s in result.get(spec.tenant_id).sessions]
            b = [session_to_dict(s) for s in baseline.get(spec.tenant_id).sessions]
            assert a == b, spec.tenant_id
        assert result.journal.to_json() == baseline.journal.to_json()


class TestFleetCheckpoint:
    def test_killed_fleet_resumes_without_rerunning(self, tmp_path, monkeypatch):
        checkpoint = tmp_path / "fleet.ckpt.json"
        first = FleetScheduler(
            SMALL_FLEET, seed=0, max_workers=1, checkpoint=checkpoint
        ).run()
        assert checkpoint.exists()

        import repro.service.scheduler as scheduler_module

        calls = []
        original = scheduler_module.run_tenant

        def counting(*args, **kwargs):
            calls.append(args[0].tenant_id)
            return original(*args, **kwargs)

        monkeypatch.setattr(scheduler_module, "run_tenant", counting)
        resumed = FleetScheduler(
            SMALL_FLEET, seed=0, max_workers=1, checkpoint=checkpoint
        ).run()
        assert calls == []  # nothing re-ran
        assert fleet_fingerprint(resumed) == fleet_fingerprint(first)

    def test_partial_checkpoint_runs_only_missing_tenants(self, tmp_path, monkeypatch):
        import json

        checkpoint = tmp_path / "fleet.ckpt.json"
        # A genuine kill mid-fleet: the file carries this fleet's stamp but
        # only the first two arrivals.  Simulate by running the full fleet,
        # then dropping the later outcomes from the persisted file.
        FleetScheduler(
            SMALL_FLEET, seed=0, max_workers=1, checkpoint=checkpoint
        ).run()
        raw = json.loads(checkpoint.read_text())
        keep = {s.tenant_id for s in SMALL_FLEET[:2]}
        raw["outcomes"] = {
            tid: out for tid, out in raw["outcomes"].items() if tid in keep
        }
        checkpoint.write_text(json.dumps(raw))

        import repro.service.scheduler as scheduler_module

        calls = []
        original = scheduler_module.run_tenant

        def counting(*args, **kwargs):
            calls.append(args[0].tenant_id)
            return original(*args, **kwargs)

        monkeypatch.setattr(scheduler_module, "run_tenant", counting)
        full = FleetScheduler(
            SMALL_FLEET, seed=0, max_workers=1, checkpoint=checkpoint
        ).run()
        assert calls == [s.tenant_id for s in SMALL_FLEET[2:]]
        baseline = FleetScheduler(SMALL_FLEET, seed=0, max_workers=1).run()
        assert fleet_fingerprint(full) == fleet_fingerprint(baseline)

    def test_checkpoint_from_different_fleet_is_rejected(self, tmp_path):
        from repro.rules.store import JournalCorruptError

        checkpoint = tmp_path / "fleet.ckpt.json"
        FleetScheduler(
            SMALL_FLEET[:2], seed=0, max_workers=1, checkpoint=checkpoint
        ).run()
        # Other tenant ids -> rejected, not silently partially applied.
        with pytest.raises(JournalCorruptError, match="different fleet"):
            FleetScheduler(
                SMALL_FLEET, seed=0, max_workers=1, checkpoint=checkpoint
            ).run()
        # Other seed -> rejected.
        with pytest.raises(JournalCorruptError, match="different fleet"):
            FleetScheduler(
                SMALL_FLEET[:2], seed=7, max_workers=1, checkpoint=checkpoint
            ).run()
        # Other fault plan -> rejected.
        with pytest.raises(JournalCorruptError, match="different fleet"):
            FleetScheduler(
                SMALL_FLEET[:2],
                seed=0,
                max_workers=1,
                faults=FaultPlan.uniform(0.3, seed=1),
                checkpoint=checkpoint,
            ).run()

    def test_checkpoint_spec_drift_is_rejected(self, tmp_path):
        from dataclasses import replace

        from repro.rules.store import JournalCorruptError

        checkpoint = tmp_path / "fleet.ckpt.json"
        FleetScheduler(
            SMALL_FLEET[:2], seed=0, max_workers=1, checkpoint=checkpoint
        ).run()
        # Same ids/seed/plan, but one tenant's spec changed underneath the
        # checkpoint: the stale outcome must not be silently adopted.
        drifted = [replace(SMALL_FLEET[0], max_attempts=2), SMALL_FLEET[1]]
        with pytest.raises(JournalCorruptError, match="different spec"):
            FleetScheduler(
                drifted, seed=0, max_workers=1, checkpoint=checkpoint
            ).run()

    def test_corrupt_checkpoint_is_descriptive(self, tmp_path):
        from repro.rules.store import JournalCorruptError

        checkpoint = tmp_path / "fleet.ckpt.json"
        checkpoint.write_text('{"format": 1, "outcomes": {"acme-da')
        with pytest.raises(JournalCorruptError, match="truncated or corrupt"):
            FleetScheduler(
                SMALL_FLEET, seed=0, max_workers=1, checkpoint=checkpoint
            ).run()

    def test_checkpoint_write_faults_never_fail_the_fleet(self, tmp_path):
        checkpoint = tmp_path / "fleet.ckpt.json"
        plan = FaultPlan(seed=0, rates={"journal.write": 1.0})
        result = FleetScheduler(
            SMALL_FLEET[:2],
            seed=0,
            max_workers=1,
            faults=plan,
            checkpoint=checkpoint,
        ).run()
        assert len(result.tenants) == 2
        assert result.checkpoint_write_failures == 2
        assert not checkpoint.exists()  # every write was absorbed by retry... and failed


class TestChaosExperiment:
    def test_report_is_deterministic_and_complete(self):
        from repro.experiments import resilience

        a = resilience.run(seed=1, backends=("lustre",), rates=(0.0, 0.3), max_workers=1)
        b = resilience.run(seed=1, backends=("lustre",), rates=(0.0, 0.3), max_workers=2)
        assert a.render() == b.render()
        for cell in a.cells:
            assert cell.completed_tenants + cell.quarantined_tenants == cell.total_tenants
        oracle = a.oracle("lustre")
        assert oracle is not None and oracle.rate == 0.0
        assert a.quality(oracle) == 1.0


def test_tenant_budget_exhaustion_becomes_failure(lustre_cluster):
    """run_tenant turns FaultBudgetExhausted into a structured report."""
    from repro.experiments.harness import shared_extraction

    spec = TenantSpec("doomed", workloads=("IOR_16M",), seed=5)
    extraction = shared_extraction(lustre_cluster, seed=0)
    outcome = run_tenant(
        spec,
        lustre_cluster,
        extraction,
        faults=FaultPlan(seed=0, rates={"llm.transient": 1.0}),
        retry=RetryPolicy(max_retries=1),
    )
    from repro.service.tenant import TenantFailure

    assert isinstance(outcome, TenantFailure)
    assert outcome.site == "llm.transient"
    assert outcome.failed_workload == "IOR_16M"
    assert outcome.attempts == 2
