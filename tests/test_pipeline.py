"""Pipeline parity: the staged session pipeline vs the monolithic tune.

``Stellar.tune`` is now a drive of :data:`repro.core.pipeline.SESSION_PIPELINE`.
The reference below is the *pre-refactor* method body, kept verbatim (same
object construction order, same transcript writes, same session assembly)
except for the shared run-seed derivation — so any behavioral drift the
stage decomposition introduces shows up as a byte-level mismatch here, for
every registered backend and every ablation switch.
"""

import json

import pytest

from repro.agents.analysis import AnalysisAgent
from repro.agents.transcript import Transcript
from repro.agents.tuning import TuningAgent
from repro.backends import list_backends
from repro.cluster.hardware import make_cluster
from repro.core.engine import Stellar
from repro.core.pipeline import SessionPipeline, SessionState
from repro.core.runner import ConfigurationRunner
from repro.core.session import TuningSession
from repro.corpus import render_hardware_doc
from repro.darshan import parse_log
from repro.llm.client import LLMClient
from repro.llm.tokens import UsageLedger
from repro.rules.store import session_to_dict
from repro.sim.random import RngStreams
from repro.workloads import get_workload


def monolithic_tune(
    engine: Stellar,
    workload,
    max_attempts: int = 5,
    use_rules: bool = True,
    use_descriptions: bool = True,
    use_analysis: bool = True,
    user_accessible_only: bool = False,
    seed: int | None = None,
) -> TuningSession:
    """The pre-refactor ``Stellar.tune`` body, verbatim."""
    engine._run_counter += 1
    run_seed = (
        RngStreams.rep_seed(engine.seed, engine._run_counter)
        if seed is None
        else seed
    )
    ledger = UsageLedger()
    tuning_client = LLMClient(engine.model, seed=run_seed, ledger=ledger)
    analysis_client = LLMClient(
        engine.analysis_model or "gpt-4o", seed=run_seed, ledger=ledger
    )
    transcript = Transcript()

    runner = ConfigurationRunner(engine.cluster, workload, seed=run_seed)
    initial_run, darshan_log = runner.initial_execution()
    transcript.add(
        "initial_run",
        f"{workload.name} under defaults: {initial_run.seconds:.2f}s",
        seconds=initial_run.seconds,
    )

    report = None
    analysis_agent = None
    if use_analysis:
        parsed = parse_log(darshan_log)
        analysis_agent = AnalysisAgent(
            analysis_client,
            parsed,
            transcript=transcript,
            session=f"analysis:{workload.name}:{run_seed}",
        )
        report = analysis_agent.initial_report()

    selected = engine.extraction.selected
    if user_accessible_only:
        registry = engine.cluster.backend.registry
        selected = [p for p in selected if registry[p.name].user_settable]
    parameters = [
        p.to_info(include_description=use_descriptions) for p in selected
    ]
    facts = {
        name: float(value) for name, value in engine.cluster.config_facts().items()
    }
    facts["n_clients"] = float(engine.cluster.n_clients)
    agent = TuningAgent(
        client=tuning_client,
        parameters=parameters,
        hardware_description=render_hardware_doc(engine.cluster),
        facts=facts,
        runner=runner,
        report=report,
        analysis_agent=analysis_agent,
        rules_json=engine.rule_set.to_json() if use_rules else [],
        max_attempts=max_attempts,
        transcript=transcript,
        session=f"tuning:{workload.name}:{run_seed}",
        fs_family=engine.cluster.backend.fs_family,
    )
    loop = agent.run_loop()
    return TuningSession(
        workload=workload.name,
        model=engine.model,
        initial_seconds=runner.initial_seconds,
        attempts=loop.attempts,
        end_reason=loop.end_reason,
        rules_json=loop.rules_json,
        transcript=transcript,
        executions=runner.execution_count,
        usage=dict(ledger.per_agent),
        llm_latency=ledger.wall_latency,
    )


def assert_sessions_byte_identical(a: TuningSession, b: TuningSession) -> None:
    """Byte-level equality: the JSON export and the full transcript."""
    assert json.dumps(session_to_dict(a)) == json.dumps(session_to_dict(b))
    assert a.transcript.render() == b.transcript.render()
    assert a.transcript.events == b.transcript.events
    assert a.llm_latency == b.llm_latency


@pytest.fixture(scope="module", params=list_backends())
def engines(request):
    """A (pipeline, reference) engine pair per backend, sharing extraction."""
    cluster = make_cluster(backend=request.param)
    staged = Stellar.build(cluster, seed=0)
    reference = Stellar(
        cluster=cluster, model=staged.model, extraction=staged.extraction, seed=0
    )
    return staged, reference


class TestPipelineParity:
    @pytest.mark.parametrize(
        "workload", ["IOR_64K", "IOR_16M", "MDWorkbench_8K", "IO500"]
    )
    def test_tune_byte_identical(self, engines, workload):
        staged, reference = engines
        ours = staged.fresh_copy().tune(get_workload(workload))
        theirs = monolithic_tune(reference.fresh_copy(), get_workload(workload))
        assert_sessions_byte_identical(ours, theirs)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"use_descriptions": False},
            {"use_analysis": False},
            {"use_rules": False},
            {"user_accessible_only": True},
            {"max_attempts": 2},
            {"seed": 1234},
        ],
        ids=lambda kw: next(iter(kw)),
    )
    def test_ablations_byte_identical(self, engines, kwargs):
        staged, reference = engines
        ours = staged.fresh_copy().tune(get_workload("MDWorkbench_8K"), **kwargs)
        theirs = monolithic_tune(
            reference.fresh_copy(), get_workload("MDWorkbench_8K"), **kwargs
        )
        assert_sessions_byte_identical(ours, theirs)

    def test_accumulated_rules_byte_identical(self, engines):
        """Rules flow between runs identically through both paths."""
        staged, reference = engines
        ours_engine, ref_engine = staged.fresh_copy(), reference.fresh_copy()
        for name in ("IOR_16M", "MDWorkbench_8K"):
            ours = ours_engine.tune_and_accumulate(get_workload(name))
            theirs = monolithic_tune(ref_engine, get_workload(name))
            ref_engine.accumulate(theirs)
            # accumulate() mutates usage; compare *after* both merged.
            assert_sessions_byte_identical(ours, theirs)
        assert (
            ours_engine.rule_set.to_json() == ref_engine.rule_set.to_json()
        )
        follow = ours_engine.tune(get_workload("MACSio_16M"))
        ref_follow = monolithic_tune(ref_engine, get_workload("MACSio_16M"))
        assert_sessions_byte_identical(follow, ref_follow)

    def test_explicit_reflection_policy_byte_identical(self, engines):
        """Naming the default policy changes nothing vs the pre-refactor loop."""
        staged, reference = engines
        ours = staged.fresh_copy().tune(
            get_workload("MDWorkbench_8K"), policy="reflection"
        )
        theirs = monolithic_tune(
            reference.fresh_copy(), get_workload("MDWorkbench_8K")
        )
        assert_sessions_byte_identical(ours, theirs)

    def test_run_counter_advances_run_seeds(self, engines):
        """Back-to-back runs differ only through the counter-derived seed."""
        staged, _ = engines
        engine = staged.fresh_copy()
        first = engine.tune(get_workload("IOR_16M"), use_rules=False)
        second = engine.tune(get_workload("IOR_16M"), use_rules=False)
        # Same workload, fresh rules both times: measured seconds must
        # differ because the derived run seeds differ.
        assert first.initial_seconds != second.initial_seconds


class TestPipelineShape:
    def test_default_stage_order(self):
        names = [stage.name for stage in SessionPipeline.default().stages]
        assert names == [
            "clients",
            "initial_execution",
            "analysis",
            "parameters",
            "agent_loop",
            "assemble",
        ]

    def test_custom_pipeline_prefix_runs(self):
        """A truncated pipeline leaves later-stage fields unset."""
        cluster = make_cluster()
        engine = Stellar.build(cluster, seed=0)
        pipeline = SessionPipeline(SessionPipeline.default().stages[:2])
        state = pipeline.run(
            SessionState(
                cluster=cluster,
                workload=get_workload("IOR_16M"),
                model=engine.model,
                analysis_model="gpt-4o",
                extraction=engine.extraction,
                run_seed=7,
            )
        )
        assert state.initial_run is not None
        assert state.darshan_log is not None
        assert state.report is None
        assert state.loop is None
        assert state.session is None

    def test_merge_usage_surfaces_in_session(self):
        """accumulate() books the merge step under its own agent."""
        cluster = make_cluster()
        engine = Stellar.build(cluster, seed=0)
        first = engine.tune_and_accumulate(get_workload("IOR_16M"))
        # First merge short-circuits (empty global set): no LLM call.
        assert "rules_merge" not in first.usage
        second = engine.tune(get_workload("IOR_64K"))
        latency_before = second.llm_latency
        engine.accumulate(second)
        assert second.usage["rules_merge"].input_tokens > 0
        assert second.usage["rules_merge"].output_tokens > 0
        assert second.llm_latency > latency_before
