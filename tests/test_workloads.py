"""Tests for the workload generators and their calibrated shapes."""

import pytest

from repro.cluster import make_cluster
from repro.pfs import PfsConfig, Simulator
from repro.pfs.phases import DataPhase, MetaPhase
from repro.workloads import get_workload, list_workloads, register_workload
from repro.workloads.base import Workload
from repro.workloads.registry import BENCHMARKS, REAL_APPS

KiB = 1024
MiB = 1024 * KiB


@pytest.fixture(scope="module")
def cluster():
    return make_cluster()


@pytest.fixture(scope="module")
def sim(cluster):
    return Simulator(cluster)


class TestRegistry:
    def test_catalog_contents(self):
        names = list_workloads()
        for required in BENCHMARKS + REAL_APPS:
            assert required in names

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown workload"):
            get_workload("NOPE")

    def test_instances_are_fresh(self):
        a = get_workload("IOR_16M")
        b = get_workload("IOR_16M")
        assert a is not b

    def test_register_custom(self):
        register_workload("_test_custom", lambda: get_workload("IOR_16M"))
        assert "_test_custom" in list_workloads()
        with pytest.raises(ValueError):
            register_workload("_test_custom", lambda: get_workload("IOR_16M"))

    def test_base_workload_requires_subclass(self, cluster):
        with pytest.raises(NotImplementedError):
            Workload().build_phases(cluster)


class TestIor:
    def test_ior_64k_spec(self, cluster):
        w = get_workload("IOR_64K")
        phases = w.compile(cluster)
        assert len(phases) == 2
        write, read = phases
        assert write.io == "write" and read.io == "read"
        assert write.xfer_size == 64 * KiB
        assert write.pattern == "random"
        assert write.bytes_per_rank == 128 * MiB
        assert write.fileset.shared

    def test_ior_16m_spec(self, cluster):
        w = get_workload("IOR_16M")
        write = w.compile(cluster)[0]
        assert write.xfer_size == 16 * MiB
        assert write.bytes_per_rank == 3 * 128 * MiB
        assert write.pattern == "seq"

    def test_reorder_defeats_cache(self, cluster):
        w = get_workload("IOR_64K")
        read = w.compile(cluster)[1]
        assert read.reuse is False


class TestMdWorkbench:
    def test_phase_structure(self, cluster):
        w = get_workload("MDWorkbench_8K")
        phases = w.compile(cluster)
        # mkdir setup + 3 rounds x 4 phases
        assert len(phases) == 1 + 3 * 4
        assert all(isinstance(p, MetaPhase) for p in phases)

    def test_file_population(self, cluster):
        w = get_workload("MDWorkbench_2K")
        create = w.compile(cluster)[1]
        assert create.files_per_rank == 10 * 400
        assert create.fileset.n_files == 10 * 400 * 50

    def test_writes_do_not_persist(self, cluster):
        w = get_workload("MDWorkbench_2K")
        create = w.compile(cluster)[1]
        assert create.data_persists is False
        assert create.data_bytes == 2 * KiB

    def test_stat_phase_is_scan_ordered(self, cluster):
        w = get_workload("MDWorkbench_8K")
        stat = next(p for p in w.compile(cluster) if p.name.endswith(".stat"))
        assert stat.scan_order
        assert stat.cycle == ("stat",)


class TestIo500:
    def test_standard_phase_schedule(self, cluster):
        w = get_workload("IO500")
        names = [p.name for p in w.compile(cluster)]
        assert names == [
            "ior_easy.write",
            "mdtest_easy.write",
            "ior_hard.write",
            "mdtest_hard.write",
            "ior_easy.read",
            "mdtest_easy.stat",
            "ior_hard.read",
            "mdtest_hard.stat",
            "mdtest_easy.delete",
            "mdtest_hard.read",
            "mdtest_hard.delete",
        ]

    def test_hard_phases_use_io500_constants(self, cluster):
        w = get_workload("IO500")
        phases = {p.name: p for p in w.compile(cluster)}
        assert phases["ior_hard.write"].xfer_size == 47008
        assert phases["mdtest_hard.write"].data_bytes == 3901
        assert phases["mdtest_hard.write"].fileset.shared_dir

    def test_easy_is_file_per_process(self, cluster):
        w = get_workload("IO500")
        easy = w.compile(cluster)[0]
        assert not easy.fileset.shared
        assert easy.fileset.n_files == 50


class TestAmrex:
    def test_dump_structure(self, cluster):
        w = get_workload("AMReX")
        phases = w.compile(cluster)
        data_phases = [p for p in phases if isinstance(p, DataPhase)]
        assert len(data_phases) == 3  # one per dump
        assert all(p.concurrent_writers == 2 for p in data_phases)

    def test_headers_persist(self, cluster):
        w = get_workload("AMReX")
        headers = next(p for p in w.compile(cluster) if "headers" in p.name)
        assert headers.data_persists


class TestMacsio:
    def test_object_size_drives_pattern(self, cluster):
        small = get_workload("MACSio_512K").compile(cluster)
        large = get_workload("MACSio_16M").compile(cluster)
        assert all(p.pattern == "random" for p in small)
        assert all(p.pattern == "seq" for p in large)
        assert small[0].xfer_size == 512 * KiB
        assert large[0].xfer_size == 16 * MiB

    def test_single_shared_file_per_dump(self, cluster):
        phases = get_workload("MACSio_512K").compile(cluster)
        assert len(phases) == 4
        assert all(p.fileset.shared and p.fileset.n_files == 1 for p in phases)


class TestCalibratedShapes:
    """The speedup headroom each workload must expose (paper §5.2 shapes)."""

    TUNED_DATA = {
        "lov.stripe_count": 5,
        "lov.stripe_size": 16 * MiB,
        "osc.max_rpcs_in_flight": 32,
        "osc.max_pages_per_rpc": 4096,
        "osc.max_dirty_mb": 256,
        "osc.short_io_bytes": 64 * KiB,
    }
    TUNED_META = {
        "mdc.max_rpcs_in_flight": 64,
        "mdc.max_mod_rpcs_in_flight": 32,
        "llite.statahead_max": 512,
    }

    def _speedup(self, sim, name, updates):
        workload = get_workload(name)
        default = sim.run(workload, PfsConfig.default(), seed=3)
        tuned = sim.run(workload, PfsConfig.default().with_updates(updates), seed=3)
        return default.seconds / tuned.seconds

    def test_ior_64k_headroom(self, sim):
        assert 4.5 < self._speedup(sim, "IOR_64K", self.TUNED_DATA) < 9.0

    def test_ior_16m_headroom(self, sim):
        assert 3.5 < self._speedup(sim, "IOR_16M", self.TUNED_DATA) < 7.0

    def test_mdworkbench_headroom(self, sim):
        assert 1.25 < self._speedup(sim, "MDWorkbench_8K", self.TUNED_META) < 1.9

    def test_io500_headroom(self, sim):
        updates = dict(self.TUNED_DATA)
        updates.update(self.TUNED_META)
        assert 1.6 < self._speedup(sim, "IO500", updates) < 3.5

    def test_macsio_headroom(self, sim):
        assert 3.0 < self._speedup(sim, "MACSio_512K", self.TUNED_DATA) < 7.5
        assert 3.0 < self._speedup(sim, "MACSio_16M", self.TUNED_DATA) < 7.5

    def test_amrex_headroom(self, sim):
        assert 1.6 < self._speedup(sim, "AMReX", self.TUNED_DATA) < 3.5

    def test_wrong_stripe_hurts_metadata(self, sim):
        """Setting stripe_count=5 on MDWorkbench must regress performance
        (the No-Descriptions ablation mechanism)."""
        workload = get_workload("MDWorkbench_8K")
        default = sim.run(workload, PfsConfig.default(), seed=3)
        wrong = sim.run(
            workload,
            PfsConfig.default().with_updates({"lov.stripe_count": 5}),
            seed=3,
        )
        assert wrong.seconds > default.seconds * 1.1

    def test_data_tuning_useless_for_metadata(self, sim):
        """Tuning only data-path parameters leaves MDWorkbench near default
        (the No-Analysis ablation mechanism)."""
        workload = get_workload("MDWorkbench_8K")
        default = sim.run(workload, PfsConfig.default(), seed=3)
        data_only = dict(self.TUNED_DATA)
        data_only.pop("lov.stripe_count")  # agent keeps stripe for 'large files'
        tuned = sim.run(
            workload, PfsConfig.default().with_updates(data_only), seed=3
        )
        assert abs(tuned.seconds - default.seconds) / default.seconds < 0.1
