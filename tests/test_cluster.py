"""Tests for the simulated testbed: hardware spec, topology, MPI placement."""

import numpy as np
import pytest

from repro.cluster import MpiJob, RankPlacement, build_topology, make_cluster
from repro.cluster.topology import path_bandwidth, path_latency


class TestClusterSpec:
    def test_paper_testbed_shape(self):
        cluster = make_cluster()
        assert cluster.n_oss == 5
        assert cluster.n_ost == 5
        assert cluster.n_clients == 5
        assert len(cluster.mds_nodes) == 1

    def test_nic_is_10gbps(self):
        cluster = make_cluster()
        assert cluster.client_nodes[0].nic_bandwidth == pytest.approx(1.25e9)

    def test_system_memory_mb_used_by_dependent_ranges(self):
        cluster = make_cluster()
        assert cluster.system_memory_mb == 196 * 1024

    def test_describe_mentions_key_facts(self):
        text = make_cluster().describe()
        assert "5 OSS" in text
        assert "10 Gbps" in text
        assert "MDS" in text

    def test_overrides(self):
        cluster = make_cluster(mds_service_threads=64)
        assert cluster.mds_service_threads == 64
        with pytest.raises(TypeError):
            make_cluster(warp_drive=True)

    def test_custom_sizes(self):
        cluster = make_cluster(n_oss=3, n_clients=2)
        assert cluster.n_oss == 3
        assert cluster.n_clients == 2


class TestTopology:
    def test_star_shape(self):
        cluster = make_cluster()
        graph = build_topology(cluster)
        # 5 oss + 1 mds + 5 clients + switch
        assert graph.number_of_nodes() == 12
        assert graph.degree["switch"] == 11

    def test_path_bandwidth_is_nic_limited(self):
        cluster = make_cluster()
        graph = build_topology(cluster)
        bw = path_bandwidth(graph, "client0", "oss0")
        assert bw == pytest.approx(1.25e9)

    def test_path_latency_sums_hops(self):
        cluster = make_cluster()
        graph = build_topology(cluster)
        lat = path_latency(graph, "client0", "oss0")
        node = cluster.client_nodes[0]
        expected = 2 * (node.nic_latency + cluster.switch_latency)
        assert lat == pytest.approx(expected)


class TestPlacement:
    def test_block_placement_50_over_5(self):
        placement = RankPlacement(n_ranks=50, n_clients=5)
        counts = placement.ranks_per_client()
        assert list(counts) == [10, 10, 10, 10, 10]
        assert placement.client_of(0) == 0
        assert placement.client_of(49) == 4

    def test_uneven_placement_covers_all_ranks(self):
        placement = RankPlacement(n_ranks=7, n_clients=3)
        counts = placement.ranks_per_client()
        assert counts.sum() == 7
        assert counts.max() - counts.min() <= 3

    def test_rank_out_of_range(self):
        placement = RankPlacement(n_ranks=4, n_clients=2)
        with pytest.raises(IndexError):
            placement.client_of(4)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            RankPlacement(n_ranks=0, n_clients=1)


class TestMpiJob:
    def test_launch(self):
        cluster = make_cluster()
        job = MpiJob.launch("ior", 50, cluster)
        assert job.n_ranks == 50
        assert len(job.ranks_on_client(0)) == 10
        assert job.ranks_on_client(4) == list(range(40, 50))

    def test_launch_requires_positive_ranks(self):
        with pytest.raises(ValueError):
            MpiJob.launch("x", 0, make_cluster())

    def test_all_ranks_placed_exactly_once(self):
        cluster = make_cluster()
        job = MpiJob.launch("x", 23, cluster)
        seen = sorted(
            r for c in range(cluster.n_clients) for r in job.ranks_on_client(c)
        )
        assert seen == list(range(23))
