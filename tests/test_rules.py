"""Tests for the rule set model and conflict-resolving merge."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rules import Rule, RuleSet, merge_rule_sets


def _rule(param="mdc.max_rpcs_in_flight", value=64, tags=("metadata_small_files",),
          description="raise it", speedup=1.4, alternative=False):
    return Rule(
        parameter=param,
        rule_description=description,
        tuning_context="metadata heavy",
        context_tags=list(tags),
        recommended_value=value,
        observed_speedup=speedup,
        alternative=alternative,
    )


class TestRuleModel:
    def test_json_round_trip(self):
        rule = _rule()
        clone = Rule.from_dict(rule.to_dict())
        assert clone == rule

    def test_paper_titlecase_keys_accepted(self):
        rule = Rule.from_dict(
            {
                "Parameter": "lov.stripe_count",
                "Rule Description": "stripe shared files",
                "Tuning Context": "large shared-file workloads",
            }
        )
        assert rule.parameter == "lov.stripe_count"
        assert rule.rule_description == "stripe shared files"

    def test_same_context_by_tags(self):
        assert _rule().same_context(_rule(value=32))
        assert not _rule().same_context(_rule(param="other.param"))
        assert not _rule(tags=("a",)).same_context(_rule(tags=("b",)))

    def test_contradiction_is_directional_not_magnitudinal(self):
        # 16 vs 128 is the same direction at different strengths.
        assert not _rule(value=16).contradicts(_rule(value=128))
        assert not _rule(value=32).contradicts(_rule(value=48))
        assert not _rule(value=None).contradicts(_rule(value=64))

    def test_contradiction_sign_flip(self):
        assert _rule(param="lov.stripe_count", value=-1).contradicts(
            _rule(param="lov.stripe_count", value=1)
        )

    def test_ruleset_queries(self):
        rs = RuleSet([_rule(), _rule(param="llite.statahead_max", value=512)])
        assert len(rs.for_parameter("llite.statahead_max")) == 1
        assert len(rs.matching_tags(["metadata_small_files"])) == 2
        assert rs.matching_tags(["shared_seq_large"]) == []

    def test_ruleset_serialization(self):
        rs = RuleSet([_rule()])
        clone = RuleSet.loads(rs.dumps())
        assert clone.rules == rs.rules


class TestMerge:
    def test_disjoint_rules_concatenate(self):
        merged = merge_rule_sets(
            RuleSet([_rule()]),
            RuleSet([_rule(param="llite.statahead_max", value=512)]),
        )
        assert len(merged) == 2

    def test_contradiction_removes_both(self):
        merged = merge_rule_sets(
            RuleSet([_rule(param="lov.stripe_count", value=-1, tags=("x", "y"))]),
            RuleSet([_rule(param="lov.stripe_count", value=1, tags=("x", "y"))]),
        )
        assert len(merged) == 0

    def test_equivalent_guidance_deduplicates(self):
        merged = merge_rule_sets(
            RuleSet([_rule(value=64, speedup=1.3)]),
            RuleSet([_rule(value=96, speedup=1.5)]),
        )
        assert len(merged) == 1
        assert merged.rules[0].recommended_value == 96  # better evidence wins

    def test_slightly_different_guidance_kept_as_alternatives(self):
        merged = merge_rule_sets(
            RuleSet([_rule(value=32)]), RuleSet([_rule(value=128)])
        )
        assert len(merged) == 2
        assert any(r.alternative for r in merged)

    def test_negative_alternative_pruned_by_positive(self):
        negative = _rule(value=128, speedup=0.8)
        positive = _rule(value=32, speedup=1.5)
        merged = merge_rule_sets(RuleSet([negative]), RuleSet([positive]))
        values = [r.recommended_value for r in merged]
        assert 32 in values
        assert 128 not in values

    def test_negative_incoming_does_not_displace_positive(self):
        positive = _rule(value=32, speedup=1.5)
        negative = _rule(value=128, speedup=0.7)
        merged = merge_rule_sets(RuleSet([positive]), RuleSet([negative]))
        values = [r.recommended_value for r in merged]
        assert values == [32]

    def test_avoid_rules_kept(self):
        avoid = _rule(value=None, speedup=0.7, description="Avoid striping small files")
        merged = merge_rule_sets(RuleSet([_rule()]), RuleSet([avoid]))
        assert any(r.recommended_value is None for r in merged)

    def test_merge_into_empty(self):
        merged = merge_rule_sets(RuleSet(), RuleSet([_rule()]))
        assert len(merged) == 1

    def test_merge_idempotent(self):
        base = RuleSet([_rule(), _rule(param="llite.statahead_max", value=512)])
        once = merge_rule_sets(base, base)
        twice = merge_rule_sets(once, base)
        assert once.to_json() == twice.to_json()

    @settings(max_examples=40, deadline=None)
    @given(
        values=st.lists(
            st.integers(min_value=1, max_value=4096), min_size=1, max_size=8
        )
    )
    def test_merge_never_grows_unboundedly(self, values):
        """Property: merging N same-context rules keeps at most N entries and
        terminates (no duplicate explosion)."""
        merged = RuleSet()
        for value in values:
            merged = merge_rule_sets(merged, RuleSet([_rule(value=value)]))
        assert len(merged) <= len(values)
