"""Tests for the default/expert baselines and the oracle search."""

import pytest

from repro.baselines import (
    OracleSearch,
    default_updates,
    expert_rationale,
    expert_updates,
)
from repro.cluster import make_cluster
from repro.experiments.harness import measure_config
from repro.workloads import get_workload
from repro.workloads.registry import BENCHMARKS, REAL_APPS


@pytest.fixture(scope="module")
def cluster():
    return make_cluster()


class TestExpert:
    def test_default_is_empty(self):
        assert default_updates() == {}
        assert default_updates("IOR_16M") == {}

    def test_expert_covers_all_workloads(self):
        for name in BENCHMARKS + REAL_APPS:
            updates = expert_updates(name)
            assert updates, name
            assert expert_rationale(name)

    def test_unknown_workload(self):
        with pytest.raises(KeyError):
            expert_updates("UNKNOWN")

    def test_expert_beats_default_everywhere(self, cluster):
        for name in BENCHMARKS + REAL_APPS:
            default = measure_config(cluster, name, {}, "default", reps=3, seed=9)
            expert = measure_config(
                cluster, name, expert_updates(name), "expert", reps=3, seed=9
            )
            assert expert.mean < default.mean, name

    def test_expert_keeps_default_stripe_for_metadata(self):
        updates = expert_updates("MDWorkbench_8K")
        assert "lov.stripe_count" not in updates


class TestOracleSearch:
    def test_search_improves_on_default(self, cluster):
        search = OracleSearch(cluster, seed=0, max_rounds=1)
        result = search.run(get_workload("IOR_16M"))
        assert result.speedup > 3.0
        assert result.evaluations > 20  # the cost argument: many evaluations

    def test_search_result_reproducible(self, cluster):
        a = OracleSearch(cluster, seed=0, max_rounds=1).run(get_workload("IOR_16M"))
        b = OracleSearch(cluster, seed=0, max_rounds=1).run(get_workload("IOR_16M"))
        assert a.best_updates == b.best_updates
        assert a.best_seconds == b.best_seconds

    def test_expert_near_oracle_on_ior(self, cluster):
        oracle = OracleSearch(cluster, seed=0, max_rounds=1).run(
            get_workload("IOR_16M")
        )
        expert = measure_config(
            cluster, "IOR_16M", expert_updates("IOR_16M"), "expert", reps=3, seed=0
        )
        assert expert.mean < oracle.best_seconds * 1.2

    def test_oracle_needs_far_more_evaluations_than_stellar(self, cluster):
        """The paper's motivation: search-based tuning costs dozens to
        thousands of runs; STELLAR converges within five."""
        oracle = OracleSearch(cluster, seed=0, max_rounds=1).run(
            get_workload("IOR_64K")
        )
        assert oracle.evaluations >= 5 * 5
