"""The agent-policy layer: registry, parity, behavior, faults, fleet.

Covers the policy tentpole's contracts:

- the registry (ordering, lookup errors, resolution rules);
- CLI byte parity: the default policy's seed-2 transcript matches the
  pre-refactor fixtures exactly, on every backend;
- ReACT and propose/critic determinism and quality (both improve on the
  defaults, and their *attempts* stay aligned with the reflection loop —
  policies only change when evaluations are parked, never probe seeds);
- the satellite behaviors: unknown tool calls degrade instead of crash,
  malformed Reflect & Summarize payloads raise a descriptive error;
- policy x fault interaction: every policy absorbs probe exhaustion as a
  degradation, runs deterministically under a nonzero fault plan at any
  worker count, and treats the zero-fault plan as byte-identical to no
  plane at all;
- the fleet dimension: per-tenant policies validate, render, and preserve
  the scheduler's worker-count and batching parity contracts.
"""

import json

import pytest

from repro.agents.policies import (
    PolicyContext,
    ProposeCriticPolicy,
    ReACTPolicy,
    ReflectionPolicy,
    get_policy,
    list_policies,
    register_policy,
    resolve_policy,
)
from repro.agents.tuning import (
    ReflectionFormatError,
    TuningAgent,
    TuningLoopResult,
)
from repro.backends import list_backends
from repro.cli import main
from repro.cluster.hardware import make_cluster
from repro.core.engine import Stellar
from repro.core.pipeline import SESSION_PIPELINE, SessionState
from repro.corpus import render_hardware_doc
from repro.faults.plan import FaultPlan
from repro.faults.retry import FaultBudgetExhausted
from repro.llm.api import Completion, ToolCall
from repro.llm.promptparse import ParameterInfo
from repro.llm.reasoning import SPECULATIVE_RATIONALE_PREFIX, review_proposal
from repro.rules.store import session_to_dict
from repro.service import FleetScheduler, TenantSpec
from repro.workloads import get_workload
from test_fleet import fleet_fingerprint
from test_pipeline import assert_sessions_byte_identical

FIXTURE_DIR = "tests/fixtures"


@pytest.fixture(scope="module", params=list_backends())
def engine(request):
    """One engine per backend, sharing its offline extraction."""
    cluster = make_cluster(backend=request.param)
    return Stellar.build(cluster, seed=0)


def build_context(engine, workload_name, seed=0, max_attempts=5, runner=None):
    """A PolicyContext the way AgentLoopStage builds one, stage by stage."""
    workload = get_workload(workload_name)
    state = SessionState(
        cluster=engine.cluster,
        workload=workload,
        model=engine.model,
        analysis_model="gpt-4o",
        extraction=engine.extraction,
        run_seed=seed,
    )
    for stage in SESSION_PIPELINE.stages[:4]:
        state = stage.run(state)
    return PolicyContext(
        client=state.tuning_client,
        parameters=state.parameters,
        hardware_description=render_hardware_doc(engine.cluster),
        facts=state.facts,
        runner=runner if runner is not None else state.runner,
        report=state.report,
        analysis_agent=state.analysis_agent,
        rules_json=[],
        max_attempts=max_attempts,
        transcript=state.transcript,
        session=f"tuning:{workload.name}:{seed}",
        fs_family=engine.cluster.backend.fs_family,
    )


class TestPolicyRegistry:
    def test_registration_order(self):
        assert list_policies() == ["reflection", "react", "propose_critic"]

    def test_get_unknown_names_registered(self):
        with pytest.raises(KeyError, match="reflection.*react.*propose_critic"):
            get_policy("chain_of_thought")

    def test_resolve_none_is_reflection(self):
        assert resolve_policy(None) is get_policy("reflection")

    def test_resolve_by_name(self):
        assert resolve_policy("react").name == "react"

    def test_resolve_instance_passthrough(self):
        policy = ReACTPolicy()
        assert resolve_policy(policy) is policy

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="reflection"):
            register_policy(ReflectionPolicy())

    def test_policy_classes_expose_names(self):
        assert ReflectionPolicy().name == "reflection"
        assert ReACTPolicy().name == "react"
        assert ProposeCriticPolicy().name == "propose_critic"


class TestDefaultPolicyCliParity:
    """The refactored default loop vs the pre-refactor CLI fixtures."""

    @pytest.mark.parametrize("backend", list_backends())
    def test_seed2_transcript_matches_fixture(self, backend, capsys):
        assert (
            main(
                [
                    "--seed",
                    "2",
                    "tune",
                    "MDWorkbench_8K",
                    "--backend",
                    backend,
                    "--transcript",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        with open(f"{FIXTURE_DIR}/policy_parity_{backend}.txt") as handle:
            assert out == handle.read()


class TestPolicyBehavior:
    @pytest.mark.parametrize("policy", ["react", "propose_critic"])
    def test_deterministic_and_improving(self, engine, policy):
        workload = get_workload("MDWorkbench_8K")
        first = engine.fresh_copy().tune(workload, seed=5, policy=policy)
        second = engine.fresh_copy().tune(workload, seed=5, policy=policy)
        assert_sessions_byte_identical(first, second)
        assert first.best_speedup > 1.0

    @pytest.mark.parametrize("policy", ["react", "propose_critic"])
    def test_attempts_align_with_reflection(self, engine, policy):
        """Policies park evaluations; they never perturb probe draws."""
        workload = get_workload("MDWorkbench_8K")
        base = engine.fresh_copy().tune(workload, seed=5)
        other = engine.fresh_copy().tune(workload, seed=5, policy=policy)
        base_attempts = [(a.changes, a.seconds) for a in base.attempts]
        other_attempts = [(a.changes, a.seconds) for a in other.attempts]
        # Every attempt the policy *did* run matches an attempt the
        # reflection loop ran, in order (the critic may skip some).
        it = iter(base_attempts)
        assert all(attempt in it for attempt in other_attempts)
        assert other.best_speedup >= 1.0

    def test_react_transcript_interleaves_thoughts(self, engine):
        session = engine.fresh_copy().tune(
            get_workload("IOR_16M"), seed=5, policy="react"
        )
        thoughts = session.transcript.of_kind("react_thought")
        assert thoughts
        assert session.transcript.of_kind("end_tuning")
        assert any(t.detail.startswith("FINAL:") for t in thoughts)

    def test_critic_vetoes_speculative_exploration(self):
        """Seed 15 on lustre IOR_64K makes the reflection loop explore
        speculatively; the critic parks that probe run."""
        cluster = make_cluster(backend="lustre")
        engine = Stellar.build(cluster, seed=0)
        workload = get_workload("IOR_64K")
        base = engine.fresh_copy().tune(workload, seed=15)
        assert any(
            a.rationale.startswith(SPECULATIVE_RATIONALE_PREFIX)
            for a in base.attempts
        )
        critic = engine.fresh_copy().tune(
            workload, seed=15, policy="propose_critic"
        )
        vetoes = critic.transcript.of_kind("critic_veto")
        assert vetoes and "speculative" in vetoes[0].detail
        assert not any(
            a.rationale.startswith(SPECULATIVE_RATIONALE_PREFIX)
            for a in critic.attempts
        )
        # The parked probe run never shifts seeds: the shared attempts and
        # the winning configuration are unchanged.
        assert critic.best_speedup == base.best_speedup
        assert "critic" in critic.usage


class TestReviewProposal:
    PARAMS = [
        ParameterInfo(
            name="osc.max_rpcs_in_flight",
            default=8,
            min_expr="1",
            max_expr="64",
        ),
        ParameterInfo(
            name="lov.stripe_count",
            default=1,
            min_expr="-1",
            max_expr="n_osts",
        ),
    ]

    def test_vetoes_speculative_rationale(self):
        verdict = review_proposal(
            {"osc.max_rpcs_in_flight": 16},
            SPECULATIVE_RATIONALE_PREFIX + " reduces readahead pressure.",
            self.PARAMS,
        )
        assert verdict.startswith("VETO:")

    def test_amends_out_of_range_value(self):
        verdict = review_proposal(
            {"osc.max_rpcs_in_flight": 1024},
            "Deeper RPC pipelining should hide server latency.",
            self.PARAMS,
        )
        head, _, body = verdict.partition("\n")
        assert head == "AMEND"
        assert json.loads(body) == {"osc.max_rpcs_in_flight": 64}

    def test_expression_bounds_left_to_runner(self):
        verdict = review_proposal(
            {"lov.stripe_count": 999},
            "Wider striping should spread the load.",
            self.PARAMS,
        )
        assert verdict == "APPROVE"

    def test_approves_grounded_in_range_proposal(self):
        verdict = review_proposal(
            {"osc.max_rpcs_in_flight": 32},
            "The report shows RPC queue saturation.",
            self.PARAMS,
        )
        assert verdict == "APPROVE"


class ScriptedClient:
    """Replays canned tool turns; answers reflections with fixed text."""

    def __init__(self, turns, reflection="[]"):
        self.turns = list(turns)
        self.reflection = reflection

    def complete(self, messages, tools=None, agent="generic", session=None):
        if tools:
            return Completion(tool_calls=[self.turns.pop(0)])
        return Completion(content=self.reflection)


class StaticRunner:
    """Just enough runner surface for prompt assembly and one probe."""

    initial_seconds = 10.0
    execution_count = 1

    def measure(self, changes):
        return 5.0, dict(changes)


def scripted_agent(turns, reflection="[]", **kwargs):
    return TuningAgent(
        client=ScriptedClient(turns, reflection=reflection),
        parameters=[],
        hardware_description="one test node",
        facts={"n_clients": 1.0},
        runner=StaticRunner(),
        report=None,
        **kwargs,
    )


class TestUnknownToolDegradation:
    def test_unknown_tool_skips_turn_and_continues(self):
        agent = scripted_agent(
            [
                ToolCall("fetch_weather", {"city": "Hamburg"}),
                ToolCall("end_tuning", {"reason": "done"}),
            ]
        )
        result = agent.run_loop()
        assert result.end_reason == "done"
        events = agent.transcript.of_kind("unknown_tool")
        assert events and "'fetch_weather'" in events[0].detail
        assert any("unknown tool 'fetch_weather'" in d for d in result.degradations)


class TestReflectionFormatError:
    def test_malformed_payload_names_agent_and_session(self):
        agent = scripted_agent(
            [
                ToolCall(
                    "run_configuration",
                    {"changes": {"osc.max_dirty_mb": 256}, "rationale": "x"},
                ),
                ToolCall("end_tuning", {"reason": "done"}),
            ],
            reflection="here are some rules!",
            session="tuning:IOR_16M:7",
        )
        with pytest.raises(ReflectionFormatError) as exc:
            agent.run_loop()
        message = str(exc.value)
        assert "agent 'tuning'" in message
        assert "tuning:IOR_16M:7" in message
        assert "line 1" in message and "column" in message


class ExhaustedRunner:
    """Proxies a real runner but every probe exhausts its fault budget."""

    def __init__(self, inner):
        self.inner = inner

    @property
    def initial_seconds(self):
        return self.inner.initial_seconds

    @property
    def execution_count(self):
        return self.inner.execution_count

    def measure(self, changes):
        raise FaultBudgetExhausted(site="probe.run", key="probe:0:1", attempts=5)


class TestPolicyFaultInteraction:
    PLAN = FaultPlan.uniform(0.05, seed=3)

    @pytest.mark.parametrize("policy", list_policies())
    def test_deterministic_under_nonzero_plan(self, engine, policy):
        workload = get_workload("MDWorkbench_8K")
        runs = []
        for _ in range(2):
            faulty = Stellar(
                cluster=engine.cluster,
                model=engine.model,
                extraction=engine.extraction,
                seed=0,
                faults=self.PLAN,
                policy=policy,
            )
            runs.append(faulty.tune(workload, seed=5))
        assert_sessions_byte_identical(*runs)

    @pytest.mark.parametrize("policy", list_policies())
    def test_zero_fault_plan_matches_no_plane(self, engine, policy):
        workload = get_workload("MDWorkbench_8K")
        planned = Stellar(
            cluster=engine.cluster,
            model=engine.model,
            extraction=engine.extraction,
            seed=0,
            faults=FaultPlan.none(),
            policy=policy,
        ).tune(workload, seed=5)
        bare = Stellar(
            cluster=engine.cluster,
            model=engine.model,
            extraction=engine.extraction,
            seed=0,
            policy=policy,
        ).tune(workload, seed=5)
        assert_sessions_byte_identical(planned, bare)

    @pytest.mark.parametrize("policy", list_policies())
    def test_probe_exhaustion_degrades_not_crashes(self, engine, policy):
        ctx = build_context(engine, "MDWorkbench_8K", max_attempts=2)
        ctx.runner = ExhaustedRunner(ctx.runner)
        result = resolve_policy(policy).run(ctx)
        assert not result.attempts
        assert result.degradations
        assert all("probe.run" in d for d in result.degradations)
        assert result.end_reason == (
            "tuning degraded: probe failures consumed the turn budget"
        )


MIXED_POLICY_FLEET = [
    TenantSpec("acme-data", backend="lustre", workloads=("IOR_16M",), seed=21),
    TenantSpec(
        "acme-meta",
        backend="lustre",
        workloads=("MDWorkbench_8K",),
        seed=22,
        policy="react",
    ),
    TenantSpec(
        "globex",
        backend="beegfs",
        workloads=("IOR_64K",),
        seed=23,
        policy="propose_critic",
    ),
]


class TestPolicyFleetDimension:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="badco.*chain_of_thought"):
            TenantSpec(
                "badco",
                workloads=("IOR_16M",),
                policy="chain_of_thought",
            )

    def test_render_row_marks_non_default_policy(self):
        result = FleetScheduler(
            MIXED_POLICY_FLEET, seed=0, max_workers=1
        ).run()
        rows = {t.tenant_id: t.render_row() for t in result.tenants}
        assert "policy=" not in rows["acme-data"]
        assert "policy=react" in rows["acme-meta"]
        assert "policy=propose_critic" in rows["globex"]

    def test_mixed_policy_worker_invariance(self):
        baseline = fleet_fingerprint(
            FleetScheduler(MIXED_POLICY_FLEET, seed=0, max_workers=1).run()
        )
        pooled = FleetScheduler(MIXED_POLICY_FLEET, seed=0, max_workers=2).run()
        assert fleet_fingerprint(pooled) == baseline

    def test_mixed_policy_batching_parity(self):
        batched = FleetScheduler(
            MIXED_POLICY_FLEET, seed=0, batching=True
        ).run()
        scalar = FleetScheduler(
            MIXED_POLICY_FLEET, seed=0, batching=False
        ).run()
        assert fleet_fingerprint(batched) == fleet_fingerprint(scalar)

    def test_faulted_mixed_policy_worker_invariance(self):
        plan = FaultPlan.uniform(0.05, seed=3)
        baseline = fleet_fingerprint(
            FleetScheduler(
                MIXED_POLICY_FLEET, seed=0, max_workers=1, faults=plan
            ).run()
        )
        pooled = FleetScheduler(
            MIXED_POLICY_FLEET, seed=0, max_workers=2, faults=plan
        ).run()
        assert fleet_fingerprint(pooled) == baseline


class TestPolicyExperiment:
    def test_single_backend_deterministic(self):
        from repro.experiments import policies

        first = policies.run(seed=0, backends=("lustre",), max_workers=1)
        second = policies.run(seed=0, backends=("lustre",), max_workers=2)
        assert first.render() == second.render()

    def test_every_policy_improves_in_every_cell(self):
        from repro.experiments import policies

        report = policies.run(seed=0)
        assert report.cells and report.policies == list_policies()
        for policy in report.policies:
            assert report.wins(policy) == len(report.cells), policy
        assert report.sweeping_policies == len(report.policies)
        assert (
            f"{len(report.policies)}/{len(report.policies)} policies "
            "improve on defaults in every cell"
        ) in report.render()

    def test_cli_policies_command(self, capsys):
        assert main(["--seed", "2", "policies", "--backend", "lustre"]) == 0
        out = capsys.readouterr().out
        assert "3/3 policies improve on defaults in every cell" in out

    def test_cli_tune_policy_flag(self, capsys):
        assert main(["tune", "IOR_16M", "--policy", "propose_critic"]) == 0
        out = capsys.readouterr().out
        assert "best speedup" in out
